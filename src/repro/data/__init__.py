"""Dataset generators: synthetic data and real-dataset stand-ins."""

from repro.data import generators

__all__ = ["generators"]
