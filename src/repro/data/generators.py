"""Synthetic datasets and real-dataset stand-ins (Section 5.1).

The paper evaluates on synthetic matrices from ``rand`` plus four real
datasets.  Real data is not redistributable here, so each dataset has a
*stand-in generator* matching its shape class, sparsity, and value skew
(scaled down by an explicit factor).  All evaluated effects depend on
those structural properties, not on semantic content:

* **Airline78** (14,462,943 x 29, dense, mixed low-cardinality columns)
  → :func:`airline_like`,
* **Mnist1m/8m/80m** (n x 784, sparsity 0.25, skewed pixel values)
  → :func:`mnist_like`,
* **Netflix** (480,189 x 17,770, sparsity 0.012, ratings 1-5)
  → :func:`netflix_like`,
* **Amazon books** (8,026,324 x 2,330,066, sparsity 1.2e-6)
  → :func:`amazon_like`.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.runtime.matrix import MatrixBlock


def rand_dense(rows: int, cols: int, seed: int = 0,
               low: float = 0.0, high: float = 1.0) -> MatrixBlock:
    """Uniform dense matrix (the paper's synthetic `rand` data)."""
    return MatrixBlock.rand(rows, cols, seed=seed, low=low, high=high)


def rand_sparse(rows: int, cols: int, sparsity: float = 0.1,
                seed: int = 0) -> MatrixBlock:
    """Uniform sparse matrix with the given density."""
    return MatrixBlock.rand(rows, cols, sparsity=sparsity, seed=seed,
                            low=0.1, high=1.0)


# ----------------------------------------------------------------------
# Supervised-learning data
# ----------------------------------------------------------------------
def classification_data(rows: int, cols: int, n_classes: int = 2,
                        seed: int = 0, sparsity: float = 1.0):
    """Features plus labels with class-dependent means.

    Binary problems return labels in {-1, +1} (L2SVM convention);
    multi-class problems return labels in {1, .., k}.
    """
    rng = np.random.default_rng(seed)
    true_w = rng.normal(size=(cols, max(1, n_classes - 1)))
    if sparsity >= 1.0:
        x_arr = rng.normal(size=(rows, cols))
        x = MatrixBlock(x_arr)
    else:
        x = MatrixBlock.rand(rows, cols, sparsity=sparsity, seed=seed,
                             low=0.1, high=1.0)
        x_arr = x.to_dense()
    scores = x_arr @ true_w
    if n_classes == 2:
        labels = np.where(scores[:, 0] + 0.1 * rng.normal(size=rows) > 0, 1.0, -1.0)
        return x, MatrixBlock(labels.reshape(-1, 1))
    full_scores = np.hstack([scores, np.zeros((rows, 1))])
    full_scores += 0.1 * rng.normal(size=full_scores.shape)
    labels = np.argmax(full_scores, axis=1) + 1.0
    return x, MatrixBlock(labels.reshape(-1, 1))


def one_hot(labels: MatrixBlock, n_classes: int) -> MatrixBlock:
    """Labels in {1..k} to an n x k indicator matrix."""
    idx = labels.to_dense().ravel().astype(int) - 1
    out = np.zeros((len(idx), n_classes))
    out[np.arange(len(idx)), idx] = 1.0
    return MatrixBlock(out)


def clustering_data(rows: int, cols: int, n_centers: int = 5,
                    seed: int = 0, spread: float = 0.3) -> MatrixBlock:
    """Gaussian blobs around random centers (KMeans workloads)."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-3.0, 3.0, size=(n_centers, cols))
    assignment = rng.integers(0, n_centers, size=rows)
    data = centers[assignment] + spread * rng.normal(size=(rows, cols))
    return MatrixBlock(data)


def factorization_data(rows: int, cols: int, rank: int = 10,
                       sparsity: float = 0.01, seed: int = 0) -> MatrixBlock:
    """A sparse matrix sampled from a noisy low-rank model (ALS)."""
    rng = np.random.default_rng(seed)
    u = rng.uniform(0.1, 1.0, size=(rows, rank))
    v = rng.uniform(0.1, 1.0, size=(cols, rank))
    nnz = int(round(sparsity * rows * cols))
    row_idx = rng.integers(0, rows, size=nnz)
    col_idx = rng.integers(0, cols, size=nnz)
    values = np.einsum("ij,ij->i", u[row_idx], v[col_idx])
    values += 0.05 * rng.normal(size=nnz)
    values[values <= 0] = 0.01
    mat = sp.csr_matrix((values, (row_idx, col_idx)), shape=(rows, cols))
    mat.sum_duplicates()
    return MatrixBlock(mat)


# ----------------------------------------------------------------------
# Real-dataset stand-ins
# ----------------------------------------------------------------------
def airline_like(rows: int = 144_629, seed: int = 0) -> MatrixBlock:
    """Airline78 stand-in: 29 dense columns, mostly low-cardinality.

    The original (years 2007/08 of the ASA airline dataset) mixes
    categorical codes (carriers, airports, days) with a few numeric
    columns — exactly the structure CLA compresses by ~7x (Figure 9).
    Default scale: 1/100 of the original rows.
    """
    rng = np.random.default_rng(seed)
    cols = []
    cardinalities = [12, 31, 7, 24, 20, 50, 100, 300, 300, 12, 7, 24,
                     20, 8, 4, 2, 2, 16, 12, 31, 7, 24, 7, 4, 2]
    for card in cardinalities:
        cols.append(rng.integers(0, card, size=rows).astype(np.float64))
    # A few skewed continuous columns (delays, distances).
    for scale in (15.0, 30.0, 700.0, 45.0):
        cols.append(np.round(rng.exponential(scale, size=rows)))
    return MatrixBlock(np.column_stack(cols))


def mnist_like(rows: int = 81_000, seed: int = 0) -> MatrixBlock:
    """Mnist stand-in: n x 784, sparsity 0.25, skewed stroke values.

    InfiMNIST-scaled data (Mnist1m/8m/80m in the paper) is ~25% dense
    with pixel intensities concentrated in a blob per row.  Default
    scale: 1/100 of Mnist8m.
    """
    rng = np.random.default_rng(seed)
    cols = 784
    nnz_per_row = int(cols * 0.25)
    row_idx = np.repeat(np.arange(rows), nnz_per_row)
    # Stroke-like locality: non-zeros cluster around a per-row center.
    centers = rng.integers(100, cols - 100, size=rows)
    offsets = rng.normal(0, 60, size=rows * nnz_per_row).astype(int)
    col_idx = np.clip(np.repeat(centers, nnz_per_row) + offsets, 0, cols - 1)
    values = np.round(rng.uniform(1, 255, size=rows * nnz_per_row))
    mat = sp.csr_matrix((values, (row_idx, col_idx)), shape=(rows, cols))
    mat.sum_duplicates()
    return MatrixBlock(mat)


def netflix_like(rows: int = 48_019, cols: int = 1_777, seed: int = 0) -> MatrixBlock:
    """Netflix stand-in: ratings 1-5, sparsity ~0.012, skewed items.

    Item popularity follows a Zipf-like law, so some columns are much
    denser than others (relevant for sparsity-exploiting operators).
    Default scale: 1/10 of the original in each dimension.
    """
    rng = np.random.default_rng(seed)
    nnz = int(0.012 * rows * cols)
    item_pop = rng.zipf(1.3, size=nnz * 2) % cols
    col_idx = item_pop[:nnz]
    row_idx = rng.integers(0, rows, size=nnz)
    values = rng.integers(1, 6, size=nnz).astype(np.float64)
    mat = sp.csr_matrix((values, (row_idx, col_idx)), shape=(rows, cols))
    mat.sum_duplicates()
    return MatrixBlock(mat)


def amazon_like(rows: int = 80_263, cols: int = 23_300, seed: int = 0) -> MatrixBlock:
    """Amazon-books stand-in: ultra-sparse (~1.2e-6 at original scale).

    At reproduction scale the density is kept low enough that rows and
    columns are mostly empty — the regime where only sparsity-exploiting
    plans are feasible (Table 5).  Default scale: 1/100 per dimension.
    """
    rng = np.random.default_rng(seed)
    nnz = int(6e-4 * rows * cols)
    col_idx = rng.zipf(1.2, size=nnz) % cols
    row_idx = rng.zipf(1.4, size=nnz) % rows
    values = rng.integers(1, 6, size=nnz).astype(np.float64)
    mat = sp.csr_matrix((values, (row_idx, col_idx)), shape=(rows, cols))
    mat.sum_duplicates()
    return MatrixBlock(mat)
