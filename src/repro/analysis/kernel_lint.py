"""AST lint over generated kernel sources before they are ``exec()``-ed.

The codegen backends emit Python source at runtime (``genexec`` bodies
from :mod:`repro.codegen.pygen`, ``genkernel`` bodies from
:mod:`repro.codegen.npgen`) and compile it through the plan cache's
``exec`` path.  This pass checks each emitted source against the
contract the templates are supposed to honor, *before* compilation:

* **Imports**: only the allowed generated-code surface
  (``repro.codegen.pygen.GENERATED_IMPORT_MODULES`` — numpy, scipy,
  and the runtime vector-primitive library).  No ``__import__``, no
  I/O, no introspection builtins.
* **Names**: every loaded global must be a parameter, a local
  assignment, an import alias, or an allowlisted builtin.
* **Determinism**: no ``random``/``time``/``datetime``/``uuid`` use —
  generated operators must be pure functions of their inputs (the
  differential harness depends on it).
* **Tier discipline**: vectorized-tier kernels (``kind="vectorized"``)
  must contain no Python-level loops (the whole point of the tier);
  CSR-main-safe Row kernels must not densify their sparse main input
  (no ``.toarray()``/``.todense()``, no ``np.asarray(a, ...)``).

Interpreted (``genexec``) and Numba sources keep their loops: the
inline-primitives mode and the jitted per-cell variants are loop-based
by design.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.errors import KernelLintError

#: Builtins generated code may reference by name.
ALLOWED_BUILTINS = frozenset({
    "abs", "bool", "enumerate", "float", "int", "len", "max", "min",
    "range", "repr", "round", "sum", "zip",
})

#: Call targets that are never acceptable in generated code.
FORBIDDEN_CALLS = frozenset({
    "__import__", "breakpoint", "compile", "delattr", "eval", "exec",
    "exit", "getattr", "globals", "input", "locals", "open", "print",
    "quit", "setattr", "vars",
})

#: Names / attribute accesses implying nondeterminism or wall-clock.
NONDETERMINISTIC = frozenset({
    "datetime", "perf_counter", "rand", "randint", "randn", "random",
    "secrets", "seed", "shuffle", "time", "urandom", "uuid",
})

#: Densifying accesses forbidden in CSR-main-safe Row kernels.
DENSIFYING_ATTRS = frozenset({"toarray", "todense"})
DENSIFYING_CALLS = frozenset({
    "array", "asarray", "ascontiguousarray", "asfortranarray",
})

_LOOP_NODES = (ast.For, ast.AsyncFor, ast.While)


@dataclass
class LintFinding:
    """One violation of the generated-code contract."""

    name: str  # operator / kernel name
    rule: str
    message: str
    line: int = 0

    def __str__(self) -> str:
        return f"{self.name}:{self.line}: [{self.rule}] {self.message}"


def _allowed_import(module: str, allowed_modules: tuple) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in allowed_modules
    )


def _collect_bound_names(tree: ast.Module) -> set:
    """Every name the module binds: imports, assignments, defs, params,
    loop and comprehension targets."""
    bound: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            bound.add(node.name)
            args = node.args
            for arg in (args.posonlyargs + args.args + args.kwonlyargs):
                bound.add(arg.arg)
            if args.vararg:
                bound.add(args.vararg.arg)
            if args.kwarg:
                bound.add(args.kwarg.arg)
        elif isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            bound.add(node.id)
    return bound


def lint_source(name: str, source: str, kind: str = "interpreted",
                csr_main_safe: bool = False) -> list[LintFinding]:
    """Lint one generated source; returns all findings (empty = clean).

    ``kind`` is ``"interpreted"`` (pygen ``genexec``), ``"vectorized"``
    (npgen ``genkernel``), or ``"numba"`` (the jitted loop variant).
    """
    from repro.codegen.pygen import GENERATED_IMPORT_MODULES

    findings: list[LintFinding] = []

    def flag(rule: str, message: str, node: ast.AST) -> None:
        findings.append(
            LintFinding(name, rule, message, getattr(node, "lineno", 0))
        )

    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [LintFinding(name, "syntax", str(exc), exc.lineno or 0)]

    bound = _collect_bound_names(tree)
    allowed_names = bound | ALLOWED_BUILTINS

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if not _allowed_import(alias.name, GENERATED_IMPORT_MODULES):
                    flag("import", f"import of '{alias.name}' not allowed",
                         node)
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if node.level or not _allowed_import(
                module, GENERATED_IMPORT_MODULES
            ):
                flag("import", f"import from '{module}' not allowed", node)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id in FORBIDDEN_CALLS:
                flag("forbidden-call",
                     f"use of forbidden builtin '{node.id}'", node)
            elif node.id in NONDETERMINISTIC:
                flag("nondeterminism",
                     f"nondeterministic name '{node.id}'", node)
            elif node.id not in allowed_names:
                flag("unknown-name",
                     f"load of unbound name '{node.id}'", node)
        elif isinstance(node, ast.Attribute):
            if node.attr in NONDETERMINISTIC:
                flag("nondeterminism",
                     f"nondeterministic attribute '.{node.attr}'", node)
            elif csr_main_safe and node.attr in DENSIFYING_ATTRS:
                flag("densification",
                     f"'.{node.attr}()' densifies the CSR main input",
                     node)
        elif isinstance(node, _LOOP_NODES):
            if kind == "vectorized":
                flag("python-loop",
                     "Python-level loop in a vectorized-tier kernel", node)
        elif isinstance(node, ast.Call) and csr_main_safe:
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in DENSIFYING_CALLS
                and node.args
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id == "a"
            ):
                flag("densification",
                     f"'np.{func.attr}(a, ...)' densifies the CSR main "
                     "input", node)
    return findings


def check_source(name: str, source: str, kind: str = "interpreted",
                 csr_main_safe: bool = False, stats=None) -> None:
    """Lint and raise :class:`KernelLintError` on any finding.

    Records one ``n_lint_rejects`` per rejected source when ``stats``
    is provided.
    """
    findings = lint_source(name, source, kind=kind,
                           csr_main_safe=csr_main_safe)
    if not findings:
        return
    if stats is not None:
        with stats.lock:
            stats.n_lint_rejects += 1
    details = "\n  ".join(str(f) for f in findings)
    raise KernelLintError(
        f"generated source '{name}' ({kind}) failed lint with "
        f"{len(findings)} finding(s):\n  {details}"
    )


__all__ = [
    "ALLOWED_BUILTINS",
    "FORBIDDEN_CALLS",
    "LintFinding",
    "check_source",
    "lint_source",
]
