"""IR verifier: HOP DAG and lowered ``Program`` invariant checking.

The compiler's correctness rests on invariants the test suite only
samples: dims stay consistent through rewrites and codegen splicing,
fused operators exactly cover the hops they replace, and the
refcounted eager-freeing executor never reads a freed slot.  This
module checks those invariants explicitly, at pipeline stage
boundaries, behind ``CodegenConfig.verify_level``:

``verify_dag``
    * acyclicity (via :func:`~repro.hops.hop.topological_order`),
    * parent/input link symmetry with edge multiplicity,
    * dims consistency per op semantics: each hop's stored ``rows`` /
      ``cols`` must equal what ``refresh_sizes()`` recomputes from its
      inputs (the snapshot is restored afterwards, so verification
      never mutates the DAG).  nnz *estimates* are checked for range
      only (``-1`` or ``0..cells``): rewires legitimately leave
      downstream estimates stale-but-bounded, and estimate exactness
      is re-established by adaptive recompilation, not by rewrites,
    * exec-type legality: no SPARK placement without a cluster, and
      never on leaves,
    * fused-operator coverage: ``SpoofOp.covered_roots`` non-empty and
      disjoint across the spoofs of one DAG, extraction indices in
      range, multi-aggregate output shape ``k x 1``.

``verify_program``
    * slot discipline: every read slot defined (constant or earlier
      write) before use, single assignment, no writes to constants,
    * declared ``consumer_counts`` equal the actual per-slot reads,
    * static use-after-free: simulating the executor's eager freeing
      with the *declared* counts never reads a freed slot,
    * dependency edges match the producers of the input slots (and
      their inverse ``dependent_indices``),
    * collect boundaries at every exec-type transition and at blocked
      program roots (distributed programs only),
    * recompile-marker discipline: ``spoof_out`` never marked, checked
      slots observed, ``recompile_segments()`` contiguously covering
      the instruction range — so spliced remainder programs re-enter
      the same checks through the pipeline on adaptive recompile.

:func:`check_dag` / :func:`check_program` are the raising wrappers the
pipeline calls: findings increment ``RuntimeStats.n_verifier_findings``
and abort the compile with :class:`~repro.errors.VerificationError`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.compiler.program import (
    Program,
    _consumes_blocked_values,
    _emits_blocked_value,
)
from repro.errors import CompileError, VerificationError
from repro.hops.hop import (
    DataOp,
    Hop,
    LiteralOp,
    SpoofOp,
    SpoofOutOp,
    topological_order,
)
from repro.hops.types import ExecType, OpKind


@dataclass
class Finding:
    """One violated invariant, anchored to a hop or instruction."""

    code: str  # short rule id, e.g. "dims-mismatch", "use-after-free"
    subject: str  # "hop 17 b(*)" or "instruction [3] hop(b(+))"
    message: str
    stage: str = ""

    def __str__(self) -> str:
        where = f" at {self.stage}" if self.stage else ""
        return f"[{self.code}]{where} {self.subject}: {self.message}"


def format_report(findings: list) -> str:
    """Human-readable multi-line report of a findings list."""
    if not findings:
        return "verification clean (0 findings)"
    lines = [f"{len(findings)} finding(s):"]
    lines.extend(f"  {finding}" for finding in findings)
    return "\n".join(lines)


def _hop_label(hop: Hop) -> str:
    return f"hop {hop.id} {hop.opcode()}"


def _instr_label(instr) -> str:
    return f"instruction [{instr.index}] {instr.opcode}({instr.hop.opcode()})"


# ----------------------------------------------------------------------
# HOP DAG verification
# ----------------------------------------------------------------------
def verify_dag(roots: list[Hop], cluster: bool = False,
               stage: str = "") -> list[Finding]:
    """Verify a multi-root HOP DAG; returns all findings (empty = ok)."""
    findings: list[Finding] = []

    def flag(code: str, hop: Hop, message: str) -> None:
        findings.append(Finding(code, _hop_label(hop), message, stage))

    try:
        order = topological_order(roots)
    except CompileError as exc:
        return [Finding("dag-cycle", "dag", str(exc), stage)]

    claimed: dict[int, SpoofOp] = {}  # covered-root hop id -> claiming spoof
    for hop in order:
        _check_links(hop, flag)
        _check_dims(hop, flag)
        _check_exec_type(hop, cluster, flag)
        if isinstance(hop, SpoofOp):
            _check_spoof(hop, claimed, flag)
        elif isinstance(hop, SpoofOutOp):
            spoof = hop.inputs[0] if hop.inputs else None
            if not isinstance(spoof, SpoofOp):
                flag("coverage", hop, "extractor input is not a SpoofOp")
            elif not 0 <= hop.index < len(spoof.covered_roots):
                flag(
                    "coverage", hop,
                    f"extraction index {hop.index} outside the operator's "
                    f"{len(spoof.covered_roots)} covered root(s)",
                )
    return findings


def _check_links(hop: Hop, flag) -> None:
    """Each input edge must have a matching parent edge (multiplicity)."""
    need = Counter(id(child) for child in hop.inputs)
    seen: set[int] = set()
    for child in hop.inputs:
        if id(child) in seen:
            continue
        seen.add(id(child))
        got = sum(1 for parent in child.parents if parent is hop)
        if got < need[id(child)]:
            flag(
                "broken-link", hop,
                f"input {_hop_label(child)} holds {got} parent link(s) "
                f"back, expected {need[id(child)]}",
            )


def _check_dims(hop: Hop, flag) -> None:
    """Stored dims must match a recompute from the inputs; nnz bounded.

    ``refresh_sizes`` is deterministic in the inputs, so snapshotting,
    refreshing, comparing, and restoring checks the op's own shape
    semantics without duplicating them here.  ``SpoofOp`` is handled
    structurally instead: its refresh restores construction-time state
    that the optimizer deliberately overrides for multi-aggregate
    operators (``k x 1`` stacked output).
    """
    if isinstance(hop, SpoofOp):
        if len(hop.covered_roots) > 1:
            expected = (len(hop.covered_roots), 1)
            if (hop.rows, hop.cols) != expected:
                flag(
                    "dims-mismatch", hop,
                    f"multi-aggregate operator is {hop.rows}x{hop.cols}, "
                    f"expected {expected[0]}x{expected[1]}",
                )
        elif hop.covered_roots and hop.dims != hop.covered_roots[0].dims:
            flag(
                "dims-mismatch", hop,
                f"operator is {hop.rows}x{hop.cols} but its covered root "
                f"is {hop.covered_roots[0].rows}x{hop.covered_roots[0].cols}",
            )
        return
    snapshot = (hop.rows, hop.cols, hop.nnz)
    try:
        hop.refresh_sizes()
        if (hop.rows, hop.cols) != snapshot[:2]:
            flag(
                "dims-mismatch", hop,
                f"stored dims {snapshot[0]}x{snapshot[1]} but op semantics "
                f"give {hop.rows}x{hop.cols}",
            )
    except Exception as exc:  # ShapeError from an illegal rewrite
        flag("illegal-op", hop, f"refresh_sizes failed: {exc}")
    finally:
        hop.rows, hop.cols, hop.nnz = snapshot
    if hop.nnz != -1 and not 0 <= hop.nnz <= hop.cells:
        flag(
            "nnz-range", hop,
            f"nnz estimate {hop.nnz} outside [0, {hop.cells}]",
        )


def _check_exec_type(hop: Hop, cluster: bool, flag) -> None:
    if hop.exec_type is not ExecType.SPARK:
        return
    if not cluster:
        flag("exec-type", hop, "SPARK placement without a cluster config")
    elif hop.kind in (OpKind.DATA, OpKind.LITERAL):
        flag("exec-type", hop, "leaf placed on SPARK (leaves are CP)")


def _check_spoof(hop: SpoofOp, claimed: dict, flag) -> None:
    if not hop.covered_roots:
        flag("coverage", hop, "fused operator covers no roots")
        return
    for covered in hop.covered_roots:
        other = claimed.get(covered.id)
        if other is not None and other is not hop:
            flag(
                "coverage", hop,
                f"covered root {_hop_label(covered)} already claimed by "
                f"{_hop_label(other)} (partitions must be disjoint)",
            )
        else:
            claimed[covered.id] = hop


# ----------------------------------------------------------------------
# Program verification
# ----------------------------------------------------------------------
def verify_program(program: Program, stage: str = "") -> list[Finding]:
    """Verify a lowered program; returns all findings (empty = ok)."""
    findings: list[Finding] = []

    def flag(code: str, subject: str, message: str) -> None:
        findings.append(Finding(code, subject, message, stage))

    n_slots = program.n_slots
    constant_slots = {slot for slot, _ in program.constants}
    if len(constant_slots) != len(program.constants):
        flag("slot-discipline", "constants",
             "duplicate constant slot assignment")

    def slot_ok(slot: int, subject: str, role: str) -> bool:
        if 0 <= slot < n_slots:
            return True
        flag("slot-range", subject,
             f"{role} slot {slot} outside [0, {n_slots})")
        return False

    if len(program.consumer_counts) != n_slots:
        flag(
            "refcount-mismatch", "program",
            f"consumer_counts has {len(program.consumer_counts)} entries "
            f"for {n_slots} slots",
        )
        return findings  # the simulation below needs aligned counts

    defined = set(constant_slots)
    producer: dict[int, int] = {}
    actual_reads = [0] * n_slots
    live_counts = list(program.consumer_counts)
    pinned = program.pinned

    for position, instr in enumerate(program.instructions):
        subject = _instr_label(instr)
        if instr.index != position:
            flag("instruction-order", subject,
                 f"index {instr.index} at list position {position}")
        for slot in instr.input_slots:
            if not slot_ok(slot, subject, "input"):
                continue
            if slot not in defined:
                flag("use-before-def", subject,
                     f"reads slot {slot} before any definition")
            elif live_counts[slot] <= 0 and slot not in pinned:
                flag(
                    "use-after-free", subject,
                    f"reads slot {slot} after its declared last consumer "
                    "(eager freeing would have dropped it)",
                )
            actual_reads[slot] += 1
            live_counts[slot] -= 1
        if slot_ok(instr.output_slot, subject, "output"):
            if instr.output_slot in constant_slots:
                flag("slot-discipline", subject,
                     f"writes constant slot {instr.output_slot}")
            elif instr.output_slot in defined:
                flag("slot-discipline", subject,
                     f"second write to slot {instr.output_slot}")
            defined.add(instr.output_slot)
            producer[instr.output_slot] = instr.index

    _check_dep_edges(program, producer, flag)
    _check_refcounts(program, actual_reads, producer, flag)

    for slot in program.root_slots:
        if slot_ok(slot, "roots", "root") and slot not in defined:
            flag("use-before-def", "roots", f"root slot {slot} never defined")
    expected_pinned = constant_slots | set(program.root_slots)
    missing_pins = expected_pinned - pinned
    if missing_pins:
        flag(
            "pin-missing", "program",
            f"slots {sorted(missing_pins)} (constants/roots) are not "
            "pinned against eager freeing",
        )

    if getattr(program, "distributed", False):
        _check_collect_boundaries(program, flag)
    _check_recompile_markers(program, flag)
    return findings


def _check_dep_edges(program: Program, producer: dict, flag) -> None:
    dependents: dict[int, set] = {
        instr.index: set() for instr in program.instructions
    }
    for instr in program.instructions:
        subject = _instr_label(instr)
        expected = {
            producer[slot] for slot in instr.input_slots
            if slot in producer
        }
        declared = set(instr.dep_indices)
        if declared != expected:
            flag(
                "dep-edges", subject,
                f"dep_indices {sorted(declared)} != producers "
                f"{sorted(expected)} of its input slots",
            )
        for dep in declared:
            if dep >= instr.index:
                flag("dep-edges", subject,
                     f"dependency {dep} does not precede the instruction")
            if dep in dependents:
                dependents[dep].add(instr.index)
    for instr in program.instructions:
        declared = set(instr.dependent_indices)
        if declared != dependents[instr.index]:
            flag(
                "dep-edges", _instr_label(instr),
                f"dependent_indices {sorted(declared)} != consumers "
                f"{sorted(dependents[instr.index])}",
            )


def _check_refcounts(program: Program, actual_reads: list, producer: dict,
                     flag) -> None:
    for slot, declared in enumerate(program.consumer_counts):
        if declared == actual_reads[slot]:
            continue
        index = producer.get(slot)
        subject = (
            _instr_label(program.instructions[index])
            if index is not None else f"constant slot {slot}"
        )
        flag(
            "refcount-mismatch", subject,
            f"slot {slot} declares {declared} consumer(s) but "
            f"{actual_reads[slot]} instruction read(s) exist",
        )


def _check_collect_boundaries(program: Program, flag) -> None:
    """Every blocked (SPARK-produced) slot read by a CP consumer or
    exposed as a root must pass through a ``collect`` instruction."""
    blocked = {
        instr.output_slot for instr in program.instructions
        if _emits_blocked_value(instr)
    }
    if not blocked:
        return
    for instr in program.instructions:
        if instr.opcode == "collect" or _consumes_blocked_values(instr):
            continue
        for slot in instr.input_slots:
            if slot in blocked:
                flag(
                    "missing-collect", _instr_label(instr),
                    f"CP consumer reads blocked slot {slot} without a "
                    "collect boundary",
                )
    for slot in program.root_slots:
        if slot in blocked:
            flag(
                "missing-collect", "roots",
                f"root slot {slot} stays blocked (no collect before the "
                "program boundary)",
            )


def _check_recompile_markers(program: Program, flag) -> None:
    any_marked = False
    for instr in program.instructions:
        if not instr.meta_checks:
            continue
        any_marked = True
        subject = _instr_label(instr)
        if instr.opcode == "spoof_out":
            flag("recompile-markers", subject,
                 "extractor carries meta checks (must stay glued to its "
                 "operator)")
        for slot, estimate, cells in instr.meta_checks:
            if not 0 <= slot < program.n_slots:
                flag("recompile-markers", subject,
                     f"meta check on out-of-range slot {slot}")
                continue
            if estimate < 0 or cells < 0:
                flag("recompile-markers", subject,
                     f"negative meta-check estimate for slot {slot}")
            if slot not in program.observe_slots:
                flag(
                    "recompile-markers", subject,
                    f"checked slot {slot} missing from observe_slots "
                    "(nnz would never be recorded)",
                )
    if program.has_recompile_markers != any_marked:
        flag(
            "recompile-markers", "program",
            f"has_recompile_markers={program.has_recompile_markers} but "
            f"marked instructions {'exist' if any_marked else 'are absent'}",
        )
    segments = program.recompile_segments()
    expected_start = 0
    for start, end in segments:
        if start != expected_start or end <= start:
            flag(
                "recompile-markers", "program",
                f"segment ({start}, {end}) breaks contiguous coverage at "
                f"{expected_start}",
            )
            break
        expected_start = end
    if segments and expected_start != program.n_instructions:
        flag(
            "recompile-markers", "program",
            f"segments cover [0, {expected_start}) of "
            f"{program.n_instructions} instructions",
        )


# ----------------------------------------------------------------------
# Raising wrappers (pipeline integration)
# ----------------------------------------------------------------------
def _raise_on_findings(findings: list, stats, what: str) -> None:
    if not findings:
        return
    if stats is not None:
        with stats.lock:
            stats.n_verifier_findings += len(findings)
    raise VerificationError(f"{what} failed verification: "
                            f"{format_report(findings)}")


def check_dag(roots: list[Hop], ctx, stage: str) -> None:
    """Verify a DAG inside the pipeline; raises on any finding."""
    findings = verify_dag(
        roots, cluster=ctx.config.cluster is not None, stage=stage
    )
    _raise_on_findings(findings, ctx.stats, f"HOP DAG ({stage})")


def check_program(program: Program, ctx, stage: str) -> None:
    """Verify a lowered program inside the pipeline; raises on findings."""
    findings = verify_program(program, stage=stage)
    _raise_on_findings(findings, ctx.stats, f"program ({stage})")


__all__ = [
    "Finding",
    "check_dag",
    "check_program",
    "format_report",
    "verify_dag",
    "verify_program",
]
