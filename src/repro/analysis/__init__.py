"""Static analysis subsystem: IR verifier, kernel lint, lockset detector.

Three passes, wired behind ``CodegenConfig.verify_level`` (``off`` /
``boundaries`` / ``full``) and ``CodegenConfig.lockset_debug``:

* :mod:`repro.analysis.verify` — structural + semantic validation of
  HOP DAGs and lowered :class:`~repro.compiler.program.Program` values
  at pipeline stage boundaries,
* :mod:`repro.analysis.kernel_lint` — an AST pass over every generated
  ``genexec``/``genkernel`` source before it is ``exec()``-ed,
* :mod:`repro.analysis.lockset` — Eraser-style lockset race detection
  over the shared mutable runtime structures.

This ``__init__`` stays import-light on purpose: ``runtime.stats``
imports :mod:`repro.analysis.lockset` (stdlib-only), and pulling
:mod:`repro.analysis.verify` here would close an import cycle through
the compiler packages.
"""

__all__ = ["kernel_lint", "lockset", "verify"]
