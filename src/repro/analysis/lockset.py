"""Eraser-style lockset race detection over shared runtime structures.

The runtime's thread-safety story is a set of *conventions*: the plan
cache guards its tables with ``PlanCache._lock``, shared stats mutate
under ``RuntimeStats.lock``, the thread budget's token count lives
under ``ThreadBudget._lock``, and the simulated Spark lineage cache is
only touched while an executor run holds its Spark run lock.  This
module turns those conventions into a *checkable protocol* (in the
spirit of Savage et al.'s Eraser): instrumented code paths report each
access to a shared field together with the set of tracked locks the
accessing thread holds, and the checker maintains the running
intersection of those lock sets per field.  A field whose intersection
goes empty has no single lock consistently protecting it — a data race
candidate — and is reported exactly once.

Simplifications relative to full Eraser, chosen for a debug tool:

* every access is treated as a write (the instrumented structures are
  mutated on essentially every touch),
* a field stays in the *exclusive* state while only one thread has
  accessed it; the candidate set is initialized from the second
  thread's held locks (no read-shared refinement),
* only locks created through :func:`make_lock` / :func:`make_rlock`
  participate; they are tracked by object identity, so two executors'
  same-named locks never alias,
* the checker pins every tracked object alive for the debug window:
  fields key on ``id(obj)``, and without the pin a per-run structure
  (``RuntimeMetadata``, run-local stats) could be collected and its id
  recycled by a later run on another thread, corrupting that field's
  ownership state.  Memory grows with the number of distinct objects
  touched while enabled — fine for a debug session,
* threads are identified by ``threading.get_ident``, which the
  interpreter may reuse after a thread exits — the detector targets
  workloads whose threads overlap in time (pools, serving), where
  idents are necessarily distinct.

Usage::

    with lockset_debug() as checker:
        ... concurrent workload ...
    assert checker.reports == []

The wrappers always exist (module globals like the process-wide thread
budget are created long before any checker is enabled); when no checker
is active, instrumentation costs one attribute load and a ``None``
check per operation.  This module must stay stdlib-only —
``runtime.stats`` imports it at module load.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

_ACTIVE: "LocksetChecker | None" = None
_ACTIVE_LOCK = threading.Lock()
_TLS = threading.local()


def _held() -> dict:
    """This thread's held tracked locks (lock object -> acquire count)."""
    held = getattr(_TLS, "held", None)
    if held is None:
        held = {}
        _TLS.held = held
    return held


class TrackedLock:
    """A ``threading.Lock``/``RLock`` recording per-thread held sets.

    Drop-in for the plain lock in ``with``-statements and explicit
    acquire/release pairs.  The held-set bookkeeping runs on every
    acquire/release (an enable mid-critical-section must still see a
    consistent set); it is two dict operations against a thread-local.
    """

    __slots__ = ("name", "_lock")

    def __init__(self, name: str, reentrant: bool = False):
        self.name = name
        self._lock = threading.RLock() if reentrant else threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            held = _held()
            held[self] = held.get(self, 0) + 1
        return acquired

    def release(self) -> None:
        held = _held()
        count = held.get(self, 0)
        if count <= 1:
            held.pop(self, None)
        else:
            held[self] = count - 1
        self._lock.release()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"TrackedLock({self.name!r})"


def make_lock(name: str) -> TrackedLock:
    """A tracked mutual-exclusion lock (``threading.Lock`` semantics)."""
    return TrackedLock(name)


def make_rlock(name: str) -> TrackedLock:
    """A tracked reentrant lock (``threading.RLock`` semantics)."""
    return TrackedLock(name, reentrant=True)


@dataclass
class LocksetReport:
    """One field whose candidate lockset intersection went empty."""

    struct: str
    field: str
    thread: str  # name of the thread whose access emptied the set
    detail: str = ""

    def __str__(self) -> str:
        note = f" ({self.detail})" if self.detail else ""
        return (
            f"lockset: {self.struct}.{self.field} accessed with no "
            f"consistently held lock (thread {self.thread}){note}"
        )


@dataclass
class LocksetChecker:
    """Running per-field lockset intersections plus emitted reports."""

    stats: object = None  # optional RuntimeStats sink
    reports: list = field(default_factory=list)

    def __post_init__(self):
        self._lock = threading.Lock()
        # key -> [owner thread id, candidate lock set | None, reported,
        #         pinned object reference]
        self._fields: dict = {}

    def note(self, struct: str, obj, field_name: str,
             lockset: frozenset) -> None:
        key = (struct, id(obj), field_name)
        tid = threading.get_ident()
        report = None
        with self._lock:
            entry = self._fields.get(key)
            if entry is None:
                # Pinning obj keeps the id stable for the key's lifetime.
                self._fields[key] = [tid, None, False, obj]
                return
            candidates = entry[1]
            if candidates is None:
                if entry[0] == tid:
                    return  # exclusive: still single-threaded
                candidates = set(lockset)
                entry[1] = candidates
            else:
                candidates.intersection_update(lockset)
            if not candidates and not entry[2]:
                entry[2] = True
                report = LocksetReport(
                    struct=struct,
                    field=field_name,
                    thread=threading.current_thread().name,
                )
                self.reports.append(report)
        if report is not None and self.stats is not None:
            with self.stats.lock:
                self.stats.n_lockset_reports += 1

    def summary(self) -> dict:
        with self._lock:
            return {
                "n_fields_tracked": len(self._fields),
                "n_reports": len(self.reports),
                "reports": [str(r) for r in self.reports],
            }


def active() -> LocksetChecker | None:
    """The currently enabled checker, if any."""
    return _ACTIVE


def note_access(struct: str, obj, field_name: str) -> None:
    """Record one access to ``obj``'s ``field_name`` by this thread.

    No-op unless a checker is enabled.  Call while holding whatever
    locks the code path claims protect the field — the held set is
    sampled here.
    """
    checker = _ACTIVE
    if checker is None:
        return
    checker.note(struct, obj, field_name, frozenset(_held()))


def enable(stats=None) -> LocksetChecker:
    """Enable lockset checking process-wide (idempotent).

    Returns the active checker; a checker already enabled by someone
    else is reused (its stats sink is kept).
    """
    global _ACTIVE
    with _ACTIVE_LOCK:
        if _ACTIVE is None:
            _ACTIVE = LocksetChecker(stats=stats)
        return _ACTIVE


def disable() -> LocksetChecker | None:
    """Disable checking; returns the checker with its final reports."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        checker, _ACTIVE = _ACTIVE, None
        return checker


@contextmanager
def lockset_debug(stats=None):
    """Enable the checker for a ``with`` block; always disables after."""
    checker = enable(stats=stats)
    try:
        yield checker
    finally:
        disable()


__all__ = [
    "LocksetChecker",
    "LocksetReport",
    "TrackedLock",
    "active",
    "disable",
    "enable",
    "lockset_debug",
    "make_lock",
    "make_rlock",
    "note_access",
]
