"""repro: reproduction of SystemML's cost-based operator-fusion optimizer.

Boehm et al., "On Optimizing Operator Fusion Plans for Large-Scale
Machine Learning in SystemML", VLDB 2018.

Public entry points:

* :mod:`repro.api` -- lazy linear-algebra expressions building HOP DAGs,
* :class:`repro.compiler.execution.Engine` -- execution engines
  (``base``, ``fused``, ``gen``, ``gen-fa``, ``gen-fnr``),
* :mod:`repro.algorithms` -- the six ML algorithms of the evaluation,
* :mod:`repro.data.generators` -- synthetic datasets and stand-ins,
* :mod:`repro.serve` -- prepared programs with shape-specialized plan
  reuse and a concurrent request scheduler.
"""

from repro.config import CodegenConfig, ClusterConfig, DEFAULT_CONFIG
from repro.runtime.matrix import MatrixBlock

__version__ = "0.1.0"

__all__ = [
    "CodegenConfig",
    "ClusterConfig",
    "DEFAULT_CONFIG",
    "MatrixBlock",
    "__version__",
]
