"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ShapeError(ReproError):
    """Operands have incompatible shapes."""


class CompileError(ReproError):
    """HOP DAG construction or rewriting failed."""


class LanguageError(ReproError):
    """Script parsing or validation failed."""


class CodegenError(ReproError):
    """Template exploration, plan selection, or code generation failed."""


class RuntimeExecError(ReproError):
    """Runtime execution of a plan failed."""
