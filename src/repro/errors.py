"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ShapeError(ReproError):
    """Operands have incompatible shapes."""


class CompileError(ReproError):
    """HOP DAG construction or rewriting failed."""


class VerificationError(CompileError):
    """The IR verifier found an invariant violation (analysis/verify)."""


class LanguageError(ReproError):
    """Script parsing or validation failed."""


class CodegenError(ReproError):
    """Template exploration, plan selection, or code generation failed."""


class KernelLintError(CodegenError):
    """A generated source violated the kernel contract (analysis lint)."""


class RuntimeExecError(ReproError):
    """Runtime execution of a plan failed."""


class ServingError(ReproError):
    """Preparing, binding, or scheduling a served program failed."""


class UnbatchableProgramError(ServingError):
    """A prepared program's outputs can never be split per request.

    A *structural* property of the program (not of one request), so
    schedulers may stop attempting micro-batching for it permanently.
    """
