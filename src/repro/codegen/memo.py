"""The memoization table of partial fusion plans (Section 3.1).

The memo table consists of *groups* — one per HOP that is amenable to
fusion — each holding a set of memo entries.  An entry
``(type, [i1..ik], closed)`` records a partial fusion plan: per input
either a group reference (fuse) or ``-1`` (materialized intermediate).
A reference from an entry to a group implies the group contains at
least one compatible plan; alternative subplans are never expanded,
which keeps the table linear in the DAG size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codegen.template import CloseType, MERGE_COMPATIBILITY, TemplateType
from repro.hops.hop import Hop


@dataclass(frozen=True)
class MemoEntry:
    """A partial fusion plan: template type, input refs, close status."""

    ttype: TemplateType
    refs: tuple[int, ...]
    status: CloseType = CloseType.OPEN_VALID

    @property
    def n_refs(self) -> int:
        return sum(1 for r in self.refs if r != -1)

    def ref_ids(self) -> list[int]:
        return [r for r in self.refs if r != -1]

    def with_status(self, status: CloseType) -> "MemoEntry":
        return MemoEntry(self.ttype, self.refs, status)

    def __repr__(self) -> str:
        body = ",".join(str(r) for r in self.refs)
        flag = {
            CloseType.OPEN_VALID: "",
            CloseType.OPEN_INVALID: "!",
            CloseType.CLOSED_VALID: "#",
            CloseType.CLOSED_INVALID: "#!",
        }[self.status]
        return f"{self.ttype.value[0]}({body}){flag}"


class MemoTable:
    """Groups of partial fusion plans, keyed by HOP id."""

    def __init__(self):
        self._groups: dict[int, list[MemoEntry]] = {}
        self._hops: dict[int, Hop] = {}
        self._processed: set[int] = set()

    # ------------------------------------------------------------------
    # Group access
    # ------------------------------------------------------------------
    def contains(self, hop_id: int) -> bool:
        return hop_id in self._groups

    def get(self, hop_id: int) -> list[MemoEntry]:
        return self._groups.get(hop_id, [])

    def hop(self, hop_id: int) -> Hop:
        return self._hops[hop_id]

    def group_ids(self) -> list[int]:
        return list(self._groups.keys())

    def add(self, hop: Hop, entries) -> None:
        if not entries:
            return
        group = self._groups.setdefault(hop.id, [])
        self._hops[hop.id] = hop
        seen = {(e.ttype, e.refs) for e in group}
        for entry in entries:
            key = (entry.ttype, entry.refs)
            if key not in seen:
                seen.add(key)
                group.append(entry)

    def remove(self, hop_id: int, entry: MemoEntry) -> None:
        group = self._groups.get(hop_id, [])
        self._groups[hop_id] = [e for e in group if e is not entry]

    def replace(self, hop_id: int, entries: list[MemoEntry]) -> None:
        if entries:
            self._groups[hop_id] = entries
        else:
            self._groups.pop(hop_id, None)

    # ------------------------------------------------------------------
    # Bookkeeping for the exploration pass
    # ------------------------------------------------------------------
    def mark_processed(self, hop: Hop) -> None:
        self._processed.add(hop.id)
        if hop.id in self._groups:
            self._hops[hop.id] = hop

    def is_processed(self, hop_id: int) -> bool:
        return hop_id in self._processed

    # ------------------------------------------------------------------
    # Queries used by templates, costing, and construction
    # ------------------------------------------------------------------
    def distinct_types(self, hop_id: int) -> list[TemplateType]:
        """Distinct template types with any non-closed-invalid plans."""
        types: list[TemplateType] = []
        for entry in self.get(hop_id):
            if entry.status is CloseType.CLOSED_INVALID:
                continue
            if entry.ttype not in types:
                types.append(entry.ttype)
        return types

    def extendable_types(self, hop_id: int) -> list[TemplateType]:
        """Template types with *open* plans — only those can be expanded
        to a consumer by fusion (closed operators are terminal)."""
        types: list[TemplateType] = []
        for entry in self.get(hop_id):
            if entry.status.is_closed:
                continue
            if entry.ttype not in types:
                types.append(entry.ttype)
        return types

    def can_absorb(self, parent_ttype: TemplateType, entry: MemoEntry,
                   child_hop: Hop) -> bool:
        """May a ``parent_ttype`` operator absorb this child plan?

        Open-invalid plans are absorbable (invalid only as entry
        points).  Closed plans are terminal operators, with one
        exception: a Row operator absorbs row-wise-aggregation Cell
        plans (rowSums of a fused intermediate is row-local).
        """
        from repro.hops.hop import AggUnaryOp
        from repro.hops.types import AggDir

        if entry.ttype not in MERGE_COMPATIBILITY[parent_ttype]:
            return False
        if entry.status is CloseType.CLOSED_INVALID:
            return False
        if not entry.status.is_closed:
            return True
        if parent_ttype is TemplateType.ROW and entry.ttype is TemplateType.CELL:
            return (
                isinstance(child_hop, AggUnaryOp)
                and child_hop.direction is AggDir.ROW
            )
        return False

    def has_compatible_plan(self, hop_id: int, ttype: TemplateType) -> bool:
        """Does the group contain a plan a ``ttype`` operator may absorb?"""
        if hop_id not in self._hops:
            return any(True for _ in self.get(hop_id))
        child = self._hops[hop_id]
        return any(self.can_absorb(ttype, e, child) for e in self.get(hop_id))

    def compatible_entries(self, hop_id: int, ttype: TemplateType) -> list[MemoEntry]:
        child = self._hops.get(hop_id)
        if child is None:
            return []
        return [e for e in self.get(hop_id) if self.can_absorb(ttype, e, child)]

    def root_entries(self, hop_id: int) -> list[MemoEntry]:
        """Entries usable as the root operation of a fused operator
        (open-invalid entries are invalid entry points)."""
        return [
            e
            for e in self.get(hop_id)
            if e.status in (CloseType.OPEN_VALID, CloseType.CLOSED_VALID)
        ]

    # ------------------------------------------------------------------
    # Pruning (Section 3.2)
    # ------------------------------------------------------------------
    def prune_redundant(self, hop: Hop) -> None:
        """Basic pruning: closed-invalid entries, duplicates, and valid
        closed entries without group references (single-op covers)."""
        kept: list[MemoEntry] = []
        seen: set = set()
        for entry in self.get(hop.id):
            if entry.status is CloseType.CLOSED_INVALID:
                continue
            if entry.status is CloseType.CLOSED_VALID and entry.n_refs == 0:
                continue
            key = (entry.ttype, entry.refs)
            if key in seen:
                continue
            seen.add(key)
            kept.append(entry)
        self.replace(hop.id, kept)

    def prune_dominated(self, hop: Hop) -> None:
        """Dominance pruning, sound only for heuristic selection
        policies that consider materialization points with multiple
        consumers (Section 3.2)."""
        group = self.get(hop.id)
        kept: list[MemoEntry] = []
        for entry in group:
            dominated = False
            entry_refs = set(entry.ref_ids())
            for other in group:
                if other is entry or other.ttype is not entry.ttype:
                    continue
                other_refs = set(other.ref_ids())
                if not (entry_refs < other_refs):
                    continue
                # The additional references of the dominating entry must
                # all point to once-consumed operators; a multi-consumer
                # extra target makes the smaller plan a genuine
                # materialization alternative (paper: R(-1,8) is not
                # dominated by R(6,8) because group 6 has two consumers).
                extra = other_refs - entry_refs
                if all(
                    len(set(id(p) for p in self._hops[r].parents)) <= 1
                    for r in extra
                    if r in self._hops
                ):
                    dominated = True
                    break
            if not dominated:
                kept.append(entry)
        self.replace(hop.id, kept)

    # ------------------------------------------------------------------
    # Covered-set expansion (optimistic, for validity checks/costing)
    # ------------------------------------------------------------------
    def covered_hops(self, hop: Hop, entry: MemoEntry) -> list[Hop]:
        """Hops covered by an entry, following refs optimistically
        (choosing, per referenced group, the compatible entry with the
        most references)."""
        covered: dict[int, Hop] = {hop.id: hop}
        stack = [(hop, entry)]
        while stack:
            cur_hop, cur_entry = stack.pop()
            for idx, ref in enumerate(cur_entry.refs):
                if ref == -1:
                    continue
                child = cur_hop.inputs[idx]
                if child.id in covered:
                    continue
                candidates = self.compatible_entries(child.id, cur_entry.ttype)
                if not candidates:
                    continue
                # Prefer same-type subplans (an Outer entry expanding
                # through its own chain sees the outer matmult).
                same_type = [e for e in candidates if e.ttype is cur_entry.ttype]
                best = max(same_type or candidates, key=lambda e: e.n_refs)
                covered[child.id] = child
                stack.append((child, best))
        return list(covered.values())

    def __repr__(self) -> str:
        lines = []
        for hop_id in sorted(self._groups):
            hop = self._hops.get(hop_id)
            label = hop.opcode() if hop is not None else "?"
            entries = " ".join(repr(e) for e in self._groups[hop_id])
            lines.append(f"{hop_id} {label}: {entries}")
        return "\n".join(lines)
