"""Plan cache and operator compilation (codegen steps 4-5).

Generated operators are maintained in a plan cache keyed by the CPlan's
semantic hash, avoiding redundant code generation and compilation for
equivalent operators — across DAGs and during dynamic recompilation
(Section 2.1).  Two compilation backends mirror the paper's janino vs
javac comparison (Figure 11):

* ``exec``: in-memory ``compile()`` + ``exec()`` (the fast janino path),
* ``file``: write the source to disk, byte-compile it, and import it as
  a module (the heavyweight javac path).

The cache is thread-safe: a serving scheduler shares one cache across
concurrent request compilations.  Lookup/insert run under a single
lock, and a concurrent miss on the same key compiles exactly once —
later threads wait on the first thread's in-flight compilation instead
of duplicating it.
"""

from __future__ import annotations

import builtins
import hashlib
import importlib.util
import os
import py_compile
import sys
import tempfile
import threading
import time

from repro.analysis import lockset
from repro.codegen.cplan import CPlan
from repro.codegen.pygen import (
    GENERATED_IMPORT_MODULES,
    GeneratedOperator,
    generate_source,
)
from repro.errors import CodegenError

# Process-wide exec()-compile cache keyed by source hash: semantically
# identical operators regenerated across recompiles, specializations,
# and engines produce byte-identical source (operator names are
# deterministic functions of the semantic hash), so the compiled
# callable is reused instead of re-``exec``-ing identical code.
_SOURCE_CACHE: dict = {}
_SOURCE_CACHE_LOCK = lockset.make_lock("plan_cache._SOURCE_CACHE_LOCK")


def _source_cache_key(name: str, source: str, backend: str) -> str:
    digest = hashlib.sha256(source.encode()).hexdigest()
    return f"{backend}:{name}:{digest}"


class PlanCache:
    """CPlan-hash -> compiled operator cache (thread-safe)."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._cache: dict[str, GeneratedOperator] = {}
        self._lock = lockset.make_lock("PlanCache._lock")
        # key -> Event set once the owning thread finished compiling.
        self._building: dict[str, threading.Event] = {}
        self.hits = 0
        self.lookups = 0

    @property
    def size(self) -> int:
        """Number of cached operators."""
        with self._lock:
            return len(self._cache)

    def clear(self) -> None:
        with self._lock:
            self._cache.clear()
            self.hits = 0
            self.lookups = 0

    def _record(self, stats, **deltas) -> None:
        """Apply counter deltas to an engine stats object (locked)."""
        if stats is None:
            return
        with stats.lock:
            for name, delta in deltas.items():
                setattr(stats, name, getattr(stats, name) + delta)
            stats.plan_cache_size = max(
                stats.plan_cache_size, len(self._cache)
            )

    def get_or_compile(self, cplan: CPlan, config, stats=None) -> GeneratedOperator:
        """Return a compiled operator, reusing cached equivalents.

        On a concurrent miss for the same key only one thread compiles;
        the others block until the operator lands in the cache.
        """
        key = cplan.semantic_hash()
        with self._lock:
            lockset.note_access("PlanCache", self, "lookups")
            self.lookups += 1
        self._record(stats, plan_cache_lookups=1)
        while True:
            with self._lock:
                lockset.note_access("PlanCache", self, "cache")
                if self.enabled and key in self._cache:
                    self.hits += 1
                    operator = self._cache[key]
                    self._record(stats, plan_cache_hits=1)
                    # Plan-cache hit telemetry feeds the tiered-kernel
                    # promotion policy: reused operators get hotter.
                    operator.note_hot()
                    return operator
                event = self._building.get(key)
                if event is None:
                    if self.enabled:
                        self._building[key] = threading.Event()
                    break  # this thread owns the compilation
            # Another thread is compiling this key: wait, then re-check
            # (a hit if it succeeded; ownership if it failed).
            event.wait()

        try:
            from repro.obs import trace as obs_trace

            tracer = (stats.tracer if stats is not None
                      else obs_trace.NULL_TRACER)
            start = time.perf_counter()
            with tracer.span("codegen-source", cat="compile",
                             template=cplan.ttype.value):
                name, source = generate_source(cplan, config.inline_primitives)
                if getattr(config, "verify_level", "off") != "off":
                    from repro.analysis.kernel_lint import check_source

                    check_source(name, source, kind="interpreted",
                                 stats=stats)
            gen_elapsed = time.perf_counter() - start

            start = time.perf_counter()
            with tracer.span("operator-compile", cat="compile", op=name):
                genexec = compile_operator(name, source, config.compiler,
                                           stats=stats)
            compile_elapsed = time.perf_counter() - start
        except BaseException:
            with self._lock:
                failed = self._building.pop(key, None)
            if failed is not None:
                failed.set()
            raise

        operator = GeneratedOperator(name, cplan, source, genexec)
        with self._lock:
            lockset.note_access("PlanCache", self, "cache")
            if self.enabled:
                self._cache[key] = operator
            finished = self._building.pop(key, None)
        if finished is not None:
            finished.set()
        self._record(
            stats,
            n_classes_compiled=1,
            codegen_seconds=gen_elapsed + compile_elapsed,
            class_compile_seconds=compile_elapsed,
        )
        return operator


def compile_source(name: str, source: str, backend: str = "exec",
                   stats=None) -> dict:
    """Compile generated source into a namespace, via the source cache.

    Byte-identical source compiles exactly once per process; later
    requests (recompiles, serving specializations, other engines) reuse
    the namespace and record a ``n_source_cache_hits``.  Used for both
    interpreted ``genexec`` modules and vectorized kernel modules.
    """
    key = _source_cache_key(name, source, backend)
    with _SOURCE_CACHE_LOCK:
        lockset.note_access("plan_cache", _SOURCE_CACHE, "source_cache")
        namespace = _SOURCE_CACHE.get(key)
    if namespace is not None:
        if stats is not None:
            with stats.lock:
                stats.n_source_cache_hits += 1
        return namespace
    namespace = _compile_namespace(name, source, backend)
    with _SOURCE_CACHE_LOCK:
        lockset.note_access("plan_cache", _SOURCE_CACHE, "source_cache")
        _SOURCE_CACHE.setdefault(key, namespace)
    return namespace


def compile_operator(name: str, source: str, backend: str = "exec",
                     stats=None):
    """Compile generated source and return the genexec callable."""
    return compile_source(name, source, backend, stats=stats)["genexec"]


def _restricted_import(name, globals=None, locals=None, fromlist=(),
                       level=0):
    """``__import__`` hook for generated code: allowlisted modules only.

    Generated sources import exactly the surface the kernel lint
    permits (numpy/scipy and the runtime vector primitives); anything
    else — smuggled past the lint or injected into a cached source —
    fails here at exec time.
    """
    if level == 0 and any(
        name == prefix or name.startswith(prefix + ".")
        for prefix in GENERATED_IMPORT_MODULES
    ):
        return builtins.__import__(name, globals, locals, fromlist, level)
    raise CodegenError(
        f"generated code may not import '{name}' "
        f"(allowed: {', '.join(GENERATED_IMPORT_MODULES)})"
    )


#: The only builtins generated code executes with.  Mirrors the kernel
#: lint's name allowlist; no I/O, no introspection, no dynamic eval.
_GENERATED_BUILTINS = {
    "__import__": _restricted_import,
    "abs": abs,
    "bool": bool,
    "enumerate": enumerate,
    "float": float,
    "int": int,
    "len": len,
    "max": max,
    "min": min,
    "range": range,
    "repr": repr,
    "round": round,
    "sum": sum,
    "zip": zip,
}


def _compile_namespace(name: str, source: str, backend: str) -> dict:
    if backend == "exec":
        # Restricted namespace: generated code never sees full builtins
        # (the file backend imports a real module instead — the javac
        # analogue — and is covered by the source lint).
        namespace: dict = {"__builtins__": dict(_GENERATED_BUILTINS)}
        code = compile(source, f"<generated {name}>", "exec")
        exec(code, namespace)
        return namespace
    if backend == "file":
        tmpdir = tempfile.mkdtemp(prefix="repro_codegen_")
        path = os.path.join(tmpdir, f"{name.lower()}.py")
        with open(path, "w") as handle:
            handle.write(source)
        # Byte-compile explicitly (the expensive out-of-process step of
        # javac, approximated in-process) and import the module.
        py_compile.compile(path, doraise=True)
        spec = importlib.util.spec_from_file_location(f"repro_gen_{name}", path)
        module = importlib.util.module_from_spec(spec)
        sys.modules[spec.name] = module
        spec.loader.exec_module(module)
        return module.__dict__
    raise CodegenError(f"unknown compiler backend '{backend}'")
