"""Plan cache and operator compilation (codegen steps 4-5).

Generated operators are maintained in a plan cache keyed by the CPlan's
semantic hash, avoiding redundant code generation and compilation for
equivalent operators — across DAGs and during dynamic recompilation
(Section 2.1).  Two compilation backends mirror the paper's janino vs
javac comparison (Figure 11):

* ``exec``: in-memory ``compile()`` + ``exec()`` (the fast janino path),
* ``file``: write the source to disk, byte-compile it, and import it as
  a module (the heavyweight javac path).
"""

from __future__ import annotations

import importlib.util
import os
import py_compile
import sys
import tempfile
import time

from repro.codegen.cplan import CPlan
from repro.codegen.pygen import GeneratedOperator, generate_source
from repro.errors import CodegenError


class PlanCache:
    """CPlan-hash -> compiled operator cache."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._cache: dict[str, GeneratedOperator] = {}
        self.hits = 0
        self.lookups = 0

    def clear(self) -> None:
        self._cache.clear()
        self.hits = 0
        self.lookups = 0

    def get_or_compile(self, cplan: CPlan, config, stats=None) -> GeneratedOperator:
        """Return a compiled operator, reusing cached equivalents."""
        key = cplan.semantic_hash()
        self.lookups += 1
        if stats is not None:
            stats.plan_cache_lookups += 1
        if self.enabled and key in self._cache:
            self.hits += 1
            if stats is not None:
                stats.plan_cache_hits += 1
            return self._cache[key]
        start = time.perf_counter()
        name, source = generate_source(cplan, config.inline_primitives)
        gen_elapsed = time.perf_counter() - start

        start = time.perf_counter()
        genexec = compile_operator(name, source, config.compiler)
        compile_elapsed = time.perf_counter() - start

        operator = GeneratedOperator(name, cplan, source, genexec)
        if self.enabled:
            self._cache[key] = operator
        if stats is not None:
            stats.n_classes_compiled += 1
            stats.codegen_seconds += gen_elapsed + compile_elapsed
            stats.class_compile_seconds += compile_elapsed
        return operator


def compile_operator(name: str, source: str, backend: str = "exec"):
    """Compile generated source and return the genexec callable."""
    if backend == "exec":
        namespace: dict = {}
        code = compile(source, f"<generated {name}>", "exec")
        exec(code, namespace)
        return namespace["genexec"]
    if backend == "file":
        tmpdir = tempfile.mkdtemp(prefix="repro_codegen_")
        path = os.path.join(tmpdir, f"{name.lower()}.py")
        with open(path, "w") as handle:
            handle.write(source)
        # Byte-compile explicitly (the expensive out-of-process step of
        # javac, approximated in-process) and import the module.
        py_compile.compile(path, doraise=True)
        spec = importlib.util.spec_from_file_location(f"repro_gen_{name}", path)
        module = importlib.util.module_from_spec(spec)
        sys.modules[spec.name] = module
        spec.loader.exec_module(module)
        return module.genexec
    raise CodegenError(f"unknown compiler backend '{backend}'")
