"""Codegen optimizer: candidate exploration, selection, code generation."""

from repro.codegen.template import TemplateType

__all__ = ["TemplateType"]
