"""Analytical cost model for DAG-structured fusion plans (Section 4.3).

Costs of a plan partition under an assignment of interesting points:

    C(P|q) = sum over operators p of ( T^w_p + max(T^r_p, T^c_p) )

Read and write times derive from input/output sizes normalized by peak
bandwidths, compute time from FLOPs normalized by peak compute; taking
``max(T^r, T^c)`` adapts to I/O- versus compute-bound operators.
Sparsity-exploiting operators scale their estimates by the sparsity of
the main input.  Cost vectors per fused operator capture shared reads
and redundant compute of overlapping operators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.codegen.memo import MemoEntry, MemoTable
from repro.codegen.template import TemplateType
from repro.codegen.partitions import PlanPartition
from repro.config import CodegenConfig
from repro.hops import memory
from repro.hops.hop import AggBinaryOp, BinaryOp, Hop, UnaryOp
from repro.hops.types import OpKind, SPARSE_SAFE_UNARY

INFINITE = math.inf

# Cell operations safe over non-zeros of the main input.
_CELL_SPARSE_SAFE_BINARY = {"*"}


@dataclass
class CostVector:
    """Per fused operator: output, distinct inputs, compute workload."""

    ttype: TemplateType | None
    output: Hop
    flops: float = 0.0
    inputs: dict[int, Hop] = field(default_factory=dict)
    covered: list[Hop] = field(default_factory=list)
    visited: set[int] = field(default_factory=set)
    entries: dict[int, MemoEntry] = field(default_factory=dict)

    def add_input(self, hop: Hop) -> None:
        self.inputs.setdefault(hop.id, hop)


@dataclass
class OperatorPlan:
    """A selected (possibly fused) operator and its cover."""

    root: Hop
    ttype: TemplateType | None
    entries: dict[int, MemoEntry]
    covered: list[Hop]
    inputs: list[Hop]
    time: float
    sparse_safe: bool = False

    @property
    def n_covered(self) -> int:
        return len(self.covered)


class CostEstimator:
    """Costs plan partitions under materialization assignments."""

    def __init__(self, memo: MemoTable, config: CodegenConfig,
                 hop_by_id: dict[int, Hop], stats=None):
        self.memo = memo
        self.config = config
        self.hops = hop_by_id
        self.stats = stats
        self._flops_cache: dict[int, float] = {}
        # Plans are pure functions of (hop, template, blocked edges);
        # enumeration revisits the same assignments' sub-structures, so
        # memoize covers, basic plans, and operator choices.
        self._cover_cache: dict = {}
        self._basic_cache: dict[int, OperatorPlan] = {}
        self._best_cache: dict = {}

    # ------------------------------------------------------------------
    # Partition costing (getPlanCost)
    # ------------------------------------------------------------------
    def cost_partition(self, part: PlanPartition,
                       blocked: frozenset[tuple[int, int]] = frozenset(),
                       record: dict[int, OperatorPlan] | None = None,
                       bound: float = INFINITE,
                       prefer_max_fusion: bool = False) -> float:
        """Total cost of producing all partition roots under ``blocked``.

        ``blocked`` contains (consumer, target) dependencies assigned
        True (materialize); all fusion references along them are
        invalid.  Costing stops early once ``bound`` is exceeded
        (partial costing, Section 4.4).
        """
        if self.stats is not None:
            self.stats.n_plans_evaluated += 1
        total = 0.0
        produced: set[int] = set()
        lookahead_cache: dict[int, float] = {}
        pending = sorted(part.roots, reverse=True)
        while pending:
            hop_id = pending.pop()
            if hop_id in produced:
                continue
            produced.add(hop_id)
            hop = self.hops[hop_id]
            plan = self._best_operator(
                hop, blocked, lookahead_cache, prefer_max_fusion
            )
            total += plan.time
            if total >= bound:
                return INFINITE
            for hop_in in plan.inputs:
                if hop_in.id in part.members and hop_in.id not in produced:
                    pending.append(hop_in.id)
            if record is not None and plan.ttype is not None and plan.n_covered >= 2:
                record[hop_id] = plan
        return total

    # ------------------------------------------------------------------
    # Operator-level costing
    # ------------------------------------------------------------------
    def _best_operator(self, hop: Hop, blocked, lookahead_cache,
                       prefer_max_fusion: bool) -> OperatorPlan:
        cache_key = (hop.id, blocked, prefer_max_fusion)
        cached = self._best_cache.get(cache_key)
        if cached is not None:
            return cached
        plan = self._best_operator_uncached(
            hop, blocked, lookahead_cache, prefer_max_fusion
        )
        self._best_cache[cache_key] = plan
        return plan

    def _best_operator_uncached(self, hop: Hop, blocked, lookahead_cache,
                                prefer_max_fusion: bool) -> OperatorPlan:
        candidates = [self._basic_plan(hop)]
        types = {
            e.ttype for e in self.memo.root_entries(hop.id)
        }
        for ttype in sorted(types, key=lambda t: t.value):
            plan = self._cover(hop, ttype, blocked)
            if plan is not None:
                candidates.append(plan)
        if prefer_max_fusion:
            # Heuristic policies: maximal fusion, ignoring costs.  Ties
            # favour templates covering more operators.
            best = max(candidates, key=lambda p: (p.n_covered, _type_rank(p.ttype)))
            return best
        # Cost-based choice with a one-level lookahead on the cost of
        # producing each candidate's materialized inputs.  Ties favour
        # sparsity-exploiting and multi-aggregate templates: an Outer
        # or MAgg operator of equal local cost enables cross-operator
        # benefits (sparse drivers, shared single-pass reads).
        def score(plan: OperatorPlan) -> tuple[float, int]:
            extra = 0.0
            for hop_in in plan.inputs:
                extra += self._produce_cost(hop_in, blocked, lookahead_cache, depth=0)
            tie = {
                TemplateType.OUTER: 0,
                TemplateType.MAGG: 1,
                TemplateType.CELL: 2,
                TemplateType.ROW: 3,
                None: 4,
            }[plan.ttype]
            return (plan.time + extra, tie)

        return min(candidates, key=score)

    def _produce_cost(self, hop: Hop, blocked, cache, depth: int) -> float:
        """Recursive estimate of the cost of materializing ``hop``."""
        if hop.id in cache:
            return cache[hop.id]
        if not self.memo.contains(hop.id) or hop.kind in (OpKind.DATA, OpKind.LITERAL):
            cache[hop.id] = 0.0 if hop.kind in (OpKind.DATA, OpKind.LITERAL) else (
                self._basic_plan(hop).time
            )
            return cache[hop.id]
        if depth > 12:
            return 0.0
        cache[hop.id] = 0.0  # cycle guard (DAG, but shared paths)
        best = INFINITE
        plans = [self._basic_plan(hop)]
        for ttype in {e.ttype for e in self.memo.root_entries(hop.id)}:
            plan = self._cover(hop, ttype, blocked)
            if plan is not None:
                plans.append(plan)
        for plan in plans:
            extra = sum(
                self._produce_cost(i, blocked, cache, depth + 1) for i in plan.inputs
            )
            best = min(best, plan.time + extra)
        cache[hop.id] = best
        return best

    def _basic_plan(self, hop: Hop) -> OperatorPlan:
        cached = self._basic_cache.get(hop.id)
        if cached is not None:
            return cached
        cv = CostVector(None, hop)
        cv.flops = self._flops(hop)
        cv.covered.append(hop)
        for hop_in in hop.inputs:
            cv.add_input(hop_in)
        time = self._vector_time(cv)
        plan = OperatorPlan(hop, None, {}, [hop], list(cv.inputs.values()), time)
        self._basic_cache[hop.id] = plan
        return plan

    def _cover(self, hop: Hop, ttype: TemplateType, blocked) -> OperatorPlan | None:
        """Greedy maximal cover of ``hop`` with a ``ttype`` operator."""
        cache_key = (hop.id, ttype, blocked)
        if cache_key in self._cover_cache:
            return self._cover_cache[cache_key]
        entries = [e for e in self.memo.root_entries(hop.id) if e.ttype is ttype]
        if not entries:
            self._cover_cache[cache_key] = None
            return None
        entry = max(entries, key=lambda e: self._usable_refs(hop, e, blocked))
        cv = CostVector(ttype, hop)
        self._visit(hop, entry, cv, blocked)
        time = self._vector_time(cv)
        plan = OperatorPlan(
            hop, ttype, cv.entries, cv.covered, list(cv.inputs.values()), time
        )
        plan.sparse_safe = self._is_sparse_safe(cv)
        self._cover_cache[cache_key] = plan
        return plan

    def _usable_refs(self, hop: Hop, entry: MemoEntry, blocked) -> int:
        count = 0
        for idx, ref in enumerate(entry.refs):
            if ref != -1 and (hop.id, ref) not in blocked:
                count += 1
        return count

    def _visit(self, hop: Hop, entry: MemoEntry, cv: CostVector, blocked) -> None:
        # Iterative DFS preserving the recursive pre-order (fusion covers
        # can be thousands of operators deep, e.g. long cellwise chains).
        stack: list[tuple[Hop, MemoEntry]] = [(hop, entry)]
        while stack:
            node, node_entry = stack.pop()
            if node.id in cv.visited:
                continue
            cv.visited.add(node.id)
            cv.covered.append(node)
            cv.entries[node.id] = node_entry
            cv.flops += self._flops(node)
            pending: list[tuple[Hop, MemoEntry]] = []
            for idx, hop_in in enumerate(node.inputs):
                fused = False
                if node_entry.refs[idx] != -1 and (node.id, hop_in.id) not in blocked:
                    sub_entries = self.memo.compatible_entries(
                        hop_in.id, node_entry.ttype
                    )
                    sub_entries = [
                        e for e in sub_entries if e.ttype is node_entry.ttype
                    ] or sub_entries
                    if sub_entries:
                        sub = max(
                            sub_entries,
                            key=lambda e: self._usable_refs(hop_in, e, blocked),
                        )
                        pending.append((hop_in, sub))
                        fused = True
                if not fused and hop_in.kind is not OpKind.LITERAL:
                    cv.add_input(hop_in)
            stack.extend(reversed(pending))

    # ------------------------------------------------------------------
    # Time estimates
    # ------------------------------------------------------------------
    def _flops(self, hop: Hop) -> float:
        cached = self._flops_cache.get(hop.id)
        if cached is None:
            cached = memory.compute_flops(hop, self.config)
            self._flops_cache[hop.id] = cached
        return cached

    def _vector_time(self, cv: CostVector) -> float:
        config = self.config
        out_bytes = memory.output_bytes(cv.output)
        in_bytes = sum(memory.output_bytes(h) for h in cv.inputs.values())
        scale = self._sparsity_scale(cv)
        distributed = (
            config.cluster is not None
            and (out_bytes + in_bytes) > config.local_mem_budget
        )
        if distributed:
            cluster = config.cluster
            sizes = sorted(
                (memory.output_bytes(h) for h in cv.inputs.values()), reverse=True
            )
            main_bytes = sizes[0] if sizes else 0.0
            side_bytes = sum(sizes[1:])
            read_time = main_bytes / cluster.hdfs_bandwidth
            # Every additional input of a distributed operator is
            # broadcast to all workers (the Table 6 effect).
            read_time += side_bytes * cluster.n_workers / cluster.net_bandwidth
            write_time = out_bytes / cluster.hdfs_bandwidth
            compute_time = cv.flops * scale / (
                config.peak_flops * cluster.n_workers
            )
        else:
            read_time = in_bytes * scale / config.read_bandwidth if scale < 1.0 else (
                in_bytes / config.read_bandwidth
            )
            write_time = out_bytes / config.write_bandwidth
            compute_time = cv.flops * scale / config.peak_flops
            # Fused operators execute multi-threaded over row partitions
            # (skeletons intra-op parallelism): scale compute by the
            # effective parallelism so enumeration prefers fusion plans
            # that parallelize well.  I/O stays serial — bandwidth, not
            # cores, bounds reads and writes.
            compute_time /= self._intra_op_parallelism(cv)
        return write_time + max(read_time, compute_time)

    def _intra_op_parallelism(self, cv: CostVector) -> float:
        """Effective speedup of partition-parallel fused execution.

        Mirrors the runtime gate in ``skeletons._plan_intra_op``: only
        fused templates over a sufficiently large main input partition,
        and never into more parts than the main input has rows.
        """
        if cv.ttype is None:
            return 1.0
        par = self.config.effective_intra_op_threads()
        if par <= 1:
            return 1.0
        main = self._main_input(cv)
        if main is None or main.cells < self.config.intra_op_min_cells:
            return 1.0
        if main.rows < 2 * par:
            return 1.0
        return float(par)

    def _sparsity_scale(self, cv: CostVector) -> float:
        """Scale factor of sparsity-exploiting operators (main input)."""
        if cv.ttype is TemplateType.OUTER:
            driver = self._outer_driver(cv)
            if driver is not None:
                return max(driver.sparsity, 1e-9)
            return 1.0
        if cv.ttype in (TemplateType.CELL, TemplateType.MAGG):
            if self._is_sparse_safe(cv):
                main = self._main_input(cv)
                if main is not None and main.is_sparse_est(self.config.sparse_threshold):
                    return max(main.sparsity, 1e-9)
        return 1.0

    def _main_input(self, cv: CostVector) -> Hop | None:
        mats = [h for h in cv.inputs.values() if h.is_matrix]
        if not mats:
            return None
        return max(mats, key=lambda h: h.cells)

    def _outer_driver(self, cv: CostVector) -> Hop | None:
        outer_dims = None
        for hop in cv.covered:
            if isinstance(hop, AggBinaryOp) and hop.inputs[0].cols < hop.rows:
                if hop.id in cv.visited and hop.inputs[0].cols <= self.config.outer_max_rank:
                    outer_dims = hop.dims
                    break
        if outer_dims is None:
            return None
        for hop in cv.inputs.values():
            if hop.dims == outer_dims:
                return hop
        return None

    def _is_sparse_safe(self, cv: CostVector) -> bool:
        if cv.ttype not in (TemplateType.CELL, TemplateType.MAGG):
            return False
        from repro.hops.hop import AggUnaryOp
        from repro.hops.types import AggOp

        main = self._main_input(cv)
        if main is None:
            return False
        has_main_mult = False
        for hop in cv.covered:
            if isinstance(hop, AggUnaryOp):
                if hop.agg_op not in (AggOp.SUM, AggOp.SUM_SQ):
                    return False
                continue
            if isinstance(hop, UnaryOp):
                if hop.op not in SPARSE_SAFE_UNARY:
                    return False
                continue
            if isinstance(hop, BinaryOp):
                if hop.op not in _CELL_SPARSE_SAFE_BINARY:
                    return False
                if any(i.id == main.id for i in hop.inputs):
                    has_main_mult = True
                continue
            return False
        return has_main_mult

    # ------------------------------------------------------------------
    # Lower bounds for cost-based pruning (Algorithm 2)
    # ------------------------------------------------------------------
    def static_partition_cost(self, part: PlanPartition) -> float:
        """C_Pi: partition input reads, minimal compute, root writes."""
        config = self.config
        read_bytes = sum(
            memory.output_bytes(self.hops[i]) for i in part.inputs if i in self.hops
        )
        write_bytes = sum(
            memory.output_bytes(self.hops[r]) for r in part.roots
        )
        min_scale = 1.0
        for i in part.inputs:
            hop = self.hops.get(i)
            if hop is not None and hop.is_matrix and hop.nnz >= 0:
                min_scale = min(min_scale, max(hop.sparsity, 1e-9))
        flops = sum(self._flops(self.hops[m]) for m in part.members)
        read_time = read_bytes / config.read_bandwidth
        compute_time = flops * min_scale / config.peak_flops
        write_time = write_bytes / config.write_bandwidth
        self._static_parts = (write_time, read_time, compute_time)
        return write_time + max(read_time, compute_time)

    def materialization_cost(self, part: PlanPartition, q,
                             points) -> float:
        """Minimum additional cost of the positive assignments in q:
        each distinct materialization target requires at least one
        write and one read."""
        config = self.config
        targets = {points[i].target_id for i, flag in enumerate(q) if flag}
        extra_write = 0.0
        extra_read = 0.0
        for target in targets:
            hop = self.hops.get(target)
            if hop is None:
                continue
            size = memory.output_bytes(hop)
            extra_write += size / config.write_bandwidth
            extra_read += size / config.read_bandwidth
        write_time, read_time, compute_time = self._static_parts
        return (
            write_time
            + extra_write
            + max(read_time + extra_read, compute_time)
            - (write_time + max(read_time, compute_time))
        )


def _type_rank(ttype: TemplateType | None) -> int:
    """Tie-break order for maximal-fusion heuristics."""
    order = {
        None: 0,
        TemplateType.OUTER: 1,
        TemplateType.MAGG: 2,
        TemplateType.CELL: 3,
        TemplateType.ROW: 4,
    }
    return order[ttype]


def blocked_set(points, q) -> frozenset[tuple[int, int]]:
    """The blocked dependencies of a boolean assignment q."""
    return frozenset(
        (p.consumer_id, p.target_id) for p, flag in zip(points, q) if flag
    )
