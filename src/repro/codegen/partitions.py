"""Plan partitions, interesting points, and cut sets (Section 4.2).

Partitions are the connected components of the memo table's fusion
references; they are optimized and costed independently.  Per partition
we collect *interesting points*: per-consumer materialization decisions
for nodes with multiple consumers, and template switches.  The
reachability graph over interesting points yields *cut sets* whose
materialization creates independent sub-problems (structural pruning of
Algorithm 2, scored by Equation 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codegen.memo import MemoTable
from repro.hops.hop import Hop, collect_dag


@dataclass(frozen=True)
class InterestingPoint:
    """A boolean materialization decision on a data dependency."""

    consumer_id: int
    target_id: int


@dataclass
class PlanPartition:
    """A connected component of partial fusion plans."""

    members: set[int] = field(default_factory=set)
    roots: set[int] = field(default_factory=set)
    inputs: set[int] = field(default_factory=set)
    mat_points: set[int] = field(default_factory=set)
    points: list[InterestingPoint] = field(default_factory=list)

    @property
    def search_space_size(self) -> int:
        return 1 << len(self.points)


def _fusion_edges(memo: MemoTable) -> list[tuple[int, int]]:
    """All (consumer, target) fusion references in the memo table."""
    edges = []
    for hop_id in memo.group_ids():
        for entry in memo.get(hop_id):
            for ref in entry.ref_ids():
                edges.append((hop_id, ref))
    return edges


class _UnionFind:
    def __init__(self):
        self.parent: dict[int, int] = {}

    def find(self, x: int) -> int:
        root = x
        while self.parent.setdefault(root, root) != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[ra] = rb


def build_partitions(memo: MemoTable, roots: list[Hop]) -> list[PlanPartition]:
    """Determine plan partitions and their interesting points."""
    dag = collect_dag(roots)
    dag_ids = {h.id for h in dag}
    hop_by_id = {h.id: h for h in dag}

    uf = _UnionFind()
    group_ids = [g for g in memo.group_ids() if g in dag_ids]
    for gid in group_ids:
        uf.find(gid)
    edges = [(c, t) for (c, t) in _fusion_edges(memo) if c in dag_ids and t in dag_ids]
    for consumer, target in edges:
        uf.union(consumer, target)

    by_root: dict[int, PlanPartition] = {}
    for gid in group_ids:
        part = by_root.setdefault(uf.find(gid), PlanPartition())
        part.members.add(gid)

    referenced: set[int] = {t for (_, t) in edges}
    for part in by_root.values():
        _finalize_partition(part, memo, hop_by_id, dag_ids, referenced)
    # Deterministic ordering for stable enumeration statistics.
    return sorted(by_root.values(), key=lambda p: min(p.members))


def _finalize_partition(part: PlanPartition, memo: MemoTable,
                        hop_by_id: dict[int, Hop], dag_ids: set[int],
                        referenced: set[int]) -> None:
    # Root nodes: members never referenced from within the partition.
    refs_within = set()
    for member in part.members:
        for entry in memo.get(member):
            for ref in entry.ref_ids():
                if ref in part.members:
                    refs_within.add(ref)
    part.roots = part.members - refs_within

    # Input nodes: read by any member, not a member themselves.
    for member in part.members:
        for hop_in in hop_by_id[member].inputs:
            if hop_in.id not in part.members:
                part.inputs.add(hop_in.id)

    # Materialization points: non-root members with multiple consumers.
    for member in part.members:
        hop = hop_by_id[member]
        n_consumers = sum(1 for p in hop.parents if p.id in dag_ids)
        if member not in part.roots and n_consumers > 1:
            part.mat_points.add(member)

    part.points = _interesting_points(part, memo, hop_by_id, dag_ids)


def _interesting_points(part: PlanPartition, memo: MemoTable,
                        hop_by_id: dict[int, Hop],
                        dag_ids: set[int]) -> list[InterestingPoint]:
    points: list[InterestingPoint] = []
    seen: set[tuple[int, int]] = set()

    def add(consumer_id: int, target_id: int) -> None:
        key = (consumer_id, target_id)
        if key not in seen:
            seen.add(key)
            points.append(InterestingPoint(consumer_id, target_id))

    # Materialization-point consumers, considered individually per data
    # dependency (important for overlapping fused operators).
    for target in sorted(part.mat_points):
        hop = hop_by_id[target]
        for consumer in hop.parents:
            if consumer.id not in part.members:
                continue
            refs_target = any(
                entry.refs[idx] == target
                for entry in memo.get(consumer.id)
                for idx, hop_in in enumerate(consumer.inputs)
                if hop_in.id == target
            )
            if refs_target:
                add(consumer.id, target)

    # Template switches: dependencies (gi -> gj) where the input group
    # has template types the consumer group lacks.
    for consumer_id in sorted(part.members):
        consumer_types = set(memo.distinct_types(consumer_id))
        for entry in memo.get(consumer_id):
            for ref in entry.ref_ids():
                target_types = set(memo.distinct_types(ref))
                if target_types - consumer_types:
                    add(consumer_id, ref)

    return points


# ----------------------------------------------------------------------
# Reachability graph and cut sets (structural pruning)
# ----------------------------------------------------------------------
@dataclass
class CutSet:
    """A set of point targets that splits the partition's search space."""

    targets: tuple[int, ...]
    cut_points: list[int]  # indices into the point list
    side1: list[int]  # point indices above the cut
    side2: list[int]  # point indices below the cut
    score: float = 0.0


class ReachabilityGraph:
    """Fusion-reference reachability among a partition's members."""

    def __init__(self, part: PlanPartition, memo: MemoTable,
                 hop_by_id: dict[int, Hop]):
        self.part = part
        # consumer -> set of targets (downward edges via fusion refs).
        self.down: dict[int, set[int]] = {m: set() for m in part.members}
        for member in part.members:
            for entry in memo.get(member):
                for ref in entry.ref_ids():
                    if ref in part.members:
                        self.down[member].add(ref)

    def descendants(self, start: set[int]) -> set[int]:
        seen: set[int] = set()
        stack = [t for s in start for t in self.down.get(s, ())]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.down.get(node, ()))
        return seen

    def reachable_avoiding(self, start: set[int], avoid: set[int]) -> set[int]:
        seen: set[int] = set()
        stack = [s for s in start if s not in avoid]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(t for t in self.down.get(node, ()) if t not in avoid)
        return seen


def find_cut_sets(part: PlanPartition, memo: MemoTable,
                  hop_by_id: dict[int, Hop]) -> list[CutSet]:
    """Candidate cut sets sorted ascending by the Eq. (5) score."""
    if len(part.points) < 3:
        return []
    graph = ReachabilityGraph(part, memo, hop_by_id)
    targets = sorted({p.target_id for p in part.points})
    n_points = len(part.points)

    candidates: list[tuple[int, ...]] = [(t,) for t in targets]
    # Composite points of equivalent inputs: targets sharing the same
    # consumer set; and non-overlapping pairs of single targets.
    for i, t1 in enumerate(targets):
        for t2 in targets[i + 1:]:
            if not (t1 in graph.descendants({t2}) or t2 in graph.descendants({t1})):
                candidates.append((t1, t2))

    cut_sets: list[CutSet] = []
    for cand in candidates:
        cand_set = set(cand)
        below_members = graph.reachable_avoiding(cand_set, set()) & graph.descendants(cand_set)
        # Validity: with the cut removed, nothing below is reachable
        # from the roots.
        reach_no_cut = graph.reachable_avoiding(part.roots, cand_set)
        below = graph.descendants(cand_set) - cand_set
        if below & reach_no_cut:
            continue
        side1 = [
            i for i, p in enumerate(part.points)
            if p.target_id not in below and p.target_id not in cand_set
        ]
        side2 = [i for i, p in enumerate(part.points) if p.target_id in below]
        cut_points = [i for i, p in enumerate(part.points) if p.target_id in cand_set]
        if not side1 or not side2 or not cut_points:
            continue
        size = len(cut_points)
        score = ((2 ** size - 1) / 2 ** size) * 2 ** n_points + (
            1 / 2 ** size
        ) * (2 ** len(side1) + 2 ** len(side2))
        cut_sets.append(CutSet(cand, cut_points, side1, side2, score))
        del below_members
    cut_sets.sort(key=lambda c: c.score)
    return cut_sets
