"""MPSkipEnum: materialization-point skip enumeration (Algorithm 2).

The exponential search space of 2^|M'| boolean assignments is
linearized from negative (fuse) to positive (materialize) assignments,
so the fuse-all plan is costed first and yields a good upper bound.
Two pruning techniques skip entire areas of the search space:

* cost-based: a monotonically decreasing upper bound C̄ (best plan so
  far) against a lower bound of all unseen plans sharing the current
  positive prefix — on success we skip ``2^(|M'| - x - 1)`` plans where
  x is the last positive index;
* structural: cut sets over the reachability graph create independent
  sub-problems solved recursively.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.codegen.cost import CostEstimator, blocked_set
from repro.codegen.memo import MemoTable
from repro.codegen.partitions import (
    CutSet,
    PlanPartition,
    find_cut_sets,
)
from repro.config import CodegenConfig
from repro.hops.hop import Hop


@dataclass
class EnumResult:
    """Best assignment found plus search statistics."""

    assignment: tuple[bool, ...]
    cost: float
    n_evaluated: int
    n_skipped: float


def create_assignment(n: int, j: int) -> list[bool]:
    """The j-th (1-based) assignment of the linearized search space.

    Position 0 is the most significant bit, so the space runs from
    all-False (fuse-all) to all-True (materialize-all).
    """
    value = j - 1
    return [bool((value >> (n - 1 - p)) & 1) for p in range(n)]


def _last_true_index(q: list[bool]) -> int:
    for idx in range(len(q) - 1, -1, -1):
        if q[idx]:
            return idx
    return -1


def _num_skip_plans(q: list[bool]) -> int:
    """Plans sharing the positive prefix of q (Algorithm 2, line 14)."""
    x = _last_true_index(q)
    return (1 << (len(q) - x - 1)) - 1


def mpskip_enum(estimator: CostEstimator, part: PlanPartition,
                config: CodegenConfig, memo: MemoTable,
                hop_by_id: dict[int, Hop], stats=None,
                point_indices: list[int] | None = None,
                use_structural: bool | None = None) -> EnumResult:
    """Enumerate assignments of the partition's interesting points.

    ``point_indices`` restricts enumeration to a subset of points (used
    by recursive cut-set sub-problems); the remaining points are fixed
    False inside this call and combined by the caller.
    """
    points = part.points
    indices = list(range(len(points))) if point_indices is None else point_indices
    n = len(indices)
    if n == 0:
        cost = estimator.cost_partition(part)
        return EnumResult((), cost, 1, 0)

    if use_structural is None:
        use_structural = config.enable_structural_pruning

    # Structural pruning: pick the best valid cut set and lay out the
    # search space with its points first.
    cut: CutSet | None = None
    if use_structural and n >= 3 and point_indices is None:
        cuts = [
            c for c in find_cut_sets(part, memo, hop_by_id)
            if set(c.cut_points) | set(c.side1) | set(c.side2) <= set(indices)
        ]
        if cuts:
            cut = cuts[0]
            indices = (
                list(cut.cut_points)
                + [i for i in indices if i not in cut.cut_points]
            )

    static_cost = estimator.static_partition_cost(part)
    best_q: list[bool] | None = None
    best_cost = math.inf
    n_evaluated = 0
    n_skipped = 0.0
    total = min(1 << n, config.max_enum_plans)

    j = 1
    while j <= total:
        local_q = create_assignment(n, j)
        q = [False] * len(points)
        for pos, idx in enumerate(indices):
            q[idx] = local_q[pos]

        # Structural pruning via cut-set sub-problems: when exactly the
        # cut-set positions are positive (first plan of that subspace),
        # solve both sides independently and skip the subspace.
        if cut is not None and _is_cut_boundary(local_q, cut, indices):
            sub_q, sub_cost, sub_eval = _solve_subproblems(
                estimator, part, config, memo, hop_by_id, cut, q, stats
            )
            n_evaluated += sub_eval
            if sub_cost < best_cost:
                best_cost = sub_cost
                best_q = sub_q
            remaining = (1 << (n - len(cut.cut_points))) - 1
            n_skipped += remaining
            j += remaining + 1
            continue

        # Cost-based pruning via lower bounds.
        if config.enable_cost_pruning and best_q is not None:
            lower = static_cost + estimator.materialization_cost(part, q, points)
            if lower >= best_cost:
                skip = _num_skip_plans(local_q)
                n_skipped += skip
                j += skip + 1
                continue

        cost = estimator.cost_partition(
            part, blocked_set(points, q), bound=best_cost
        )
        n_evaluated += 1
        if cost < best_cost:
            best_cost = cost
            best_q = q
        j += 1

    if stats is not None:
        stats.n_plans_evaluated += n_evaluated
        stats.n_plans_skipped += n_skipped
    assert best_q is not None
    return EnumResult(tuple(best_q), best_cost, n_evaluated, n_skipped)


def _is_cut_boundary(local_q: list[bool], cut: CutSet, indices: list[int]) -> bool:
    """True when exactly the cut-set positions (laid out first) are
    positive and everything after them is negative."""
    n_cut = len(cut.cut_points)
    return all(local_q[:n_cut]) and not any(local_q[n_cut:])


def _solve_subproblems(estimator, part, config, memo, hop_by_id,
                       cut: CutSet, q: list[bool], stats):
    """Solve the independent sub-problems created by a cut set."""
    n_evaluated = 0
    combined = list(q)
    for side in (cut.side1, cut.side2):
        if not side:
            continue
        result = _enumerate_subset(
            estimator, part, config, memo, hop_by_id, side, combined
        )
        n_evaluated += result[1]
        for idx, val in zip(side, result[0]):
            combined[idx] = val
    from repro.codegen.cost import blocked_set as _bs

    cost = estimator.cost_partition(part, _bs(part.points, combined))
    n_evaluated += 1
    return tuple(combined), cost, n_evaluated


def _enumerate_subset(estimator, part, config, memo, hop_by_id,
                      side: list[int], base_q: list[bool]):
    """Exhaustively enumerate a sub-problem's points with cost pruning.

    Sub-problems are independent given the materialized cut set, so
    each side is optimized in isolation (other side fixed at its
    current values in ``base_q``).
    """
    n = len(side)
    best_vals: tuple[bool, ...] = tuple(False for _ in side)
    best_cost = math.inf
    n_evaluated = 0
    total = min(1 << n, config.max_enum_plans)
    j = 1
    while j <= total:
        local_q = create_assignment(n, j)
        q = list(base_q)
        for pos, idx in enumerate(side):
            q[idx] = local_q[pos]
        cost = estimator.cost_partition(
            part, blocked_set(part.points, q), bound=best_cost
        )
        n_evaluated += 1
        if cost < best_cost:
            best_cost = cost
            best_vals = tuple(local_q)
        j += 1
    return best_vals, n_evaluated
