"""CPlan construction from selected operator plans (codegen step 3).

Maps the covered HOP sub-DAG of a selected fusion plan to a CPlan body
of CNodes, determines the template binding (main input, row-aligned and
full side inputs, scalars), the output variant, and sparse-safety (via
numeric probing: a plan is sparse-safe iff its body evaluates to zero
whenever the main input value is zero).
"""

from __future__ import annotations

import math
import random

from repro.codegen.cost import OperatorPlan
from repro.codegen.cplan import Access, CNode, CPlan, InputSpec, OutType
from repro.codegen.template import TemplateType
from repro.codegen.tpl_row import row_dim
from repro.errors import CodegenError
from repro.hops.hop import (
    AggBinaryOp,
    AggUnaryOp,
    BinaryOp,
    Hop,
    IndexingOp,
    LiteralOp,
    ReorgOp,
    TernaryOp,
    UnaryOp,
)
from repro.hops.types import AggDir, AggOp

_AGG_NAME = {
    AggOp.SUM: "sum",
    AggOp.SUM_SQ: "sumsq",
    AggOp.MIN: "min",
    AggOp.MAX: "max",
    AggOp.MEAN: "mean",
}


def construct_cplan(plan: OperatorPlan, config):
    """Build a CPlan for a selected plan.

    Returns ``(cplan, input_hops)`` or ``None`` when the plan cannot be
    realized as a generated operator (the engine then falls back to
    basic operators for the covered hops).
    """
    try:
        if plan.ttype is TemplateType.CELL:
            return _construct_cell(plan, config)
        if plan.ttype is TemplateType.MAGG:
            return construct_multi_agg([plan], config)
        if plan.ttype is TemplateType.ROW:
            return _construct_row(plan, config)
        if plan.ttype is TemplateType.OUTER:
            return _construct_outer(plan, config)
    except CodegenError:
        return None
    return None


# ----------------------------------------------------------------------
# Shared body construction
# ----------------------------------------------------------------------
class _Builder:
    """Maps covered hops to CNodes; uncovered inputs to data nodes."""

    def __init__(self, plan_inputs: list[Hop], covered_ids: set[int]):
        self.input_hops = list(plan_inputs)
        self.index_of = {h.id: i for i, h in enumerate(self.input_hops)}
        self.covered_ids = covered_ids
        self.cache: dict[int, CNode] = {}
        self.access_votes: dict[int, set[Access]] = {}

    def data(self, hop: Hop, access: Access) -> CNode:
        if isinstance(hop, LiteralOp):
            return CNode("lit", value=hop.value)
        if hop.id not in self.index_of:
            self.index_of[hop.id] = len(self.input_hops)
            self.input_hops.append(hop)
        idx = self.index_of[hop.id]
        self.access_votes.setdefault(idx, set()).add(access)
        node = CNode("data", input_index=idx)
        return node

    def finalize_inputs(self, main_hop: Hop | None,
                        default_side: Access) -> tuple[list[InputSpec], int]:
        specs: list[InputSpec] = []
        main_index = -1
        for idx, hop in enumerate(self.input_hops):
            if main_hop is not None and hop.id == main_hop.id:
                access = Access.MAIN
                main_index = idx
            elif hop.is_scalar:
                access = Access.SCALAR
            else:
                votes = self.access_votes.get(idx, set())
                if Access.SIDE_FULL in votes:
                    access = Access.SIDE_FULL
                elif Access.SIDE_ROW in votes:
                    access = Access.SIDE_ROW
                else:
                    access = default_side
            rows, cols = (hop.rows, hop.cols)
            specs.append(InputSpec(hop.id, rows, cols, access))
        return specs, main_index


def _cell_build(builder: _Builder, hop: Hop, row_count: int) -> CNode:
    """Body construction for cell-aligned (element-wise) sub-DAGs.

    Iterative post-order: covered sub-DAGs can be arbitrarily deep
    (long element-wise chains), so no recursion.
    """
    stack = [hop]
    while stack:
        node = stack[-1]
        if node.id in builder.cache:
            stack.pop()
            continue
        if isinstance(node, LiteralOp):
            builder.cache[node.id] = CNode("lit", value=node.value)
            stack.pop()
            continue
        if node.id not in builder.covered_ids:
            if node.is_scalar:
                cnode = builder.data(node, Access.SCALAR)
            elif node.rows == row_count:
                cnode = builder.data(node, Access.SIDE_ROW)
            else:
                cnode = builder.data(node, Access.SIDE_FULL)
            builder.cache[node.id] = cnode
            stack.pop()
            continue
        missing = [c for c in node.inputs if c.id not in builder.cache]
        if missing:
            stack.extend(reversed(missing))
            continue
        children = [builder.cache[c.id] for c in node.inputs]
        if isinstance(node, UnaryOp):
            cnode = CNode(f"u:{node.op}", children)
        elif isinstance(node, BinaryOp):
            cnode = CNode(f"b:{node.op}", children)
        elif isinstance(node, TernaryOp):
            cnode = CNode(f"t:{node.op}", children)
        else:
            raise CodegenError(f"unsupported cell body op {node.opcode()}")
        builder.cache[node.id] = cnode
        stack.pop()
    return builder.cache[hop.id]


# ----------------------------------------------------------------------
# Cell template
# ----------------------------------------------------------------------
def _construct_cell(plan: OperatorPlan, config):
    root = plan.root
    covered_ids = {h.id for h in plan.covered}
    agg_op = None
    out_type = OutType.NO_AGG
    body_root_hop = root
    if isinstance(root, AggUnaryOp):
        agg_op = root.agg_op
        out_type = {
            AggDir.FULL: OutType.FULL_AGG,
            AggDir.ROW: OutType.ROW_AGG,
            AggDir.COL: OutType.COL_AGG,
        }[root.direction]
        body_root_hop = root.inputs[0]
    cell_rows = body_root_hop.rows

    builder = _Builder(plan.inputs, covered_ids)
    if body_root_hop.id not in covered_ids:
        raise CodegenError("cell body root not covered")
    body = _cell_build(builder, body_root_hop, cell_rows)
    if agg_op is AggOp.SUM_SQ:
        body = CNode("u:pow2", [body])

    main_hop = _pick_cell_main(builder.input_hops, body_root_hop.dims, config)
    if main_hop is None:
        raise CodegenError("cell plan without matrix input")
    specs, main_index = builder.finalize_inputs(main_hop, Access.SIDE_ROW)

    sparse_safe = _probe_sparse_safe([body], specs, main_index) and (
        agg_op in (None, AggOp.SUM, AggOp.SUM_SQ)
    )
    if agg_op is not None:
        # SUM_SQ squares inside the body, so the skeleton reduces with
        # a plain sum; MEAN is never fused (Cell template conditions).
        agg_name = "sum" if agg_op in (AggOp.SUM, AggOp.SUM_SQ) else _AGG_NAME[agg_op]
    cplan = CPlan(
        ttype=TemplateType.CELL,
        out_type=out_type,
        roots=[body],
        inputs=specs,
        main_index=main_index,
        sparse_safe=sparse_safe,
        agg_ops=[agg_name] if agg_op else [],
        out_rows=root.rows,
        out_cols=root.cols,
        covered_hop_ids=sorted(covered_ids),
    )
    return cplan, builder.input_hops


def _pick_cell_main(input_hops: list[Hop], dims: tuple[int, int], config) -> Hop | None:
    aligned = [h for h in input_hops if h.is_matrix and h.dims == dims]
    if aligned:
        # Prefer the sparsest aligned input as the driver (the paper's
        # "correctly selects X as sparse driver").
        return min(aligned, key=lambda h: (h.sparsity, -h.cells))
    mats = [h for h in input_hops if h.is_matrix]
    if mats:
        return max(mats, key=lambda h: h.cells)
    return None


# ----------------------------------------------------------------------
# Multi-aggregate template
# ----------------------------------------------------------------------
def construct_multi_agg(plans: list[OperatorPlan], config):
    """One CPlan computing several full aggregates in a single pass."""
    roots: list[CNode] = []
    agg_ops: list[str] = []
    all_inputs: list[Hop] = []
    seen: set[int] = set()
    for plan in plans:
        for hop in plan.inputs:
            if hop.id not in seen:
                seen.add(hop.id)
                all_inputs.append(hop)
    covered_ids = {h.id for p in plans for h in p.covered}
    builder = _Builder(all_inputs, covered_ids)

    dims = None
    for plan in plans:
        root = plan.root
        if not isinstance(root, AggUnaryOp):
            raise CodegenError("multi-agg root is not an aggregation")
        body_hop = root.inputs[0]
        dims = body_hop.dims if dims is None else dims
        body = _cell_build(builder, body_hop, body_hop.rows)
        if root.agg_op is AggOp.SUM_SQ:
            body = CNode("u:pow2", [body])
        roots.append(body)
        agg_ops.append(
            _AGG_NAME[root.agg_op if root.agg_op is not AggOp.SUM_SQ else AggOp.SUM]
        )

    main_hop = _pick_cell_main(builder.input_hops, dims, config)
    if main_hop is None:
        raise CodegenError("multi-agg plan without matrix input")
    specs, main_index = builder.finalize_inputs(main_hop, Access.SIDE_ROW)
    sparse_safe = _probe_sparse_safe(roots, specs, main_index) and all(
        a == "sum" for a in agg_ops
    )
    cplan = CPlan(
        ttype=TemplateType.MAGG,
        out_type=OutType.MULTI_AGG if len(roots) > 1 else OutType.FULL_AGG,
        roots=roots,
        inputs=specs,
        main_index=main_index,
        sparse_safe=sparse_safe,
        agg_ops=agg_ops,
        out_rows=len(roots),
        out_cols=1,
        covered_hop_ids=sorted(covered_ids),
    )
    return cplan, builder.input_hops


# ----------------------------------------------------------------------
# Row template
# ----------------------------------------------------------------------
def _construct_row(plan: OperatorPlan, config):
    root = plan.root
    covered_ids = {h.id for h in plan.covered}
    n_rows = row_dim(root)
    builder = _Builder(plan.inputs, covered_ids)

    def build(root_hop: Hop) -> CNode:
        # Iterative post-order (Row bodies host deep cellwise chains).
        stack = [root_hop]
        while stack:
            hop = stack[-1]
            if hop.id in builder.cache:
                stack.pop()
                continue
            if isinstance(hop, LiteralOp):
                builder.cache[hop.id] = CNode("lit", value=hop.value)
                stack.pop()
                continue
            if hop.id not in builder.covered_ids:
                if hop.is_scalar:
                    node = builder.data(hop, Access.SCALAR)
                elif hop.is_matrix and hop.rows == n_rows:
                    node = builder.data(hop, Access.SIDE_ROW)
                else:
                    node = builder.data(hop, Access.SIDE_FULL)
                builder.cache[hop.id] = node
                stack.pop()
                continue
            if isinstance(hop, AggUnaryOp):
                if hop.direction is not AggDir.ROW:
                    raise CodegenError("non-row aggregation inside a Row body")
                kids = [hop.inputs[0]]
            elif isinstance(hop, AggBinaryOp):
                left, right = hop.inputs
                if isinstance(left, ReorgOp) and left.id in builder.covered_ids:
                    raise CodegenError("t(Z) %*% Q only valid at the operator root")
                if right.id in builder.covered_ids:
                    raise CodegenError("matmult with fused right operand in Row body")
                kids = [left]
            elif isinstance(hop, IndexingOp):
                kids = [hop.inputs[0]]
            elif isinstance(hop, (UnaryOp, BinaryOp, TernaryOp)):
                kids = list(hop.inputs)
            else:
                raise CodegenError(f"unsupported Row body op {hop.opcode()}")
            missing = [c for c in kids if c.id not in builder.cache]
            if missing:
                stack.extend(reversed(missing))
                continue
            if isinstance(hop, AggUnaryOp):
                node = CNode(
                    f"rowagg:{_AGG_NAME[hop.agg_op]}",
                    [builder.cache[hop.inputs[0].id]],
                )
            elif isinstance(hop, AggBinaryOp):
                left, right = hop.inputs
                node = CNode(
                    "mm",
                    [builder.cache[left.id], builder.data(right, Access.SIDE_FULL)],
                )
            elif isinstance(hop, IndexingOp):
                node = CNode(
                    "rix", [builder.cache[hop.inputs[0].id]], meta=(hop.cl, hop.cu)
                )
            else:
                node = _cell_like(hop, [builder.cache[c.id] for c in hop.inputs])
            builder.cache[hop.id] = node
            stack.pop()
        return builder.cache[root_hop.id]

    agg_ops: list[str] = []
    if isinstance(root, AggUnaryOp) and root.direction in (AggDir.COL, AggDir.FULL):
        inner = build(root.inputs[0])
        if root.agg_op is AggOp.SUM_SQ:
            inner = CNode("u:pow2", [inner])
        agg = _AGG_NAME[root.agg_op if root.agg_op is not AggOp.SUM_SQ else AggOp.SUM]
        if root.direction is AggDir.COL:
            out_type = OutType.COL_AGG
            body = CNode(f"colagg:{agg}", [inner])
        else:
            out_type = OutType.FULL_AGG
            body = CNode(f"fullagg:{agg}", [inner])
        agg_ops = [agg]
    elif isinstance(root, AggBinaryOp) and isinstance(root.inputs[0], ReorgOp):
        reorg, right = root.inputs
        z_hop = reorg.inputs[0]
        lhs = build(z_hop)
        rhs = build(right)
        out_type = OutType.COL_AGG_T
        body = CNode("touter", [lhs, rhs])
        agg_ops = ["sum"]
        covered_ids.add(reorg.id)
    else:
        body = build(root)
        out_type = OutType.ROW_AGG if root.cols == 1 else OutType.NO_AGG

    main_hop = _pick_row_main(builder.input_hops, n_rows)
    if main_hop is None:
        raise CodegenError("row plan without row-aligned matrix input")
    specs, main_index = builder.finalize_inputs(main_hop, Access.SIDE_ROW)
    # The main input must be read row-wise; if it was voted SIDE_FULL
    # (e.g. used as a matmult operand), the plan is not realizable.
    if any(
        s.access is Access.SIDE_FULL and s.hop_id == main_hop.id for s in specs
    ):
        raise CodegenError("row main input used as full side")

    cplan = CPlan(
        ttype=TemplateType.ROW,
        out_type=out_type,
        roots=[body],
        inputs=specs,
        main_index=main_index,
        sparse_safe=False,
        agg_ops=agg_ops,
        out_rows=root.rows if root.is_matrix else 0,
        out_cols=root.cols if root.is_matrix else 0,
        covered_hop_ids=sorted(covered_ids),
    )
    return cplan, builder.input_hops


def _pick_row_main(input_hops: list[Hop], n_rows: int) -> Hop | None:
    aligned = [
        h for h in input_hops if h.is_matrix and h.rows == n_rows and h.cols >= 2
    ]
    if not aligned:
        aligned = [h for h in input_hops if h.is_matrix and h.rows == n_rows]
    if not aligned:
        return None
    return max(aligned, key=lambda h: h.cells)


def _cell_like(hop: Hop, children: list[CNode]) -> CNode:
    if isinstance(hop, UnaryOp):
        return CNode(f"u:{hop.op}", children)
    if isinstance(hop, BinaryOp):
        return CNode(f"b:{hop.op}", children)
    return CNode(f"t:{hop.op}", children)


# ----------------------------------------------------------------------
# Outer template
# ----------------------------------------------------------------------
def _construct_outer(plan: OperatorPlan, config):
    from repro.codegen.tpl_outer import is_outer_product_like

    root = plan.root
    covered_ids = {h.id for h in plan.covered}
    outer_mm = None
    for hop in plan.covered:
        if isinstance(hop, AggBinaryOp) and is_outer_product_like(
            hop, config.outer_max_rank
        ):
            outer_mm = hop
            break
    if outer_mm is None:
        raise CodegenError("no outer-product matmult in cover")
    u_hop = outer_mm.inputs[0]
    vt_hop = outer_mm.inputs[1]
    if u_hop.id in covered_ids or (
        vt_hop.id in covered_ids and not isinstance(vt_hop, ReorgOp)
    ):
        raise CodegenError("computed factor inputs are not supported")
    v_transposed = False
    v_hop = vt_hop
    if isinstance(vt_hop, ReorgOp):
        v_hop = vt_hop.inputs[0]
        covered_ids.discard(vt_hop.id)
    else:
        v_transposed = True  # right factor given as k x n

    inputs = [h for h in plan.inputs if h.id != vt_hop.id]
    if all(h.id != v_hop.id for h in inputs):
        inputs.append(v_hop)
    builder = _Builder(inputs, covered_ids)

    def build(root_hop: Hop) -> CNode:
        # Iterative post-order, mirroring the other template builders.
        stack = [root_hop]
        while stack:
            hop = stack[-1]
            if hop.id in builder.cache:
                stack.pop()
                continue
            if isinstance(hop, LiteralOp):
                node = CNode("lit", value=hop.value)
            elif hop is outer_mm:
                node = CNode("uv")
            elif hop.id not in builder.covered_ids:
                if hop.is_scalar:
                    node = builder.data(hop, Access.SCALAR)
                elif hop.dims == outer_mm.dims:
                    node = builder.data(hop, Access.SIDE_ROW)
                else:
                    raise CodegenError("outer side input with foreign dims")
            elif isinstance(hop, (UnaryOp, BinaryOp, TernaryOp)):
                missing = [c for c in hop.inputs if c.id not in builder.cache]
                if missing:
                    stack.extend(reversed(missing))
                    continue
                node = _cell_like(hop, [builder.cache[c.id] for c in hop.inputs])
            else:
                raise CodegenError(f"unsupported Outer body op {hop.opcode()}")
            builder.cache[hop.id] = node
            stack.pop()
        return builder.cache[root_hop.id]

    side_w_hop = None
    if isinstance(root, AggUnaryOp):
        body = build(root.inputs[0])
        if root.agg_op is AggOp.SUM_SQ:
            body = CNode("u:pow2", [body])
        out_type = OutType.OUTER_FULL_AGG
        out_rows, out_cols = 0, 0
    elif isinstance(root, AggBinaryOp) and root is not outer_mm:
        left, right = root.inputs
        if isinstance(left, ReorgOp) and left.id in covered_ids:
            body = build(left.inputs[0])
            side_w_hop = right
            out_type = OutType.OUTER_LEFT
        else:
            body = build(left)
            side_w_hop = right
            out_type = OutType.OUTER_RIGHT
        out_rows, out_cols = root.rows, root.cols
    else:
        body = build(root)
        out_type = OutType.OUTER_NO_AGG
        out_rows, out_cols = root.rows, root.cols

    if side_w_hop is not None:
        builder.data(side_w_hop, Access.SIDE_FULL)

    main_hop = _pick_outer_driver(builder.input_hops, outer_mm.dims, u_hop, v_hop)
    if main_hop is None:
        raise CodegenError("outer plan without driver input")
    specs, main_index = builder.finalize_inputs(main_hop, Access.SIDE_ROW)
    u_index = next(i for i, h in enumerate(builder.input_hops) if h.id == u_hop.id)
    v_index = next(i for i, h in enumerate(builder.input_hops) if h.id == v_hop.id)
    specs[u_index].access = Access.SIDE_FULL
    specs[v_index].access = Access.SIDE_FULL
    w_index = -1
    if side_w_hop is not None:
        w_index = next(
            i for i, h in enumerate(builder.input_hops) if h.id == side_w_hop.id
        )

    if not _probe_outer_safe(body, specs, main_index):
        raise CodegenError("outer plan is not sparse-safe over the driver")

    cplan = CPlan(
        ttype=TemplateType.OUTER,
        out_type=out_type,
        roots=[body],
        inputs=specs,
        main_index=main_index,
        sparse_safe=True,
        agg_ops=["sum"],
        out_rows=out_rows,
        out_cols=out_cols,
        covered_hop_ids=sorted(covered_ids),
        u_index=u_index,
        v_index=v_index,
        w_index=w_index,
        v_transposed=v_transposed,
    )
    return cplan, builder.input_hops


def _pick_outer_driver(input_hops, outer_dims, u_hop, v_hop):
    candidates = [
        h
        for h in input_hops
        if h.is_matrix and h.dims == outer_dims and h.id not in (u_hop.id, v_hop.id)
    ]
    if not candidates:
        return None
    return min(candidates, key=lambda h: h.sparsity)


# ----------------------------------------------------------------------
# Sparse-safety probing
# ----------------------------------------------------------------------
def eval_cnode(node: CNode, env: dict) -> float:
    """Scalar interpretation of a CNode body (probing and tests).

    ``env`` maps 'in<k>' to input values and 'uv' to the outer-product
    value; row-agg/matmult nodes are treated as their scalar analogue.
    Evaluation is iterative and memoized per call (bodies can be
    thousands of nodes deep).
    """
    memo: dict[int, float] = {}
    stack = [node]
    while stack:
        cur = stack[-1]
        if cur.id in memo:
            stack.pop()
            continue
        if cur.op == "lit":
            memo[cur.id] = cur.value
            stack.pop()
            continue
        if cur.op == "data":
            memo[cur.id] = env[f"in{cur.input_index}"]
            stack.pop()
            continue
        if cur.op == "uv":
            memo[cur.id] = env["uv"]
            stack.pop()
            continue
        missing = [c for c in cur.inputs if c.id not in memo]
        if missing:
            stack.extend(reversed(missing))
            continue
        vals = [memo[c.id] for c in cur.inputs]
        kind, _, op = cur.op.partition(":")
        if kind == "u":
            value = _scalar_unary(op, vals[0])
        elif kind == "b":
            value = _scalar_binary(op, vals[0], vals[1])
        elif kind == "t":
            if op == "+*":
                value = vals[0] + vals[1] * vals[2]
            elif op == "-*":
                value = vals[0] - vals[1] * vals[2]
            else:
                value = vals[1] if vals[0] != 0 else vals[2]
        elif kind in ("rowagg", "colagg", "fullagg"):
            value = vals[0]
        elif kind in ("mm", "touter"):
            value = vals[0] * vals[1]
        elif kind == "rix":
            value = vals[0]
        else:
            raise CodegenError(f"cannot probe CNode op {cur.op}")
        memo[cur.id] = value
        stack.pop()
    return memo[node.id]


def _scalar_unary(op: str, x: float) -> float:
    table = {
        "exp": math.exp,
        "log": lambda v: math.log(v) if v > 0 else float("-inf"),
        "sqrt": lambda v: math.sqrt(abs(v)),
        "abs": abs,
        "sign": lambda v: (v > 0) - (v < 0),
        "round": round,
        "floor": math.floor,
        "ceil": math.ceil,
        "neg": lambda v: -v,
        "not": lambda v: 0.0 if v != 0 else 1.0,
        "sigmoid": lambda v: 1.0 / (1.0 + math.exp(-v)),
        "sprop": lambda v: v * (1.0 - v),
        "pow2": lambda v: v * v,
        "erf": math.erf,
        "normpdf": lambda v: math.exp(-0.5 * v * v) / math.sqrt(2 * math.pi),
    }
    return float(table[op](x))


def _scalar_binary(op: str, a: float, b: float) -> float:
    table = {
        "+": lambda: a + b,
        "-": lambda: a - b,
        # Zero dominates multiplication (sparse execution skips zero
        # cells, so 0 * f(side) contributes 0 even when f overflows).
        "*": lambda: 0.0 if a == 0.0 or b == 0.0 else a * b,
        "/": lambda: 0.0 if a == 0.0 else (a / b if b != 0 else float("inf")),
        "^": lambda: a ** b if a >= 0 or b == int(b) else float("nan"),
        "min": lambda: min(a, b),
        "max": lambda: max(a, b),
        "==": lambda: float(a == b),
        "!=": lambda: float(a != b),
        "<": lambda: float(a < b),
        ">": lambda: float(a > b),
        "<=": lambda: float(a <= b),
        ">=": lambda: float(a >= b),
        "&": lambda: float(a != 0 and b != 0),
        "|": lambda: float(a != 0 or b != 0),
    }
    return float(table[op]())


def _probe_sparse_safe(roots: list[CNode], specs: list[InputSpec],
                       main_index: int) -> bool:
    """Numerically probe f(main=0, sides=random) == 0.

    Side values must cover both signs and magnitudes around the
    comparison boundaries (min/max/relational operators flip behaviour
    with the sign of their operands).
    """
    if main_index < 0:
        return False
    rng = random.Random(42)
    probes = [-1.7, -0.4, 0.6, 1.9]
    for trial in range(8):
        env = {
            f"in{i}": probes[(trial + i) % len(probes)] * rng.uniform(0.5, 1.5)
            for i in range(len(specs))
        }
        env[f"in{main_index}"] = 0.0
        env["uv"] = probes[trial % len(probes)] * rng.uniform(0.5, 1.5)
        for root in roots:
            try:
                value = eval_cnode(root, env)
            except (ValueError, OverflowError):
                return False
            if not (abs(value) < 1e-12):
                return False
    return True


def _probe_outer_safe(body: CNode, specs: list[InputSpec], main_index: int) -> bool:
    """The fused weight must vanish at zero cells of the driver."""
    return _probe_sparse_safe([body], specs, main_index)
