"""Outer template: sparsity-exploiting fused outer products.

Binds to non-zero cells X_ij of a sparse driver, rows U_i and V_j of the
low-rank factors, and dense side inputs (Table 1).  Variants: left mm,
right mm, no agg, full agg.  Exploiting the sparse driver changes the
asymptotic behaviour by avoiding the huge dense UV^T intermediate
(Figure 1(d); Expression (1) of ALS-CG).
"""

from __future__ import annotations

from repro.codegen.template import CloseType, Template, TemplateType, is_cellwise
from repro.hops.hop import AggBinaryOp, AggUnaryOp, BinaryOp, Hop, ReorgOp
from repro.hops.types import AggDir, AggOp


def _is_transpose(hop: Hop) -> bool:
    return isinstance(hop, ReorgOp) and hop.op == "t"


def is_outer_product_like(hop: Hop, max_rank: int) -> bool:
    """(m x k) @ (k x n) with small k and large m, n."""
    if not isinstance(hop, AggBinaryOp):
        return False
    left, right = hop.inputs
    rank = left.cols
    return (
        1 <= rank <= max_rank
        and hop.rows > rank
        and hop.cols > rank
        and left.is_matrix
        and right.is_matrix
    )


class OuterTemplate(Template):
    """OFMC conditions of the Outer template."""

    ttype = TemplateType.OUTER

    def open(self, hop: Hop) -> bool:
        return is_outer_product_like(hop, self.config.outer_max_rank)

    def fuse(self, hop: Hop, hop_in: Hop) -> bool:
        if _is_transpose(hop_in):
            # t(O) %*% U (left mm): the transpose bridges to a matmult.
            return isinstance(hop, AggBinaryOp) and hop.inputs[0] is hop_in
        if is_cellwise(hop):
            # Cell operations preserving the outer dims (side inputs may
            # be scalars or m x n matrices such as the sparse driver X).
            return hop.dims == hop_in.dims
        if isinstance(hop, AggUnaryOp):
            # Full aggregation (e.g. the wsloss pattern).
            return hop.direction is AggDir.FULL and hop.agg_op in (AggOp.SUM, AggOp.SUM_SQ)
        if isinstance(hop, AggBinaryOp):
            left, right = hop.inputs
            if left is hop_in:
                # O %*% V (right mm): requires a narrow second factor.
                return right.cols <= self.config.outer_max_rank
            if right is hop_in:
                # t(Z) %*% O (left mm through an explicit transpose).
                return _is_transpose(left) and left.inputs[0].cols <= self.config.outer_max_rank
        if _is_transpose(hop):
            return True  # bridge; validated at the consuming matmult
        return False

    def merge(self, hop: Hop, hop_in: Hop) -> bool:
        # Absorb cell plans with matching (outer) dimensions, e.g. a
        # fused (X != 0) guard.
        return hop_in.is_matrix and hop_in.dims == hop.dims and is_cellwise(hop_in)

    def close(self, hop: Hop) -> CloseType:
        # The final aggregation or matrix multiply completes the fused
        # outer-product operator; validity (existence of a
        # sparsity-exploiting operator) is checked by the explorer.
        if isinstance(hop, AggUnaryOp):
            if hop.direction is AggDir.FULL:
                return CloseType.CLOSED_VALID
            return CloseType.CLOSED_INVALID
        if isinstance(hop, AggBinaryOp) and not self.open(hop):
            return CloseType.CLOSED_VALID
        # Still open: the bare outer product (or a cell chain over it)
        # may yet be consumed by an exploiting operation; a standalone
        # operator would also be valid (no-agg variant) once a
        # sparsity-exploiting multiply is covered.
        return CloseType.OPEN_VALID


def has_sparse_driver(covered: list[Hop], outer_dims: tuple[int, int]) -> bool:
    """True if the covered DAG contains a sparsity-exploiting multiply.

    The condition of the paper's close validation: an element-wise
    multiply at the outer dimensions (its non-UV operand acts as the
    sparse driver; a dense driver still yields a valid — if less
    beneficial — operator).
    """
    for hop in covered:
        if isinstance(hop, BinaryOp) and hop.op in ("*", "!="):
            if hop.dims == outer_dims:
                return True
    return False
