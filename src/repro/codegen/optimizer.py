"""The codegen optimizer: five compilation steps (Section 2.1).

1. candidate exploration (memo table, Algorithm 1),
2. candidate selection (cost-based MPSkipEnum, or the fuse-all /
   fuse-no-redundancy heuristics),
3. CPlan construction for selected plans,
4. code generation + compilation (with the plan cache),
5. replacement of covered HOP DAG parts by fused operators.
"""

from __future__ import annotations

import time

from repro.codegen.construct import construct_cplan, construct_multi_agg
from repro.codegen.cost import CostEstimator, OperatorPlan, blocked_set
from repro.codegen.enumerate import mpskip_enum
from repro.codegen.explore import explore
from repro.codegen.heuristics import fuse_all, fuse_no_redundancy
from repro.codegen.partitions import build_partitions
from repro.codegen.plan_cache import PlanCache
from repro.codegen.template import TemplateType
from repro.config import CodegenConfig
from repro.hops.hop import Hop, SpoofOp, SpoofOutOp, collect_dag
from repro.runtime.stats import RuntimeStats


class CodegenOptimizer:
    """Optimizes one HOP DAG at a time and rewrites it in place."""

    def __init__(self, config: CodegenConfig, plan_cache: PlanCache | None = None,
                 stats: RuntimeStats | None = None):
        self.config = config
        self.plan_cache = plan_cache or PlanCache(config.plan_cache_enabled)
        self.stats = stats or RuntimeStats()

    def optimize(self, roots: list[Hop], policy: str = "cost") -> list[Hop]:
        """Explore, select, generate, and splice fused operators.

        ``policy``: 'cost' (the optimizer), 'fa' (fuse-all), or 'fnr'
        (fuse-no-redundancy).  Returns the (possibly modified) roots.
        """
        start = time.perf_counter()
        heuristic = policy in ("fa", "fnr")
        memo = explore(roots, self.config, prune_dominated=heuristic)
        self.stats.n_dags_optimized += 1
        if not memo.group_ids():
            self.stats.codegen_seconds += time.perf_counter() - start
            return roots

        hop_by_id = {h.id: h for h in collect_dag(roots)}
        estimator = CostEstimator(memo, self.config, hop_by_id)
        partitions = build_partitions(memo, roots)
        self.stats.n_partitions += len(partitions)

        chosen: dict[int, OperatorPlan] = {}
        for part in partitions:
            if policy == "fa":
                chosen.update(fuse_all(estimator, part))
            elif policy == "fnr":
                chosen.update(fuse_no_redundancy(estimator, part))
            elif (
                not part.points
                and len(part.members) >= self.config.large_partition_members
            ):
                # Degenerate giant partition (e.g. a multi-thousand-op
                # cellwise chain) with nothing to enumerate: the cost
                # descent would compute one O(|members|) cover per node
                # (quadratic overall) and its depth-limited lookahead
                # under-costs deep chains anyway.  Take maximal fusion.
                chosen.update(fuse_all(estimator, part))
            else:
                result = mpskip_enum(
                    estimator, part, self.config, memo, hop_by_id, self.stats
                )
                estimator.cost_partition(
                    part,
                    blocked_set(part.points, result.assignment),
                    record=chosen,
                )

        roots = self._materialize_operators(roots, chosen)
        self.stats.codegen_seconds += time.perf_counter() - start
        return roots

    # ------------------------------------------------------------------
    def _materialize_operators(self, roots: list[Hop],
                               chosen: dict[int, OperatorPlan]) -> list[Hop]:
        """Construct CPlans, compile operators, splice the DAG."""
        magg_groups, singles = _group_multi_aggregates(chosen)

        replacements: list[tuple[list[Hop], object, list[Hop]]] = []
        for plan in singles:
            built = construct_cplan(plan, self.config)
            if built is None:
                continue
            cplan, input_hops = built
            self.stats.n_cplans_constructed += 1
            operator = self.plan_cache.get_or_compile(cplan, self.config, self.stats)
            replacements.append(([plan.root], operator, input_hops))

        for group in magg_groups:
            try:
                cplan, input_hops = construct_multi_agg(group, self.config)
            except Exception:
                for plan in group:
                    built = construct_cplan(plan, self.config)
                    if built is not None:
                        cplan_s, hops_s = built
                        self.stats.n_cplans_constructed += 1
                        op = self.plan_cache.get_or_compile(
                            cplan_s, self.config, self.stats
                        )
                        replacements.append(([plan.root], op, hops_s))
                continue
            self.stats.n_cplans_constructed += len(group)
            operator = self.plan_cache.get_or_compile(cplan, self.config, self.stats)
            replacements.append(([p.root for p in group], operator, input_hops))

        # Phase 1: create all SpoofOps against the *original* hops, so
        # operators reading another operator's output still reference
        # the original root; phase 2 rewires every covered root, which
        # updates those references through the parent links.
        spoofs: list[tuple[list[Hop], SpoofOp]] = []
        for covered_roots, operator, input_hops in replacements:
            spoof = SpoofOp(
                operator.cplan.ttype.value, operator, covered_roots[0], input_hops,
                covered_roots=covered_roots,
            )
            if len(covered_roots) > 1:
                # Multi-aggregate: the SpoofOp yields a k x 1 matrix.
                spoof.rows, spoof.cols = len(covered_roots), 1
                spoof.nnz = len(covered_roots)
            spoofs.append((covered_roots, spoof))

        root_map: dict[int, Hop] = {}
        for covered_roots, spoof in spoofs:
            if len(covered_roots) == 1:
                covered_roots[0].rewire_to(spoof)
                root_map[covered_roots[0].id] = spoof
            else:
                for index, agg_root in enumerate(covered_roots):
                    out = SpoofOutOp(spoof, index)
                    agg_root.rewire_to(out)
                    root_map[agg_root.id] = out
        return [root_map.get(r.id, r) for r in roots]


def _group_multi_aggregates(chosen: dict[int, OperatorPlan]):
    """Group selected MAgg plans sharing inputs (up to 3 per operator).

    Mirrors the paper's multi-aggregate operators over common inputs
    (Figure 1(c)); plans without a partner degrade to single-root
    multi-aggregates (equivalent to a full-agg Cell operator).
    """
    maggs = [p for p in chosen.values() if p.ttype is TemplateType.MAGG]
    others = [p for p in chosen.values() if p.ttype is not TemplateType.MAGG]

    groups: list[list[OperatorPlan]] = []
    for plan in sorted(maggs, key=lambda p: p.root.id):
        placed = False
        plan_inputs = {h.id for h in plan.inputs}
        for group in groups:
            if len(group) >= 3:
                continue
            group_inputs = {h.id for p in group for h in p.inputs}
            if plan_inputs & group_inputs:
                group.append(plan)
                placed = True
                break
        if not placed:
            groups.append([plan])

    multi = [g for g in groups if len(g) > 1]
    single_maggs = [g[0] for g in groups if len(g) == 1]
    return multi, others + single_maggs
