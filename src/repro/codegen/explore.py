"""Candidate exploration: the OFMC algorithm (Algorithm 1).

A single bottom-up pass over the HOP DAG populates the memo table with
all valid partial fusion plans.  The algorithm is template-oblivious:
all template-specific conditions live in the OFMC objects
(open/fuse/merge/close), which apply only locally to an operator and
its inputs — hence linear time and space in the number of operators.
"""

from __future__ import annotations

import itertools

from repro.codegen.memo import MemoEntry, MemoTable
from repro.codegen.template import CloseType, Template, TemplateType
from repro.codegen.tpl_cell import CellTemplate
from repro.codegen.tpl_magg import MultiAggTemplate
from repro.codegen.tpl_outer import OuterTemplate, has_sparse_driver
from repro.codegen.tpl_row import RowTemplate
from repro.config import CodegenConfig
from repro.hops.hop import Hop, topological_order


def make_templates(config: CodegenConfig) -> dict[TemplateType, Template]:
    """The template registry |T| = 4."""
    templates = [
        CellTemplate(config),
        RowTemplate(config),
        MultiAggTemplate(config),
        OuterTemplate(config),
    ]
    return {t.ttype: t for t in templates}


def explore(roots: list[Hop], config: CodegenConfig,
            prune_dominated: bool = False) -> MemoTable:
    """Populate a memo table for the DAG under ``roots``.

    ``prune_dominated`` enables the advanced pruning that is sound only
    for heuristic selection policies (Section 3.2).
    """
    memo = MemoTable()
    templates = make_templates(config)
    # The recursion of Algorithm 1 is a DFS postorder; we linearize it.
    for hop in topological_order(roots):
        _explore_hop(hop, memo, templates, prune_dominated)
    return memo


def _explore_hop(hop: Hop, memo: MemoTable,
                 templates: dict[TemplateType, Template],
                 prune_dominated: bool) -> None:
    # Memoization of processed operators (lines 1-3).
    if memo.is_processed(hop.id):
        return

    # Open initial operator plans (lines 7-10).
    new_entries: list[MemoEntry] = []
    for template in templates.values():
        if template.open(hop):
            new_entries.extend(_create_plans(hop, None, template, memo))

    # Fuse and merge operator plans (lines 11-15): only *open* plans at
    # the inputs can be expanded to this consumer.
    seen_pairs: set[tuple[int, TemplateType]] = set()
    for hop_in in hop.inputs:
        for ttype in memo.extendable_types(hop_in.id):
            if (hop_in.id, ttype) in seen_pairs:
                continue
            seen_pairs.add((hop_in.id, ttype))
            template = templates[ttype]
            if template.fuse(hop, hop_in):
                new_entries.extend(_create_plans(hop, hop_in, template, memo))

    # Close operator plans if required (lines 16-20).
    closed_entries: list[MemoEntry] = []
    for entry in new_entries:
        status = templates[entry.ttype].close(hop)
        if entry.ttype is TemplateType.OUTER:
            covered = memo.covered_hops(hop, entry)
            dims = _outer_dims(covered, hop)
            driver_covered = has_sparse_driver(covered, dims)
            if driver_covered and not _outer_chain_safe(hop, covered, dims):
                # Operations above the sparse-driver multiply must stay
                # sparse-safe; otherwise the plan is invalid (e.g. the
                # Cell consumer in Y + X (U V^T), Section 4.2).
                status = CloseType.CLOSED_INVALID
            elif status is CloseType.CLOSED_VALID and not driver_covered:
                # Outer templates are validated for the existence of
                # sparsity-exploiting operators at close.
                status = CloseType.CLOSED_INVALID
            elif not status.is_closed and not driver_covered:
                # The bare outer product is an invalid entry point for
                # materialization (open invalid) until fusion provides
                # a sparse driver.
                status = CloseType.OPEN_INVALID
            if entry.n_refs == 0 and not templates[TemplateType.OUTER].open(hop):
                # An Outer entry without references at a non-matmult
                # operator covers no outer product at all.
                status = CloseType.CLOSED_INVALID
        closed_entries.append(entry.with_status(status))

    memo.add(hop, [e for e in closed_entries if e.status is not CloseType.CLOSED_INVALID])

    # Prune redundant plans and memoize (lines 21-23).
    memo.prune_redundant(hop)
    if prune_dominated:
        memo.prune_dominated(hop)
    memo.mark_processed(hop)


def _create_plans(hop: Hop, fuse_in: Hop | None, template: Template,
                  memo: MemoTable) -> list[MemoEntry]:
    """Enumerate local plan combinations for a new entry at ``hop``.

    Per input, a group reference is allowed if the input group contains
    a compatible plan and either it is the fusion edge itself or the
    pair-wise merge condition holds.  The cartesian product of the
    options yields up to 2^|inputs| entries.
    """
    options: list[list[int]] = []
    for hop_in in hop.inputs:
        choices = [-1]
        if memo.has_compatible_plan(hop_in.id, template.ttype):
            is_fuse_edge = fuse_in is not None and hop_in is fuse_in
            if is_fuse_edge or template.merge(hop, hop_in):
                choices.append(hop_in.id)
        options.append(choices)
    entries = []
    for refs in itertools.product(*options):
        entries.append(MemoEntry(template.ttype, tuple(refs)))
    return entries


def _outer_dims(covered: list[Hop], hop: Hop) -> tuple[int, int]:
    """The m x n dimensions of the outer product within a covered set."""
    from repro.hops.hop import AggBinaryOp

    for cov in covered:
        if isinstance(cov, AggBinaryOp) and cov.inputs[0].cols <= cov.rows:
            return cov.dims
    return hop.dims


def _outer_chain_safe(root: Hop, covered: list[Hop],
                      outer_dims: tuple[int, int]) -> bool:
    """Structural sparse-safety of the path above the driver multiply.

    Every covered operator that consumes the driver multiply's result
    (transitively, up to the entry root) must preserve zeros of the
    driver: element-wise multiply/divide, sparse-safe unary functions,
    sum aggregations, transposes, and the final matmult.  Operations
    *below* the multiply (the dense UV^T chain, e.g. log(UV^T + eps))
    are unconstrained.  Numeric probing at construction remains the
    final authority.
    """
    from repro.hops.hop import AggBinaryOp, AggUnaryOp, BinaryOp, ReorgOp, UnaryOp
    from repro.hops.types import AggOp, SPARSE_SAFE_UNARY

    covered_ids = {h.id for h in covered}
    parents_in_cover: dict[int, list[Hop]] = {h.id: [] for h in covered}
    for hop in covered:
        for child in hop.inputs:
            if child.id in covered_ids:
                parents_in_cover[child.id].append(hop)

    def ancestors(start: Hop) -> list[Hop]:
        seen: dict[int, Hop] = {}
        stack = list(parents_in_cover[start.id])
        while stack:
            node = stack.pop()
            if node.id in seen:
                continue
            seen[node.id] = node
            stack.extend(parents_in_cover[node.id])
        return list(seen.values())

    def is_safe(hop: Hop) -> bool:
        if isinstance(hop, BinaryOp):
            return hop.op in ("*", "/")
        if isinstance(hop, UnaryOp):
            return hop.op in SPARSE_SAFE_UNARY
        if isinstance(hop, AggUnaryOp):
            return hop.agg_op in (AggOp.SUM, AggOp.SUM_SQ)
        if isinstance(hop, (AggBinaryOp, ReorgOp)):
            return True
        return False

    drivers = [
        h
        for h in covered
        if isinstance(h, BinaryOp) and h.op in ("*", "!=") and h.dims == outer_dims
    ]
    return any(all(is_safe(a) for a in ancestors(d)) for d in drivers)
