"""Code generation plans (CPlans): backend-independent fused operators.

A CPlan consists of CNodes — template meta information plus a DAG of
basic operations encoding the data flow (Section 2.2).  CPlans are
constructed from selected memo-table plans and expanded recursively
into source code; a semantic hash identifies equivalent CPlans in the
plan cache.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from enum import Enum

from repro.codegen.template import TemplateType

_CNODE_IDS = itertools.count(1)


class OutType(Enum):
    """Output/aggregation variants of the templates (Table 1)."""

    NO_AGG = "no_agg"
    ROW_AGG = "row_agg"
    COL_AGG = "col_agg"
    COL_AGG_T = "col_agg_t"  # t(Z) %*% Q accumulation
    FULL_AGG = "full_agg"
    MULTI_AGG = "multi_agg"
    OUTER_NO_AGG = "outer_no_agg"
    OUTER_LEFT = "outer_left"
    OUTER_RIGHT = "outer_right"
    OUTER_FULL_AGG = "outer_full_agg"


class Access(Enum):
    """How a fused operator binds an input."""

    MAIN = "main"
    SIDE_ROW = "side_row"  # row-aligned with the main input
    SIDE_FULL = "side_full"  # read in full (broadcast-like)
    SCALAR = "scalar"


@dataclass
class InputSpec:
    """One operator input with its binding."""

    hop_id: int
    rows: int
    cols: int
    access: Access

    def shape_class(self) -> str:
        if self.access is Access.SCALAR:
            return "s"
        if self.cols == 1:
            return "c"  # column vector
        if self.rows == 1:
            return "r"  # row vector
        return "m"


class CNode:
    """A basic-operation node of a CPlan body DAG."""

    __slots__ = ("id", "op", "inputs", "input_index", "value", "meta")

    def __init__(self, op: str, inputs: list["CNode"] | None = None,
                 input_index: int = -1, value: float = 0.0,
                 meta: tuple = ()):
        self.id = next(_CNODE_IDS)
        self.op = op
        self.inputs = inputs or []
        self.input_index = input_index
        self.value = value
        self.meta = meta

    def signature(self, memo: dict[int, str]) -> str:
        """Stable structural signature for hashing and CSE.

        First occurrence of a node expands in full; any later occurrence
        is a back-reference ``@k`` where ``k`` numbers nodes in order of
        completed expansion.  The traversal is iterative (body DAGs can
        be thousands of nodes deep).
        """
        if self.id in memo:
            return f"@{memo[self.id]}"

        def open_frame(node: "CNode") -> list:
            parts = [node.op]
            if node.op == "data":
                parts.append(str(node.input_index))
            elif node.op == "lit":
                parts.append(repr(node.value))
            if node.meta:
                parts.append(repr(node.meta))
            return [node, parts, iter(node.inputs)]

        frames = [open_frame(self)]
        completed: str | None = None
        while frames:
            node, parts, child_iter = frames[-1]
            if completed is not None:
                parts.append(completed)
                completed = None
            descended = False
            for child in child_iter:
                if child.id in memo:
                    parts.append(f"@{memo[child.id]}")
                    continue
                frames.append(open_frame(child))
                descended = True
                break
            if descended:
                continue
            memo[node.id] = str(len(memo))
            completed = "(" + " ".join(parts) + ")"
            frames.pop()
        return completed

    def __repr__(self) -> str:
        return f"CNode[{self.op}]"


@dataclass
class CPlan:
    """A fused-operator plan ready for code generation."""

    ttype: TemplateType
    out_type: OutType
    roots: list[CNode]  # one root, or several for MULTI_AGG
    inputs: list[InputSpec]
    main_index: int  # index into inputs, -1 if none
    sparse_safe: bool = False
    agg_ops: list[str] = field(default_factory=list)  # per root: sum/min/max
    out_rows: int = 0
    out_cols: int = 0
    covered_hop_ids: list[int] = field(default_factory=list)
    # Outer-specific: indices of U/V factor inputs, the mm side factor,
    # and whether the right factor arrives already transposed (k x n).
    u_index: int = -1
    v_index: int = -1
    w_index: int = -1
    v_transposed: bool = False

    def semantic_hash(self) -> str:
        """Hash identifying equivalent CPlans (plan-cache key).

        Includes the template, output variant, body structure, input
        bindings and shape classes — but not absolute sizes, so
        operators are reused across iterations and matrix sizes.
        """
        memo: dict[int, str] = {}
        parts = [
            self.ttype.value,
            self.out_type.value,
            "ss" if self.sparse_safe else "ds",
            str(self.main_index),
            str(self.u_index),
            str(self.v_index),
            str(self.w_index),
            str(self.v_transposed),
            "|".join(f"{s.access.value}:{s.shape_class()}" for s in self.inputs),
            "|".join(self.agg_ops),
        ]
        parts.extend(r.signature(memo) for r in self.roots)
        digest = hashlib.sha256("§".join(parts).encode()).hexdigest()[:16]
        return digest


def compressed_cell_eligible(cplan: CPlan) -> bool:
    """Dictionary-only execution guard (Figure 9 conditions).

    The single source of truth for the serial cell skeleton, the
    group-wise intra-op partitioner, the kernel tier's compressed-CELL
    variant, and npgen's variant emission: sparse-safe, no side inputs,
    sum-aggregated FULL/MULTI_AGG cell plans execute over distinct
    dictionary values only.  A static plan property — independent of
    the bound runtime inputs.
    """
    n_sides = sum(
        1 for idx, spec in enumerate(cplan.inputs)
        if idx != cplan.main_index and spec.access is not Access.SCALAR
    )
    return (
        cplan.ttype in (TemplateType.CELL, TemplateType.MAGG)
        and cplan.sparse_safe
        and n_sides == 0
        and cplan.out_type in (OutType.FULL_AGG, OutType.MULTI_AGG)
        and all(a == "sum" for a in cplan.agg_ops)
    )
