"""Template types and the OFMC (open-fuse-merge-close) abstraction.

A template is a generic fused-operator skeleton (Table 1 of the paper).
The OFMC abstraction separates template-specific fusion conditions from
the DAG traversal of the exploration algorithm (Section 3.2):

* ``open(h)``   — can a new fused operator of this template start at h?
* ``fuse(h,i)`` — can an open operator at input i expand to consumer h?
* ``merge(h,i)``— can an open operator at h absorb plans at input i?
* ``close(h)``  — the close status of the template after operator h.
"""

from __future__ import annotations

from enum import Enum, IntEnum

from repro.config import CodegenConfig
from repro.hops.hop import Hop


class TemplateType(Enum):
    """The four fusion templates of Table 1."""

    CELL = "Cell"
    ROW = "Row"
    MAGG = "MAgg"
    OUTER = "Outer"


class CloseType(IntEnum):
    """Close status of a memo entry (Section 3.1)."""

    OPEN_VALID = 0
    OPEN_INVALID = 1
    CLOSED_VALID = 2
    CLOSED_INVALID = 3

    @property
    def is_closed(self) -> bool:
        return self in (CloseType.CLOSED_VALID, CloseType.CLOSED_INVALID)

    @property
    def is_valid(self) -> bool:
        return self in (CloseType.OPEN_VALID, CloseType.CLOSED_VALID)


# Which child-entry template types an operator of a given template may
# absorb when following fusion references downward.
MERGE_COMPATIBILITY: dict[TemplateType, set[TemplateType]] = {
    TemplateType.CELL: {TemplateType.CELL},
    TemplateType.MAGG: {TemplateType.CELL, TemplateType.MAGG},
    TemplateType.ROW: {TemplateType.ROW, TemplateType.CELL},
    TemplateType.OUTER: {TemplateType.OUTER, TemplateType.CELL},
}


class Template:
    """Base class of the OFMC condition objects."""

    ttype: TemplateType

    def __init__(self, config: CodegenConfig):
        self.config = config

    def open(self, hop: Hop) -> bool:
        raise NotImplementedError

    def fuse(self, hop: Hop, hop_in: Hop) -> bool:
        raise NotImplementedError

    def merge(self, hop: Hop, hop_in: Hop) -> bool:
        raise NotImplementedError

    def close(self, hop: Hop) -> CloseType:
        raise NotImplementedError


def is_cellwise(hop: Hop) -> bool:
    """True for cell-wise unary/binary/ternary operations on matrices."""
    from repro.hops.hop import BinaryOp, TernaryOp, UnaryOp
    from repro.hops.types import CELLWISE_BINARY, CELLWISE_TERNARY, CELLWISE_UNARY

    if isinstance(hop, UnaryOp):
        return hop.op in CELLWISE_UNARY and hop.is_matrix
    if isinstance(hop, BinaryOp):
        return hop.op in CELLWISE_BINARY and hop.is_matrix
    if isinstance(hop, TernaryOp):
        return hop.op in CELLWISE_TERNARY and hop.is_matrix
    return False


def matrix_inputs(hop: Hop) -> list[Hop]:
    """The matrix-typed inputs of a hop."""
    return [h for h in hop.inputs if h.is_matrix]
