"""Row template: fused row-wise operations over a main input's rows.

Binds to sparse/dense rows X_i with side inputs and scalars.  Variants
(Table 1): no agg, row agg, col agg, full agg, col agg transposed, and
the B1 variants for row-wise multiplies with narrow matrices.  The Row
template exploits temporal row locality (e.g. ``t(X) %*% (X %*% v)`` in
a single pass, Figure 1(b)).
"""

from __future__ import annotations

from repro.codegen.template import CloseType, Template, TemplateType, is_cellwise
from repro.hops.hop import AggBinaryOp, AggUnaryOp, Hop, IndexingOp, ReorgOp
from repro.hops.types import AggDir, AggOp

ROW_AGGS = {AggOp.SUM, AggOp.SUM_SQ, AggOp.MIN, AggOp.MAX, AggOp.MEAN}


def _is_transpose(hop: Hop) -> bool:
    return isinstance(hop, ReorgOp) and hop.op == "t"


def row_dim(hop: Hop) -> int:
    """Number of rows iterated by a row operator rooted at ``hop``."""
    if isinstance(hop, AggBinaryOp):
        left = hop.inputs[0]
        if _is_transpose(left):
            return left.inputs[0].rows
        return left.rows
    if _is_transpose(hop):
        return hop.inputs[0].rows
    if isinstance(hop, (AggUnaryOp, IndexingOp)):
        return hop.inputs[0].rows
    return hop.rows


class RowTemplate(Template):
    """OFMC conditions of the Row template."""

    ttype = TemplateType.ROW

    def open(self, hop: Hop) -> bool:
        if isinstance(hop, AggBinaryOp):
            left, right = hop.inputs
            if _is_transpose(left):
                # t(X) %*% W: row-wise outer accumulation over X/W rows.
                base = left.inputs[0]
                return base.is_matrix and base.rows == right.rows and base.cols >= 2
            # X %*% v (matrix-vector) or X %*% V with a narrow V.
            if not left.is_matrix or left.cols < 2 or left.is_vector:
                return False
            return right.cols <= self.config.blocksize
        if isinstance(hop, AggUnaryOp):
            hop_in = hop.inputs[0]
            return (
                hop.agg_op in ROW_AGGS
                and hop_in.is_matrix
                and hop_in.cols >= 2
                and hop.direction in (AggDir.ROW, AggDir.COL)
            )
        if _is_transpose(hop):
            # Entry point reading the transposed input's rows, only
            # useful under a t(X) %*% W consumer (e.g. Fig 5, group 10).
            hop_in = hop.inputs[0]
            return hop_in.is_matrix and hop_in.cols >= 2
        if isinstance(hop, IndexingOp):
            # Column indexing within row operators (P[, 1:k] in Fig 5).
            hop_in = hop.inputs[0]
            return (
                hop_in.is_matrix
                and hop.rl == 0
                and hop.ru == hop_in.rows
                and hop_in.cols >= 2
            )
        return False

    def fuse(self, hop: Hop, hop_in: Hop) -> bool:
        # A transpose intermediate may only be consumed by a matmult as
        # its left operand (t(Z) %*% Q accumulation).
        if _is_transpose(hop_in):
            return (
                isinstance(hop, AggBinaryOp)
                and hop.inputs[0] is hop_in
                and hop.inputs[1].rows == hop_in.inputs[0].rows
            )
        if is_cellwise(hop):
            return hop.rows == hop_in.rows
        if isinstance(hop, AggUnaryOp):
            return hop.agg_op in ROW_AGGS and hop_in.is_matrix
        if isinstance(hop, AggBinaryOp):
            left, right = hop.inputs
            if left is hop_in:
                # intermediate %*% W with a narrow, materialized W.
                return right.cols <= self.config.blocksize
            if right is hop_in:
                # t(Z) %*% intermediate: Z rows must align.
                return _is_transpose(left) and left.inputs[0].rows == hop_in.rows
        if _is_transpose(hop):
            # Transposing a fused row intermediate: valid as a bridge to
            # a subsequent matmult (checked again at that matmult).
            return hop_in.is_matrix and hop_in.rows >= 2
        return False

    def merge(self, hop: Hop, hop_in: Hop) -> bool:
        if not hop_in.is_matrix:
            return False
        if _is_transpose(hop_in):
            return isinstance(hop, AggBinaryOp) and hop.inputs[0] is hop_in
        return hop_in.rows == row_dim(hop)

    def close(self, hop: Hop) -> CloseType:
        if isinstance(hop, AggUnaryOp) and hop.direction in (AggDir.COL, AggDir.FULL):
            # Only column-wise or full aggregations close a Row template.
            return CloseType.CLOSED_VALID
        if isinstance(hop, AggBinaryOp) and _is_transpose(hop.inputs[0]):
            # t(Z) %*% Q is a column aggregation over rows.
            return CloseType.CLOSED_VALID
        if _is_transpose(hop):
            # A bare transpose is not a complete row operator.
            return CloseType.OPEN_INVALID
        return CloseType.OPEN_VALID
