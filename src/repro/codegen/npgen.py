"""Vectorized-kernel code generation (second codegen backend).

:mod:`repro.codegen.pygen` emits the *interpreted* tier: a ``genexec``
body that the hand-coded skeletons invoke per tile / non-zero batch /
row, dispatching one Python call per tile into the shared vector
primitives.  This module emits the *compiled* tier: one ``genkernel``
per operator that consumes whole runtime values in a single call —

* **Cell/MAgg** kernels run over the full dense value array with the
  output aggregation folded into the body; sum-of-products bodies
  contract into a single ``np.einsum`` pass (no materialized
  intermediates, the paper's fused single-pass claim),
* **Row** kernels run over the whole dense row block with side inputs
  prepared once; when every use of the main input is a matrix multiply
  the kernel is *CSR-main-safe* and executes directly on the sparse
  main without densifying,
* **Outer** kernels evaluate the per-non-zero body over batched CSR row
  ranges (the driver in :mod:`repro.runtime.npexec` owns chunking and
  the U/V/W products).

Kernels are attached to the :class:`~repro.codegen.pygen
.GeneratedOperator` that the semantic-hash plan cache shares across
programs, serving specializations, and adaptive recompiles, so a kernel
compiles once per equivalent operator.  An optional Numba tier JIT-jits
a per-cell loop variant behind ``config.numba_kernels``; when Numba is
absent or the body is outside the jittable subset, execution degrades
to the vectorized NumPy kernel with a recorded fallback.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.codegen.cplan import (
    Access,
    CNode,
    CPlan,
    OutType,
    compressed_cell_eligible,
)
from repro.codegen.pygen import (
    _SCALAR_BINARY_FMT,
    _SCALAR_UNARY_EXPR,
    _Emitter,
    operator_name,
)
from repro.codegen.template import TemplateType
from repro.errors import CodegenError

_REDUCERS = {"sum": "np.sum", "min": "np.min", "max": "np.max"}

#: Cell-template output variants (the MAgg template shares them).
_CELL_TEMPLATES = (TemplateType.CELL, TemplateType.MAGG)


@dataclass
class CompiledKernel:
    """A compiled vectorized kernel attached to a generated operator."""

    name: str
    source: str
    entry: object  # genkernel callable
    csr_main_safe: bool = False
    # Optional Numba tier: the per-cell loop variant and its jitted
    # callable.  ``numba_failed`` pins the kernel to the NumPy tier
    # after an unavailable import or a jit/runtime failure.
    numba_source: str = ""
    numba_entry: object = None
    numba_failed: bool = False
    # Compressed-CELL variant: runs the vectorized body over each
    # column group's distinct dictionary values and combines with
    # counts (emitted only for compressed-eligible cell plans).
    comp_source: str = ""
    comp_entry: object = None

    @property
    def tier(self) -> str:
        if self.numba_entry is not None and not self.numba_failed:
            return "numba"
        return "numpy"


def kernel_name(cplan: CPlan) -> str:
    """Deterministic kernel name (operator name + kernel suffix)."""
    return operator_name(cplan) + "_k"


# ----------------------------------------------------------------------
# Whole-array NumPy kernel emission
# ----------------------------------------------------------------------
def generate_kernel_source(cplan: CPlan) -> tuple[str, str, bool]:
    """Emit the vectorized kernel for a CPlan.

    Returns ``(name, source, csr_main_safe)``.  The ``genkernel``
    signature mirrors ``genexec`` (``(a, b, s)``; Outer adds ``uv``)
    but ``a``/``b`` are whole runtime values, and for the Cell and Row
    templates the output aggregation is folded into the kernel so one
    call produces the finished raw result.
    """
    name = kernel_name(cplan)
    emitter = _Emitter(cplan, inline_primitives=False)
    body_lines, result_vars = emitter.emit_roots()
    csr_safe = cplan.ttype is TemplateType.ROW and _csr_main_safe(cplan)

    if cplan.ttype is TemplateType.OUTER:
        header = "def genkernel(a, uv, b, s):"
        final = [f"return {result_vars[0]}"]
    elif cplan.ttype is TemplateType.ROW:
        header = "def genkernel(a, b, s):"
        final = _finalize_row(cplan, result_vars)
    elif cplan.ttype in _CELL_TEMPLATES:
        header = "def genkernel(a, b, s):"
        body_lines, final = _finalize_cell(cplan, emitter, body_lines,
                                           result_vars)
    else:
        raise CodegenError(f"no vectorized kernel for {cplan.ttype}")

    lines = [
        f"# generated vectorized kernel {name}: {cplan.ttype.value} "
        f"({cplan.out_type.value})",
        "import numpy as np",
        "from repro.runtime import vector as vp",
        "",
        f"CSR_MAIN_SAFE = {csr_safe}",
        "",
        header,
    ]
    lines.extend("    " + line for line in body_lines)
    lines.extend("    " + line for line in final)
    return name, "\n".join(lines) + "\n", csr_safe


def _finalize_row(cplan: CPlan, result_vars: list[str]) -> list[str]:
    res = result_vars[0]
    out = cplan.out_type
    if out in (OutType.NO_AGG, OutType.ROW_AGG):
        width = "1" if out is OutType.ROW_AGG else f"np.shape({res})[-1]"
        return [
            f"return np.ascontiguousarray("
            f"np.broadcast_to({res}, (a.shape[0], {width})))"
        ]
    if out in (OutType.COL_AGG, OutType.COL_AGG_T):
        return [
            f"_r = np.asarray({res})",
            "return _r.reshape(1, -1) if _r.ndim == 1 else _r",
        ]
    if out is OutType.FULL_AGG:
        return [f"return float({res})"]
    raise CodegenError(f"bad row out type {out}")


def _finalize_cell(cplan: CPlan, emitter: _Emitter, body_lines: list[str],
                   result_vars: list[str]) -> tuple[list[str], list[str]]:
    """Fold the cell/multi-agg output aggregation into the kernel.

    Sum-aggregated roots that are pure products of full-shape inputs
    drop their emitted body and contract through a single
    ``np.einsum`` pass instead (no materialized intermediates).
    """
    out = cplan.out_type
    agg = cplan.agg_ops[0] if cplan.agg_ops else "sum"
    red = _REDUCERS.get(agg, "np.sum")
    res = result_vars[0]
    if out is OutType.NO_AGG:
        final = [
            f"return np.ascontiguousarray(np.broadcast_to("
            f"{res}, (a.shape[0], np.shape({res})[-1])))"
        ]
        return body_lines, final
    if out is OutType.ROW_AGG:
        final = [
            f"return {red}(np.broadcast_to({res}, a.shape), "
            "axis=1, keepdims=True)"
        ]
        return body_lines, final
    if out is OutType.COL_AGG:
        final = [
            f"return {red}(np.broadcast_to({res}, a.shape), "
            "axis=0).reshape(1, -1)"
        ]
        return body_lines, final
    if out is OutType.FULL_AGG:
        einsum = _einsum_expr(cplan, cplan.roots[0], agg)
        if einsum is not None:
            return [], [f"return float({einsum})"]
        return body_lines, [f"return float({red}({res}))"]
    if out is OutType.MULTI_AGG:
        # Per-root aggregations; einsum-eligible roots contract in one
        # pass, the rest reduce their emitted body value.
        final = []
        parts = []
        for k, root in enumerate(cplan.roots):
            agg_k = cplan.agg_ops[k] if k < len(cplan.agg_ops) else "sum"
            red_k = _REDUCERS.get(agg_k, "np.sum")
            einsum = _einsum_expr(cplan, root, agg_k)
            expr = einsum if einsum is not None else f"{red_k}({result_vars[k]})"
            final.append(f"_p{k} = float({expr})")
            parts.append(f"[_p{k}]")
        final.append(f"return np.array([{', '.join(parts)}])")
        return body_lines, final
    raise CodegenError(f"bad cell out type {out}")


def _einsum_expr(cplan: CPlan, root: CNode, agg: str) -> str | None:
    """Single-pass einsum contraction for sum(product-of-inputs) roots.

    Eligible when the aggregation is a sum and the root is a (possibly
    squared) product of plain input references that all share one shape
    class — einsum does not broadcast, so mixed vector/matrix products
    keep the generic body.
    """
    if agg != "sum":
        return None
    factors: list[CNode] = []
    stack = [root]
    while stack:
        node = stack.pop()
        if node.op == "b:*":
            stack.extend(node.inputs)
        elif node.op == "u:pow2":
            stack.extend([node.inputs[0], node.inputs[0]])
        elif node.op == "data":
            spec = cplan.inputs[node.input_index]
            if spec.access is Access.SCALAR:
                return None
            factors.append(node)
        else:
            return None
    if len(factors) < 2:
        return None
    classes = {cplan.inputs[f.input_index].shape_class() for f in factors}
    if len(classes) != 1:
        return None
    operands = []
    for factor in factors:
        if factor.input_index == cplan.main_index:
            operands.append("a")
        else:
            side = [
                idx for idx, spec in enumerate(cplan.inputs)
                if idx != cplan.main_index and spec.access is not Access.SCALAR
            ]
            operands.append(f"b[{side.index(factor.input_index)}]")
    subscript = ",".join(["ij"] * len(operands)) + "->"
    return f"np.einsum('{subscript}', {', '.join(operands)})"


def _csr_main_safe(cplan: CPlan) -> bool:
    """True when the Row body can consume a CSR main input directly.

    Every reference to the main input must feed a matrix multiply
    (``mm``/``touter``) — scipy sparse @ dense yields dense, so the
    rest of the body runs on dense intermediates — and the main must
    not itself be an output root.
    """
    main_ids: set[int] = set()
    seen: set[int] = set()
    stack = list(cplan.roots)
    nodes: list[CNode] = []
    while stack:
        node = stack.pop()
        if node.id in seen:
            continue
        seen.add(node.id)
        nodes.append(node)
        if node.op == "data" and node.input_index == cplan.main_index:
            main_ids.add(node.id)
        stack.extend(node.inputs)
    if not main_ids:
        return False
    if any(root.id in main_ids for root in cplan.roots):
        return False
    for node in nodes:
        for child in node.inputs:
            if child.id in main_ids and node.op not in ("mm", "touter"):
                return False
    return True


# ----------------------------------------------------------------------
# Compressed-CELL variant (dictionary-direct tier)
# ----------------------------------------------------------------------
def generate_compressed_cell_source(cplan: CPlan) -> tuple[str, str]:
    """Emit the compressed-CELL kernel variant for an eligible plan.

    ``genkernel_comp(a, c, b, s)`` evaluates the vectorized cell body
    over one column member's distinct dictionary values ``a`` (1-D) and
    combines each root with the value counts ``c`` — the Figure 9
    dictionary-direct execution.  The driver in
    :mod:`repro.runtime.npexec` sums the per-column contributions.
    Callers must check :func:`~repro.codegen.cplan
    .compressed_cell_eligible` first (sparse-safe, side-input-free,
    sum-aggregated cell plans only).
    """
    if not compressed_cell_eligible(cplan):
        raise CodegenError(
            f"plan not compressed-cell eligible: {cplan.ttype}"
        )
    name = kernel_name(cplan) + "_comp"
    emitter = _Emitter(cplan, inline_primitives=False)
    body_lines, result_vars = emitter.emit_roots()
    final = []
    parts = []
    for k, res in enumerate(result_vars):
        final.append(
            f"_p{k} = float(np.dot(np.broadcast_to({res}, a.shape), c))"
        )
        parts.append(f"_p{k}")
    if cplan.out_type is OutType.MULTI_AGG:
        final.append(f"return np.array([{', '.join(parts)}])")
    else:
        final.append("return _p0")
    lines = [
        f"# generated compressed-cell kernel {name}: {cplan.ttype.value} "
        f"({cplan.out_type.value})",
        "import numpy as np",
        "from repro.runtime import vector as vp",
        "",
        "def genkernel_comp(a, c, b, s):",
    ]
    lines.extend("    " + line for line in body_lines)
    lines.extend("    " + line for line in final)
    return name, "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Numba per-cell variant (optional tier)
# ----------------------------------------------------------------------
def generate_numba_source(cplan: CPlan) -> str | None:
    """Emit a fixed-arity per-cell loop variant for Numba jitting.

    Covers dense Cell/MAgg plans whose body is a pure per-cell
    expression, for the NO_AGG / ROW_AGG / FULL_AGG output variants.
    Returns ``None`` when the plan is outside this subset — callers
    degrade to the NumPy kernel and record a fallback.
    """
    if cplan.ttype not in _CELL_TEMPLATES or len(cplan.roots) != 1:
        return None
    if cplan.out_type not in (OutType.NO_AGG, OutType.ROW_AGG,
                              OutType.FULL_AGG):
        return None
    agg = cplan.agg_ops[0] if cplan.agg_ops else "sum"
    if cplan.out_type is not OutType.NO_AGG and agg not in ("sum", "min", "max"):
        return None

    side_slot: dict[int, int] = {}
    scalar_slot: dict[int, int] = {}
    for idx, spec in enumerate(cplan.inputs):
        if idx == cplan.main_index:
            continue
        if spec.access is Access.SCALAR:
            scalar_slot[idx] = len(scalar_slot)
        else:
            side_slot[idx] = len(side_slot)

    counter = itertools.count(1)
    exprs: dict[int, str] = {}
    body: list[str] = []

    def expand(node: CNode) -> str | None:
        if node.id in exprs:
            return exprs[node.id]
        kind, _, detail = node.op.partition(":")
        if node.op == "lit":
            expr = repr(node.value)
        elif node.op == "data":
            if node.input_index == cplan.main_index:
                expr = "a[_i, _j]"
            elif node.input_index in scalar_slot:
                expr = f"s{scalar_slot[node.input_index]}"
            else:
                slot = side_slot[node.input_index]
                expr = f"b{slot}[_i % _b{slot}_r, _j % _b{slot}_c]"
        elif kind == "u" and detail in _SCALAR_UNARY_EXPR:
            inner = expand(node.inputs[0])
            if inner is None:
                return None
            expr = _SCALAR_UNARY_EXPR[detail].format(inner)
        elif kind == "b" and detail in _SCALAR_BINARY_FMT:
            left = expand(node.inputs[0])
            right = expand(node.inputs[1])
            if left is None or right is None:
                return None
            expr = _SCALAR_BINARY_FMT[detail].format(left, right)
        else:
            return None
        var = f"v{next(counter)}"
        exprs[node.id] = var
        body.append(f"{var} = {expr}")
        return var

    cell = expand(cplan.roots[0])
    if cell is None:
        return None

    sides = "".join(f", b{k}" for k in range(len(side_slot)))
    scalars = "".join(f", s{k}" for k in range(len(scalar_slot)))
    lines = [
        f"def genkernel_numba(a{sides}{scalars}):",
        "    bs, n = a.shape",
    ]
    for k in range(len(side_slot)):
        lines.append(f"    _b{k}_r, _b{k}_c = b{k}.shape")
    out = cplan.out_type
    if out is OutType.NO_AGG:
        lines.append("    out = np.empty((bs, n))")
    elif out is OutType.ROW_AGG:
        lines.append("    out = np.empty((bs, 1))")
    else:
        init = {"sum": "0.0", "min": "np.inf", "max": "-np.inf"}[agg]
        lines.append(f"    acc = {init}")
    lines.append("    for _i in range(bs):")
    if out is OutType.ROW_AGG:
        init = {"sum": "0.0", "min": "np.inf", "max": "-np.inf"}[agg]
        lines.append(f"        _racc = {init}")
    lines.append("        for _j in range(n):")
    lines.extend("            " + line for line in body)
    combine = {
        "sum": "{0} + {1}", "min": "min({0}, {1})", "max": "max({0}, {1})"
    }[agg if out is not OutType.NO_AGG else "sum"]
    if out is OutType.NO_AGG:
        lines.append(f"            out[_i, _j] = {cell}")
        lines.append("    return out")
    elif out is OutType.ROW_AGG:
        lines.append(f"            _racc = {combine.format('_racc', cell)}")
        lines.append("        out[_i, 0] = _racc")
        lines.append("    return out")
    else:
        lines.append(f"            acc = {combine.format('acc', cell)}")
        lines.append("    return acc")
    header = [
        f"# generated numba kernel variant: {cplan.ttype.value} "
        f"({cplan.out_type.value})",
        "import numpy as np",
        "",
    ]
    return "\n".join(header + lines) + "\n"


# ----------------------------------------------------------------------
# Kernel compilation
# ----------------------------------------------------------------------
def compile_kernel(cplan: CPlan, config, stats=None) -> CompiledKernel:
    """Emit and compile the vectorized kernel for a CPlan.

    Byte-identical kernel source is shared through the process-wide
    source cache, so equivalent operators across engines never
    re-``exec`` identical code.  The optional Numba tier is attached
    here; a missing/unusable Numba records a fallback and leaves the
    NumPy kernel active.
    """
    from repro.codegen.plan_cache import compile_source

    name, source, csr_safe = generate_kernel_source(cplan)
    if getattr(config, "verify_level", "off") != "off":
        from repro.analysis.kernel_lint import check_source

        check_source(name, source, kind="vectorized",
                     csr_main_safe=csr_safe, stats=stats)
    namespace = compile_source(name, source, "exec", stats=stats)
    kernel = CompiledKernel(
        name=name,
        source=source,
        entry=namespace["genkernel"],
        csr_main_safe=csr_safe,
    )
    if compressed_cell_eligible(cplan):
        comp_name, comp_source = generate_compressed_cell_source(cplan)
        if getattr(config, "verify_level", "off") != "off":
            from repro.analysis.kernel_lint import check_source

            check_source(comp_name, comp_source, kind="vectorized",
                         stats=stats)
        comp_ns = compile_source(comp_name, comp_source, "exec", stats=stats)
        kernel.comp_source = comp_source
        kernel.comp_entry = comp_ns["genkernel_comp"]
    if getattr(config, "numba_kernels", False):
        _attach_numba(kernel, cplan, config, stats)
    return kernel


def _attach_numba(kernel: CompiledKernel, cplan: CPlan, config=None,
                  stats=None) -> None:
    numba_source = generate_numba_source(cplan)
    if numba_source is None:
        _record_numba_fallback(kernel, stats)
        return
    if getattr(config, "verify_level", "off") != "off":
        from repro.analysis.kernel_lint import check_source

        # The jitted variant is loop-based by design; everything else
        # (imports, names, determinism) is held to the same contract.
        check_source(kernel.name + "_nb", numba_source, kind="numba",
                     stats=stats)
    kernel.numba_source = numba_source
    try:
        import numba  # noqa: F401
    except Exception:
        _record_numba_fallback(kernel, stats)
        return
    try:
        from repro.codegen.plan_cache import compile_source

        namespace = compile_source(kernel.name + "_nb", numba_source,
                                   "exec", stats=stats)
        kernel.numba_entry = numba.njit(cache=False)(
            namespace["genkernel_numba"]
        )
    except Exception:
        _record_numba_fallback(kernel, stats)


def _record_numba_fallback(kernel: CompiledKernel, stats=None) -> None:
    kernel.numba_failed = True
    if stats is not None:
        stats.n_numba_fallbacks += 1
