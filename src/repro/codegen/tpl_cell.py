"""Cell template: fused cell-wise operations with optional aggregation.

Binds to cells X_ij of a main input with sparse/dense side inputs and
scalars.  Variants: no agg, row agg, col agg, full agg (Table 1).  A
sparse-safe Cell operator executes over non-zero cells only.
"""

from __future__ import annotations

from repro.codegen.template import CloseType, Template, TemplateType, is_cellwise
from repro.hops.hop import AggUnaryOp, Hop
from repro.hops.types import AggOp


# Aggregations a Cell template can absorb (mean needs a count rescale
# and is handled as a basic operator instead, like SystemML).
FUSABLE_AGGS = {AggOp.SUM, AggOp.SUM_SQ, AggOp.MIN, AggOp.MAX}


def _valid_agg(hop: Hop) -> bool:
    return isinstance(hop, AggUnaryOp) and hop.agg_op in FUSABLE_AGGS


class CellTemplate(Template):
    """OFMC conditions of the Cell template."""

    ttype = TemplateType.CELL

    def open(self, hop: Hop) -> bool:
        # A new cell operator starts at any cell-wise operation over at
        # least one matrix input.
        return is_cellwise(hop)

    def fuse(self, hop: Hop, hop_in: Hop) -> bool:
        # Extend an open cell operator at hop_in to its consumer: valid
        # cell operations and valid aggregations.
        if is_cellwise(hop):
            # The fused intermediate must be used cell-aligned: the
            # consumer output has the same shape (no broadcast of the
            # fused intermediate itself).
            return hop.dims == hop_in.dims or hop_in.is_scalar
        if _valid_agg(hop):
            return True
        return False

    def merge(self, hop: Hop, hop_in: Hop) -> bool:
        # Cell operators merge cell plans at their inputs if shapes are
        # cell-aligned (equal dims) — broadcast vector operands are read
        # as side inputs instead.
        return hop_in.is_matrix and (
            hop_in.dims == hop.dims or (is_cellwise(hop) and hop_in.dims == hop.dims)
        )

    def close(self, hop: Hop) -> CloseType:
        # Any aggregation closes a Cell template (as valid).
        if _valid_agg(hop):
            return CloseType.CLOSED_VALID
        return CloseType.OPEN_VALID
