"""Multi-aggregate template: DAGs of full aggregates over shared inputs.

A MAgg operator computes several full aggregations (e.g. ``sum(X^2)``,
``sum(X*Y)``, ``sum(Y^2)``) in a single pass over their shared inputs
(Figure 1(c) of the paper).  During exploration each qualifying full
aggregate receives a MAgg entry; the grouping of multiple aggregates
into one operator happens at selection time (see
:func:`repro.codegen.construct.group_multi_aggregates`).
"""

from __future__ import annotations

from repro.codegen.template import CloseType, Template, TemplateType, is_cellwise
from repro.hops.hop import AggUnaryOp, Hop
from repro.hops.types import AggDir, AggOp

MAGG_AGGS = {AggOp.SUM, AggOp.SUM_SQ, AggOp.MIN, AggOp.MAX}


def is_full_agg(hop: Hop) -> bool:
    return (
        isinstance(hop, AggUnaryOp)
        and hop.direction is AggDir.FULL
        and hop.agg_op in MAGG_AGGS
        and hop.inputs[0].is_matrix
    )


class MultiAggTemplate(Template):
    """OFMC conditions of the MAgg template."""

    ttype = TemplateType.MAGG

    def open(self, hop: Hop) -> bool:
        # Opens at full aggregations over matrices (Table 1: full agg).
        return is_full_agg(hop)

    def fuse(self, hop: Hop, hop_in: Hop) -> bool:
        # The aggregate is the root of a MAgg operator; nothing fuses a
        # MAgg entry upward (multi-output grouping happens later).
        return False

    def merge(self, hop: Hop, hop_in: Hop) -> bool:
        # Absorb cell-wise plans below the aggregate.
        return hop_in.is_matrix and (is_cellwise(hop_in) or True)

    def close(self, hop: Hop) -> CloseType:
        # The aggregate itself completes the operator.
        if is_full_agg(hop):
            return CloseType.CLOSED_VALID
        return CloseType.CLOSED_INVALID
