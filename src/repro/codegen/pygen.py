"""Code generation: CPlans to Python source (codegen step 4).

Mirrors the paper's recursive template expansion: each CPlan expands
depth-first into the body of a ``genexec`` function, which the runtime
skeletons (:mod:`repro.runtime.skeletons`) invoke per data tile, per
cell batch, or per non-zero row — the hand-coded skeletons own the data
access, exactly as in the paper's runtime integration (Figure 4).

Generated code calls the shared vector-primitive library ``vp``; with
``inline_primitives`` (the "Gen inlined" configuration of Figure 10)
element-wise chains are instead expanded into per-element loops,
modelling monolithic generated code without shared primitives.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field

from repro.codegen.cplan import Access, CNode, CPlan
from repro.codegen.template import TemplateType
from repro.errors import CodegenError
from repro.runtime.vector import BINARY_PRIMITIVES, UNARY_PRIMITIVES

#: Import surface of generated sources.  Both codegen backends emit
#: only ``import numpy as np`` / ``from repro.runtime import vector as
#: vp`` (scipy is reserved for sparse kernel bodies); the kernel lint
#: (:mod:`repro.analysis.kernel_lint`) and the restricted ``exec``
#: namespace (:mod:`repro.codegen.plan_cache`) enforce exactly this
#: contract — extend it here, in one place, if a template grows a new
#: dependency.
GENERATED_IMPORT_MODULES = ("numpy", "scipy", "repro.runtime")


def operator_name(cplan: CPlan) -> str:
    """Deterministic operator name derived from the semantic hash.

    Equivalent CPlans always generate the same name regardless of
    process history or test ordering, so source dumps and goldens are
    stable — unlike a process-global id counter.
    """
    return f"TMP_{cplan.semantic_hash()[:10]}"


@dataclass
class GeneratedOperator:
    """A compiled fused operator: metadata plus the genexec callable.

    Beyond the interpreted ``genexec`` tier, an operator may hold a
    compiled vectorized kernel (:mod:`repro.codegen.npgen`).  Operators
    are shared through the semantic-hash plan cache, so the kernel slot
    — and the hotness telemetry that triggers promotion — is shared by
    every program, serving specialization, and adaptive recompile that
    reuses the operator.
    """

    name: str
    cplan: CPlan
    source: str
    genexec: object  # callable
    # Tiered-kernel state (guarded by ``lock``): ``kernel`` holds the
    # CompiledKernel once promoted; ``hotness`` counts executions plus
    # plan-cache hits plus serving warm-bind touches.
    kernel: object = None
    hotness: int = 0
    kernel_failed: bool = False
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def template(self) -> TemplateType:
        return self.cplan.ttype

    def note_hot(self, touches: int = 1) -> None:
        """Bump hotness without an execution (cache hit / warm bind)."""
        with self.lock:
            self.hotness += touches


def generate_source(cplan: CPlan, inline_primitives: bool = False) -> tuple[str, str]:
    """Generate the Python source of a fused operator.

    Returns ``(class_name, source)``.  The genexec signature depends on
    the template:

    * Cell/MAgg: ``genexec(a, b, s)`` over aligned value tiles,
    * Row: ``genexec(a, b, s)`` over a dense row-block tile,
    * Outer: ``genexec(a, uv, b, s)`` over one row's non-zero cells.
    """
    name = operator_name(cplan)
    emitter = _Emitter(cplan, inline_primitives)
    if cplan.ttype is TemplateType.OUTER:
        header = f"def genexec(a, uv, b, s):"
    else:
        header = f"def genexec(a, b, s):"
    lines = [
        f"# generated fused operator {name}: {cplan.ttype.value} "
        f"({cplan.out_type.value})",
        "import numpy as np",
        "from repro.runtime import vector as vp",
        "",
        header,
    ]
    body_lines, result_vars = emitter.emit_roots()
    lines.extend("    " + line for line in body_lines)
    if len(result_vars) == 1:
        lines.append(f"    return {result_vars[0]}")
    else:
        lines.append(f"    return ({', '.join(result_vars)},)")
    return name, "\n".join(lines) + "\n"


class _Emitter:
    """Depth-first template expansion of a CPlan body DAG."""

    def __init__(self, cplan: CPlan, inline_primitives: bool):
        self.cplan = cplan
        self.inline = inline_primitives
        self.lines: list[str] = []
        self.vars: dict[int, str] = {}
        self.counter = itertools.count(1)
        # Side-slot mapping: non-main matrix inputs in spec order.
        self.side_slot: dict[int, int] = {}
        self.scalar_slot: dict[int, int] = {}
        side, scalar = 0, 0
        for idx, spec in enumerate(cplan.inputs):
            if idx == cplan.main_index:
                continue
            if spec.access is Access.SCALAR:
                self.scalar_slot[idx] = scalar
                scalar += 1
            else:
                self.side_slot[idx] = side
                side += 1

    # ------------------------------------------------------------------
    def emit_roots(self) -> tuple[list[str], list[str]]:
        if self.inline and self._inline_applicable():
            return self._emit_inline()
        results = [self._emit(root) for root in self.cplan.roots]
        if not self.lines:
            # Ensure at least one statement for trivial bodies.
            self.lines.append("pass")
        return self.lines, results

    def _fresh(self) -> str:
        return f"t{next(self.counter)}"

    def _assign(self, expr: str) -> str:
        var = self._fresh()
        self.lines.append(f"{var} = {expr}")
        return var

    def _ref(self, node: CNode) -> str:
        return self.vars[node.id]

    def _emit(self, node: CNode) -> str:
        # Iterative post-order over the body DAG (which can be thousands
        # of nodes deep for long fused chains).
        stack = [node]
        while stack:
            cur = stack[-1]
            if cur.id in self.vars:
                stack.pop()
                continue
            if cur.op in ("lit", "data", "uv"):
                self.vars[cur.id] = self._emit_node(cur)
                stack.pop()
                continue
            missing = [c for c in cur.inputs if c.id not in self.vars]
            if missing:
                stack.extend(reversed(missing))
                continue
            self.vars[cur.id] = self._emit_node(cur)
            stack.pop()
        return self.vars[node.id]

    def _emit_node(self, node: CNode) -> str:
        """Emit one node whose inputs are already in ``self.vars``."""
        op = node.op
        if op == "lit":
            return repr(node.value)
        if op == "data":
            return self._data_expr(node.input_index)
        if op == "uv":
            return "uv"
        args = [self.vars[c.id] for c in node.inputs]
        kind, _, detail = op.partition(":")
        if kind == "u":
            func = UNARY_PRIMITIVES.get(detail)
            if func is None:
                raise CodegenError(f"no primitive for unary '{detail}'")
            return self._assign(f"vp.{func}({args[0]})")
        if kind == "b":
            func = BINARY_PRIMITIVES.get(detail)
            if func is None:
                raise CodegenError(f"no primitive for binary '{detail}'")
            return self._assign(f"vp.{func}({args[0]}, {args[1]})")
        if kind == "t":
            if detail == "+*":
                return self._assign(f"vp.vect_add({args[0]}, vp.vect_mult({args[1]}, {args[2]}))")
            if detail == "-*":
                return self._assign(f"vp.vect_minus({args[0]}, vp.vect_mult({args[1]}, {args[2]}))")
            if detail == "ifelse":
                return self._assign(f"vp.vect_ifelse({args[0]}, {args[1]}, {args[2]})")
            raise CodegenError(f"unknown ternary '{detail}'")
        if kind == "rowagg":
            func = {
                "sum": "vect_sum_kd",
                "min": "vect_min_kd",
                "max": "vect_max_kd",
                "mean": "vect_mean_kd",
                "sumsq": "vect_sum_kd",
            }[detail]
            arg = args[0]
            if detail == "sumsq":
                arg = self._assign(f"vp.vect_pow2({arg})")
            return self._assign(f"vp.{func}({arg})")
        if kind == "colagg":
            reducer = {"sum": "np.sum", "min": "np.min", "max": "np.max"}[detail]
            return self._assign(f"{reducer}({args[0]}, axis=0, keepdims=True)")
        if kind == "fullagg":
            reducer = {"sum": "np.sum", "min": "np.min", "max": "np.max"}[detail]
            return self._assign(f"{reducer}({args[0]})")
        if kind == "mm":
            return self._assign(f"vp.vect_matmult({args[0]}, {args[1]})")
        if kind == "touter":
            return self._assign(f"({args[0]}).T @ ({args[1]})")
        if kind == "rix":
            cl, cu = node.meta
            return self._assign(f"({args[0]})[:, {cl}:{cu}]")
        raise CodegenError(f"cannot generate code for CNode '{op}'")

    def _data_expr(self, input_index: int) -> str:
        if input_index == self.cplan.main_index:
            return "a"
        if input_index in self.scalar_slot:
            return f"s[{self.scalar_slot[input_index]}]"
        return f"b[{self.side_slot[input_index]}]"

    # ------------------------------------------------------------------
    # Inline mode (Figure 10): expand element-wise chains into explicit
    # per-element loops instead of shared vector primitives.
    # ------------------------------------------------------------------
    def _inline_applicable(self) -> bool:
        from repro.codegen.cplan import OutType

        if self.cplan.ttype not in (
            TemplateType.CELL, TemplateType.ROW, TemplateType.MAGG
        ):
            return False
        if len(self.cplan.roots) != 1:
            return False
        root = self.cplan.roots[0]
        kind, _, detail = root.op.partition(":")
        if kind in ("rowagg", "fullagg") and detail == "sum":
            # Row template: an explicit aggregation node at the root.
            return self._pure_cell(root.inputs[0])
        if (
            self.cplan.out_type is OutType.FULL_AGG
            and self.cplan.agg_ops == ["sum"]
        ):
            # Cell template: the skeleton reduces; partial per-row sums
            # returned by inline code sum to the same total.
            return self._pure_cell(root)
        return False

    def _pure_cell(self, node: CNode) -> bool:
        stack = [node]
        while stack:
            cur = stack.pop()
            if cur.op in ("data", "lit"):
                continue
            kind, _, detail = cur.op.partition(":")
            if kind == "u" and detail in _SCALAR_UNARY_EXPR:
                stack.extend(cur.inputs)
            elif kind == "b" and detail in _SCALAR_BINARY_FMT:
                stack.extend(cur.inputs)
            else:
                return False
        return True

    def _emit_inline(self) -> tuple[list[str], list[str]]:
        root = self.cplan.roots[0]
        lines: list[str] = ["bs, n = a.shape", "out = np.zeros((bs, 1))"]
        scalar_exprs: dict[int, str] = {}
        counter = itertools.count(1)

        def expand(node: CNode) -> str:
            if node.id in scalar_exprs:
                return scalar_exprs[node.id]
            kind, _, detail = node.op.partition(":")
            if node.op == "lit":
                expr = repr(node.value)
            elif node.op == "data":
                base = self._data_expr(node.input_index)
                expr = "a[_i, _j]" if base == "a" else (
                    base if node.input_index in self.scalar_slot else f"{base}[_i % {base}.shape[0], _j % {base}.shape[1]]"
                )
            elif kind == "u":
                expr = _SCALAR_UNARY_EXPR[detail].format(expand(node.inputs[0]))
            elif kind == "b":
                expr = _SCALAR_BINARY_FMT[detail].format(
                    expand(node.inputs[0]), expand(node.inputs[1])
                )
            else:
                raise CodegenError(f"inline mode cannot expand {node.op}")
            var = f"v{next(counter)}"
            scalar_exprs[node.id] = var
            inner_body.append(f"{var} = {expr}")
            return var

        # Innermost expression: the cell chain below the final sum (the
        # root itself for Cell full-agg plans, where the skeleton sums
        # the returned per-row partials).
        kind, _, detail = root.op.partition(":")
        chain = root.inputs[0] if kind in ("rowagg", "fullagg") else root
        inner_body: list[str] = []
        result_var = expand(chain)
        lines.append("for _i in range(bs):")
        lines.append("    _acc = 0.0")
        lines.append("    for _j in range(n):")
        lines.extend("        " + line for line in inner_body)
        lines.append(f"        _acc += {result_var}")
        lines.append("    out[_i, 0] = _acc")
        if kind == "fullagg":
            # Row template full aggregation: reduce to a scalar here;
            # for Cell plans the skeleton sums the per-row partials.
            lines.append("out = np.sum(out)")
        return lines, ["out"]


_SCALAR_UNARY_EXPR = {
    "exp": "np.exp({0})",
    "log": "np.log({0})",
    "sqrt": "np.sqrt({0})",
    "abs": "abs({0})",
    "neg": "-({0})",
    "pow2": "({0}) * ({0})",
    "sigmoid": "1.0 / (1.0 + np.exp(-({0})))",
    "sprop": "({0}) * (1.0 - ({0}))",
}

_SCALAR_BINARY_FMT = {
    "+": "({0}) + ({1})",
    "-": "({0}) - ({1})",
    "*": "({0}) * ({1})",
    "/": "({0}) / ({1})",
    "min": "min({0}, {1})",
    "max": "max({0}, {1})",
}
