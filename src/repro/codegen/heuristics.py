"""Baseline fusion-plan selection heuristics (Section 4.1).

* **fuse-all** maximizes fusion, accepting redundant compute on common
  subexpressions (similar to lazy evaluation in Spark or the SPOOF
  fuse-all code generator).
* **fuse-no-redundancy** never recomputes: every intermediate with
  multiple consumers is materialized.

Both operate on the same memo table as the cost-based optimizer; the
paper uses them as baselines (Gen-FA, Gen-FNR).
"""

from __future__ import annotations

from repro.codegen.cost import CostEstimator, OperatorPlan, blocked_set
from repro.codegen.memo import MemoTable
from repro.codegen.partitions import PlanPartition


def fuse_all(estimator: CostEstimator, part: PlanPartition) -> dict[int, OperatorPlan]:
    """Maximal fusion: no materialization points, maximal covers."""
    record: dict[int, OperatorPlan] = {}
    estimator.cost_partition(part, frozenset(), record=record, prefer_max_fusion=True)
    return record


def fuse_no_redundancy(estimator: CostEstimator,
                       part: PlanPartition) -> dict[int, OperatorPlan]:
    """Materialize all intermediates with multiple consumers."""
    blocked = frozenset(
        (p.consumer_id, p.target_id)
        for p in part.points
        if p.target_id in part.mat_points
    )
    record: dict[int, OperatorPlan] = {}
    estimator.cost_partition(part, blocked, record=record, prefer_max_fusion=True)
    return record
