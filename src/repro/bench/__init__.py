"""Benchmark support utilities."""

from repro.bench.harness import BenchResult, run_modes, time_once

__all__ = ["BenchResult", "run_modes", "time_once"]
