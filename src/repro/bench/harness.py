"""Shared helpers for the benchmark suite (benchmarks/).

Every benchmark regenerates one table or figure of the paper's
evaluation.  Helpers here time expression evaluations under the
experimental engine configurations and collect rows for the printed
summaries that EXPERIMENTS.md records.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field

from repro import api
from repro.compiler.execution import Engine
from repro.config import CodegenConfig

#: Environment variable: when set, benchmark scripts using the harness
#: write their results (timings plus executor scheduling stats) to this
#: JSON file via :func:`maybe_export_json`.
BENCH_JSON_ENV = "REPRO_BENCH_JSON"


@dataclass
class BenchResult:
    """Timings by engine mode for one workload configuration."""

    label: str
    seconds: dict[str, float] = field(default_factory=dict)
    # Per-mode scheduling stats (RuntimeStats.scheduling_summary()).
    stats: dict = field(default_factory=dict)
    # Per-mode trace phase breakdown (phase_summary()), filled when the
    # benchmark runs with tracing enabled.
    phases: dict = field(default_factory=dict)

    def speedup(self, baseline: str, mode: str) -> float:
        return self.seconds[baseline] / max(self.seconds[mode], 1e-12)

    def row(self, modes: list[str]) -> str:
        cells = "  ".join(f"{self.seconds.get(m, float('nan'))*1e3:10.1f}" for m in modes)
        return f"{self.label:<28}{cells}"

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "seconds": dict(self.seconds),
            "scheduling": dict(self.stats),
            "phases": dict(self.phases),
        }


def time_once(func) -> float:
    """Wall-clock one invocation."""
    start = time.perf_counter()
    func()
    return time.perf_counter() - start


def time_best(func, repeats: int = 3) -> float:
    """Best of ``repeats`` invocations (after the caller's warmup)."""
    return min(time_once(func) for _ in range(repeats))


def phase_summary(engine) -> dict:
    """Trace-derived phase breakdown for one engine's buffered spans.

    Aggregates the engine tracer's span buffer by category: per-cat
    span count and total seconds, plus the compiler's per-pass timings
    from stats.  Empty ``by_category`` when ``trace_level="off"``.
    """
    by_cat: dict[str, dict] = {}
    for span in engine.tracer.events():
        if span.duration <= 0.0:
            continue
        entry = by_cat.setdefault(span.cat, {"count": 0, "seconds": 0.0})
        entry["count"] += 1
        entry["seconds"] += span.duration
    return {
        "trace_level": engine.config.trace_level,
        "by_category": by_cat,
        "pipeline_pass_seconds": dict(engine.stats.pipeline_pass_seconds),
    }


def run_modes(build_exprs, modes: list[str], repeats: int = 3,
              config_factory=None, warmup: bool = True,
              collect_stats: dict | None = None,
              collect_phases: dict | None = None) -> dict[str, float]:
    """Time ``eval_all(build_exprs())`` under each engine mode.

    A fresh engine per mode; one warmup run compiles fused operators so
    measured runs hit the plan cache (the paper reports post-JIT means).
    When ``collect_stats`` (a dict) is passed, it is filled with each
    mode's executor scheduling summary after the timed runs; likewise
    ``collect_phases`` receives each mode's :func:`phase_summary`.
    """
    results: dict[str, float] = {}
    for mode in modes:
        config = config_factory() if config_factory is not None else CodegenConfig()
        engine = Engine(mode=mode, config=config)

        def evaluate():
            return api.eval_all(build_exprs(), engine=engine)

        if warmup:
            evaluate()
        results[mode] = time_best(evaluate, repeats)
        if collect_stats is not None:
            collect_stats[mode] = engine.stats.scheduling_summary()
        if collect_phases is not None:
            collect_phases[mode] = phase_summary(engine)
    return results


def print_table(title: str, modes: list[str], results: list[BenchResult]) -> None:
    """Print a paper-style results table (milliseconds)."""
    header = f"{'workload':<28}" + "  ".join(f"{m:>10}" for m in modes)
    print(f"\n=== {title} (ms) ===")
    print(header)
    for result in results:
        print(result.row(modes))


def export_json(path: str, title: str, results: list[BenchResult],
                extra: dict | None = None) -> None:
    """Write results (timings + scheduling stats) as a JSON report."""
    payload = {
        "title": title,
        "results": [r.as_dict() for r in results],
    }
    if extra:
        payload.update(extra)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def maybe_export_json(title: str, results: list[BenchResult],
                      extra: dict | None = None) -> str | None:
    """Export to ``$REPRO_BENCH_JSON`` if set; returns the path used."""
    path = os.environ.get(BENCH_JSON_ENV)
    if not path:
        return None
    export_json(path, title, results, extra)
    return path
