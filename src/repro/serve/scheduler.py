"""Concurrent request scheduler over one shared engine.

:class:`SessionScheduler` is the server object of the serving
subsystem: callers :meth:`submit` requests against prepared programs
from any thread and receive a :class:`ServeTicket` (a future).  A pool
of worker threads drains the queue and multiplexes many in-flight
programs over the engine's single shared executor pool.

Three serving policies live here:

* **admission control** — each request carries a memory estimate
  (input blocks + the specialization's intermediate footprint from
  :mod:`repro.hops.memory`); workers delay dispatch while admitting the
  request would push the in-flight total over the configured budget
  (an oversized request is admitted alone rather than starved),
* **micro-batching** — consecutive queued requests for the same
  prepared program whose batch inputs stack row-wise (and whose other
  inputs are identical) execute as one stacked program run and have
  their outputs split per request; programs whose outputs cannot be
  split fall back to per-request runs,
* **telemetry** — queue wait, execution time, and end-to-end latency
  per request, plus batch/specialization counters, all flowing into the
  engine's :class:`~repro.runtime.stats.RuntimeStats`
  (``serving_summary()``).
"""

from __future__ import annotations

import os
import threading
import time
import weakref
from collections import deque

from repro.errors import ServingError, UnbatchableProgramError
from repro.runtime.parallel import shared_budget
from repro.serve.prepared import PreparedProgram
from repro.serve.symbolic import normalize_inputs, same_data


class ServeTicket:
    """Future-style handle for one submitted request."""

    __slots__ = ("_event", "_result", "_error", "telemetry")

    def __init__(self):
        self._event = threading.Event()
        self._result = None
        self._error: BaseException | None = None
        #: Filled when the request completes: queue_seconds,
        #: exec_seconds, latency_seconds, batch_size.
        self.telemetry: dict = {}

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None):
        """Block until the request finished; returns its outputs."""
        if not self._event.wait(timeout):
            raise ServingError("timed out waiting for a served request")
        if self._error is not None:
            raise self._error
        return self._result

    def _resolve(self, result) -> None:
        self._result = result
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


class _Request:
    __slots__ = ("prepared", "inputs", "ticket", "submitted_at", "tenant")

    def __init__(self, prepared, inputs, ticket, submitted_at,
                 tenant="default"):
        self.prepared = prepared
        self.inputs = inputs
        self.ticket = ticket
        self.submitted_at = submitted_at
        self.tenant = tenant


class SessionScheduler:
    """Thread-safe serving front end over one shared engine."""

    def __init__(self, engine, n_workers: int | None = None,
                 memory_budget: float | None = None, max_batch: int = 8):
        self.engine = engine
        if n_workers is None:
            n_workers = min(4, os.cpu_count() or 1)
        if engine.config.cluster is not None:
            # The simulated distributed backend serializes runs anyway;
            # one worker keeps its cost accounting deterministic.
            n_workers = 1
        self.n_workers = max(1, n_workers)
        self.memory_budget = (
            memory_budget if memory_budget is not None
            else engine.config.local_mem_budget
        )
        self.max_batch = max(1, max_batch)
        self._cv = threading.Condition()
        self._queue: deque[_Request] = deque()
        self._inflight_bytes = 0.0
        self._closed = False
        # Prepared programs whose outputs turned out unbatchable: skip
        # further merge attempts instead of recompiling stacked shapes.
        # Weak references, so a collected program's reused address can
        # never disable batching for an unrelated later program.
        self._unbatchable: "weakref.WeakSet" = weakref.WeakSet()
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-{index}",
                daemon=True,
            )
            for index in range(self.n_workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def prepare(self, builder, name: str = "prepared",
                batch_inputs: tuple = ()) -> PreparedProgram:
        return self.engine.prepare(builder, name=name,
                                   batch_inputs=batch_inputs)

    def prepare_script(self, source: str, name: str = "script",
                       batch_inputs: tuple = ()) -> PreparedProgram:
        return self.engine.prepare_script(source, name=name,
                                          batch_inputs=batch_inputs)

    def submit(self, prepared: PreparedProgram, inputs: dict,
               tenant: str = "default") -> ServeTicket:
        """Enqueue one request; returns a ticket immediately.

        ``tenant`` labels the request's latency/queue-wait histograms,
        so ``serving_summary()`` reports per-tenant percentiles.
        """
        normalized = normalize_inputs(inputs)
        ticket = ServeTicket()
        request = _Request(prepared, normalized, ticket,
                           time.perf_counter(), tenant=tenant)
        with self._cv:
            if self._closed:
                raise ServingError("scheduler is closed")
            self._queue.append(request)
            # The condition hosts two predicates (idle workers and
            # admission waiters): notify_all so a wakeup consumed by an
            # admission waiter cannot strand an idle worker.
            self._cv.notify_all()
        return ticket

    def serve(self, prepared: PreparedProgram, inputs: dict,
              timeout: float | None = None, tenant: str = "default"):
        """Submit and wait: the synchronous convenience path."""
        return self.submit(prepared, inputs, tenant=tenant).result(timeout)

    def serving_summary(self) -> dict:
        summary = self.engine.stats.serving_summary()
        summary["queue_depth"] = len(self._queue)
        summary["n_workers"] = self.n_workers
        return summary

    def close(self, wait: bool = True) -> None:
        """Stop accepting requests; drain the queue, stop workers."""
        with self._cv:
            self._closed = True
            self._cv.notify_all()
        if wait:
            for worker in self._workers:
                worker.join()

    def __enter__(self) -> "SessionScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            with self._cv:
                while not self._queue and not self._closed:
                    self._cv.wait()
                if not self._queue:
                    return  # closed and drained
                batch = self._take_batch()
            # Hold one process-wide budget token while executing: the
            # executor pool and intra-op workers the request fans out
            # into draw from the same budget, so nested parallelism
            # degrades instead of oversubscribing (minimum=1 keeps the
            # worker live even when the budget is exhausted).
            budget = shared_budget()
            token = budget.acquire(
                1, minimum=1,
                limit=self.engine.config.thread_budget or None,
            )
            try:
                with self.engine.tracer.span("serve-batch", cat="serve",
                                             batch_size=len(batch)):
                    self._execute_batch(batch)
            except BaseException as error:  # backstop: never lose tickets
                for request in batch:
                    if not request.ticket.done():
                        request.ticket._fail(error)
            finally:
                budget.release(token)

    def _take_batch(self) -> list[_Request]:
        """Pop the head request plus queued batch-mates (cv held)."""
        head = self._queue.popleft()
        batch = [head]
        if (not head.prepared.batch_inputs or self.max_batch < 2
                or head.prepared in self._unbatchable):
            return batch
        kept: deque[_Request] = deque()
        while self._queue and len(batch) < self.max_batch:
            candidate = self._queue.popleft()
            if self._can_merge(head, candidate):
                batch.append(candidate)
            else:
                kept.append(candidate)
        self._queue.extendleft(reversed(kept))
        return batch

    def _can_merge(self, head: _Request, other: _Request) -> bool:
        if other.prepared is not head.prepared:
            return False
        for name, value in head.inputs.items():
            if name not in other.inputs:
                return False
            other_value = other.inputs[name]
            if name in head.prepared.batch_inputs:
                # Stackable: same columns and storage family (merging
                # sparse into dense would densify the stacked block and
                # blow past the admission estimate).
                if (getattr(other_value, "cols", None)
                        != getattr(value, "cols", None)):
                    return False
                if (getattr(other_value, "is_sparse", None)
                        != getattr(value, "is_sparse", None)):
                    return False
            elif isinstance(value, float):
                if other_value != value:
                    return False
            elif not same_data(value, other_value):
                # Non-batch matrices must share their underlying data
                # (model weights reused across requests).
                return False
        return len(other.inputs) == len(head.inputs)

    # ------------------------------------------------------------------
    def _admit(self, estimated: float) -> None:
        """Block until the request fits the in-flight memory budget."""
        stats = self.engine.stats
        with self.engine.tracer.span("serve-admit", cat="serve",
                                     bytes=estimated):
            with self._cv:
                waited = False
                while (self._inflight_bytes > 0.0
                       and (self._inflight_bytes + estimated
                            > self.memory_budget)):
                    waited = True
                    self._cv.wait()
                self._inflight_bytes += estimated
        if waited:
            with stats.lock:
                stats.n_admission_waits += 1

    def _release(self, estimated: float) -> None:
        with self._cv:
            self._inflight_bytes -= estimated
            self._cv.notify_all()

    def _execute_batch(self, batch: list[_Request]) -> None:
        dispatched_at = time.perf_counter()
        if len(batch) > 1:
            try:
                self._run_merged(batch, dispatched_at)
                return
            except UnbatchableProgramError:
                # Structurally unsplittable outputs: serve each request
                # on its own, and stop merging this program for good.
                with self._cv:
                    self._unbatchable.add(batch[0].prepared)
                with self.engine.stats.lock:
                    self.engine.stats.n_batch_fallbacks += 1
            except Exception:
                # Request-specific failure (bad inputs, stacking error,
                # runtime fault): per-request execution still gives
                # every ticket a correct result or its own error, and
                # future batches stay possible.
                with self.engine.stats.lock:
                    self.engine.stats.n_batch_fallbacks += 1
        for request in batch:
            self._run_single(request, dispatched_at)

    def _run_single(self, request: _Request, dispatched_at: float) -> None:
        try:
            bound = request.prepared.bind(request.inputs)
            estimated = bound.estimated_bytes
            self._admit(estimated)
            try:
                result = request.prepared.execute_bound(bound)
            finally:
                self._release(estimated)
        except BaseException as error:
            request.ticket._fail(error)
            return
        self._finish([request], [result], dispatched_at, batch_size=1)

    def _run_merged(self, batch: list[_Request],
                    dispatched_at: float) -> None:
        """One stacked run for the whole batch (may raise ServingError)."""
        prepared = batch[0].prepared
        inputs_list = [request.inputs for request in batch]
        # Bind first so an unbatchable specialization raises before any
        # admission accounting happens.
        batch_bound = prepared.bind_batch(inputs_list)
        estimated = batch_bound.estimated_bytes
        self._admit(estimated)
        try:
            results = prepared.execute_batch(batch_bound)
        finally:
            self._release(estimated)
        with self.engine.stats.lock:
            self.engine.stats.n_batches_executed += 1
            self.engine.stats.n_requests_batched += len(batch)
        self._finish(batch, results, dispatched_at, batch_size=len(batch))

    def _finish(self, batch, results, dispatched_at: float,
                batch_size: int) -> None:
        finished_at = time.perf_counter()
        stats = self.engine.stats
        tracer = self.engine.tracer
        exec_seconds = finished_at - dispatched_at
        total_queue = total_latency = 0.0
        for request, result in zip(batch, results):
            queue_seconds = dispatched_at - request.submitted_at
            latency = finished_at - request.submitted_at
            total_queue += queue_seconds
            total_latency += latency
            request.ticket.telemetry.update(
                queue_seconds=queue_seconds,
                exec_seconds=exec_seconds,
                latency_seconds=latency,
                batch_size=batch_size,
            )
            # Queue wait as an instant (not an interval): the wait
            # started on the submitter's thread, so an interval span
            # here would partially overlap this worker's open spans.
            tracer.instant("serve-queue", cat="serve",
                           queue_seconds=queue_seconds,
                           tenant=request.tenant,
                           program=request.prepared.name)
            stats.observe_request(request.prepared.name, request.tenant,
                                  queue_seconds, exec_seconds, latency)
            request.ticket._resolve(result)
        with stats.lock:
            stats.n_requests_served += len(batch)
            stats.serve_queue_seconds += total_queue
            stats.serve_exec_seconds += exec_seconds * len(batch)
            stats.serve_latency_seconds += total_latency
