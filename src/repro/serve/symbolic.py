"""Symbolic input slots and shape signatures for prepared programs.

A :class:`SymbolicBlock` stands in for a ``MatrixBlock`` at compile
time: it carries exactly the metadata the compiler front half consumes
(shape, nnz estimate, storage class) without holding any cell data, so
a ``DataOp`` leaf built over it flows through rewrites, codegen, and
lowering unchanged.  The lowered ``Program`` then contains the symbolic
block in its constant slots, and the serving layer substitutes each
request's real block through the executor's ``bindings`` overlay —
the program itself is never mutated.

:func:`input_signature` is the specialization key: exact dimensions,
the dense/sparse storage class, and a coarse :func:`sparsity_class` per
matrix input, and the literal value per scalar input (scalars are baked
into the compiled plan exactly as SystemML literals are, so a new
scalar value is a new specialization).  The sparsity class keeps a
prepared program serving both dense and ultra-sparse requests from
pricing them with one shared plan: each class compiles its own
specialization with representative nnz estimates.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ServingError
from repro.runtime.compressed import CompressedMatrix
from repro.runtime.matrix import SPARSE_THRESHOLD, MatrixBlock

_SCALAR_TYPES = (int, float, np.floating, np.integer)


def sparsity_class(value, threshold: float = SPARSE_THRESHOLD) -> str:
    """Coarse sparsity bucket of a request input (specialization key).

    ``hyper`` (< 1% dense), ``sparse`` (below the shared CSR
    threshold), or ``dense``.  Coarse on purpose: requests whose
    densities share a bucket get one plan compiled with representative
    nnz estimates, instead of one specialization per exact nnz (which
    would never hit) or one mispriced plan for everything (which pays
    dense costs on sparse traffic or vice versa).
    """
    cells = value.rows * value.cols
    if cells == 0:
        return "dense"
    density = value.nnz / cells
    if density < 0.01:
        return "hyper"
    if density < threshold:
        return "sparse"
    return "dense"


class SymbolicBlock:
    """Compile-time stand-in for one named matrix input."""

    __slots__ = ("name", "rows", "cols", "_nnz", "_sparse", "__weakref__")

    def __init__(self, name: str, rows: int, cols: int,
                 nnz: int | None = None, sparse: bool = False):
        self.name = name
        self.rows = int(rows)
        self.cols = int(cols)
        self._nnz = int(nnz) if nnz is not None else self.rows * self.cols
        self._sparse = bool(sparse)

    # -- the MatrixBlock metadata surface the compiler reads -----------
    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.cols)

    @property
    def nnz(self) -> int:
        return self._nnz

    @property
    def is_sparse(self) -> bool:
        return self._sparse

    @property
    def sparsity(self) -> float:
        cells = self.rows * self.cols
        return self._nnz / cells if cells else 0.0

    @property
    def size_bytes(self) -> float:
        if self._sparse:
            return self._nnz * 12.0 + (self.rows + 1) * 4.0
        return self.rows * self.cols * 8.0

    def __repr__(self) -> str:
        storage = "sparse" if self._sparse else "dense"
        return f"SymbolicBlock({self.name}, {self.rows}x{self.cols}, {storage})"

    @classmethod
    def like(cls, name: str, block: MatrixBlock) -> "SymbolicBlock":
        """A symbolic slot with the metadata of a concrete block."""
        return cls(name, block.rows, block.cols, nnz=block.nnz,
                   sparse=block.is_sparse)


def normalize_inputs(inputs: dict) -> dict:
    """Coerce a request's input dict to floats and MatrixBlocks.

    Compressed matrices are passed through: they are baked into the
    specialization as constants (read-only model data), keyed by
    identity in the signature.
    """
    if not inputs:
        raise ServingError("a served request needs at least one input")
    normalized: dict = {}
    for name, value in inputs.items():
        if isinstance(value, _SCALAR_TYPES):
            normalized[name] = float(value)
        elif isinstance(value, (MatrixBlock, CompressedMatrix)):
            normalized[name] = value
        else:
            normalized[name] = MatrixBlock(np.asarray(value, dtype=np.float64))
    return normalized


def input_signature(inputs: dict) -> tuple:
    """The specialization key for a normalized input dict."""
    items = []
    for name in sorted(inputs):
        value = inputs[name]
        if isinstance(value, float):
            items.append((name, "s", value))
        elif isinstance(value, CompressedMatrix):
            items.append((name, "c", id(value)))
        else:
            storage = "sparse" if value.is_sparse else "dense"
            items.append((name, "m", value.rows, value.cols, storage,
                          sparsity_class(value)))
    return tuple(items)


def same_data(a, b) -> bool:
    """Do two normalized inputs share the same underlying data?

    Two ``MatrixBlock`` wrappers created from the same numpy array (or
    the same block) count as identical — the scheduler uses this to
    recognize shared model inputs across batched requests.
    """
    if a is b:
        return True
    if isinstance(a, MatrixBlock) and isinstance(b, MatrixBlock):
        if a._dense is not None:
            return a._dense is b._dense
        return a._sparse is not None and a._sparse is b._sparse
    return False


def request_bytes(inputs: dict) -> float:
    """Admission-control estimate of a request's input footprint."""
    total = 0.0
    for value in inputs.values():
        if isinstance(value, float):
            total += 8.0
        else:
            total += value.size_bytes
    return total
