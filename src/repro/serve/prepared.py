"""Prepared programs: compile once, serve many times.

A :class:`PreparedProgram` wraps an expression builder or a
parameterized script and maintains a cache of **specializations**: one
lowered :class:`~repro.compiler.program.Program` per input-shape
signature (exact dims + dense/sparse storage class per matrix input,
literal value per scalar input).  The serving lifecycle:

* **prepare** — parse/validate once; nothing is compiled yet,
* **bind** — normalize a request's inputs, look up the specialization
  for their signature; a *hit* reuses the cached program (no rewrites,
  no codegen, no lowering), a *miss* traces the builder/script against
  symbolic input slots and runs the full compile pipeline — the
  dynamic-recompilation path of Section 2.1, keyed by shape instead of
  failing on mismatch,
* **execute** — run the immutable shared program with the request's
  blocks injected through the executor's ``bindings`` overlay, so
  concurrent requests each get an isolated symbol-table epoch.

Generated fused operators inside different specializations still share
the engine's plan cache (semantic CPlan hash), so a shape-specialized
recompile typically reuses every compiled operator class.
"""

from __future__ import annotations

import threading

import numpy as np
import scipy.sparse as sp

from repro import api
from repro.errors import ServingError, UnbatchableProgramError
from repro.hops import memory
from repro.hops.hop import DataOp
from repro.runtime.compressed import CompressedMatrix
from repro.runtime.matrix import MatrixBlock
from repro.serve.symbolic import (
    SymbolicBlock,
    input_signature,
    normalize_inputs,
    request_bytes,
)

#: Per-root batching roles (micro-batch output handling).
SPLIT = "split"  # output rows align with the stacked batch dimension
REPLICATE = "replicate"  # independent of batch inputs; same for everyone


class Specialization:
    """One compiled shape-specialization of a prepared program."""

    __slots__ = ("signature", "program", "input_slots", "layout",
                 "program_bytes", "batch_roles", "batch_rows", "n_uses",
                 "last_use")

    def __init__(self, signature, program, input_slots, layout,
                 program_bytes, batch_roles, batch_rows):
        self.signature = signature
        self.program = program
        self.input_slots = input_slots  # name -> constant slot
        self.layout = layout  # ("single"|"list"|"dict", [(key, entry)])
        self.program_bytes = program_bytes  # intermediate-footprint estimate
        self.batch_roles = batch_roles  # per-root SPLIT/REPLICATE/None
        self.batch_rows = batch_rows  # batch-dim rows this spec compiled for
        self.n_uses = 0
        self.last_use = 0  # LRU tick for specialization eviction


class BoundRequest:
    """A specialization plus the slot bindings of one request."""

    __slots__ = ("spec", "bindings", "inputs")

    def __init__(self, spec, bindings, inputs):
        self.spec = spec
        self.bindings = bindings
        self.inputs = inputs

    @property
    def estimated_bytes(self) -> float:
        """Admission-control footprint: inputs + intermediates."""
        return request_bytes(self.inputs) + self.spec.program_bytes


class BatchBound:
    """A bound stacked micro-batch plus per-request row counts."""

    __slots__ = ("bound", "row_counts")

    def __init__(self, bound: BoundRequest, row_counts: list[int]):
        self.bound = bound
        self.row_counts = row_counts

    @property
    def estimated_bytes(self) -> float:
        return self.bound.estimated_bytes


class PreparedProgram:
    """A compile-once, execute-many program with shape specializations."""

    def __init__(self, engine, builder, name: str = "prepared",
                 batch_inputs: tuple = (), max_specializations: int = 64):
        self.engine = engine
        self.name = name
        self.batch_inputs = tuple(batch_inputs)
        self.max_specializations = max(1, max_specializations)
        self._builder = builder  # dict[str, Mat|float] -> Mat|list|dict
        self._script = None
        self._lock = threading.Lock()
        self._specializations: dict[tuple, Specialization] = {}
        # signature -> Event for an in-flight compile: a concurrent
        # miss waits instead of recompiling, and warm hits for *other*
        # signatures never queue behind a compile.
        self._building: dict[tuple, threading.Event] = {}
        self._use_tick = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_script(cls, engine, source: str, name: str = "script",
                    batch_inputs: tuple = (), **options):
        """Prepare a parameterized script (see ``input`` declarations)."""
        from repro.lang.ast import declared_inputs
        from repro.lang.parser import parse

        script = parse(source)
        prepared = cls(engine, None, name=name, batch_inputs=batch_inputs,
                       **options)
        prepared._script = script
        prepared.declared = declared_inputs(script)
        return prepared

    @property
    def n_specializations(self) -> int:
        with self._lock:
            return len(self._specializations)

    def signature_of(self, inputs: dict) -> tuple:
        return input_signature(normalize_inputs(inputs))

    # ------------------------------------------------------------------
    # Bind: specialization lookup / dynamic recompilation
    # ------------------------------------------------------------------
    def bind(self, inputs: dict) -> BoundRequest:
        """Resolve a request to a (possibly new) specialization."""
        declared = getattr(self, "declared", ())
        missing = [n for n in declared if n not in inputs]
        if missing:
            raise ServingError(
                f"'{self.name}' is missing declared input(s): {missing}"
            )
        with self.engine.tracer.span("serve-bind", cat="serve",
                                     program=self.name):
            normalized = normalize_inputs(inputs)
            signature = input_signature(normalized)
            spec = self._specialize(signature, normalized)
        bindings = {}
        for input_name, slot in spec.input_slots.items():
            bindings[slot] = normalized[input_name]
        return BoundRequest(spec, bindings, normalized)

    def _specialize(self, signature, normalized: dict) -> Specialization:
        """Look up (or compile exactly once) the shape specialization.

        The compile runs outside the per-program lock, so warm hits on
        other signatures proceed while a new shape recompiles; a
        concurrent miss on the *same* signature waits on the first
        thread's in-flight compilation (the plan-cache discipline).
        """
        stats = self.engine.stats
        while True:
            with self._lock:
                spec = self._specializations.get(signature)
                if spec is not None:
                    self._use_tick += 1
                    spec.n_uses += 1
                    spec.last_use = self._use_tick
                    with stats.lock:
                        stats.n_specialization_hits += 1
                    # Warm binds feed the tiered-kernel promotion
                    # policy: fused operators of a reused program get
                    # hotter even before they execute again.
                    for instr in spec.program.instructions:
                        if instr.opcode == "spoof":
                            instr.hop.operator.note_hot()
                    return spec
                event = self._building.get(signature)
                if event is None:
                    self._building[signature] = threading.Event()
                    is_recompile = bool(self._specializations)
                    break  # this thread owns the compilation
            event.wait()

        try:
            with self.engine.tracer.span("specialize-compile", cat="serve",
                                         program=self.name):
                spec = self._compile(signature, normalized)
        except BaseException:
            with self._lock:
                failed = self._building.pop(signature, None)
            if failed is not None:
                failed.set()
            raise
        with self._lock:
            self._specializations[signature] = spec
            self._use_tick += 1
            spec.n_uses += 1
            spec.last_use = self._use_tick
            self._evict_cold_specializations()
            finished = self._building.pop(signature, None)
        if finished is not None:
            finished.set()
        with stats.lock:
            stats.n_specialization_misses += 1
            if is_recompile:
                stats.n_shape_recompiles += 1
        return spec

    def _evict_cold_specializations(self) -> None:
        """Drop least-recently-used specializations over the cap (the
        caller holds ``self._lock``); bounds a long-running server's
        memory under endlessly varying request shapes."""
        while len(self._specializations) > self.max_specializations:
            coldest = min(
                self._specializations.items(),
                key=lambda item: item[1].last_use,
            )
            del self._specializations[coldest[0]]

    def execute_bound(self, bound: BoundRequest):
        """Run a bound request on the engine's shared executor."""
        values = self.engine.executor.run(bound.spec.program, bound.bindings)
        return self._package(bound.spec, values)

    def run(self, inputs: dict):
        """Bind and execute one request synchronously."""
        return self.execute_bound(self.bind(inputs))

    __call__ = run

    # ------------------------------------------------------------------
    # Micro-batching
    # ------------------------------------------------------------------
    def bind_batch(self, inputs_list: list[dict]) -> "BatchBound":
        """Bind several requests to one stacked specialization.

        Requests must agree on every non-batch input (the scheduler
        checks compatibility before calling).  Raises ``ServingError``
        when this program's outputs cannot be split per request; the
        caller falls back to individual execution.
        """
        if not self.batch_inputs:
            raise UnbatchableProgramError(
                f"'{self.name}' declared no batch inputs"
            )
        normalized = [normalize_inputs(inputs) for inputs in inputs_list]
        row_counts = []
        for inputs in normalized:
            rows = {inputs[name].rows for name in self.batch_inputs}
            if len(rows) != 1:
                raise ServingError(
                    "batch inputs of one request disagree on rows"
                )
            row_counts.append(rows.pop())
        stacked = dict(normalized[0])
        for name in self.batch_inputs:
            stacked[name] = _stack_blocks(
                [inputs[name] for inputs in normalized]
            )
        bound = self.bind(stacked)
        if any(role is None for role in bound.spec.batch_roles):
            raise UnbatchableProgramError(
                f"'{self.name}' has outputs that cannot be split per "
                "request (e.g. full aggregates over the batch dimension, "
                "or plans that baked a batch input's dimensions)"
            )
        return BatchBound(bound, row_counts)

    def execute_batch(self, batch: "BatchBound") -> list:
        """Run a stacked batch and split outputs per request."""
        bound = batch.bound
        roles = bound.spec.batch_roles
        values = self.engine.executor.run(bound.spec.program, bound.bindings)
        results = []
        offset_bounds = np.cumsum([0] + batch.row_counts)
        for index in range(len(batch.row_counts)):
            lo, hi = int(offset_bounds[index]), int(offset_bounds[index + 1])
            request_values = [
                _slice_rows(value, lo, hi) if role == SPLIT else value
                for value, role in zip(values, roles)
            ]
            results.append(self._package(bound.spec, request_values))
        return results

    def run_batch(self, inputs_list: list[dict]) -> list:
        """Bind and execute several requests as one stacked run."""
        return self.execute_batch(self.bind_batch(inputs_list))

    # ------------------------------------------------------------------
    # Compilation (specialization miss)
    # ------------------------------------------------------------------
    def _placeholders(self, normalized: dict) -> dict:
        slots: dict = {}
        for name, value in normalized.items():
            if isinstance(value, float):
                slots[name] = value  # baked literal (part of the signature)
            elif isinstance(value, CompressedMatrix):
                slots[name] = api.matrix(value, name=name)  # baked constant
            else:
                slots[name] = api.Mat(
                    DataOp(SymbolicBlock.like(name, value), name=name)
                )
        return slots

    def _trace(self, normalized: dict):
        """Build the output expressions over symbolic input slots.

        Also reports which symbolic inputs had their *dimensions* read
        into trace-time scalars (script ``nrow``/``ncol``): those bake
        the traced shape into the plan.  Expression builders are plain
        Python — shape reads there cannot be traced, so builders that
        specialize logic on a batch input's shape must not declare it
        in ``batch_inputs``.
        """
        slots = self._placeholders(normalized)
        if self._script is not None:
            outputs, dim_reads = _trace_script(self.engine, self._script,
                                               slots, self.name)
            kind = "dict"
        else:
            result = self._builder(slots)
            dim_reads = frozenset()
            if isinstance(result, dict):
                kind, outputs = "dict", list(result.items())
            elif isinstance(result, (list, tuple)):
                kind, outputs = "list", [(None, v) for v in result]
            else:
                kind, outputs = "single", [(None, result)]
        return kind, outputs, dim_reads

    def _compile(self, signature, normalized: dict) -> Specialization:
        kind, outputs, dim_reads = self._trace(normalized)
        roots = []
        root_index: dict[int, int] = {}  # hop id -> position in roots
        entries = []
        for key, value in outputs:
            if isinstance(value, float):
                entries.append((key, ("const", value)))
                continue
            if not isinstance(value, api.Mat):
                raise ServingError(
                    f"'{self.name}' produced a {type(value).__name__}; "
                    "outputs must be expressions or scalars"
                )
            hop = value.hop
            position = root_index.get(hop.id)
            if position is None:
                position = len(roots)
                root_index[hop.id] = position
                roots.append(hop)
            entries.append((key, ("root", position)))
        if not roots:
            raise ServingError(f"'{self.name}' produced no outputs")

        program = self.engine.compile(roots)
        input_slots = {
            value.name: slot
            for slot, value in program.constants
            if isinstance(value, SymbolicBlock)
        }
        program_bytes = sum(
            memory.output_bytes(instr.hop) for instr in program.instructions
        )
        batch_roles, batch_rows = _analyze_batch(
            program, self.batch_inputs
        )
        if any(name in self.batch_inputs for name in dim_reads):
            # The trace baked a batch input's dimensions into scalars
            # (nrow/ncol): a stacked compile would bake the *stacked*
            # row count and silently corrupt per-request results.
            batch_roles = [None] * len(batch_roles)
        return Specialization(signature, program, input_slots,
                              (kind, entries), program_bytes,
                              batch_roles, batch_rows)

    # ------------------------------------------------------------------
    def _package(self, spec: Specialization, root_values: list):
        kind, entries = spec.layout

        def value_of(entry):
            tag, payload = entry
            return root_values[payload] if tag == "root" else payload

        if kind == "dict":
            return {key: value_of(entry) for key, entry in entries}
        if kind == "single":
            return value_of(entries[0][1])
        return [value_of(entry) for _, entry in entries]

    def __repr__(self) -> str:
        return (f"PreparedProgram({self.name!r}, "
                f"{self.n_specializations} specialization(s))")


# ----------------------------------------------------------------------
# Script tracing
# ----------------------------------------------------------------------
def _trace_script(engine, script, slots: dict, name: str):
    """Symbolically interpret a script into lazy output expressions.

    Control flow that resolves from scalar inputs (baked into the
    specialization signature) unrolls into the DAG; branching on matrix
    data raises — such scripts need the regular interpreter.
    """
    from repro.lang.interp import TracingInterpreter

    tracer = TracingInterpreter(engine)
    for slot_name, value in slots.items():
        tracer.env[slot_name] = value
    tracer.execute(script)
    return list(tracer.env.items()), frozenset(tracer.dim_reads)


# ----------------------------------------------------------------------
# Batch analysis and block stacking
# ----------------------------------------------------------------------
# Per-slot batch-dependence status used by _analyze_batch.
_UNTAINTED = 0  # independent of every batch input
_ALIGNED = 1  # rows correspond 1:1 with the stacked batch rows
_MIXED = 2  # batch-dependent, but rows no longer track requests


def _row_local(instr, input_statuses) -> bool:
    """Does ``instr`` map each batch row independently to an output row?

    Only then may its output be split by request row offsets.  Requires
    every batch-dependent input to be row-ALIGNED already; this check
    adds the per-operator structure: cell-wise maps, row aggregations,
    matmuls with an aligned left operand, cbind, and Cell/Row fused
    operators that never read an aligned input in full (broadcast)
    access.  Cross-row operators (cumsum, transpose, rbind, indexing
    row subsets, column/full aggregations) are not row-local.
    """
    from repro.hops.hop import (
        AggBinaryOp,
        AggUnaryOp,
        BinaryOp,
        IndexingOp,
        NaryOp,
        ReorgOp,
        SpoofOp,
        TernaryOp,
        UnaryOp,
    )
    from repro.hops.types import AggDir

    hop = instr.hop
    if instr.opcode == "collect":
        return True  # identity on the materialized value
    if instr.opcode in ("fused", "spoof_out"):
        return False
    if instr.opcode == "spoof":
        assert isinstance(hop, SpoofOp)
        if hop.template_name not in ("Cell", "Row"):
            return False
        from repro.codegen.cplan import Access

        # SpoofOp inputs are positionally the CPlan inputs: an aligned
        # input consumed in full (broadcast) access would mix rows.
        for status, spec in zip(input_statuses, hop.operator.cplan.inputs):
            if status == _ALIGNED and spec.access is Access.SIDE_FULL:
                return False
        return True
    if isinstance(hop, UnaryOp):
        return hop.op != "cumsum"  # column-wise prefix scan mixes rows
    if isinstance(hop, (BinaryOp, TernaryOp)):
        return True  # cell-wise with broadcasting; aligned inputs have
        # batch_rows rows, so no tainted row-vector can broadcast across
    if isinstance(hop, AggUnaryOp):
        return hop.direction is AggDir.ROW
    if isinstance(hop, AggBinaryOp):
        # Row-local iff only the left operand carries batch rows.
        return input_statuses[1] == _UNTAINTED
    if isinstance(hop, NaryOp):
        return hop.op == "cbind"
    if isinstance(hop, IndexingOp):
        # Column slicing keeps rows aligned; row subsets shift offsets.
        return hop.rl == 0 and hop.ru == hop.inputs[0].rows
    if isinstance(hop, ReorgOp):
        return False
    return False


def _analyze_batch(program, batch_inputs: tuple):
    """Classify each program root for micro-batch output splitting.

    Tracks, per symbol-table slot, whether the value is independent of
    every batch input (**replicate**), row-ALIGNED with the stacked
    batch dimension (**split** by request row offsets), or
    batch-dependent with rows that no longer track requests — e.g. a
    Gram matrix ``X %*% t(X)`` or ``cumsum`` over the stacked rows —
    which makes the specialization unbatchable (``None`` role).
    """
    if not batch_inputs:
        return [None] * len(program.root_slots), 0
    batch_slots = {
        slot for slot, value in program.constants
        if isinstance(value, SymbolicBlock) and value.name in batch_inputs
    }
    batch_rows = 0
    for slot, value in program.constants:
        if slot in batch_slots:
            batch_rows = value.rows
            break
    status = [_UNTAINTED] * program.n_slots
    for slot in batch_slots:
        status[slot] = _ALIGNED
    for instr in program.instructions:
        input_statuses = [status[slot] for slot in instr.input_slots]
        if all(s == _UNTAINTED for s in input_statuses):
            continue  # output stays untainted
        aligned = (
            all(s != _MIXED for s in input_statuses)
            and instr.hop.is_matrix
            and instr.hop.rows == batch_rows
            and _row_local(instr, input_statuses)
        )
        status[instr.output_slot] = _ALIGNED if aligned else _MIXED
    role_of = {_UNTAINTED: REPLICATE, _ALIGNED: SPLIT, _MIXED: None}
    roles = [role_of[status[slot]] for slot in program.root_slots]
    return roles, batch_rows


def _stack_blocks(blocks: list) -> MatrixBlock:
    """rbind request blocks into one batch block."""
    cols = {block.cols for block in blocks}
    if len(cols) != 1:
        raise ServingError("batched inputs disagree on columns")
    if any(not isinstance(block, MatrixBlock) for block in blocks):
        raise ServingError("only MatrixBlock inputs can be batched")
    if all(block.is_sparse for block in blocks):
        stacked = MatrixBlock(sp.vstack([b.to_csr() for b in blocks]))
        return stacked.examine_representation()
    return MatrixBlock(np.vstack([b.to_dense() for b in blocks]))


def _slice_rows(value, lo: int, hi: int):
    """One request's row range of a stacked output."""
    if isinstance(value, MatrixBlock):
        if value.is_sparse:
            return MatrixBlock(value.to_csr()[lo:hi])
        return MatrixBlock(value.to_dense()[lo:hi])
    return value
