"""Serving subsystem: prepared programs and a concurrent scheduler.

The layer that makes the paper's repetition-amortizing design
observable end to end: scripts and expression DAGs are compiled once
against symbolic input slots, cached per input-shape signature
(dynamic recompilation on mismatch), and executed concurrently for many
requests over one shared engine — with admission control, micro-
batching, and per-request telemetry.

Quick start::

    from repro.compiler.execution import Engine
    from repro.serve import SessionScheduler

    engine = Engine(mode="gen")
    scorer = engine.prepare_script(
        "input X, w\\nscores = X %*% w",
        batch_inputs=("X",),
    )
    with SessionScheduler(engine) as server:
        ticket = server.submit(scorer, {"X": features, "w": weights})
        print(ticket.result()["scores"])
"""

from repro.serve.prepared import BatchBound, BoundRequest, PreparedProgram
from repro.serve.scheduler import ServeTicket, SessionScheduler
from repro.serve.symbolic import (
    SymbolicBlock,
    input_signature,
    normalize_inputs,
    sparsity_class,
)

__all__ = [
    "BatchBound",
    "BoundRequest",
    "PreparedProgram",
    "ServeTicket",
    "SessionScheduler",
    "SymbolicBlock",
    "input_signature",
    "normalize_inputs",
    "sparsity_class",
]
