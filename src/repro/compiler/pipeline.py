"""The staged compiler pipeline (front half of the engine).

Mirrors the paper's compilation chain (Section 2.1): rewrites and CSE,
codegen plan optimization, then operator (exec-type) selection — each a
named, independently testable pass over a shared
:class:`CompilationContext`.  The pipeline ends with lowering the
optimized HOP DAG into a runtime :class:`~repro.compiler.program.Program`
(:func:`compile_program`), which the executor schedules.

Pass order notes:

* Codegen runs *before* exec-type selection: the optimizer's cost model
  reasons about cluster placement analytically (it never reads
  ``hop.exec_type``), and selection must see the spliced ``SpoofOp``s
  to type them.  Selection therefore runs exactly once per compile —
  ``RuntimeStats.n_exec_type_selections`` asserts this.
"""

from __future__ import annotations

import time

from repro.analysis import lockset
from repro.codegen.optimizer import CodegenOptimizer
from repro.codegen.plan_cache import PlanCache
from repro.config import CodegenConfig
from repro.hops import memory
from repro.hops.hop import Hop, collect_dag
from repro.hops.rewrites import apply_rewrites
from repro.hops.types import ExecType, OpKind
from repro.obs import trace as obs_trace
from repro.runtime.stats import RuntimeStats

#: Engine modes and the codegen policy (None = no codegen pass).
MODE_POLICIES = {
    "base": None,
    "numpy": None,
    "fused": None,
    "gen": "cost",
    "gen-fa": "fa",
    "gen-fnr": "fnr",
}


class CompilationContext:
    """Shared state threaded through all compiler passes.

    Owns the long-lived pieces — config, plan cache, stats, and the
    codegen optimizer — so iterative workloads (one ``execute`` per
    loop iteration) reuse compiled operators across compilations.
    """

    def __init__(self, mode: str, config: CodegenConfig,
                 plan_cache: PlanCache | None = None,
                 stats: RuntimeStats | None = None):
        self.mode = mode
        self.config = config
        self.stats = stats or RuntimeStats()
        # One tracer per context (config.trace_level), attached to the
        # stats object so every layer that already receives stats —
        # executor, skeletons, kernels, plan cache, scheduler — can
        # open spans without new plumbing.
        self.tracer = obs_trace.tracer_for(config)
        self.stats.tracer = self.tracer
        self.plan_cache = plan_cache or PlanCache(config.plan_cache_enabled)
        self.optimizer = CodegenOptimizer(config, self.plan_cache, self.stats)
        # Serializes compilations through this context: the rewrite /
        # codegen passes mutate shared optimizer and stats state, so
        # concurrent serving requests compile one at a time (runtime
        # execution overlaps freely).  Reentrant so a compile hook may
        # trigger a nested recompilation.  Tracked for the lockset
        # race detector (compile-time counters mutate under it).
        self.lock = lockset.make_rlock("CompilationContext.lock")


class CompilerPass:
    """One named transformation of a multi-root HOP DAG."""

    name = "pass"

    def run(self, roots: list[Hop], ctx: CompilationContext) -> list[Hop]:
        raise NotImplementedError


class RewritePass(CompilerPass):
    """Static simplification rewrites plus CSE (disabled for ``numpy``,
    the no-sharing eager-library reference configuration)."""

    name = "rewrites"

    def run(self, roots: list[Hop], ctx: CompilationContext) -> list[Hop]:
        return apply_rewrites(roots, enable_cse=ctx.mode != "numpy")


class CodegenPass(CompilerPass):
    """Codegen plan optimization: explore, select, compile, splice."""

    name = "codegen"

    def __init__(self, policy: str):
        self.policy = policy

    def run(self, roots: list[Hop], ctx: CompilationContext) -> list[Hop]:
        return ctx.optimizer.optimize(roots, policy=self.policy)


class ExecTypeSelectionPass(CompilerPass):
    """Operator selection: local (CP) vs distributed (SPARK) placement
    by memory estimate.  Runs once per compile, after codegen, so the
    spliced fused operators are typed as well."""

    name = "exec-type-selection"

    def run(self, roots: list[Hop], ctx: CompilationContext) -> list[Hop]:
        ctx.stats.n_exec_type_selections += 1
        if ctx.config.cluster is None:
            return roots
        budget = ctx.config.local_mem_budget
        for hop in collect_dag(roots):
            if hop.kind in (OpKind.DATA, OpKind.LITERAL):
                hop.exec_type = ExecType.CP
                continue
            over_budget = memory.operation_bytes(hop) > budget
            hop.exec_type = ExecType.SPARK if over_budget else ExecType.CP
        return roots


def build_pipeline(mode: str) -> list[CompilerPass]:
    """The pass sequence for one engine mode."""
    policy = MODE_POLICIES[mode]
    passes: list[CompilerPass] = [RewritePass()]
    if policy is not None:
        passes.append(CodegenPass(policy))
    passes.append(ExecTypeSelectionPass())
    return passes


def run_passes(roots: list[Hop], passes: list[CompilerPass],
               ctx: CompilationContext) -> list[Hop]:
    """Run the passes in order, recording per-pass wall-clock.

    At ``verify_level="full"`` the IR verifier re-checks the DAG after
    every pass, so a violation is pinned to the pass that introduced it
    (``boundaries`` checks only the final optimized DAG, in
    :func:`compile_program`).
    """
    # Imported at call time: repro.analysis.verify needs the compiler
    # package (program helpers), so a module-level import here would
    # close a cycle whenever the analysis package loads first.
    per_pass_verify = ctx.config.verify_level == "full"
    if per_pass_verify:
        from repro.analysis.verify import check_dag
    for compiler_pass in passes:
        start = time.perf_counter()
        with ctx.tracer.span(compiler_pass.name, cat="compile"):
            roots = compiler_pass.run(roots, ctx)
        elapsed = time.perf_counter() - start
        seconds = ctx.stats.pipeline_pass_seconds
        seconds[compiler_pass.name] = seconds.get(compiler_pass.name, 0.0) + elapsed
        ctx.stats.metrics.histogram("compile_phase_seconds").observe(
            elapsed, phase=compiler_pass.name
        )
        if per_pass_verify:
            check_dag(roots, ctx, stage=f"after-{compiler_pass.name}")
    return roots


def compile_program(roots: list[Hop], ctx: CompilationContext,
                    passes: list[CompilerPass] | None = None):
    """Front half + lowering: HOP roots to a runtime ``Program``.

    Thread-safe: the whole pipeline runs under the context's compile
    lock, so engines and prepared-program specializations sharing one
    context (plan cache, optimizer, stats) never interleave passes.
    """
    from repro.compiler.program import annotate_recompile_markers, lower_program

    with ctx.lock, ctx.tracer.span("compile", cat="compile"):
        if passes is None:
            passes = build_pipeline(ctx.mode)
        roots = run_passes(roots, passes, ctx)
        verify = ctx.config.verify_level in ("boundaries", "full")
        if verify:
            # Call-time import: see the note in run_passes.
            from repro.analysis.verify import check_dag, check_program

            with ctx.tracer.span("verify-dag", cat="compile"):
                check_dag(roots, ctx, stage="post-optimization")
        start = time.perf_counter()
        with ctx.tracer.span("lowering", cat="compile"):
            program = lower_program(
                roots, ctx.mode, distributed=ctx.config.cluster is not None
            )
            # Partition the lowered program into recompilation segments:
            # instructions whose exec-type / fusion / format choices
            # rest on unknown or unknown-derived estimates are marked,
            # and the executor may re-enter this pipeline at those
            # boundaries with observed metadata spliced in
            # (compiler/recompile.py).
            ctx.stats.n_marked_instructions += annotate_recompile_markers(
                program
            )
        elapsed = time.perf_counter() - start
        seconds = ctx.stats.pipeline_pass_seconds
        seconds["lowering"] = seconds.get("lowering", 0.0) + elapsed
        ctx.stats.metrics.histogram("compile_phase_seconds").observe(
            elapsed, phase="lowering"
        )
        if verify:
            # Covers adaptive recompiles too: spliced remainder programs
            # re-enter this pipeline and re-verify automatically.
            with ctx.tracer.span("verify-program", cat="compile"):
                check_program(program, ctx, stage="post-lowering")
            ctx.stats.n_verified_programs += 1
        ctx.stats.n_programs_compiled += 1
        ctx.stats.n_instructions_lowered += program.n_instructions
        return program
