"""Hand-coded fused operators: the "Fused" baseline of the experiments.

SystemML's default configuration replaces fixed patterns of few
operators with hand-written fused implementations [7, 13, 37].  This
module reproduces the representative set the paper's experiments rely
on:

* ``mmchain``    — t(X) %*% (X %*% v) and t(X) %*% (w * (X %*% v)),
  matrix-*vector* chains only (the Figure 8(g) limitation),
* ``sumsq``      — sum(X^2) without materializing X^2,
* ``sumprod``    — sum(X * Y) without materializing X * Y,
* ``axpy``       — X + s*Y / X - s*Y,
* ``wcemm``      — sum(X * log(U %*% t(V) + eps)), sparsity-exploiting,
* ``wsloss``     — sum(W * (X - U %*% t(V))^2), sparsity-exploiting,
* ``wdivmm``     — ((W) * (U %*% t(V))) %*% V and the left variant,
  sparsity-exploiting (the ALS update-rule kernels).

Matching is split from execution: :func:`match_fused_pattern` inspects
a HOP sub-DAG top-down and, on success, returns a :class:`FusedMatch`
naming the pattern, the leaf hops it reads, and a ``compute`` callable
over the leaves' runtime values.  The compiler lowers matches into
``fused`` instructions at compile time, so pattern matching never
recurses at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.hops.hop import (
    AggBinaryOp,
    AggUnaryOp,
    BinaryOp,
    Hop,
    LiteralOp,
    ReorgOp,
    UnaryOp,
)
from repro.hops.types import AggDir, AggOp
from repro.runtime.matrix import MatrixBlock


@dataclass
class FusedMatch:
    """A matched hand-coded pattern rooted at one hop.

    ``leaves`` are the hops the fused implementation reads; ``compute``
    consumes their runtime values (in leaf order) and returns the value
    of the pattern root.  Intermediates covered by the pattern are never
    materialized unless another consumer demands them separately.
    """

    name: str
    leaves: list[Hop]
    compute: Callable[[list], object]
    #: Whether ``compute`` executes directly on CompressedMatrix inputs
    #: (dictionary-direct); the executor decompresses inputs of
    #: non-capable patterns up front and counts the decompression.
    compressed_capable: bool = False


def _is_t(hop: Hop) -> bool:
    return isinstance(hop, ReorgOp) and hop.op == "t"


def _is_full_sum(hop: Hop) -> bool:
    return (
        isinstance(hop, AggUnaryOp)
        and hop.agg_op in (AggOp.SUM, AggOp.SUM_SQ)
        and hop.direction is AggDir.FULL
    )


def match_fused_pattern(hop: Hop) -> FusedMatch | None:
    """Try all hand-coded patterns at ``hop`` (structural match only)."""
    for matcher in (_match_mmchain, _match_sum_fused, _match_wcemm,
                    _match_wsloss, _match_wdivmm, _match_axpy):
        match = matcher(hop)
        if match is not None:
            return match
    return None


# ----------------------------------------------------------------------
# mmchain: t(X) %*% (X %*% v)   |   t(X) %*% (w * (X %*% v))
# ----------------------------------------------------------------------
def _match_mmchain(hop: Hop) -> FusedMatch | None:
    if not (isinstance(hop, AggBinaryOp) and _is_t(hop.inputs[0])):
        return None
    x_hop = hop.inputs[0].inputs[0]
    right = hop.inputs[1]
    w_hop = None
    if isinstance(right, BinaryOp) and right.op == "*":
        # t(X) %*% (w * (X %*% v)) with a column-vector weight.
        lhs, rhs = right.inputs
        if isinstance(rhs, AggBinaryOp) and lhs.is_col_vector:
            w_hop, right = lhs, rhs
        elif isinstance(lhs, AggBinaryOp) and rhs.is_col_vector:
            w_hop, right = rhs, lhs
        else:
            return None
    if not isinstance(right, AggBinaryOp):
        return None
    if right.inputs[0] is not x_hop:
        return None
    v_hop = right.inputs[1]
    if not v_hop.is_col_vector:  # matrix-vector chains only
        return None
    leaves = [x_hop, v_hop] + ([w_hop] if w_hop is not None else [])

    def compute(values: list):
        x_val, v_val = values[0], values[1]
        w_val = values[2] if len(values) > 2 else None
        # Single pass over X: q = X v (row-wise), result += X_i^T q_i.
        if x_val.is_sparse:
            csr = x_val.to_csr()
            q = csr @ v_val.to_dense()
            if w_val is not None:
                q = q * w_val.to_dense()
            return MatrixBlock(np.asarray(csr.T @ q))
        arr = x_val.to_dense()
        q = arr @ v_val.to_dense()
        if w_val is not None:
            q = q * w_val.to_dense()
        return MatrixBlock(arr.T @ q)

    return FusedMatch("mmchain", leaves, compute)


# ----------------------------------------------------------------------
# sum(X^2), sum(X*Y)
# ----------------------------------------------------------------------
def _match_sum_fused(hop: Hop) -> FusedMatch | None:
    if not _is_full_sum(hop):
        return None
    inner = hop.inputs[0]
    if hop.agg_op is AggOp.SUM_SQ:
        return FusedMatch("sumsq", [inner], lambda vs: _sumsq_value(vs[0]),
                          compressed_capable=True)
    if isinstance(inner, UnaryOp) and inner.op == "pow2":
        return FusedMatch(
            "sumsq", [inner.inputs[0]], lambda vs: _sumsq_value(vs[0]),
            compressed_capable=True,
        )
    if isinstance(inner, BinaryOp) and inner.op == "^":
        exp = inner.inputs[1]
        if isinstance(exp, LiteralOp) and exp.value == 2.0:
            return FusedMatch(
                "sumsq", [inner.inputs[0]], lambda vs: _sumsq_value(vs[0]),
                compressed_capable=True,
            )
    if isinstance(inner, BinaryOp) and inner.op == "*":
        lhs, rhs = inner.inputs
        if lhs is rhs and lhs.is_matrix:
            return FusedMatch("sumsq", [lhs], lambda vs: _sumsq_value(vs[0]),
                              compressed_capable=True)
        if lhs.is_matrix and rhs.is_matrix and lhs.dims == rhs.dims:
            return FusedMatch("sumprod", [lhs, rhs], _sumprod_value,
                              compressed_capable=True)
    return None


def _sumprod_value(values: list):
    from repro.runtime.compressed import CompressedMatrix

    a, b = values
    if isinstance(a, CompressedMatrix):
        a = a.decompress()
    if isinstance(b, CompressedMatrix):
        b = b.decompress()
    if a.is_sparse and not b.is_sparse:
        return _sumprod_sparse_dense(a, b)
    if a.is_sparse and b.is_sparse:
        return float(a.to_csr().multiply(b.to_csr()).sum())
    if b.is_sparse:
        return _sumprod_sparse_dense(b, a)
    return float(np.dot(a.to_dense().ravel(), b.to_dense().ravel()))


def _sumprod_sparse_dense(sparse_val, dense_val):
    csr = sparse_val.to_csr()
    rows = np.repeat(np.arange(csr.shape[0]), np.diff(csr.indptr))
    return float(np.dot(csr.data, dense_val.to_dense()[rows, csr.indices]))


def _sumsq_value(x_val):
    from repro.runtime.compressed import CompressedMatrix

    if isinstance(x_val, CompressedMatrix):
        return x_val.sum_sq()
    if x_val.is_sparse:
        data = x_val.to_csr().data
        return float(np.dot(data, data))
    arr = x_val.to_dense().ravel()
    return float(np.dot(arr, arr))


# ----------------------------------------------------------------------
# wcemm: sum(X * log(U %*% t(V) + eps))
# ----------------------------------------------------------------------
def _match_wcemm(hop: Hop) -> FusedMatch | None:
    if not (_is_full_sum(hop) and hop.agg_op is AggOp.SUM):
        return None
    inner = hop.inputs[0]
    if not (isinstance(inner, BinaryOp) and inner.op == "*"):
        return None
    for x_hop, log_hop in (inner.inputs, inner.inputs[::-1]):
        if not (isinstance(log_hop, UnaryOp) and log_hop.op == "log"):
            continue
        arg = log_hop.inputs[0]
        eps = 0.0
        if isinstance(arg, BinaryOp) and arg.op == "+":
            lit = arg.inputs[1] if isinstance(arg.inputs[1], LiteralOp) else (
                arg.inputs[0] if isinstance(arg.inputs[0], LiteralOp) else None
            )
            if lit is None:
                continue
            eps = lit.value
            arg = arg.inputs[0] if lit is arg.inputs[1] else arg.inputs[1]
        uv = _match_uvt(arg)
        if uv is None:
            continue
        u_hop, v_hop = uv

        def compute(values: list, eps=eps):
            x_val, u_val, v_val = values
            return _wce_sum(x_val, u_val.to_dense(), v_val.to_dense(), eps)

        return FusedMatch("wcemm", [x_hop, u_hop, v_hop], compute)
    return None


def _match_uvt(hop: Hop):
    """Match U %*% t(V) returning (U, V); V given n x k."""
    if not isinstance(hop, AggBinaryOp):
        return None
    left, right = hop.inputs
    if not _is_t(right):
        return None
    return left, right.inputs[0]


def _wce_sum(x_val, u_arr, v_arr, eps):
    total = 0.0
    if x_val.is_sparse:
        csr = x_val.to_csr()
        for i in range(csr.shape[0]):
            lo, hi = csr.indptr[i], csr.indptr[i + 1]
            if hi == lo:
                continue
            cols = csr.indices[lo:hi]
            uv = v_arr[cols] @ u_arr[i]
            total += float(np.dot(csr.data[lo:hi], np.log(uv + eps)))
        return total
    arr = x_val.to_dense()
    for i in range(arr.shape[0]):
        uv = v_arr @ u_arr[i]
        total += float(np.dot(arr[i], np.log(uv + eps)))
    return total


# ----------------------------------------------------------------------
# wsloss: sum(W * (X - U %*% t(V))^2)
# ----------------------------------------------------------------------
def _match_wsloss(hop: Hop) -> FusedMatch | None:
    if not (_is_full_sum(hop) and hop.agg_op is AggOp.SUM):
        return None
    inner = hop.inputs[0]
    if not (isinstance(inner, BinaryOp) and inner.op == "*"):
        return None
    for w_hop, sq_hop in (inner.inputs, inner.inputs[::-1]):
        sq_arg = None
        if isinstance(sq_hop, UnaryOp) and sq_hop.op == "pow2":
            sq_arg = sq_hop.inputs[0]
        elif isinstance(sq_hop, BinaryOp) and sq_hop.op == "^":
            if isinstance(sq_hop.inputs[1], LiteralOp) and sq_hop.inputs[1].value == 2.0:
                sq_arg = sq_hop.inputs[0]
        if sq_arg is None or not (isinstance(sq_arg, BinaryOp) and sq_arg.op == "-"):
            continue
        x_hop, uvt = sq_arg.inputs
        uv = _match_uvt(uvt)
        if uv is None:
            continue
        u_hop, v_hop = uv
        return FusedMatch(
            "wsloss", [w_hop, x_hop, u_hop, v_hop], _wsloss_value
        )
    return None


def _wsloss_value(values: list):
    w_val, x_val, u_val, v_val = values
    u_arr = u_val.to_dense()
    v_arr = v_val.to_dense()
    if not w_val.is_sparse:
        pred = u_arr @ v_arr.T
        diff = x_val.to_dense() - pred
        return float(np.sum(w_val.to_dense() * diff * diff))
    csr = w_val.to_csr()
    x_csr = x_val.to_csr()
    total = 0.0
    for i in range(csr.shape[0]):
        lo, hi = csr.indptr[i], csr.indptr[i + 1]
        if hi == lo:
            continue
        cols = csr.indices[lo:hi]
        pred = v_arr[cols] @ u_arr[i]
        x_row = np.asarray(x_csr[i, cols].todense()).ravel()
        diff = x_row - pred
        total += float(np.dot(csr.data[lo:hi], diff * diff))
    return total


# ----------------------------------------------------------------------
# wdivmm: ((W) * (U %*% t(V))) %*% V   |   t((W)*(U %*% t(V))) %*% U
# ----------------------------------------------------------------------
def _match_wdivmm(hop: Hop) -> FusedMatch | None:
    if not isinstance(hop, AggBinaryOp):
        return None
    left, right_factor = hop.inputs
    transposed = False
    if _is_t(left):
        left = left.inputs[0]
        transposed = True
    if not (isinstance(left, BinaryOp) and left.op == "*"):
        return None
    for w_hop, uvt in (left.inputs, left.inputs[::-1]):
        uv = _match_uvt(uvt)
        if uv is None:
            continue
        u_hop, v_hop = uv
        # The second matmult factor must be one of the factors.
        if not transposed and right_factor is not v_hop:
            continue
        if transposed and right_factor is not u_hop:
            continue

        def compute(values: list, transposed=transposed):
            w_val, u_val, v_val = values
            return _wdivmm(
                w_val, u_val.to_dense(), v_val.to_dense(), transposed
            )

        return FusedMatch("wdivmm", [w_hop, u_hop, v_hop], compute)
    return None


def _wdivmm(w_val, u_arr, v_arr, transposed: bool):
    rows = u_arr.shape[0]
    cols = v_arr.shape[0]
    if w_val.is_sparse:
        csr = w_val.to_csr()
        if transposed:
            out = np.zeros((cols, u_arr.shape[1]))
        else:
            out = np.zeros((rows, v_arr.shape[1]))
        for i in range(rows):
            lo, hi = csr.indptr[i], csr.indptr[i + 1]
            if hi == lo:
                continue
            cols_i = csr.indices[lo:hi]
            w_vals = csr.data[lo:hi] * (v_arr[cols_i] @ u_arr[i])
            if transposed:
                out[cols_i] += np.outer(w_vals, u_arr[i])
            else:
                out[i] = w_vals @ v_arr[cols_i]
        return MatrixBlock(out)
    w_arr = w_val.to_dense()
    product = w_arr * (u_arr @ v_arr.T)
    if transposed:
        return MatrixBlock(product.T @ u_arr)
    return MatrixBlock(product @ v_arr)


# ----------------------------------------------------------------------
# axpy: X + s*Y / X - s*Y
# ----------------------------------------------------------------------
def _match_axpy(hop: Hop) -> FusedMatch | None:
    if not (isinstance(hop, BinaryOp) and hop.op in ("+", "-")):
        return None
    lhs, rhs = hop.inputs
    if not (lhs.is_matrix and isinstance(rhs, BinaryOp) and rhs.op == "*"):
        return None
    s_hop = next((h for h in rhs.inputs if h.is_scalar), None)
    y_hop = next((h for h in rhs.inputs if h.is_matrix), None)
    if s_hop is None or y_hop is None or y_hop.dims != lhs.dims:
        return None
    sign = 1.0 if hop.op == "+" else -1.0

    def compute(values: list, sign=sign):
        x_val, y_val, s_val = values
        s_val = s_val if isinstance(s_val, float) else s_val.as_scalar()
        if x_val.is_sparse and y_val.is_sparse:
            out = x_val.to_csr() + (sign * s_val) * y_val.to_csr()
            return MatrixBlock(out).examine_representation()
        return MatrixBlock(
            x_val.to_dense() + sign * s_val * y_val.to_dense()
        ).examine_representation()

    return FusedMatch("axpy", [lhs, y_hop, s_hop], compute)
