"""Staged compiler: pipeline passes, Program lowering, engine façade."""

from repro.compiler.execution import Engine
from repro.compiler.pipeline import (
    CompilationContext,
    CompilerPass,
    build_pipeline,
    compile_program,
)
from repro.compiler.program import Instruction, Program, lower_program

__all__ = [
    "Engine",
    "CompilationContext",
    "CompilerPass",
    "build_pipeline",
    "compile_program",
    "Instruction",
    "Program",
    "lower_program",
]
