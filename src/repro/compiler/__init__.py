"""Compiler pipeline: engines, hand-coded fused operators, scripts."""

from repro.compiler.execution import Engine

__all__ = ["Engine"]
