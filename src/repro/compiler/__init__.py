"""Staged compiler: pipeline passes, Program lowering, engine façade."""

from repro.compiler.execution import Engine
from repro.compiler.pipeline import (
    CompilationContext,
    CompilerPass,
    build_pipeline,
    compile_program,
)
from repro.compiler.program import (
    Instruction,
    Program,
    annotate_recompile_markers,
    lower_program,
)
from repro.compiler.recompile import Recompiler

__all__ = [
    "Engine",
    "CompilationContext",
    "CompilerPass",
    "build_pipeline",
    "compile_program",
    "Instruction",
    "Program",
    "annotate_recompile_markers",
    "lower_program",
    "Recompiler",
]
