"""Adaptive recompilation: re-optimize a program remainder at runtime.

SystemML's answer to size/sparsity estimate errors is *dynamic
recompilation* (Section 2.1): when the runtime observes metadata that
diverges from what the compiler assumed, the remaining plan is thrown
away and re-optimized with the observed values spliced in.  This module
implements that splice for lowered
:class:`~repro.compiler.program.Program` values:

* :meth:`Recompiler.recompile_remainder` takes a program paused at a
  segment boundary (``instr.meta_checks`` — see
  :func:`~repro.compiler.program.annotate_recompile_markers`) plus the
  executor's live symbol table, and rebuilds the not-yet-executed HOP
  sub-DAG with every already-materialized value replaced by an *exact*
  leaf: a ``DataOp`` over the observed block (re-formatted per the
  shared :func:`~repro.runtime.matrix.recommend_format` policy) or a
  ``LiteralOp`` for scalars,
* generated fused operators are **de-fused** through
  ``SpoofOp.covered_roots`` back to the original HOPs, so the codegen
  pass re-runs plan exploration under the corrected estimates (and the
  shared plan cache keeps regenerated operators shared across
  recompiles),
* the cloned roots run back through the full compiler pipeline
  (rewrites → codegen → exec-type selection → lowering), yielding a
  fresh program whose root slots map onto the original program's
  remaining root slots.

The executor (:mod:`repro.runtime.executor`) owns the trigger policy:
it compares estimates against observed nnz at each segment boundary and
calls into this module when the divergence ratio crosses
``CodegenConfig.recompile_divergence_ratio``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CompileError
from repro.hops.hop import (
    AggBinaryOp,
    AggUnaryOp,
    BinaryOp,
    DataOp,
    Hop,
    IndexingOp,
    LiteralOp,
    NaryOp,
    ReorgOp,
    SpoofOp,
    SpoofOutOp,
    TernaryOp,
    UnaryOp,
)
from repro.runtime.compressed import compress, estimate_distinct
from repro.runtime.matrix import MatrixBlock, recommend_format

_SCALAR_TYPES = (int, float, np.floating, np.integer)


def observed_block(value: MatrixBlock, config, stats=None):
    """An observed block in the format the shared policy recommends.

    Returns a fresh wrapper when a conversion is needed so the caller's
    block (possibly a user-provided program input) is never mutated.
    The compressed leg samples a distinct-value estimate so the shared
    policy can recommend ``'compressed'``; blocks below the cell floor
    skip the estimate entirely (conversion would cost more than it
    saves).
    """
    cells = value.rows * value.cols
    target = recommend_format(
        value.rows, value.cols, value.nnz, config.sparse_threshold
    )
    if (
        target == "dense"
        and getattr(config, "compressed_execution", False)
        and cells >= config.compression_min_cells
    ):
        # Only dense-recommended blocks pay the distinct-value sample:
        # CSR already exploits sparsity, so the scan would rarely flip
        # the recommendation there but would tax every recompile.
        distinct = estimate_distinct(value, config.compression_sample_rows)
        target = recommend_format(
            value.rows, value.cols, value.nnz, config.sparse_threshold,
            distinct=distinct,
            compress_ratio=getattr(config, "compression_min_ratio", 2.0),
        )
    if target == "compressed":
        if stats is not None:
            stats.n_format_conversions += 1
            stats.n_compressions += 1
        return compress(value)
    if target == "sparse" and not value.is_sparse:
        if stats is not None:
            stats.n_format_conversions += 1
        return MatrixBlock(value.to_csr())
    if target == "dense" and value.is_sparse:
        if stats is not None:
            stats.n_format_conversions += 1
        return MatrixBlock(value.to_dense())
    return value


def _clone_structural(hop: Hop, kids: list[Hop]) -> Hop:
    """One fresh hop of the same operator over cloned inputs.

    Constructors re-run ``refresh_sizes``, so nnz estimates re-derive
    from the exact observed leaves — this is where the corrected
    metadata propagates through the remaining plan.
    """
    if isinstance(hop, UnaryOp):
        return UnaryOp(hop.op, kids[0])
    if isinstance(hop, BinaryOp):
        return BinaryOp(hop.op, kids[0], kids[1])
    if isinstance(hop, TernaryOp):
        return TernaryOp(hop.op, kids[0], kids[1], kids[2])
    if isinstance(hop, AggUnaryOp):
        return AggUnaryOp(hop.agg_op, hop.direction, kids[0])
    if isinstance(hop, AggBinaryOp):
        return AggBinaryOp(kids[0], kids[1])
    if isinstance(hop, ReorgOp):
        return ReorgOp(kids[0], hop.op)
    if isinstance(hop, IndexingOp):
        return IndexingOp(kids[0], hop.rl, hop.ru, hop.cl, hop.cu)
    if isinstance(hop, NaryOp):
        return NaryOp(hop.op, kids)
    raise CompileError(f"cannot clone hop {hop.opcode()} for recompilation")


def _defuse(hop: Hop) -> Hop:
    """The original (pre-fusion) hop a generated operator stands for.

    A ``SpoofOutOp`` de-fuses to its aggregate's original root even
    when the producing operator already executed (its k x 1 output sits
    in the boundary): re-deriving the aggregate from deeper boundary
    values is wasteful but always type- and pipeline-safe, whereas a
    synthetic extractor over the materialized block would smuggle a
    ``SpoofOutOp`` into the rewrite/codegen passes, which only expect
    them post-splice.  Lowering keeps extractors unmarked, so this only
    happens when a divergence triggers *between* an operator and one of
    its extractors — a rare shape for demand-driven lowering.
    """
    if isinstance(hop, SpoofOutOp):
        spoof = hop.inputs[0]
        return spoof.covered_roots[hop.index]
    assert isinstance(hop, SpoofOp)
    return hop.covered_roots[0]


def clone_with_observations(roots: list[Hop], boundary: dict[int, int],
                            values: list, config, stats=None) -> list[Hop]:
    """Clone the sub-DAG under ``roots``, cutting at observed values.

    ``boundary`` maps hop id -> symbol-table slot for every hop whose
    runtime value is already materialized in ``values``; those hops
    become exact ``DataOp`` / ``LiteralOp`` leaves.  Fused operators
    between boundary cuts are de-fused so codegen can re-explore.  The
    walk is iterative (covered bodies can be thousands of hops deep)
    and never mutates the original DAG.
    """
    memo: dict[int, Hop] = {}

    def leaf_for(hop: Hop) -> Hop:
        value = values[boundary[hop.id]]
        if isinstance(value, _SCALAR_TYPES):
            return LiteralOp(float(value))
        if isinstance(value, MatrixBlock):
            value = observed_block(value, config, stats)
        return DataOp(value, name=hop.name)

    def clone(root: Hop) -> Hop:
        stack = [root]
        while stack:
            node = stack[-1]
            if node.id in memo:
                stack.pop()
                continue
            if node.id in boundary:
                memo[node.id] = leaf_for(node)
                stack.pop()
                continue
            if isinstance(node, (SpoofOp, SpoofOutOp)):
                target = _defuse(node)
                if target.id in memo:
                    memo[node.id] = memo[target.id]
                    stack.pop()
                else:
                    stack.append(target)
                continue
            if isinstance(node, DataOp):
                memo[node.id] = DataOp(node.data, name=node.name)
                stack.pop()
                continue
            if isinstance(node, LiteralOp):
                memo[node.id] = LiteralOp(node.value)
                stack.pop()
                continue
            missing = [i for i in node.inputs if i.id not in memo]
            if missing:
                stack.extend(reversed(missing))
                continue
            kids = [memo[i.id] for i in node.inputs]
            memo[node.id] = _clone_structural(node, kids)
            stack.pop()
        return memo[root.id]

    return [clone(root) for root in roots]


class Recompiler:
    """Re-enters the compiler pipeline for a paused program remainder.

    One instance per engine, sharing the engine's
    :class:`~repro.compiler.pipeline.CompilationContext` — and through
    it the plan cache, so operators regenerated during recompilation
    stay shared with every other compilation the engine performed.
    """

    def __init__(self, context):
        self.context = context

    def recompile_remainder(self, program, start_index: int, values: list,
                            stats=None):
        """Recompile instructions ``start_index:`` with observed metadata.

        Returns ``(new_program, old_root_slots)``: the freshly compiled
        program for the remaining work, plus the original program's root
        slots its root values map onto (positionally aligned with
        ``new_program.root_slots``).
        """
        from repro.compiler.pipeline import compile_program

        remaining = program.instructions[start_index:]
        produced = {instr.output_slot for instr in remaining}
        boundary = {
            hop_id: slot for hop_id, slot in program.hop_slots.items()
            if slot not in produced and values[slot] is not None
        }
        producer_hop = {instr.output_slot: instr.hop for instr in remaining}
        positions = [
            pos for pos, slot in enumerate(program.root_slots)
            if slot in produced
        ]
        root_hops = [producer_hop[program.root_slots[pos]] for pos in positions]
        with self.context.tracer.span("recompile-clone", cat="recompile",
                                      boundary=len(boundary)):
            cloned = clone_with_observations(
                root_hops, boundary, values, self.context.config, stats
            )
        if self.context.config.verify_level == "full":
            # Verify the spliced sub-DAG before re-entering the
            # pipeline: a bad clone (broken de-fusion, stale boundary
            # value) is reported against the splice, not blamed on the
            # rewrite pass that trips over it later.
            from repro.analysis.verify import check_dag

            check_dag(cloned, self.context, stage="recompile-splice")
        new_program = compile_program(cloned, self.context)
        return new_program, [program.root_slots[pos] for pos in positions]
