"""Lowering: optimized HOP DAGs to a schedulable runtime ``Program``.

The compiler front half (:mod:`repro.compiler.pipeline`) produces an
optimized multi-root HOP DAG; this module lowers it into a flat
:class:`Program` of :class:`Instruction` objects over an explicit
symbol table:

* every hop value lives in a numbered symbol-table *slot*,
* ``DataOp``/``LiteralOp`` leaves become preloaded constant slots (no
  instruction is scheduled for them),
* every other hop becomes one instruction naming its input slots and
  output slot, plus explicit dependency edges to the producing
  instructions,
* in ``fused`` mode, hand-coded pattern matching happens *here*, at
  compile time: a matched pattern lowers into a single ``fused``
  instruction reading the pattern's leaf slots (this is what removed
  the old demand-driven interpreter and its recursion-limit hack).

The resulting program is what the runtime executor
(:mod:`repro.runtime.executor`) schedules — serially or over a thread
pool by dependency readiness — with reference counts per slot enabling
eager freeing of dead intermediates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hops.hop import DataOp, Hop, LiteralOp, SpoofOp, SpoofOutOp
from repro.hops.types import ExecType


@dataclass
class Instruction:
    """One lowered operation over symbol-table slots.

    ``opcode`` is one of:

    * ``hop``       — a basic operator dispatched to the kernel library
                      (or the distributed backend, per ``hop.exec_type``),
    * ``spoof``     — a generated fused operator (``hop.operator``),
    * ``spoof_out`` — scalar extraction from a multi-aggregate output,
    * ``fused``     — a hand-coded fused pattern (``fused_match``),
    * ``collect``   — materialize a distributed (blocked) intermediate
                      at an exec-type boundary or program root.
    """

    index: int
    opcode: str
    hop: Hop
    input_slots: list[int]
    output_slot: int
    fused_match: object = None  # FusedMatch for opcode == "fused"
    # Dependency edges (instruction indices), derived from input slots.
    dep_indices: tuple = ()
    dependent_indices: tuple = ()
    # Largest matrix (cells) this instruction touches; the executor's
    # parallel/serial heuristic keys off it.
    weight: int = 0

    def __repr__(self) -> str:
        ins = ",".join(map(str, self.input_slots))
        return (
            f"[{self.index}] {self.opcode}({self.hop.opcode()}) "
            f"r{ins} -> w{self.output_slot}"
        )


@dataclass
class Program:
    """A lowered multi-root DAG ready for scheduling.

    ``instructions`` are in a valid topological order, so serial
    execution is a flat loop.  ``consumer_counts[slot]`` is the number
    of instruction reads of that slot; ``pinned`` slots (constants and
    root outputs) are never freed.
    """

    instructions: list[Instruction] = field(default_factory=list)
    n_slots: int = 0
    constants: list = field(default_factory=list)  # (slot, value)
    root_slots: list[int] = field(default_factory=list)
    consumer_counts: list[int] = field(default_factory=list)
    pinned: set = field(default_factory=set)

    @property
    def n_instructions(self) -> int:
        return len(self.instructions)

    def max_width(self) -> int:
        """Upper bound on schedulable concurrency (levelized width)."""
        level: dict[int, int] = {}
        width: dict[int, int] = {}
        for instr in self.instructions:
            lvl = 1 + max(
                (level[d] for d in instr.dep_indices), default=-1
            )
            level[instr.index] = lvl
            width[lvl] = width.get(lvl, 0) + 1
        return max(width.values(), default=0)

    def finalize(self) -> None:
        """Derive dependency edges and per-slot reference counts."""
        producer: dict[int, int] = {}
        for instr in self.instructions:
            producer[instr.output_slot] = instr.index
        self.consumer_counts = [0] * self.n_slots
        dependents: list[list[int]] = [[] for _ in self.instructions]
        for instr in self.instructions:
            deps = []
            seen = set()
            for slot in instr.input_slots:
                self.consumer_counts[slot] += 1
                dep = producer.get(slot)
                if dep is not None and dep not in seen:
                    seen.add(dep)
                    deps.append(dep)
            instr.dep_indices = tuple(deps)
            for dep in deps:
                dependents[dep].append(instr.index)
        for instr in self.instructions:
            instr.dependent_indices = tuple(dependents[instr.index])
        self.pinned = {slot for slot, _ in self.constants}
        self.pinned.update(self.root_slots)


def _emits_blocked_value(instr: Instruction) -> bool:
    """True for instructions whose runtime output may stay distributed
    (a ``BlockedMatrix``) instead of a driver-side block."""
    return (
        instr.opcode in ("hop", "spoof")
        and instr.hop.exec_type is ExecType.SPARK
        and instr.hop.is_matrix
    )


def _consumes_blocked_values(instr: Instruction) -> bool:
    """True for instructions dispatched to the distributed backend,
    which accept ``BlockedMatrix`` inputs partition-wise."""
    return (
        instr.opcode in ("hop", "spoof")
        and instr.hop.exec_type is ExecType.SPARK
    )


def insert_collect_boundaries(program: Program) -> None:
    """Insert explicit ``collect`` instructions at exec-type boundaries.

    SPARK-typed instructions produce row-partitioned ``BlockedMatrix``
    values that chained SPARK consumers read partition-wise.  Any
    CP-typed consumer — and any program root — needs the materialized
    driver-side block instead, so each such slot gains one ``collect``
    instruction right after its producer; only the non-distributed
    readers are rewired to the collected slot.  Must run before
    :meth:`Program.finalize` (it renumbers instructions and slots).
    """
    blocked_slots = {
        instr.output_slot for instr in program.instructions
        if _emits_blocked_value(instr)
    }
    if not blocked_slots:
        return
    needs_collect = {
        slot for slot in program.root_slots if slot in blocked_slots
    }
    for instr in program.instructions:
        if _consumes_blocked_values(instr):
            continue
        needs_collect.update(
            slot for slot in instr.input_slots if slot in blocked_slots
        )
    if not needs_collect:
        return

    collected_slot: dict[int, int] = {}
    rebuilt: list[Instruction] = []
    for instr in program.instructions:
        if not _consumes_blocked_values(instr):
            # Producers appear before consumers (topological order), so
            # every needed collected slot already exists here.
            instr.input_slots = [
                collected_slot.get(slot, slot) for slot in instr.input_slots
            ]
        rebuilt.append(instr)
        if instr.output_slot in needs_collect:
            fresh = program.n_slots
            program.n_slots += 1
            collected_slot[instr.output_slot] = fresh
            rebuilt.append(
                Instruction(
                    index=0,  # renumbered below
                    opcode="collect",
                    hop=instr.hop,
                    input_slots=[instr.output_slot],
                    output_slot=fresh,
                    weight=instr.weight,
                )
            )
    for position, instr in enumerate(rebuilt):
        instr.index = position
    program.instructions = rebuilt
    program.root_slots = [
        collected_slot.get(slot, slot) for slot in program.root_slots
    ]


def lower_program(roots: list[Hop], mode: str,
                  distributed: bool = False) -> Program:
    """Lower an optimized multi-root HOP DAG into a :class:`Program`.

    The walk is demand-driven from the roots and fully iterative, so
    arbitrarily deep DAGs lower without recursion.  In ``fused`` mode
    hand-coded patterns are matched per demanded hop; intermediates
    covered by a pattern are lowered only if another consumer demands
    them separately (matching the old lazy interpreter's semantics).
    With ``distributed=True`` (a cluster is configured), explicit
    ``collect`` instructions are inserted wherever a SPARK-typed
    producer feeds a CP-typed consumer or a program root.
    """
    from repro.compiler.fused_lib import match_fused_pattern

    use_fused = mode == "fused"
    program = Program()
    slot_of: dict[int, int] = {}
    plans: dict[int, tuple] = {}  # hop.id -> (match, dep hops)

    def assign_slot(hop: Hop) -> int:
        slot = program.n_slots
        program.n_slots += 1
        slot_of[hop.id] = slot
        return slot

    def emit(hop: Hop, match, deps: list[Hop]) -> None:
        if isinstance(hop, DataOp):
            program.constants.append((assign_slot(hop), hop.data))
            return
        if isinstance(hop, LiteralOp):
            program.constants.append((assign_slot(hop), hop.value))
            return
        input_slots = [slot_of[d.id] for d in deps]
        if match is not None:
            opcode = "fused"
        elif isinstance(hop, SpoofOutOp):
            opcode = "spoof_out"
        elif isinstance(hop, SpoofOp):
            opcode = "spoof"
        else:
            opcode = "hop"
        weight = hop.cells
        for dep in deps:
            weight = max(weight, dep.cells)
        program.instructions.append(
            Instruction(
                index=len(program.instructions),
                opcode=opcode,
                hop=hop,
                input_slots=input_slots,
                output_slot=assign_slot(hop),
                fused_match=match,
                weight=weight,
            )
        )

    stack: list[Hop] = list(reversed(roots))
    while stack:
        hop = stack[-1]
        if hop.id in slot_of:
            stack.pop()
            continue
        if isinstance(hop, (DataOp, LiteralOp)):
            emit(hop, None, [])
            stack.pop()
            continue
        plan = plans.get(hop.id)
        if plan is None:
            match = match_fused_pattern(hop) if use_fused else None
            deps = match.leaves if match is not None else hop.inputs
            plan = (match, deps)
            plans[hop.id] = plan
        match, deps = plan
        missing = [d for d in deps if d.id not in slot_of]
        if missing:
            stack.extend(reversed(missing))
            continue
        emit(hop, match, deps)
        stack.pop()

    program.root_slots = [slot_of[r.id] for r in roots]
    if distributed:
        insert_collect_boundaries(program)
    program.finalize()
    return program
