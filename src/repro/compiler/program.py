"""Lowering: optimized HOP DAGs to a schedulable runtime ``Program``.

The compiler front half (:mod:`repro.compiler.pipeline`) produces an
optimized multi-root HOP DAG; this module lowers it into a flat
:class:`Program` of :class:`Instruction` objects over an explicit
symbol table:

* every hop value lives in a numbered symbol-table *slot*,
* ``DataOp``/``LiteralOp`` leaves become preloaded constant slots (no
  instruction is scheduled for them),
* every other hop becomes one instruction naming its input slots and
  output slot, plus explicit dependency edges to the producing
  instructions,
* in ``fused`` mode, hand-coded pattern matching happens *here*, at
  compile time: a matched pattern lowers into a single ``fused``
  instruction reading the pattern's leaf slots (this is what removed
  the old demand-driven interpreter and its recursion-limit hack).

The resulting program is what the runtime executor
(:mod:`repro.runtime.executor`) schedules — serially or over a thread
pool by dependency readiness — with reference counts per slot enabling
eager freeing of dead intermediates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hops.hop import DataOp, Hop, LiteralOp, SpoofOp, SpoofOutOp
from repro.hops.types import ExecType


@dataclass
class Instruction:
    """One lowered operation over symbol-table slots.

    ``opcode`` is one of:

    * ``hop``       — a basic operator dispatched to the kernel library
                      (or the distributed backend, per ``hop.exec_type``),
    * ``spoof``     — a generated fused operator (``hop.operator``),
    * ``spoof_out`` — scalar extraction from a multi-aggregate output,
    * ``fused``     — a hand-coded fused pattern (``fused_match``),
    * ``collect``   — materialize a distributed (blocked) intermediate
                      at an exec-type boundary or program root.
    """

    index: int
    opcode: str
    hop: Hop
    input_slots: list[int]
    output_slot: int
    fused_match: object = None  # FusedMatch for opcode == "fused"
    # Dependency edges (instruction indices), derived from input slots.
    dep_indices: tuple = ()
    dependent_indices: tuple = ()
    # Largest matrix (cells) this instruction touches; the executor's
    # parallel/serial heuristic keys off it.
    weight: int = 0
    # Adaptive recompilation markers: (slot, estimated_nnz, cells) per
    # input whose compile-time metadata is unknown or derived from an
    # unknown estimate.  Non-empty checks start a recompilation segment:
    # the executor compares the estimate against the observed value and
    # recompiles the program remainder when they diverge.
    meta_checks: tuple = ()

    def __repr__(self) -> str:
        ins = ",".join(map(str, self.input_slots))
        return (
            f"[{self.index}] {self.opcode}({self.hop.opcode()}) "
            f"r{ins} -> w{self.output_slot}"
        )


@dataclass
class Program:
    """A lowered multi-root DAG ready for scheduling.

    ``instructions`` are in a valid topological order, so serial
    execution is a flat loop.  ``consumer_counts[slot]`` is the number
    of instruction reads of that slot; ``pinned`` slots (constants and
    root outputs) are never freed.
    """

    instructions: list[Instruction] = field(default_factory=list)
    n_slots: int = 0
    constants: list = field(default_factory=list)  # (slot, value)
    root_slots: list[int] = field(default_factory=list)
    consumer_counts: list[int] = field(default_factory=list)
    pinned: set = field(default_factory=set)
    # Slot bookkeeping for adaptive recompilation: hop.id <-> slot for
    # every hop that owns a symbol-table slot (constants + outputs).
    hop_slots: dict = field(default_factory=dict)  # hop.id -> slot
    slot_hops: dict = field(default_factory=dict)  # slot -> Hop
    # True once annotate_recompile_markers found at least one marked
    # instruction; the executor skips all adaptive bookkeeping otherwise.
    has_recompile_markers: bool = False
    # Slots some marked instruction checks: the executor records nnz
    # eagerly for these (dims-only for everything else — dense nnz
    # counting is O(cells)).
    observe_slots: set = field(default_factory=set)
    # True when lowered with a cluster configured: collect boundaries
    # were inserted, and the verifier re-derives them as an invariant.
    distributed: bool = False

    @property
    def n_instructions(self) -> int:
        return len(self.instructions)

    def recompile_segments(self) -> list[tuple[int, int]]:
        """Instruction index ranges between recompilation markers.

        A new segment starts at every instruction carrying meta checks;
        the executor may re-optimize the program remainder at each
        segment start.  A program without markers is one segment.
        """
        if not self.instructions:
            return []
        starts = [0] + [
            instr.index for instr in self.instructions
            if instr.meta_checks and instr.index != 0
        ]
        starts = sorted(set(starts))
        return [
            (start, starts[i + 1] if i + 1 < len(starts) else self.n_instructions)
            for i, start in enumerate(starts)
        ]

    def max_width(self) -> int:
        """Upper bound on schedulable concurrency (levelized width)."""
        level: dict[int, int] = {}
        width: dict[int, int] = {}
        for instr in self.instructions:
            lvl = 1 + max(
                (level[d] for d in instr.dep_indices), default=-1
            )
            level[instr.index] = lvl
            width[lvl] = width.get(lvl, 0) + 1
        return max(width.values(), default=0)

    def finalize(self) -> None:
        """Derive dependency edges and per-slot reference counts."""
        producer: dict[int, int] = {}
        for instr in self.instructions:
            producer[instr.output_slot] = instr.index
        self.consumer_counts = [0] * self.n_slots
        dependents: list[list[int]] = [[] for _ in self.instructions]
        for instr in self.instructions:
            deps = []
            seen = set()
            for slot in instr.input_slots:
                self.consumer_counts[slot] += 1
                dep = producer.get(slot)
                if dep is not None and dep not in seen:
                    seen.add(dep)
                    deps.append(dep)
            instr.dep_indices = tuple(deps)
            for dep in deps:
                dependents[dep].append(instr.index)
        for instr in self.instructions:
            instr.dependent_indices = tuple(dependents[instr.index])
        self.pinned = {slot for slot, _ in self.constants}
        self.pinned.update(self.root_slots)


def _emits_blocked_value(instr: Instruction) -> bool:
    """True for instructions whose runtime output may stay distributed
    (a ``BlockedMatrix``) instead of a driver-side block."""
    return (
        instr.opcode in ("hop", "spoof")
        and instr.hop.exec_type is ExecType.SPARK
        and instr.hop.is_matrix
    )


def _consumes_blocked_values(instr: Instruction) -> bool:
    """True for instructions dispatched to the distributed backend,
    which accept ``BlockedMatrix`` inputs partition-wise."""
    return (
        instr.opcode in ("hop", "spoof")
        and instr.hop.exec_type is ExecType.SPARK
    )


def insert_collect_boundaries(program: Program) -> None:
    """Insert explicit ``collect`` instructions at exec-type boundaries.

    SPARK-typed instructions produce row-partitioned ``BlockedMatrix``
    values that chained SPARK consumers read partition-wise.  Any
    CP-typed consumer — and any program root — needs the materialized
    driver-side block instead, so each such slot gains one ``collect``
    instruction right after its producer; only the non-distributed
    readers are rewired to the collected slot.  Must run before
    :meth:`Program.finalize` (it renumbers instructions and slots).
    """
    blocked_slots = {
        instr.output_slot for instr in program.instructions
        if _emits_blocked_value(instr)
    }
    if not blocked_slots:
        return
    needs_collect = {
        slot for slot in program.root_slots if slot in blocked_slots
    }
    for instr in program.instructions:
        if _consumes_blocked_values(instr):
            continue
        needs_collect.update(
            slot for slot in instr.input_slots if slot in blocked_slots
        )
    if not needs_collect:
        return

    collected_slot: dict[int, int] = {}
    rebuilt: list[Instruction] = []
    for instr in program.instructions:
        if not _consumes_blocked_values(instr):
            # Producers appear before consumers (topological order), so
            # every needed collected slot already exists here.
            instr.input_slots = [
                collected_slot.get(slot, slot) for slot in instr.input_slots
            ]
        rebuilt.append(instr)
        if instr.output_slot in needs_collect:
            fresh = program.n_slots
            program.n_slots += 1
            collected_slot[instr.output_slot] = fresh
            rebuilt.append(
                Instruction(
                    index=0,  # renumbered below
                    opcode="collect",
                    hop=instr.hop,
                    input_slots=[instr.output_slot],
                    output_slot=fresh,
                    weight=instr.weight,
                )
            )
    for position, instr in enumerate(rebuilt):
        instr.index = position
    program.instructions = rebuilt
    program.root_slots = [
        collected_slot.get(slot, slot) for slot in program.root_slots
    ]


def lower_program(roots: list[Hop], mode: str,
                  distributed: bool = False) -> Program:
    """Lower an optimized multi-root HOP DAG into a :class:`Program`.

    The walk is demand-driven from the roots and fully iterative, so
    arbitrarily deep DAGs lower without recursion.  In ``fused`` mode
    hand-coded patterns are matched per demanded hop; intermediates
    covered by a pattern are lowered only if another consumer demands
    them separately (matching the old lazy interpreter's semantics).
    With ``distributed=True`` (a cluster is configured), explicit
    ``collect`` instructions are inserted wherever a SPARK-typed
    producer feeds a CP-typed consumer or a program root.
    """
    from repro.compiler.fused_lib import match_fused_pattern

    use_fused = mode == "fused"
    program = Program()
    slot_of: dict[int, int] = {}
    plans: dict[int, tuple] = {}  # hop.id -> (match, dep hops)

    def assign_slot(hop: Hop) -> int:
        slot = program.n_slots
        program.n_slots += 1
        slot_of[hop.id] = slot
        program.hop_slots[hop.id] = slot
        program.slot_hops[slot] = hop
        return slot

    def emit(hop: Hop, match, deps: list[Hop]) -> None:
        if isinstance(hop, DataOp):
            program.constants.append((assign_slot(hop), hop.data))
            return
        if isinstance(hop, LiteralOp):
            program.constants.append((assign_slot(hop), hop.value))
            return
        input_slots = [slot_of[d.id] for d in deps]
        if match is not None:
            opcode = "fused"
        elif isinstance(hop, SpoofOutOp):
            opcode = "spoof_out"
        elif isinstance(hop, SpoofOp):
            opcode = "spoof"
        else:
            opcode = "hop"
        weight = hop.cells
        for dep in deps:
            weight = max(weight, dep.cells)
        program.instructions.append(
            Instruction(
                index=len(program.instructions),
                opcode=opcode,
                hop=hop,
                input_slots=input_slots,
                output_slot=assign_slot(hop),
                fused_match=match,
                weight=weight,
            )
        )

    stack: list[Hop] = list(reversed(roots))
    while stack:
        hop = stack[-1]
        if hop.id in slot_of:
            stack.pop()
            continue
        if isinstance(hop, (DataOp, LiteralOp)):
            emit(hop, None, [])
            stack.pop()
            continue
        plan = plans.get(hop.id)
        if plan is None:
            match = match_fused_pattern(hop) if use_fused else None
            deps = match.leaves if match is not None else hop.inputs
            plan = (match, deps)
            plans[hop.id] = plan
        match, deps = plan
        missing = [d for d in deps if d.id not in slot_of]
        if missing:
            stack.extend(reversed(missing))
            continue
        emit(hop, match, deps)
        stack.pop()

    program.root_slots = [slot_of[r.id] for r in roots]
    program.distributed = distributed
    if distributed:
        insert_collect_boundaries(program)
    program.finalize()
    return program


# ----------------------------------------------------------------------
# Adaptive recompilation markers
# ----------------------------------------------------------------------
def _unknown_derived(hops, memo: dict) -> None:
    """Propagate unknown-metadata taint bottom-up over a hop DAG.

    A matrix hop is *unknown-derived* when its own nnz is unknown
    (``< 0``) or any matrix input is unknown-derived — its size/sparsity
    estimate (and every choice the compiler based on it) may be
    arbitrarily wrong.  Scalars never carry the taint: scalar values do
    not drive format or exec-type decisions.  Iterative walk: covered
    fusion bodies can be thousands of hops deep.
    """
    stack = list(hops)
    while stack:
        node = stack[-1]
        if node.id in memo:
            stack.pop()
            continue
        missing = [i for i in node.inputs if i.id not in memo]
        if missing:
            stack.extend(missing)
            continue
        memo[node.id] = node.is_matrix and (
            node.nnz < 0 or any(memo[i.id] for i in node.inputs)
        )
        stack.pop()


def annotate_recompile_markers(program: Program) -> int:
    """Mark instructions whose plan choices rest on unknown estimates.

    An instruction reading a slot whose producing hop is unknown-derived
    gains ``meta_checks``: (slot, estimated nnz, cells) triples the
    executor compares against the observed runtime values at the
    matching segment boundary (``recompile_segments``).  Estimates fall
    back to *assumed dense* (``cells``) when unknown, mirroring the
    compiler's conservative default.  ``spoof_out`` extractors stay
    glued to their producing operator (recompiling between them would
    recompute the whole aggregate).  Returns the number of marked
    instructions.
    """
    memo: dict[int, bool] = {}
    _unknown_derived(program.slot_hops.values(), memo)
    n_marked = 0
    for instr in program.instructions:
        if instr.opcode == "spoof_out":
            continue
        checks = []
        seen: set[int] = set()
        for slot in instr.input_slots:
            if slot in seen:
                continue
            seen.add(slot)
            hop = program.slot_hops.get(slot)
            if hop is None or not hop.is_matrix or not memo.get(hop.id):
                continue
            estimate = hop.nnz if hop.nnz >= 0 else hop.cells
            checks.append((slot, estimate, hop.cells))
        if checks:
            instr.meta_checks = tuple(checks)
            program.observe_slots.update(slot for slot, _, _ in checks)
            n_marked += 1
    program.has_recompile_markers = n_marked > 0
    return n_marked
