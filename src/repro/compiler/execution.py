"""Execution engines: the experimental configurations of Section 5.

* ``base``     — basic operators only, every intermediate materialized,
* ``numpy``    — like base but without CSE sharing (the eager-library
                 reference standing in for Julia/TF),
* ``fused``    — base plus SystemML's hand-coded fused operators,
* ``gen``      — the cost-based codegen optimizer (Gen),
* ``gen-fa``   — the fuse-all heuristic (Gen-FA),
* ``gen-fnr``  — the fuse-no-redundancy heuristic (Gen-FNR).

:class:`Engine` is a thin façade over the staged pipeline:

1. the **compiler front half** (:mod:`repro.compiler.pipeline`) runs
   rewrites → codegen optimization → exec-type selection as named
   passes over a shared :class:`CompilationContext`,
2. the **lowering layer** (:mod:`repro.compiler.program`) converts the
   optimized multi-root HOP DAG into a ``Program`` of instructions with
   explicit symbol-table slots and dependency edges (hand-coded fused
   patterns lower at compile time — no runtime pattern recursion),
3. the **runtime executor** (:mod:`repro.runtime.executor`) schedules
   the program serially or over a thread pool by dependency readiness,
   eagerly freeing dead intermediates.

An engine owns a plan cache and runtime statistics; every ``execute``
call plays the role of one statement-block compilation (including
dynamic recompilation, since DAGs are rebuilt per iteration while
generated operators are reused through the plan cache).  Engines are
thread-safe: compilations serialize on the context's compile lock while
runtime execution overlaps, which is what the serving subsystem
(:mod:`repro.serve`) builds on.

:func:`shared_engine` hands out one long-lived engine per mode, so
interpreter entry points (``run_script``, ``api.eval``) that are called
without an explicit engine reuse warm plan caches instead of paying the
full compile pipeline on every call.
"""

from __future__ import annotations

import threading

from repro.compiler.pipeline import (
    MODE_POLICIES,
    CompilationContext,
    build_pipeline,
    compile_program,
)
from repro.compiler.recompile import Recompiler
from repro.config import CodegenConfig, DEFAULT_CONFIG
from repro.errors import RuntimeExecError
from repro.hops.hop import Hop
from repro.runtime.distributed import SparkExecutor
from repro.runtime.executor import ProgramExecutor

_MODES = tuple(MODE_POLICIES)

_shared_engines: dict[str, "Engine"] = {}
_shared_engines_lock = threading.Lock()


def shared_engine(mode: str = "gen") -> "Engine":
    """A process-wide engine for ``mode``, created on first use.

    Callers that do not manage an engine themselves (``run_script``
    without an ``engine=``, bare ``api.eval``) share these instances so
    repeated invocations hit warm plan and specialization caches.
    """
    with _shared_engines_lock:
        engine = _shared_engines.get(mode)
        if engine is None:
            engine = Engine(mode=mode)
            _shared_engines[mode] = engine
        return engine


class Engine:
    """Executes HOP DAGs under one of the experimental configurations."""

    def __init__(self, mode: str = "gen", config: CodegenConfig | None = None):
        if mode not in _MODES:
            raise RuntimeExecError(f"unknown engine mode '{mode}' (use {_MODES})")
        self.mode = mode
        self.config = config or DEFAULT_CONFIG.copy()
        self.context = CompilationContext(mode, self.config)
        if self.config.lockset_debug:
            # Process-wide debug instrumentation: reports land in this
            # engine's stats (repro.analysis.lockset; idempotent).
            from repro.analysis import lockset

            lockset.enable(stats=self.stats)
        self._pipeline = build_pipeline(mode)
        self._spark = (
            SparkExecutor(self.config.cluster, self.config, self.stats)
            if self.config.cluster is not None
            else None
        )
        self.executor = ProgramExecutor(
            self.config, self.stats, self._spark,
            recompiler=Recompiler(self.context),
        )

    # Backward-compatible views onto the shared compilation context.
    @property
    def stats(self):
        return self.context.stats

    @property
    def plan_cache(self):
        return self.context.plan_cache

    @property
    def tracer(self):
        """The engine's span tracer (no-op unless config.trace_level)."""
        return self.context.tracer

    # ------------------------------------------------------------------
    def compile(self, roots: list[Hop]):
        """Run the compiler pipeline and lower to a runtime Program."""
        return compile_program(roots, self.context, self._pipeline)

    def execute(self, roots: list[Hop]) -> list:
        """Compile and execute a multi-root DAG; returns root values."""
        with self.tracer.span("evaluate", cat="request",
                              n_roots=len(roots)):
            program = self.compile(roots)
            return self.executor.run(program)

    # ------------------------------------------------------------------
    # Observability (repro.obs).
    # ------------------------------------------------------------------
    def export_trace(self, path: str) -> str:
        """Write buffered spans as Chrome trace-event JSON.

        Load the file in Perfetto (https://ui.perfetto.dev) or
        ``chrome://tracing``.  With ``trace_level="off"`` the file holds
        an empty ``traceEvents`` list.  Returns ``path``.
        """
        return self.tracer.export_chrome_trace(path)

    def profile_report(self):
        """Per-operator profile aggregated from the span buffer.

        Returns a :class:`~repro.obs.profile.ProfileReport`: ``str()``
        renders the explain-style text table, ``.data`` holds the raw
        per-operator aggregation.  Requires
        ``trace_level="instructions"`` or ``"full"`` for per-operator
        rows (phases-level traces profile compile phases only).
        """
        from repro.obs.profile import profile

        return profile(self.tracer, self.stats)

    # ------------------------------------------------------------------
    # Serving entry points (thin delegates into repro.serve).
    # ------------------------------------------------------------------
    def prepare(self, builder, name: str = "prepared",
                batch_inputs: tuple = (), **options):
        """Prepare an expression builder for repeated serving.

        ``builder`` receives a dict of named input placeholders
        (:class:`~repro.api.Mat`) and returns the output expression(s).
        Returns a :class:`~repro.serve.PreparedProgram` whose lowered
        plans are cached per input-shape signature.
        """
        from repro.serve import PreparedProgram

        return PreparedProgram(self, builder, name=name,
                               batch_inputs=tuple(batch_inputs), **options)

    def prepare_script(self, source: str, name: str = "script",
                       batch_inputs: tuple = (), **options):
        """Prepare a parameterized script (declared ``input`` slots)."""
        from repro.serve import PreparedProgram

        return PreparedProgram.from_script(self, source, name=name,
                                           batch_inputs=tuple(batch_inputs),
                                           **options)

    def close(self) -> None:
        """Release the executor's thread pool (idempotent)."""
        self.executor.close()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
