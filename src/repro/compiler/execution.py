"""Execution engines: the experimental configurations of Section 5.

* ``base``     — basic operators only, every intermediate materialized,
* ``numpy``    — like base but without CSE sharing (the eager-library
                 reference standing in for Julia/TF),
* ``fused``    — base plus SystemML's hand-coded fused operators,
* ``gen``      — the cost-based codegen optimizer (Gen),
* ``gen-fa``   — the fuse-all heuristic (Gen-FA),
* ``gen-fnr``  — the fuse-no-redundancy heuristic (Gen-FNR).

An engine owns a plan cache and runtime statistics; every ``execute``
call plays the role of one statement-block compilation (including
dynamic recompilation, since DAGs are rebuilt per iteration while
generated operators are reused through the plan cache).
"""

from __future__ import annotations

from repro.codegen.optimizer import CodegenOptimizer
from repro.codegen.plan_cache import PlanCache
from repro.config import CodegenConfig, DEFAULT_CONFIG
from repro.errors import RuntimeExecError
from repro.hops import memory
from repro.hops.hop import (
    DataOp,
    Hop,
    LiteralOp,
    SpoofOp,
    SpoofOutOp,
    collect_dag,
    topological_order,
)
from repro.hops.rewrites import apply_rewrites
from repro.hops.types import ExecType, OpKind
from repro.runtime.distributed import SparkExecutor, _basic_kernel
from repro.runtime.matrix import MatrixBlock
from repro.runtime.skeletons import execute_operator
from repro.runtime.stats import RuntimeStats

_MODES = ("base", "numpy", "fused", "gen", "gen-fa", "gen-fnr")


class Engine:
    """Executes HOP DAGs under one of the experimental configurations."""

    def __init__(self, mode: str = "gen", config: CodegenConfig | None = None):
        if mode not in _MODES:
            raise RuntimeExecError(f"unknown engine mode '{mode}' (use {_MODES})")
        self.mode = mode
        self.config = config or DEFAULT_CONFIG.copy()
        self.stats = RuntimeStats()
        self.plan_cache = PlanCache(self.config.plan_cache_enabled)
        self._optimizer = CodegenOptimizer(self.config, self.plan_cache, self.stats)
        self._spark = (
            SparkExecutor(self.config.cluster, self.config, self.stats)
            if self.config.cluster is not None
            else None
        )

    # ------------------------------------------------------------------
    def execute(self, roots: list[Hop]) -> list:
        """Compile and execute a multi-root DAG; returns root values."""
        roots = apply_rewrites(roots, enable_cse=self.mode != "numpy")
        self._select_exec_types(roots)
        if self.mode in ("gen", "gen-fa", "gen-fnr"):
            policy = {"gen": "cost", "gen-fa": "fa", "gen-fnr": "fnr"}[self.mode]
            roots = self._optimizer.optimize(roots, policy=policy)
            self._select_exec_types(roots)
        values = self._interpret(roots)
        return [values[r.id] for r in roots]

    # ------------------------------------------------------------------
    def _select_exec_types(self, roots: list[Hop]) -> None:
        """Operator selection: local vs distributed by memory estimate."""
        if self.config.cluster is None:
            return
        for hop in collect_dag(roots):
            if hop.kind in (OpKind.DATA, OpKind.LITERAL):
                hop.exec_type = ExecType.CP
                continue
            over_budget = memory.operation_bytes(hop) > self.config.local_mem_budget
            hop.exec_type = ExecType.SPARK if over_budget else ExecType.CP

    # ------------------------------------------------------------------
    def _interpret(self, roots: list[Hop]) -> dict[int, object]:
        values: dict[int, object] = {}
        order = topological_order(roots)
        dag_ids = {h.id for h in order}
        fused_mode = self.mode == "fused"

        # In fused mode, match hand-coded patterns lazily: evaluation is
        # demand-driven so intermediates covered by a fused operator are
        # never materialized unless another consumer needs them.
        if fused_mode:
            return self._interpret_fused(roots)

        for hop in order:
            values[hop.id] = self._eval_hop(hop, [values[i.id] for i in hop.inputs])
        return values

    def _interpret_fused(self, roots: list[Hop]) -> dict[int, object]:
        from repro.compiler.fused_lib import match_fused

        values: dict[int, object] = {}

        def eval_hop(hop: Hop):
            if hop.id in values:
                return values[hop.id]
            result = match_fused(hop, eval_hop)
            if result is None:
                inputs = [eval_hop(i) for i in hop.inputs]
                result = self._eval_hop(hop, inputs)
            else:
                self.stats.record_spoof("Fused")
                self._record_output(result)
            values[hop.id] = result
            return result

        # Iterative deepening to keep recursion bounded on long chains.
        import sys

        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 10000))
        try:
            for root in roots:
                eval_hop(root)
        finally:
            sys.setrecursionlimit(old_limit)
        return values

    # ------------------------------------------------------------------
    def _eval_hop(self, hop: Hop, inputs: list) -> object:
        if isinstance(hop, DataOp):
            return hop.data
        if isinstance(hop, LiteralOp):
            return hop.value
        if isinstance(hop, SpoofOutOp):
            block = inputs[0]
            return float(block.get(hop.index, 0))
        if isinstance(hop, SpoofOp):
            if self._spark is not None and hop.exec_type is ExecType.SPARK:
                result = self._spark.execute_spoof(hop, inputs)
            else:
                result = execute_operator(hop.operator, inputs, self.config, self.stats)
            self._record_output(result)
            return result
        if self._spark is not None and hop.exec_type is ExecType.SPARK:
            result = self._spark.execute_hop(hop, inputs)
        else:
            result = _basic_kernel(hop, inputs)
        self._record_output(result)
        return result

    def _record_output(self, result) -> None:
        self.stats.n_intermediates += 1
        if isinstance(result, MatrixBlock):
            self.stats.bytes_written += result.size_bytes
