"""Per-operator profiler: spans aggregated into an explain-style report.

Consumes a tracer's recorded events (``trace_level="instructions"`` or
``"full"``) and attributes wall-clock to instructions: per operator
label it reports executions, total/mean time, execution tier
(interpreted / kernel / numba), input format (dense / csr / compressed),
bytes moved, observed-vs-estimated nnz at recompile boundaries, and
recompile triggers.  Compile-phase and serving totals ride along so one
report answers "where did the time go" end to end.

``Engine.profile_report()`` is the entry point; the returned
:class:`ProfileReport` renders as a text table (``str(report)``) and
exposes the raw aggregation (``report.data``).
"""

from __future__ import annotations

from repro.obs.trace import NULL_TRACER


class ProfileReport:
    """Aggregated profile: ``.data`` dict plus a text-table rendering."""

    def __init__(self, data: dict, text: str):
        self.data = data
        self.text = text

    @property
    def per_operator(self) -> dict:
        return self.data["operators"]

    @property
    def totals(self) -> dict:
        return self.data["totals"]

    def __str__(self) -> str:
        return self.text


def _operator_entry() -> dict:
    return {
        "executions": 0,
        "seconds": 0.0,
        "bytes": 0.0,
        "tiers": {},
        "formats": {},
        "nnz_estimated": None,
        "nnz_observed": None,
        "recompile_triggers": 0,
    }


def build_profile(events, stats=None) -> dict:
    """Aggregate tracer events into the profile data dict."""
    operators: dict[str, dict] = {}
    phases: dict[str, dict] = {}
    n_requests = 0
    for span in events:
        if span.cat == "instruction":
            entry = operators.setdefault(span.name, _operator_entry())
            entry["executions"] += 1
            entry["seconds"] += span.duration
            args = span.args
            entry["bytes"] += args.get("bytes", 0) or 0
            tier = args.get("tier")
            if tier:
                entry["tiers"][tier] = entry["tiers"].get(tier, 0) + 1
            fmt = args.get("fmt")
            if fmt:
                entry["formats"][fmt] = entry["formats"].get(fmt, 0) + 1
        elif span.cat == "recompile":
            op = span.args.get("op")
            if op:
                entry = operators.setdefault(op, _operator_entry())
                if span.name == "recompile-splice":
                    entry["recompile_triggers"] += 1
                if "nnz_est" in span.args:
                    entry["nnz_estimated"] = span.args["nnz_est"]
                    entry["nnz_observed"] = span.args.get("nnz_obs")
        elif span.cat in ("compile", "kernel", "serve"):
            phase = phases.setdefault(
                span.name, {"count": 0, "seconds": 0.0}
            )
            phase["count"] += 1
            phase["seconds"] += span.duration
        elif span.cat == "request":
            n_requests += 1
    for entry in operators.values():
        entry["mean_seconds"] = (
            entry["seconds"] / entry["executions"]
            if entry["executions"] else 0.0
        )
    totals = {
        "n_requests": n_requests,
        "instruction_seconds": sum(
            e["seconds"] for e in operators.values()
        ),
        "phases": phases,
    }
    if stats is not None:
        totals["pipeline_pass_seconds"] = dict(stats.pipeline_pass_seconds)
        totals["n_recompiles"] = stats.n_recompiles
    return {"operators": operators, "totals": totals}


def _dominant(counts: dict) -> str:
    if not counts:
        return "-"
    name, hits = max(counts.items(), key=lambda item: item[1])
    return name if len(counts) == 1 else f"{name}*"


def render_profile(data: dict) -> str:
    """The profile data as a paper-style text table."""
    operators = data["operators"]
    lines = [
        f"{'operator':<28}{'execs':>6}{'total ms':>10}{'mean ms':>9}"
        f"{'tier':>12}{'fmt':>12}{'MB':>8}{'nnz obs/est':>14}{'rc':>4}"
    ]
    ordered = sorted(
        operators.items(), key=lambda item: -item[1]["seconds"]
    )
    for name, entry in ordered:
        if entry["nnz_observed"] is not None:
            nnz = f"{entry['nnz_observed']:.0f}/{entry['nnz_estimated']:.0f}"
        else:
            nnz = "-"
        lines.append(
            f"{name:<28}{entry['executions']:>6}"
            f"{entry['seconds'] * 1e3:>10.3f}"
            f"{entry['mean_seconds'] * 1e3:>9.3f}"
            f"{_dominant(entry['tiers']):>12}"
            f"{_dominant(entry['formats']):>12}"
            f"{entry['bytes'] / 1e6:>8.2f}"
            f"{nnz:>14}"
            f"{entry['recompile_triggers']:>4}"
        )
    totals = data["totals"]
    lines.append(
        f"-- {len(operators)} operator(s), "
        f"{totals['n_requests']} request(s), "
        f"{totals['instruction_seconds'] * 1e3:.3f} ms in instructions"
    )
    for phase, info in sorted(totals["phases"].items()):
        lines.append(
            f"   {phase:<25}{info['count']:>6}x"
            f"{info['seconds'] * 1e3:>10.3f} ms"
        )
    return "\n".join(lines)


def profile(tracer, stats=None) -> ProfileReport:
    """Build the per-operator report from a tracer's buffered spans."""
    if tracer is NULL_TRACER or tracer.level <= 0:
        data = {"operators": {}, "totals": {"n_requests": 0,
                                            "instruction_seconds": 0.0,
                                            "phases": {}}}
        return ProfileReport(
            data,
            "profiling disabled: set CodegenConfig.trace_level to "
            "'instructions' or 'full'",
        )
    data = build_profile(tracer.events(), stats)
    if not data["operators"]:
        hint = (
            "no instruction spans recorded"
            + ("" if tracer.level >= 2
               else " (trace_level='phases' records phases only; use "
                    "'instructions' or 'full')")
        )
        return ProfileReport(data, hint)
    return ProfileReport(data, render_profile(data))


__all__ = ["ProfileReport", "build_profile", "render_profile", "profile"]
