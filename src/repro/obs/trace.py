"""Hierarchical span tracer with Chrome ``trace_event`` export.

One :class:`Tracer` per engine (created from
``CodegenConfig.trace_level``) records named, monotonic-clock spans into
a bounded ring buffer.  Spans nest strictly per thread: each thread
keeps a LIFO stack of open spans, so the recorded intervals of one
thread always form a proper containment forest — the invariant the
Chrome/Perfetto flame view renders and the golden-shape test asserts.

Levels gate instrumentation sites, not span kinds::

    off           no-op tracer (module-level ``NULL_TRACER`` singleton)
    phases        request/evaluate, compiler passes, lowering, verify,
                  kernel compile/promote, recompile splices, serving
                  admission/queue/batch/bind
    instructions  adds one span per executed instruction
    full          adds operator-body (kernel/interpreted run) spans

The ``off`` path is near-zero cost: hot loops hoist one
``tracer.enabled(...)`` check, and every ``NULL_TRACER`` method is a
constant-return no-op.

Thread-safety: the per-thread span stacks are thread-local; the shared
ring buffer is appended under a tracked lock so the lockset race
detector covers the tracer like any other shared runtime structure.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque

from repro.analysis import lockset

#: Numeric trace levels (ordered by verbosity).
OFF = 0
PHASES = 1
INSTRUCTIONS = 2
FULL = 3

#: Config-facing level names.
LEVELS = {"off": OFF, "phases": PHASES, "instructions": INSTRUCTIONS,
          "full": FULL}

#: Ring-buffer default: bounds tracer memory on long-running servers.
DEFAULT_BUFFER_EVENTS = 65536


def _resolve_level(level) -> int:
    if isinstance(level, str):
        if level not in LEVELS:
            raise ValueError(
                f"unknown trace level '{level}' (use {sorted(LEVELS)})"
            )
        return LEVELS[level]
    return int(level)


class Span:
    """One span: a context manager while open, a record once closed.

    After the ``with`` block exits, ``start`` is seconds since the
    tracer's origin and ``duration`` is seconds.  ``depth`` is the
    nesting depth at open time (0 = no enclosing span on that thread).
    The same object serves both roles so the per-span cost is a single
    allocation — span recording sits on the executor's per-instruction
    hot path.
    """

    __slots__ = ("_tracer", "name", "cat", "args", "start", "duration",
                 "tid", "depth")

    def __init__(self, tracer, name, cat, args):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self.start = 0.0
        self.duration = 0.0
        self.tid = 0
        self.depth = 0

    @property
    def end(self) -> float:
        return self.start + self.duration

    def annotate(self, **kwargs) -> None:
        """Attach args to this span while it is open."""
        self.args.update(kwargs)

    def __enter__(self):
        local = self._tracer._local
        stack = getattr(local, "stack", None)
        if stack is None:
            stack = local.stack = []
        self.depth = len(stack)
        stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        end = time.perf_counter()
        tracer = self._tracer
        stack = getattr(tracer._local, "stack", None)
        # LIFO by construction; tolerate a corrupted stack rather than
        # masking the caller's exception with one of our own.
        if stack and stack[-1] is self:
            stack.pop()
        self.duration = end - self.start
        self.start -= tracer._origin
        self.tid = threading.get_ident()
        if lockset.active() is None:
            # deque.append is atomic under the GIL; the locked path
            # below exists so the race detector observes the shared
            # ring buffer whenever it is switched on.
            tracer._events.append(self)
        else:
            with tracer._lock:
                lockset.note_access("Tracer", tracer, "events")
                tracer._events.append(self)
        return False

    def __repr__(self) -> str:  # debugging aid only
        return (f"Span({self.name!r}, cat={self.cat!r}, "
                f"ms={self.duration * 1e3:.3f}, depth={self.depth})")


class _NullSpan:
    """Shared no-op context manager for disabled spans."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def annotate(self, **kwargs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The ``trace_level="off"`` fast path: every method is a no-op."""

    level = OFF

    def enabled(self, level) -> bool:
        return False

    def span(self, name, cat="phase", level=PHASES, **args):
        return _NULL_SPAN

    def annotate(self, **kwargs) -> None:
        pass

    def instant(self, name, cat="event", level=PHASES, **args) -> None:
        pass

    def events(self) -> list:
        return []

    def clear(self) -> None:
        pass

    def chrome_trace(self) -> dict:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def export_chrome_trace(self, path) -> str:
        with open(path, "w") as handle:
            json.dump(self.chrome_trace(), handle)
        return path


#: Module-level no-op singleton: the default ``stats.tracer``.
NULL_TRACER = NullTracer()


class Tracer:
    """Span recorder for one engine (``trace_level != "off"``)."""

    def __init__(self, level="phases", max_events: int = DEFAULT_BUFFER_EVENTS):
        self.level = _resolve_level(level)
        self.pid = os.getpid()
        self._origin = time.perf_counter()
        self._events: deque = deque(maxlen=max(1, int(max_events)))
        # Tracked: the lockset detector checks the shared ring buffer.
        self._lock = lockset.make_lock("Tracer._lock")
        self._local = threading.local()

    # ------------------------------------------------------------------
    def enabled(self, level) -> bool:
        """Is instrumentation at ``level`` active on this tracer?"""
        return self.level >= _resolve_level(level)

    def span(self, name, cat="phase", level=PHASES, **args):
        """A context manager recording one span (no-op below level)."""
        if self.level < level:
            return _NULL_SPAN
        return Span(self, name, cat, args)

    def annotate(self, **kwargs) -> None:
        """Attach args to this thread's innermost open span, if any."""
        stack = getattr(self._local, "stack", None)
        if stack:
            stack[-1].args.update(kwargs)

    def instant(self, name, cat="event", level=PHASES, **args) -> None:
        """A zero-duration event at the current time (nests trivially)."""
        if self.level < level:
            return
        stack = getattr(self._local, "stack", None)
        span = Span(self, name, cat, args)
        span.start = time.perf_counter() - self._origin
        span.tid = threading.get_ident()
        span.depth = len(stack) if stack else 0
        self._append(span)

    # ------------------------------------------------------------------
    def _append(self, span) -> None:
        if lockset.active() is None:
            self._events.append(span)  # GIL-atomic (see Span.__exit__)
            return
        with self._lock:
            lockset.note_access("Tracer", self, "events")
            self._events.append(span)

    # ------------------------------------------------------------------
    def events(self) -> list:
        """Snapshot of the ring buffer (closed spans, completion order)."""
        with self._lock:
            lockset.note_access("Tracer", self, "events")
            return list(self._events)

    def clear(self) -> None:
        with self._lock:
            lockset.note_access("Tracer", self, "events")
            self._events.clear()

    def chrome_trace(self) -> dict:
        """The buffer as a Chrome ``trace_event`` JSON object.

        All spans export as complete ("X") events with microsecond
        ``ts``/``dur``; load the written file in Perfetto
        (https://ui.perfetto.dev) or ``chrome://tracing``.
        """
        events = [
            {
                "name": span.name,
                "cat": span.cat,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": self.pid,
                "tid": span.tid,
                "args": {key: _json_value(value)
                         for key, value in span.args.items()},
            }
            for span in self.events()
        ]
        # Parents before children: sort each thread's lane by start
        # time, longest-first on ties.
        events.sort(key=lambda e: (e["tid"], e["ts"], -e["dur"]))
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export_chrome_trace(self, path) -> str:
        with open(path, "w") as handle:
            json.dump(self.chrome_trace(), handle)
        return path


def _json_value(value):
    """Span args coerced to JSON-serializable scalars."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        try:
            return value.item()
        except Exception:
            pass
    return str(value)


def tracer_for(config):
    """The tracer an engine should use under ``config``.

    ``trace_level="off"`` (and configs without the knob) share the
    module-level :data:`NULL_TRACER` singleton, so disabled tracing
    costs one attribute read plus constant-return calls.
    """
    level = getattr(config, "trace_level", "off")
    if _resolve_level(level) == OFF:
        return NULL_TRACER
    return Tracer(
        level=level,
        max_events=getattr(config, "trace_buffer_events",
                           DEFAULT_BUFFER_EVENTS),
    )


__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "tracer_for",
    "LEVELS",
    "OFF",
    "PHASES",
    "INSTRUCTIONS",
    "FULL",
    "DEFAULT_BUFFER_EVENTS",
]
