"""Labeled counters, gauges, and log-bucketed latency histograms.

A :class:`MetricsRegistry` hangs off each :class:`RuntimeStats` and
backs the percentile fields of its summaries: the serving scheduler
observes per-request queue/exec/latency seconds into histograms labeled
by ``(tenant, program)``, and ``serving_summary()`` extracts p50/p95/p99
from them (the flat ``serve_*_seconds`` totals stay as before, so every
existing summary dict shape is preserved).

Histograms are log-bucketed: bucket ``i >= 1`` covers
``(base * 2**(i-1), base * 2**i]`` seconds with ``base = 1e-6`` (the
underflow bucket 0 covers ``[0, base]``).  Percentiles interpolate
linearly inside the crossing bucket and clamp to the observed min/max,
so a histogram fed constant values reports that constant exactly.

Thread-safety: all cell mutations happen under one tracked lock per
registry (lockset-checked); merging run-local registries into a shared
one composes with ``RuntimeStats.merge``.
"""

from __future__ import annotations

import math

from repro.analysis import lockset

#: Lower bound of the first histogram bucket [seconds].
BUCKET_BASE = 1e-6
#: Highest bucket index (2**64 * base covers any conceivable latency).
MAX_BUCKET = 64

DEFAULT_PERCENTILES = (50.0, 95.0, 99.0)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def bucket_index(value: float) -> int:
    """The log-bucket index holding ``value`` (seconds)."""
    if value <= BUCKET_BASE:
        return 0
    return min(MAX_BUCKET,
               max(1, math.ceil(math.log2(value / BUCKET_BASE))))


def bucket_bounds(index: int) -> tuple[float, float]:
    """The (lo, hi] value range of one bucket index."""
    if index == 0:
        return 0.0, BUCKET_BASE
    return BUCKET_BASE * 2.0 ** (index - 1), BUCKET_BASE * 2.0 ** index


class HistogramCell:
    """Aggregated observations of one label combination."""

    __slots__ = ("count", "total", "vmin", "vmax", "buckets")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.vmin = min(self.vmin, value)
        self.vmax = max(self.vmax, value)
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def combine(self, other: "HistogramCell") -> None:
        self.count += other.count
        self.total += other.total
        self.vmin = min(self.vmin, other.vmin)
        self.vmax = max(self.vmax, other.vmax)
        for index, count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + count

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile (``q`` in (0, 100])."""
        if self.count == 0:
            return 0.0
        target = q / 100.0 * self.count
        cumulative = 0
        for index in sorted(self.buckets):
            in_bucket = self.buckets[index]
            if cumulative + in_bucket >= target:
                lo, hi = bucket_bounds(index)
                fraction = (target - cumulative) / in_bucket
                value = lo + (hi - lo) * fraction
                return min(max(value, self.vmin), self.vmax)
            cumulative += in_bucket
        return self.vmax

    def percentiles(self, qs=DEFAULT_PERCENTILES) -> dict:
        return {f"p{q:g}": self.percentile(q) for q in qs}

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin if self.count else 0.0,
            "max": self.vmax if self.count else 0.0,
            "mean": self.mean,
            **self.percentiles(),
        }

    def copy(self) -> "HistogramCell":
        fresh = HistogramCell()
        fresh.combine(self)
        return fresh


class _Metric:
    """Shared cell plumbing for one named metric family."""

    kind = "metric"

    def __init__(self, name: str, lock):
        self.name = name
        self._lock = lock
        self._cells: dict[tuple, object] = {}

    def _note(self) -> None:
        lockset.note_access("MetricsRegistry", self, "cells")

    def labels(self) -> list[dict]:
        with self._lock:
            self._note()
            return [dict(key) for key in self._cells]


class Counter(_Metric):
    """Monotonic labeled counter (merge = addition)."""

    kind = "counter"

    def inc(self, value: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._note()
            self._cells[key] = self._cells.get(key, 0.0) + value

    def value(self, **labels) -> float:
        with self._lock:
            self._note()
            return self._cells.get(_label_key(labels), 0.0)

    def total(self) -> float:
        with self._lock:
            self._note()
            return sum(self._cells.values())

    def _merge(self, other: "Counter") -> None:
        with other._lock:
            cells = dict(other._cells)
        with self._lock:
            self._note()
            for key, value in cells.items():
                self._cells[key] = self._cells.get(key, 0.0) + value

    def snapshot(self) -> dict:
        with self._lock:
            self._note()
            return {str(dict(key)): value
                    for key, value in self._cells.items()}


class Gauge(_Metric):
    """Last-set labeled gauge (merge = max, like the stats gauges)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._note()
            self._cells[key] = value

    def value(self, **labels) -> float:
        with self._lock:
            self._note()
            return self._cells.get(_label_key(labels), 0.0)

    def _merge(self, other: "Gauge") -> None:
        with other._lock:
            cells = dict(other._cells)
        with self._lock:
            self._note()
            for key, value in cells.items():
                self._cells[key] = max(self._cells.get(key, value), value)

    def snapshot(self) -> dict:
        with self._lock:
            self._note()
            return {str(dict(key)): value
                    for key, value in self._cells.items()}


class Histogram(_Metric):
    """Labeled log-bucketed histogram with percentile extraction."""

    kind = "histogram"

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._note()
            cell = self._cells.get(key)
            if cell is None:
                cell = self._cells[key] = HistogramCell()
            cell.observe(float(value))

    def cells(self) -> list[tuple[dict, HistogramCell]]:
        """Snapshot of every (labels, cell) pair."""
        with self._lock:
            self._note()
            return [(dict(key), cell.copy())
                    for key, cell in self._cells.items()]

    def aggregate(self, **label_filter) -> HistogramCell:
        """One combined cell over all labels matching ``label_filter``."""
        combined = HistogramCell()
        for labels, cell in self.cells():
            if all(labels.get(k) == v for k, v in label_filter.items()):
                combined.combine(cell)
        return combined

    def grouped(self, label: str) -> dict[str, HistogramCell]:
        """Combined cells keyed by one label's values."""
        groups: dict[str, HistogramCell] = {}
        for labels, cell in self.cells():
            key = labels.get(label, "")
            groups.setdefault(key, HistogramCell()).combine(cell)
        return groups

    def percentiles(self, qs=DEFAULT_PERCENTILES, **label_filter) -> dict:
        return self.aggregate(**label_filter).percentiles(qs)

    def count(self, **label_filter) -> int:
        return self.aggregate(**label_filter).count

    def _merge(self, other: "Histogram") -> None:
        for labels, cell in other.cells():
            key = _label_key(labels)
            with self._lock:
                self._note()
                mine = self._cells.get(key)
                if mine is None:
                    mine = self._cells[key] = HistogramCell()
                mine.combine(cell)

    def snapshot(self) -> dict:
        return {str(labels): cell.snapshot()
                for labels, cell in self.cells()}


class MetricsRegistry:
    """Get-or-create registry of named metrics (one per stats object)."""

    _CLASSES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self):
        # Tracked: shared across executor runs, the serving scheduler,
        # and summary readers; lockset-checked like stats.lock.
        self._lock = lockset.make_lock("MetricsRegistry._lock")
        self._metrics: dict[tuple[str, str], _Metric] = {}

    def _get(self, kind: str, name: str) -> _Metric:
        key = (kind, name)
        with self._lock:
            lockset.note_access("MetricsRegistry", self, "metrics")
            metric = self._metrics.get(key)
            if metric is None:
                metric = self._metrics[key] = self._CLASSES[kind](
                    name, self._lock
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get("counter", name)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get("gauge", name)  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        return self._get("histogram", name)  # type: ignore[return-value]

    def merge(self, other: "MetricsRegistry") -> None:
        """Accumulate another registry (run-local -> shared)."""
        with other._lock:
            lockset.note_access("MetricsRegistry", other, "metrics")
            theirs = dict(other._metrics)
        for (kind, name), metric in theirs.items():
            self._get(kind, name)._merge(metric)  # type: ignore[attr-defined]

    def clear(self) -> None:
        with self._lock:
            lockset.note_access("MetricsRegistry", self, "metrics")
            self._metrics.clear()

    def snapshot(self) -> dict:
        """All metrics as plain dicts (JSON-friendly observability)."""
        with self._lock:
            lockset.note_access("MetricsRegistry", self, "metrics")
            items = list(self._metrics.items())
        return {
            f"{kind}:{name}": metric.snapshot()  # type: ignore[attr-defined]
            for (kind, name), metric in items
        }


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramCell",
    "MetricsRegistry",
    "bucket_index",
    "bucket_bounds",
    "DEFAULT_PERCENTILES",
]
