"""Observability: span tracing, per-operator profiling, metrics.

Three cooperating pieces (ISSUE 8 / ROADMAP item 3):

* :mod:`repro.obs.trace` — a hierarchical span tracer with a bounded
  ring buffer, gated by ``CodegenConfig.trace_level`` and exportable as
  Chrome ``trace_event`` JSON (``Engine.export_trace``),
* :mod:`repro.obs.profile` — aggregates instruction spans into an
  ``explain()``-style per-operator report (``Engine.profile_report``),
* :mod:`repro.obs.metrics` — labeled counters / gauges / log-bucketed
  latency histograms backing the percentile fields of
  ``RuntimeStats.serving_summary()``.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import (
    FULL,
    INSTRUCTIONS,
    LEVELS,
    NULL_TRACER,
    OFF,
    PHASES,
    Span,
    Tracer,
    tracer_for,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "tracer_for",
    "NULL_TRACER",
    "LEVELS",
    "OFF",
    "PHASES",
    "INSTRUCTIONS",
    "FULL",
]
