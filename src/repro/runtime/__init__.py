"""Runtime substrate: matrices, kernels, fused-operator skeletons."""

from repro.runtime.matrix import MatrixBlock, recommend_format
from repro.runtime.meta import ObservedMeta, RuntimeMetadata

__all__ = ["MatrixBlock", "recommend_format", "ObservedMeta", "RuntimeMetadata"]
