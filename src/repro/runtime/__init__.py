"""Runtime substrate: matrices, kernels, fused-operator skeletons."""

from repro.runtime.matrix import MatrixBlock

__all__ = ["MatrixBlock"]
