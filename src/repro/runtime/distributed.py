"""Simulated distributed (Spark-like) backend.

This substitutes the paper's Spark cluster: matrices are partitioned
into row-block partitions executed locally, while an analytical network
and I/O model charges *simulated seconds* for distributed reads,
shuffles, broadcasts, and driver collects.  The cost structure is what
Table 6 measures: fuse-all dragging driver-side vector operations into
distributed operators pays per-worker broadcast costs for every extra
side input, while cost-based plans avoid them.

Distributed intermediates are first-class runtime values: a SPARK-typed
instruction returns a :class:`BlockedMatrix` that the next SPARK-typed
instruction consumes *partition-wise* without materializing it on the
driver.  Materialization happens only at the explicit ``collect``
boundaries the compiler inserts at exec-type transitions (and program
roots).  Aggregation outputs are combined by a tree-reduce over the
per-partition partials.

The RDD-cache model is keyed by *lineage* — stable symbol-table-slot
keys for intermediates and identity-guarded keys for program inputs —
never by the transient ``id()`` of a runtime value, so eagerly freed
(and address-reused) blocks can never register a spurious cache hit.

Execution remains numerically exact up to floating-point reassociation
of aggregations — per-partition kernels compute the same results as
local execution; only the timing is modeled.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.analysis import lockset
from repro.config import ClusterConfig, CodegenConfig
from repro.errors import RuntimeExecError
from repro.hops.hop import Hop, SpoofOp
from repro.hops.types import AggDir, OpKind
from repro.runtime import ops as rops
from repro.runtime.matrix import MatrixBlock
from repro.runtime.skeletons import partition_bounds, tree_reduce
from repro.runtime.stats import RuntimeStats


class BlockedMatrix:
    """A matrix partitioned into row blocks (one per partition).

    Instances flow between SPARK-typed instructions as ordinary symbol
    table values; ``bounds[p]`` records the global row range of block
    ``p``, which is what makes side inputs row-sliceable per partition.
    """

    def __init__(self, blocks: list[MatrixBlock], rows: int, cols: int,
                 bounds: list[tuple[int, int]] | None = None):
        self.blocks = blocks
        self.rows = rows
        self.cols = cols
        if bounds is None:
            bounds = []
            r0 = 0
            for block in blocks:
                bounds.append((r0, r0 + block.rows))
                r0 += block.rows
        self.bounds = bounds

    @classmethod
    def partition(cls, block: MatrixBlock, n_partitions: int) -> "BlockedMatrix":
        rows, cols = block.shape
        bounds = partition_bounds(rows, n_partitions)
        if block.is_sparse:
            csr = block.to_csr()
            parts = [MatrixBlock(csr[r0:r1]) for r0, r1 in bounds]
        else:
            arr = block.to_dense()
            parts = [MatrixBlock(arr[r0:r1]) for r0, r1 in bounds]
        return cls(parts, rows, cols, bounds)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.cols)

    @property
    def n_partitions(self) -> int:
        return len(self.blocks)

    def collect(self) -> MatrixBlock:
        """Materialize as one MatrixBlock via a single concatenation."""
        import scipy.sparse as sp

        if not self.blocks:
            return MatrixBlock(np.zeros((self.rows, self.cols)))
        if len(self.blocks) == 1:
            return self.blocks[0]
        if all(not b.is_sparse for b in self.blocks):
            return MatrixBlock(
                np.concatenate([b.to_dense() for b in self.blocks], axis=0)
            )
        stacked = sp.vstack([b.to_csr() for b in self.blocks], format="csr")
        return MatrixBlock(stacked)

    def is_copartitioned(self, other: "BlockedMatrix") -> bool:
        return self.rows == other.rows and self.bounds == other.bounds

    @property
    def size_bytes(self) -> float:
        return sum(b.size_bytes for b in self.blocks)

    def __repr__(self) -> str:
        return (
            f"BlockedMatrix({self.rows}x{self.cols}, "
            f"{self.n_partitions} partitions)"
        )


def _combine_partials(a, b, agg: str):
    """Combine two aggregation partials (floats or MatrixBlocks)."""
    func = {"sum": np.add, "min": np.minimum, "max": np.maximum}[agg]
    if isinstance(a, MatrixBlock) or isinstance(b, MatrixBlock):
        a_arr = a.to_dense() if isinstance(a, MatrixBlock) else a
        b_arr = b.to_dense() if isinstance(b, MatrixBlock) else b
        return MatrixBlock(func(a_arr, b_arr))
    return float(func(a, b))


#: Map-side placement decisions for one basic hop.
_MAP, _REDUCE, _LOCAL = "map", "reduce", "local"


class SparkExecutor:
    """Executes SPARK-typed operators partition-wise with cost charging."""

    def __init__(self, cluster: ClusterConfig, config: CodegenConfig,
                 stats: RuntimeStats):
        self.cluster = cluster
        self.config = config
        self.stats = stats
        # Real-parallelism backend (config.distributed_backend):
        # "multiprocess" routes the per-partition loops below through a
        # pool of spawned worker processes; placement, partitioning,
        # slicing, cost charging, and tree-reduces stay here, so both
        # backends produce bit-identical results.
        self.backend = None
        if config.distributed_backend == "multiprocess":
            from repro.runtime.mpexec import ProcessPoolBackend

            self.backend = ProcessPoolBackend(config, stats)
        # RDD-cache model: distributed datasets stay in aggregate
        # executor memory after the first read/write, so re-reads cost
        # memory bandwidth, not distributed-IO bandwidth.  Entries are
        # keyed by lineage (symbol-table slot or guarded input
        # identity), never by the id() of a runtime value.
        self._cache: dict = {}  # key -> (size_bytes, guard weakref | None)
        self._cached_bytes: float = 0.0
        # Broadcast variables occupy aggregate memory; accumulated
        # pressure eventually evicts cached datasets (Table 6).
        self._broadcast_pressure: float = 0.0
        self._mem_bandwidth = 32e9 * cluster.n_workers

    @property
    def n_partitions(self) -> int:
        return self.cluster.n_workers * 2

    # ------------------------------------------------------------------
    # RDD cache (lineage-keyed)
    # ------------------------------------------------------------------
    def _is_cached(self, key, value=None) -> bool:
        # Lineage-cache accesses happen inside an executor run holding
        # the Spark run lock; the lockset detector verifies that.
        lockset.note_access("SparkExecutor", self, "lineage_cache")
        if key is None:
            return False
        entry = self._cache.get(key)
        if entry is None:
            return False
        size, guard = entry
        if guard is not None and guard() is not value:
            # The guarded input died (or was replaced); the cached RDD
            # is unreachable — drop the entry instead of aliasing.
            del self._cache[key]
            self._cached_bytes -= size
            return False
        return True

    def _cache_put(self, key, size_bytes: float, value=None) -> None:
        lockset.note_access("SparkExecutor", self, "lineage_cache")
        if key is None or key in self._cache:
            return
        if self._cached_bytes + size_bytes > self.cluster.aggregate_mem:
            return
        guard = None
        if key[0] == "data" and value is not None:
            try:
                guard = weakref.ref(value)
            except TypeError:
                return  # identity key without a liveness guard: skip
        self._cache[key] = (size_bytes, guard)
        self._cached_bytes += size_bytes

    def _evict_cache(self) -> None:
        lockset.note_access("SparkExecutor", self, "lineage_cache")
        if self._cache:
            self.stats.n_rdd_cache_evictions += 1
        self._cache.clear()
        self._cached_bytes = 0.0
        self._broadcast_pressure = 0.0

    def prune_cache(self, live_epoch: int | None = None) -> None:
        """Drop entries that can never be probed again, so dead
        lineages don't pin ``aggregate_mem`` and starve live datasets.

        Key layout (produced by ``ProgramExecutor._slot_keys``):
        ``("v", epoch, slot)`` intermediates are unreachable once their
        program finished (any epoch < ``live_epoch``); ``("data", id)``
        input entries die with their weakref guard.  The executor calls
        this at the start of every program run.
        """
        lockset.note_access("SparkExecutor", self, "lineage_cache")
        for key in list(self._cache):
            size, guard = self._cache[key]
            dead = (
                guard() is None if guard is not None
                else key[0] == "v" and (
                    live_epoch is None or key[1] < live_epoch
                )
            )
            if dead:
                del self._cache[key]
                self._cached_bytes -= size
        if self.backend is not None:
            self.backend.prune(live_epoch)

    # ------------------------------------------------------------------
    # Cost charging
    # ------------------------------------------------------------------
    def charge_read(self, size_bytes: float, key=None, value=None) -> None:
        if self._is_cached(key, value):
            self.stats.n_rdd_cache_hits += 1
            self.stats.sim_seconds += size_bytes / self._mem_bandwidth
            return
        self.stats.sim_seconds += size_bytes / self.cluster.hdfs_bandwidth
        self._cache_put(key, size_bytes, value)

    def charge_write(self, size_bytes: float, key=None, value=None) -> None:
        self.stats.sim_seconds += size_bytes / self.cluster.hdfs_bandwidth
        self._cache_put(key, size_bytes, value)

    def charge_memory_scan(self, size_bytes: float) -> None:
        """Reading an in-memory (blocked/cached) dataset."""
        self.stats.sim_seconds += size_bytes / self._mem_bandwidth

    def charge_broadcast(self, size_bytes: float) -> None:
        replicated = size_bytes * self.cluster.n_workers
        self.stats.sim_broadcast_bytes += replicated
        self.stats.sim_seconds += replicated / self.cluster.net_bandwidth
        # Broadcast variables occupy aggregate memory and cause partial
        # evictions of cached datasets (the Table 6 discussion): once
        # accumulated broadcast storage crosses a fraction of aggregate
        # memory, cached inputs drop and must be re-read.
        self._broadcast_pressure += replicated
        if self._broadcast_pressure > 0.25 * self.cluster.aggregate_mem:
            self._evict_cache()

    def charge_shuffle(self, size_bytes: float) -> None:
        self.stats.sim_shuffle_bytes += size_bytes
        self.stats.sim_seconds += size_bytes / self.cluster.net_bandwidth

    def charge_collect(self, size_bytes: float) -> None:
        self.stats.sim_collect_bytes += size_bytes
        self.stats.sim_seconds += size_bytes / self.cluster.net_bandwidth

    def charge_tree_reduce(self, partial_bytes: float, levels: int) -> None:
        if levels <= 0:
            return
        self.stats.n_tree_reduces += 1
        self.charge_shuffle(partial_bytes * levels)

    # ------------------------------------------------------------------
    # Value plumbing
    # ------------------------------------------------------------------
    def collect_value(self, blocked: BlockedMatrix) -> MatrixBlock:
        """Materialize a distributed value at the driver (charged)."""
        self.stats.n_collects += 1
        result = blocked.collect()
        self.charge_collect(result.size_bytes)
        return result

    def _as_blocked(self, value, key=None) -> BlockedMatrix:
        """Main-input access: reuse an existing partitioning, or read
        and partition a driver-side block."""
        if isinstance(value, BlockedMatrix):
            self.stats.n_blocked_passthrough += 1
            self.charge_memory_scan(value.size_bytes)
            return value
        self.charge_read(value.size_bytes, key=key, value=value)
        self.stats.n_partitioned += 1
        blocked = BlockedMatrix.partition(value, self.n_partitions)
        if key is not None:
            # Lineage key for the multiprocess backend's locality map.
            blocked.mp_key = key
            if self.backend is not None:
                self.backend.register_guard(key, value)
        return blocked

    # ------------------------------------------------------------------
    # Operator execution
    # ------------------------------------------------------------------
    def execute_instruction(self, instr, input_values: list,
                            input_keys: list | None = None,
                            output_key=None) -> object:
        """Dispatch one lowered Program instruction to the cluster.

        The runtime executor hands SPARK-typed instructions here; basic
        hops and generated operators take different cost paths.
        ``input_keys`` are lineage keys for the RDD-cache model.
        """
        if instr.opcode == "spoof":
            return self.execute_spoof(instr.hop, input_values,
                                      input_keys, output_key)
        return self.execute_hop(instr.hop, input_values,
                                input_keys, output_key)

    def execute_hop(self, hop: Hop, input_values: list,
                    input_keys: list | None = None,
                    output_key=None) -> object:
        """Execute one basic HOP distributed: the largest matrix input
        is (or stays) row-partitioned, side inputs are zipped, sliced,
        or broadcast, and outputs stay blocked for row-local operations."""
        self.stats.n_distributed_ops += 1
        keys = list(input_keys) if input_keys else [None] * len(input_values)
        mats = [
            (idx, v) for idx, v in enumerate(input_values)
            if isinstance(v, (MatrixBlock, BlockedMatrix))
        ]
        if not mats:
            raise RuntimeExecError("distributed op without matrix input")
        main_idx, main_val = max(mats, key=lambda item: item[1].size_bytes)

        if hop.kind is OpKind.AGG_BINARY and main_idx != 0:
            # Matrix multiplication with the big matrix on the right:
            # repartitioning/shuffle of the left operand.
            self.charge_shuffle(_value_bytes(input_values[0]))

        placement = self._placement(hop, input_values, main_idx)
        if placement is _LOCAL:
            return self._execute_local(hop, input_values, keys, main_idx,
                                       output_key)

        main_blocked = self._as_blocked(main_val, keys[main_idx])
        plans = self._partition_plans(
            hop, input_values, main_idx, main_blocked
        )

        if placement is _REDUCE:
            return self._execute_reduce(hop, main_blocked, plans,
                                        keys[main_idx])

        if self.backend is not None:
            from repro.runtime.mpexec import hop_task_spec

            parts = self.backend.run_map(
                hop_task_spec(hop), main_blocked, plans,
                keys[main_idx], output_key
            )
        else:
            parts = [
                _basic_kernel(hop, values)
                for values in _materialize_plans(plans, main_blocked)
            ]
        result = BlockedMatrix(
            parts, main_blocked.rows, parts[0].cols, main_blocked.bounds
        )
        if self.backend is not None and output_key is not None:
            result.mp_key = output_key
        return result

    # -- placement -----------------------------------------------------
    def _placement(self, hop: Hop, values: list, main_idx: int) -> str:
        """Classify a basic hop: partition-wise map, partial-aggregate
        reduce, or single-partition local execution."""
        kind = hop.kind
        if kind is OpKind.UNARY:
            # cumsum is a column-direction prefix scan — not row-local.
            return _LOCAL if hop.op == "cumsum" else _MAP
        if kind in (OpKind.BINARY, OpKind.TERNARY):
            main_rows = _rows_of(values[main_idx])
            row_local = all(
                not isinstance(v, (MatrixBlock, BlockedMatrix))
                or _rows_of(v) in (main_rows, 1)
                for v in values
            )
            return _MAP if row_local else _LOCAL
        if kind is OpKind.AGG_UNARY:
            return _MAP if hop.direction is AggDir.ROW else _REDUCE
        if kind is OpKind.AGG_BINARY:
            # Row-partitioned matmult distributes when the partitioned
            # matrix is the left operand; the right side broadcasts.
            return _MAP if main_idx == 0 else _LOCAL
        return _LOCAL

    # -- side inputs ---------------------------------------------------
    def _prepare_partition_inputs(self, hop: Hop, values: list,
                                  main_idx: int,
                                  main_blocked: BlockedMatrix) -> list[list]:
        """Per-partition input lists; charges side-input traffic once."""
        plans = self._partition_plans(hop, values, main_idx, main_blocked)
        return _materialize_plans(plans, main_blocked)

    def _partition_plans(self, hop: Hop, values: list, main_idx: int,
                         main_blocked: BlockedMatrix) -> list:
        """Classify each input (main / zip / slice / whole broadcast)
        and charge side-input traffic once; both backends materialize
        per-partition inputs from the same plans."""
        cellwise = hop.kind in (OpKind.UNARY, OpKind.BINARY, OpKind.TERNARY)
        plans: list = []  # ('main',) | ('zip', bm) | ('slice', mb) | ('whole', v)
        for idx, value in enumerate(values):
            if idx == main_idx:
                plans.append(("main", None))
                continue
            if not isinstance(value, (MatrixBlock, BlockedMatrix)):
                plans.append(("whole", value))
                continue
            if isinstance(value, BlockedMatrix):
                if cellwise and value.is_copartitioned(main_blocked):
                    # Co-partitioned zip: no network traffic.
                    plans.append(("zip", value))
                    continue
                value = self.collect_value(value)
            same_shape = value.shape == (main_blocked.rows, main_blocked.cols)
            if same_shape:
                # Co-partitioned join of two large inputs.
                self.charge_shuffle(value.size_bytes)
            else:
                self.charge_broadcast(value.size_bytes)
            if cellwise and value.rows == main_blocked.rows and value.rows > 1:
                plans.append(("slice", value))
            else:
                plans.append(("whole", value))
        return plans

    # -- execution strategies ------------------------------------------
    def _execute_local(self, hop: Hop, values: list, keys: list,
                       main_idx: int, output_key=None) -> object:
        """Operations without a row-local distributed form execute as a
        single partition; distributed inputs are collected first."""
        local_values = []
        for idx, value in enumerate(values):
            if isinstance(value, BlockedMatrix):
                value = self.collect_value(value)
            elif isinstance(value, MatrixBlock):
                if idx == main_idx:
                    self.charge_read(value.size_bytes, key=keys[idx],
                                     value=value)
                elif value.shape == _shape_of(values[main_idx]):
                    self.charge_shuffle(value.size_bytes)
                else:
                    self.charge_broadcast(value.size_bytes)
            local_values.append(value)
        result = _basic_kernel(hop, local_values)
        if isinstance(result, MatrixBlock):
            self.charge_write(result.size_bytes, key=output_key, value=result)
        return result

    def _execute_reduce(self, hop: Hop, main_blocked: BlockedMatrix,
                        plans: list, main_key=None) -> object:
        """Full/column aggregations: per-partition partials combined by
        a tree-reduce (mean decomposes into a sum of partials)."""
        agg = hop.agg_op.value
        direction = hop.direction.value
        base_op = "sum" if agg == "mean" else agg
        combine_op = "sum" if base_op in ("sum", "sumsq") else base_op
        if self.backend is not None:
            partials = self.backend.run_map(
                ("agg_unary", base_op, direction), main_blocked, plans,
                main_key, None
            )
        else:
            partials = [
                rops.agg_unary(base_op, values[0], direction)
                for values in _materialize_plans(plans, main_blocked)
            ]
        result, levels = tree_reduce(
            partials, lambda a, b: _combine_partials(a, b, combine_op)
        )
        self.charge_tree_reduce(_value_bytes(partials[0]), levels)
        if agg == "mean":
            denom = (
                main_blocked.rows * main_blocked.cols
                if hop.direction is AggDir.FULL
                else main_blocked.rows
            )
            if isinstance(result, MatrixBlock):
                result = MatrixBlock(result.to_dense() / denom)
            else:
                result = result / denom
        return result

    # -- generated fused operators -------------------------------------
    def execute_spoof(self, hop: SpoofOp, input_values: list,
                      input_keys: list | None = None,
                      output_key=None) -> object:
        """Execute a fused operator partition-wise: the main input is
        (or stays) row-partitioned, all side inputs are broadcast once
        per operator (the Table 6 broadcast overhead), and aggregation
        outputs combine via a tree-reduce over per-partition partials."""
        from repro.runtime.skeletons import (
            decompress_side_inputs,
            execute_operator,
            is_row_partitioned_output,
            reduce_spoof_partials,
            sliceable_spoof_inputs,
        )

        self.stats.n_distributed_ops += 1
        keys = list(input_keys) if input_keys else [None] * len(input_values)
        cplan = hop.operator.cplan
        main_index = cplan.main_index
        values = list(input_values)

        main_val = values[main_index] if main_index >= 0 else None
        if not isinstance(main_val, (MatrixBlock, BlockedMatrix)):
            # No partitionable main input: single-partition fallback.
            for idx, value in enumerate(values):
                if isinstance(value, BlockedMatrix):
                    values[idx] = self.collect_value(value)
                elif _value_bytes(value) > 0:
                    self.charge_broadcast(_value_bytes(value))
            return execute_operator(hop.operator, values, self.config,
                                    self.stats, allow_parallel=False)

        main_blocked = self._as_blocked(main_val, keys[main_index])
        for idx, value in enumerate(values):
            if idx == main_index:
                continue
            if isinstance(value, BlockedMatrix):
                # Side inputs must be visible in full on every worker.
                value = self.collect_value(value)
                values[idx] = value
            size = _value_bytes(value)
            if size > 0:
                self.charge_broadcast(size)

        # Row-aligned compressed sides must decompress to be sliceable
        # (workers receive the compressed broadcast — charged above —
        # and expand it locally).
        values = decompress_side_inputs(
            cplan, values, main_blocked.rows, row_aligned_only=True
        )
        sliceable = sliceable_spoof_inputs(cplan, values, main_blocked.rows)
        self.stats.record_spoof(cplan.ttype.value)
        row_partitioned = is_row_partitioned_output(cplan.out_type)
        if self.backend is not None:
            from repro.runtime import npexec

            # Resolve the kernel tier on the driver — one hotness bump
            # per partition, exactly like the simulated loop — and ship
            # the decision so workers execute the same tier.
            use_kernel = [
                npexec.resolve_kernel(hop.operator, self.config) is not None
                for _ in main_blocked.bounds
            ]
            partials = self.backend.run_spoof(
                hop.operator, values, sliceable, main_index, main_blocked,
                keys[main_index],
                output_key if row_partitioned else None, use_kernel
            )
        else:
            partials = []
            for p, (r0, r1) in enumerate(main_blocked.bounds):
                part_values = []
                for idx, value in enumerate(values):
                    if idx == main_index:
                        part_values.append(main_blocked.blocks[p])
                    elif idx in sliceable:
                        part_values.append(
                            rops.rix(value, r0, r1, 0, value.cols)
                        )
                    else:
                        part_values.append(value)
                partials.append(
                    execute_operator(hop.operator, part_values, self.config,
                                     allow_parallel=False)
                )

        if row_partitioned:
            blocks = [
                p if isinstance(p, MatrixBlock) else MatrixBlock(p)
                for p in partials
            ]
            result = BlockedMatrix(
                blocks, main_blocked.rows, blocks[0].cols, main_blocked.bounds
            )
            if self.backend is not None and output_key is not None:
                result.mp_key = output_key
            return result
        result, levels = reduce_spoof_partials(cplan, partials, tree_reduce)
        self.charge_tree_reduce(_value_bytes(partials[0]), levels)
        return result


def _materialize_plans(plans: list, main_blocked: BlockedMatrix) -> list[list]:
    """Expand partition plans into per-partition input value lists (the
    simulated in-process path; the multiprocess backend consumes the
    plans directly and ships blocks/slices/broadcasts instead)."""
    part_inputs: list[list] = []
    for p, (r0, r1) in enumerate(main_blocked.bounds):
        part_values = []
        for mode, value in plans:
            if mode == "main":
                part_values.append(main_blocked.blocks[p])
            elif mode == "zip":
                part_values.append(value.blocks[p])
            elif mode == "slice":
                part_values.append(rops.rix(value, r0, r1, 0, value.cols))
            else:
                part_values.append(value)
        part_inputs.append(part_values)
    return part_inputs


def _rows_of(value) -> int:
    if isinstance(value, (MatrixBlock, BlockedMatrix)):
        return value.rows
    return 0


def _shape_of(value):
    if isinstance(value, (MatrixBlock, BlockedMatrix)):
        return (value.rows, value.cols)
    return None


def _value_bytes(value) -> float:
    if isinstance(value, (MatrixBlock, BlockedMatrix)):
        return value.size_bytes
    return 8.0


def _basic_kernel(hop: Hop, values: list, stats=None) -> object:
    """Dispatch a basic HOP to the kernel library.

    The kernel library handles compressed inputs natively (dictionary
    transforms, count-weighted aggregates, pre-aggregated matvec) and
    decompresses explicitly — counting ``n_decompressions`` — where no
    dictionary-direct form exists; ``stats`` threads those counters
    through.
    """
    from repro.hops.hop import (
        AggBinaryOp,
        AggUnaryOp,
        BinaryOp,
        IndexingOp,
        NaryOp,
        ReorgOp,
        TernaryOp,
        UnaryOp,
    )

    if isinstance(hop, UnaryOp):
        if hop.op == "cumsum":
            return rops.cumsum(values[0], stats=stats)
        return rops.unary(hop.op, values[0], stats=stats)
    if isinstance(hop, BinaryOp):
        return rops.binary(hop.op, values[0], values[1], stats=stats)
    if isinstance(hop, TernaryOp):
        return rops.ternary(hop.op, values[0], values[1], values[2],
                            stats=stats)
    if isinstance(hop, AggUnaryOp):
        return rops.agg_unary(
            hop.agg_op.value, values[0], hop.direction.value, stats=stats
        )
    if isinstance(hop, AggBinaryOp):
        return rops.matmult(values[0], values[1], stats=stats)
    if isinstance(hop, ReorgOp):
        return rops.transpose(values[0], stats=stats)
    if isinstance(hop, IndexingOp):
        return rops.rix(values[0], hop.rl, hop.ru, hop.cl, hop.cu,
                        stats=stats)
    if isinstance(hop, NaryOp):
        result = values[0]
        func = rops.cbind if hop.op == "cbind" else rops.rbind
        for nxt in values[1:]:
            result = func(result, nxt, stats=stats)
        return result
    raise RuntimeExecError(f"no kernel for {hop.opcode()}")
