"""Simulated distributed (Spark-like) backend.

This substitutes the paper's Spark cluster: matrices are partitioned
into row-block partitions executed locally, while an analytical network
and I/O model charges *simulated seconds* for distributed reads,
shuffles, and broadcasts.  The cost structure is what Table 6 measures:
fuse-all dragging driver-side vector operations into distributed
operators pays per-worker broadcast costs for every extra side input,
while cost-based plans avoid them.

Execution remains numerically exact — per-partition kernels compute the
same results as local execution; only the timing is modeled.
"""

from __future__ import annotations

import numpy as np

from repro.config import ClusterConfig, CodegenConfig
from repro.errors import RuntimeExecError
from repro.hops import memory
from repro.hops.hop import Hop, SpoofOp
from repro.hops.types import OpKind
from repro.runtime import ops as rops
from repro.runtime.matrix import MatrixBlock
from repro.runtime.stats import RuntimeStats


class BlockedMatrix:
    """A matrix partitioned into row blocks (one per partition)."""

    def __init__(self, blocks: list[MatrixBlock], rows: int, cols: int):
        self.blocks = blocks
        self.rows = rows
        self.cols = cols

    @classmethod
    def partition(cls, block: MatrixBlock, n_partitions: int) -> "BlockedMatrix":
        rows, cols = block.shape
        bounds = _partition_bounds(rows, n_partitions)
        if block.is_sparse:
            csr = block.to_csr()
            parts = [MatrixBlock(csr[r0:r1]) for r0, r1 in bounds]
        else:
            arr = block.to_dense()
            parts = [MatrixBlock(arr[r0:r1]) for r0, r1 in bounds]
        return cls(parts, rows, cols)

    def collect(self) -> MatrixBlock:
        from repro.runtime.ops import rbind

        result = self.blocks[0]
        for part in self.blocks[1:]:
            result = rbind(result, part)
        return result

    @property
    def size_bytes(self) -> float:
        return sum(b.size_bytes for b in self.blocks)


def _partition_bounds(rows: int, n_partitions: int) -> list[tuple[int, int]]:
    n_partitions = max(1, min(n_partitions, rows))
    step = (rows + n_partitions - 1) // n_partitions
    return [(r0, min(rows, r0 + step)) for r0 in range(0, rows, step)]


class SparkExecutor:
    """Executes SPARK-typed operators partition-wise with cost charging."""

    def __init__(self, cluster: ClusterConfig, config: CodegenConfig,
                 stats: RuntimeStats):
        self.cluster = cluster
        self.config = config
        self.stats = stats
        # RDD-cache model: distributed datasets stay in aggregate
        # executor memory after the first read/write, so re-reads cost
        # memory bandwidth, not distributed-IO bandwidth.
        self._cached_ids: set[int] = set()
        self._cached_bytes: float = 0.0
        self._mem_bandwidth = 32e9 * cluster.n_workers

    @property
    def n_partitions(self) -> int:
        return self.cluster.n_workers * 2

    # ------------------------------------------------------------------
    # Cost charging
    # ------------------------------------------------------------------
    def _is_cached(self, value) -> bool:
        return id(value) in self._cached_ids

    def _cache(self, value, size_bytes: float) -> None:
        if self._cached_bytes + size_bytes <= self.cluster.aggregate_mem:
            self._cached_ids.add(id(value))
            self._cached_bytes += size_bytes

    def charge_read(self, size_bytes: float, value=None) -> None:
        if value is not None and self._is_cached(value):
            self.stats.sim_seconds += size_bytes / self._mem_bandwidth
            return
        self.stats.sim_seconds += size_bytes / self.cluster.hdfs_bandwidth
        if value is not None:
            self._cache(value, size_bytes)

    def charge_write(self, size_bytes: float, value=None) -> None:
        self.stats.sim_seconds += size_bytes / self.cluster.hdfs_bandwidth
        if value is not None:
            self._cache(value, size_bytes)

    def charge_broadcast(self, size_bytes: float) -> None:
        replicated = size_bytes * self.cluster.n_workers
        self.stats.sim_broadcast_bytes += replicated
        self.stats.sim_seconds += replicated / self.cluster.net_bandwidth
        # Broadcast variables occupy aggregate memory and cause partial
        # evictions of cached datasets (the Table 6 discussion): once
        # accumulated broadcast storage crosses a fraction of aggregate
        # memory, cached inputs drop and must be re-read.
        self._broadcast_pressure = getattr(self, "_broadcast_pressure", 0.0) + replicated
        if self._broadcast_pressure > 0.25 * self.cluster.aggregate_mem:
            self._cached_ids.clear()
            self._cached_bytes = 0.0
            self._broadcast_pressure = 0.0

    def charge_shuffle(self, size_bytes: float) -> None:
        self.stats.sim_shuffle_bytes += size_bytes
        self.stats.sim_seconds += size_bytes / self.cluster.net_bandwidth

    # ------------------------------------------------------------------
    # Operator execution
    # ------------------------------------------------------------------
    def execute_instruction(self, instr, input_values: list) -> object:
        """Dispatch one lowered Program instruction to the cluster.

        The runtime executor hands SPARK-typed instructions here; basic
        hops and generated operators take different cost paths.
        """
        if instr.opcode == "spoof":
            return self.execute_spoof(instr.hop, input_values)
        return self.execute_hop(instr.hop, input_values)

    def execute_hop(self, hop: Hop, input_values: list) -> object:
        """Execute one basic HOP distributed: partition the largest
        matrix input row-wise, broadcast the others, reassemble."""
        self.stats.n_distributed_ops += 1
        mats = [
            (idx, v) for idx, v in enumerate(input_values)
            if isinstance(v, MatrixBlock)
        ]
        if not mats:
            raise RuntimeExecError("distributed op without matrix input")
        main_idx, main_val = max(mats, key=lambda item: item[1].size_bytes)

        if hop.kind is OpKind.AGG_BINARY and input_values[0] is not main_val:
            # Matrix multiplication with the big matrix on the right:
            # repartitioning/shuffle of the left operand.
            self.charge_shuffle(input_values[0].size_bytes)

        self.charge_read(main_val.size_bytes, value=main_val)
        for idx, val in mats:
            if idx != main_idx:
                same_dims = val.shape == main_val.shape
                if same_dims:
                    # Co-partitioned join of two large inputs.
                    self.charge_shuffle(val.size_bytes)
                else:
                    self.charge_broadcast(val.size_bytes)

        # Row-partitioned execution only distributes cleanly when the
        # main input is partitioned by rows and the operation is
        # row-local; other cases execute as one "partition".
        result = self._interpret_basic(hop, input_values)
        if isinstance(result, MatrixBlock):
            self.charge_write(result.size_bytes, value=result)
        return result

    def execute_spoof(self, hop: SpoofOp, input_values: list) -> object:
        """Execute a fused operator distributed: main input partitioned,
        all side inputs broadcast (the Table 6 broadcast overhead)."""
        from repro.codegen.cplan import OutType
        from repro.runtime.skeletons import execute_operator

        self.stats.n_distributed_ops += 1
        cplan = hop.operator.cplan
        main_index = cplan.main_index
        for idx, value in enumerate(input_values):
            size = _value_bytes(value)
            if idx == main_index:
                self.charge_read(size, value=value)
            elif size > 0:
                self.charge_broadcast(size)
        result = execute_operator(hop.operator, input_values, self.config, self.stats)
        if isinstance(result, MatrixBlock):
            if cplan.out_type in (OutType.FULL_AGG, OutType.COL_AGG,
                                  OutType.COL_AGG_T, OutType.MULTI_AGG,
                                  OutType.OUTER_FULL_AGG):
                # Aggregation outputs combine via a tree-reduce.
                self.charge_shuffle(result.size_bytes * np.log2(self.cluster.n_workers + 1))
            else:
                self.charge_write(result.size_bytes, value=result)
        return result

    def _interpret_basic(self, hop: Hop, values: list) -> object:
        """Partition-wise execution of one basic operator."""
        from repro.hops.hop import AggUnaryOp, BinaryOp, TernaryOp, UnaryOp
        from repro.hops.types import AggDir

        if isinstance(hop, (UnaryOp, BinaryOp, TernaryOp)) and hop.is_matrix:
            main = max(
                (v for v in values if isinstance(v, MatrixBlock)),
                key=lambda v: v.size_bytes,
            )
            if main.rows >= self.n_partitions and all(
                not isinstance(v, MatrixBlock)
                or v.rows in (main.rows, 1)
                for v in values
            ):
                return self._rowwise_blocked(hop, values, main)
        return _basic_kernel(hop, values)


    def _rowwise_blocked(self, hop: Hop, values: list, main: MatrixBlock):
        bounds = _partition_bounds(main.rows, self.n_partitions)
        parts = []
        for r0, r1 in bounds:
            part_values = []
            for v in values:
                if isinstance(v, MatrixBlock) and v.rows == main.rows:
                    part_values.append(rops.rix(v, r0, r1, 0, v.cols))
                else:
                    part_values.append(v)
            parts.append(_basic_kernel(hop, part_values))
        blocked = BlockedMatrix(parts, main.rows, parts[0].cols)
        return blocked.collect()


def _value_bytes(value) -> float:
    if isinstance(value, MatrixBlock):
        return value.size_bytes
    return 8.0


def _basic_kernel(hop: Hop, values: list) -> object:
    """Dispatch a basic HOP to the kernel library.

    Compressed inputs first try the CLA kernels (dictionary-only
    execution); unsupported operations decompress.
    """
    from repro.hops.hop import (
        AggBinaryOp,
        AggUnaryOp,
        BinaryOp,
        IndexingOp,
        NaryOp,
        ReorgOp,
        TernaryOp,
        UnaryOp,
    )
    from repro.runtime.compressed import (
        CompressedMatrix,
        cla_kernel,
        decompress_values,
    )

    if any(isinstance(v, CompressedMatrix) for v in values):
        result = cla_kernel(hop, values)
        if result is not None:
            return result
        values = decompress_values(values)

    if isinstance(hop, UnaryOp):
        if hop.op == "cumsum":
            return rops.cumsum(values[0])
        return rops.unary(hop.op, values[0])
    if isinstance(hop, BinaryOp):
        return rops.binary(hop.op, values[0], values[1])
    if isinstance(hop, TernaryOp):
        return rops.ternary(hop.op, values[0], values[1], values[2])
    if isinstance(hop, AggUnaryOp):
        return rops.agg_unary(
            hop.agg_op.value, values[0], hop.direction.value
        )
    if isinstance(hop, AggBinaryOp):
        return rops.matmult(values[0], values[1])
    if isinstance(hop, ReorgOp):
        return rops.transpose(values[0])
    if isinstance(hop, IndexingOp):
        return rops.rix(values[0], hop.rl, hop.ru, hop.cl, hop.cu)
    if isinstance(hop, NaryOp):
        result = values[0]
        func = rops.cbind if hop.op == "cbind" else rops.rbind
        for nxt in values[1:]:
            result = func(result, nxt)
        return result
    raise RuntimeExecError(f"no kernel for {hop.opcode()}")
