"""Process-wide thread budget and the shared intra-operator worker pool.

Three runtime layers can spawn concurrency: the inter-instruction
executor pool (:mod:`repro.runtime.executor`), the intra-operator
partition workers (:mod:`repro.runtime.skeletons`), and the serving
:class:`~repro.serve.scheduler.SessionScheduler` workers.  Without
coordination, nesting them oversubscribes the machine (e.g. 8 executor
threads each fanning out 8 partition workers).  The :class:`ThreadBudget`
is the single token pool they all draw from:

* a layer *acquires* tokens before going parallel and *releases* them
  when the parallel section ends,
* the budget never over-grants (beyond an explicit ``minimum`` a layer
  needs for liveness), so inner layers degrade to serial execution when
  outer layers already claim the machine,
* grants only bound *scheduling concurrency* — partition counts and
  combine topologies are fixed by configuration, so results are
  deterministic regardless of how many tokens a run was granted.

The default total is ``max(8, cpu_count)``: generous enough that a
single layer keeps its configured width on small hosts, while nested
layers still contend and degrade instead of multiplying.  Engines can
tighten it per-config via ``CodegenConfig.thread_budget`` (passed as
``limit`` to :meth:`ThreadBudget.acquire`).
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.analysis import lockset


class ThreadBudget:
    """A token pool bounding the process's concurrently active workers."""

    def __init__(self, total: int | None = None):
        if total is None or total <= 0:
            total = max(8, os.cpu_count() or 1)
        self.total = total
        # Tracked (lockset.make_lock) so the race detector can verify
        # the token-count protocol; the process-global budget below is
        # created at import, long before any checker is enabled.
        self._lock = lockset.make_lock("ThreadBudget._lock")
        self._active = 0
        #: Peak simultaneously granted tokens (observability for the
        #: oversubscription guard tests and ``parallel_summary``).
        self.peak = 0

    @property
    def active(self) -> int:
        return self._active

    def acquire(self, requested: int, minimum: int = 0,
                limit: int | None = None) -> int:
        """Grant up to ``requested`` tokens, never exceeding the budget.

        ``minimum`` tokens are granted even when the pool is exhausted
        (a layer that must make progress on its own thread); ``limit``
        caps the effective total for callers with a stricter per-config
        budget.  Always pair with :meth:`release` of the granted count.
        """
        total = self.total if limit is None or limit <= 0 else min(
            self.total, limit
        )
        with self._lock:
            lockset.note_access("ThreadBudget", self, "active")
            available = max(0, total - self._active)
            granted = max(minimum, min(requested, available))
            self._active += granted
            self.peak = max(self.peak, self._active)
            return granted

    def release(self, granted: int) -> None:
        if granted <= 0:
            return
        with self._lock:
            lockset.note_access("ThreadBudget", self, "active")
            self._active -= granted


_BUDGET = ThreadBudget()
_POOL: ThreadPoolExecutor | None = None
_POOL_LOCK = threading.Lock()


def shared_budget() -> ThreadBudget:
    """The process-wide budget all runtime layers draw from."""
    return _BUDGET


def _shared_pool() -> ThreadPoolExecutor:
    """Lazily created worker pool for intra-operator partition tasks.

    The pool is sized to the default budget total; actual concurrency
    per operator is bounded by the tokens granted for that operator, so
    the pool size is an upper bound, not a scheduling decision.
    """
    global _POOL
    with _POOL_LOCK:
        if _POOL is None:
            _POOL = ThreadPoolExecutor(
                max_workers=max(8, os.cpu_count() or 1),
                thread_name_prefix="repro-intra-op",
            )
        return _POOL


def run_tasks(tasks: list, limit: int | None = None) -> tuple[list, int]:
    """Run thunks, in parallel when the budget allows.

    Returns ``(results, workers)`` with results in task order.
    ``workers`` is the number of pool workers used (1 = the caller ran
    everything serially).  Tasks are strided over the granted workers
    with a fixed assignment, and results are combined by the *caller*
    in task order, so output values never depend on scheduling.
    """
    n = len(tasks)
    if n <= 1:
        return [task() for task in tasks], 1
    budget = shared_budget()
    granted = budget.acquire(n, minimum=0, limit=limit)
    try:
        if granted <= 1:
            return [task() for task in tasks], 1
        results: list = [None] * n
        pool = _shared_pool()

        def run_chunk(offset: int) -> None:
            for index in range(offset, n, granted):
                results[index] = tasks[index]()

        futures = [pool.submit(run_chunk, offset) for offset in range(granted)]
        # Wait for EVERY chunk before returning (and before the finally
        # block releases the tokens): releasing while stragglers still
        # run would let another operator acquire the same tokens and
        # oversubscribe the machine.
        error: BaseException | None = None
        for future in futures:
            try:
                future.result()
            except BaseException as exc:
                if error is None:
                    error = exc
        if error is not None:
            raise error
        return results, granted
    finally:
        budget.release(granted)


__all__ = ["ThreadBudget", "shared_budget", "run_tasks"]
