"""Basic operator kernels: the interpreter's runtime library.

These kernels implement single high-level operators over
:class:`~repro.runtime.matrix.MatrixBlock` values, fully materializing
their outputs.  The "Base" engine of the experiments executes every HOP
with exactly one kernel call, which is what operator fusion eliminates.

All kernels accept scalars (Python floats) where SystemML would accept
scalar operands.  Kernels dispatch per operator and input format —
sparse-sparse and sparse-dense element-wise, aggregation, reorg, and
indexing paths keep CSR inputs CSR whenever the output stays sparse —
and every matrix result leaves through :func:`_output`, which applies
the shared :func:`~repro.runtime.matrix.recommend_format` policy.

COMPRESSED is the third input format: cell-wise ops and scalar ops
transform the per-group dictionaries only, aggregations combine
dictionary values with counts, and matrix-vector multiplies
pre-aggregate per group.  Compressed results leave through
:func:`_output_compressed` (the stay-compressed policy point); ops
without a dictionary-direct form decompress explicitly through
:func:`_decompress`, which counts ``n_decompressions``.
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp
import scipy.special

from repro.errors import RuntimeExecError, ShapeError
from repro.runtime.compressed import CompressedMatrix, transform_dictionaries
from repro.runtime.matrix import MatrixBlock

Value = Union[MatrixBlock, CompressedMatrix, float]

# Unary cell functions f(0) == 0; safe to apply to non-zeros only.
SPARSE_SAFE_UNARY = {
    "abs",
    "sign",
    "sqrt",
    "round",
    "floor",
    "ceil",
    "neg",
    "sprop",
    "pow2",
}

_UNARY_FUNCS = {
    "exp": np.exp,
    "log": np.log,
    "sqrt": np.sqrt,
    "abs": np.abs,
    "sign": np.sign,
    "round": np.round,
    "floor": np.floor,
    "ceil": np.ceil,
    "neg": np.negative,
    "not": lambda x: (x == 0).astype(np.float64),
    "sigmoid": lambda x: 1.0 / (1.0 + np.exp(-x)),
    "sprop": lambda x: x * (1.0 - x),  # sample proportion x*(1-x)
    "pow2": lambda x: x * x,
    "erf": scipy.special.erf,
    "normpdf": lambda x: np.exp(-0.5 * x * x) / np.sqrt(2.0 * np.pi),
}

_BINARY_FUNCS = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
    "^": np.power,
    "min": np.minimum,
    "max": np.maximum,
    "==": lambda a, b: (a == b).astype(np.float64),
    "!=": lambda a, b: (a != b).astype(np.float64),
    "<": lambda a, b: (a < b).astype(np.float64),
    ">": lambda a, b: (a > b).astype(np.float64),
    "<=": lambda a, b: (a <= b).astype(np.float64),
    ">=": lambda a, b: (a >= b).astype(np.float64),
    "&": lambda a, b: ((a != 0) & (b != 0)).astype(np.float64),
    "|": lambda a, b: ((a != 0) | (b != 0)).astype(np.float64),
}

# Binary ops where a zero cell in *either* input yields a zero output,
# provided the other operand is a matrix ('*' ) -- used for sparse outputs.
_ZERO_PRESERVING_BINARY = {"*"}

# Same-shape sparse-sparse kernels: ops with f(0, 0) == 0, so the output
# pattern is contained in the union of the operands' patterns and scipy
# computes over stored entries only (no densification of either side).
_SPARSE_SPARSE_BINARY = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a.multiply(b),
    "min": lambda a, b: a.minimum(b),
    "max": lambda a, b: a.maximum(b),
}


def _output(result) -> MatrixBlock:
    """Single exit point for matrix results: wrap and store in the
    representation the shared format policy recommends."""
    return MatrixBlock(result).examine_representation()


def _output_compressed(comp: CompressedMatrix, stats=None):
    """Single exit point for compressed results: the stay-compressed
    policy.

    A dictionary-direct result stays compressed while it is still
    smaller than its dense form (dictionary transforms preserve the
    layout byte-for-byte, so chained cell pipelines never decompress);
    a result that no longer pays for its encoding leaves as a regular
    block under the shared format policy, counted as a decompression.
    """
    if comp.size_bytes <= comp.rows * comp.cols * 8.0:
        return comp
    if stats is not None:
        stats.n_decompressions += 1
    return comp.decompress().examine_representation()


def _decompress(value: Value, stats=None) -> Value:
    """Explicit decompression point for ops without a compressed form."""
    if isinstance(value, CompressedMatrix):
        if stats is not None:
            stats.n_decompressions += 1
        return value.decompress()
    return value


def _count_compressed_op(stats) -> None:
    if stats is not None:
        stats.n_compressed_ops += 1


def _is_scalar(value: Value) -> bool:
    return not isinstance(value, (MatrixBlock, CompressedMatrix))


def _broadcast_dense(arr: np.ndarray, shape: tuple[int, int]) -> np.ndarray:
    """Broadcast a vector operand against a matrix shape (R semantics)."""
    rows, cols = shape
    if arr.shape == shape:
        return arr
    if arr.shape == (rows, 1) or arr.shape == (1, cols) or arr.shape == (1, 1):
        return np.broadcast_to(arr, shape)
    raise ShapeError(f"cannot broadcast {arr.shape} to {shape}")


def unary(op: str, x: Value, stats=None) -> Value:
    """Apply a cell-wise unary function."""
    func = _UNARY_FUNCS.get(op)
    if func is None:
        raise RuntimeExecError(f"unknown unary op '{op}'")
    if _is_scalar(x):
        return float(func(np.float64(x)))
    if isinstance(x, CompressedMatrix):
        # Dictionary-only transform: exact for every cell function
        # because even OLE's implicit tuple has a dictionary entry.
        _count_compressed_op(stats)
        transform = lambda d: np.asarray(func(d), dtype=np.float64)
        return _output_compressed(transform_dictionaries(x, transform), stats)
    if x.is_sparse and op in SPARSE_SAFE_UNARY:
        csr = x.to_csr().copy()
        csr.data = func(csr.data)
        return _output(csr)
    out = func(x.to_dense())
    return _output(out)


def cumsum(x: Value, axis: int = 0, stats=None) -> Value:
    """Column-wise cumulative sum (SystemML ``cumsum``)."""
    if _is_scalar(x):
        return float(x)
    x = _decompress(x, stats)  # positional, no dictionary-direct form
    out = np.cumsum(x.to_dense(), axis=axis)
    return MatrixBlock(out)


def binary(op: str, a: Value, b: Value, stats=None) -> Value:
    """Apply a cell-wise binary function with R-style broadcasting."""
    func = _BINARY_FUNCS.get(op)
    if func is None:
        raise RuntimeExecError(f"unknown binary op '{op}'")
    if isinstance(a, CompressedMatrix) or isinstance(b, CompressedMatrix):
        return _binary_compressed(op, func, a, b, stats)
    if _is_scalar(a) and _is_scalar(b):
        return float(func(np.float64(a), np.float64(b)))
    if _is_scalar(a) or _is_scalar(b):
        return _binary_matrix_scalar(op, func, a, b)
    return _binary_matrix_matrix(op, func, a, b)


def _binary_compressed(op, func, a: Value, b: Value, stats=None) -> Value:
    """Compressed element-wise dispatch.

    Matrix (+) scalar transforms the dictionaries only — the exact CLA
    fast path, valid for every binary function because the implicit OLE
    tuple is represented in the dictionary.  Matrix (+) matrix has no
    dictionary form (row alignment breaks the distinct-value grouping),
    so compressed operands decompress explicitly.
    """
    comp, other = (a, b) if isinstance(a, CompressedMatrix) else (b, a)
    if _is_scalar(other):
        scalar = np.float64(other)
        swapped = comp is b
        apply_ = (lambda d: func(scalar, d)) if swapped else (lambda d: func(d, scalar))
        _count_compressed_op(stats)
        transform = lambda d: np.asarray(apply_(d), dtype=np.float64)
        return _output_compressed(transform_dictionaries(comp, transform), stats)
    return binary(op, _decompress(a, stats), _decompress(b, stats), stats)


def _binary_matrix_scalar(op, func, a: Value, b: Value) -> MatrixBlock:
    mat, scalar, swapped = (a, b, False) if isinstance(a, MatrixBlock) else (b, a, True)
    scalar = np.float64(scalar)
    apply_ = (lambda x: func(scalar, x)) if swapped else (lambda x: func(x, scalar))
    # Sparse-safe iff f(0, s) == 0 (or f(s, 0) == 0 when swapped).
    if mat.is_sparse and float(apply_(np.float64(0.0))) == 0.0:
        csr = mat.to_csr().copy()
        csr.data = apply_(csr.data)
        return _output(csr)
    out = apply_(mat.to_dense())
    return _output(np.asarray(out, dtype=np.float64))


def _binary_matrix_matrix(op, func, a: MatrixBlock, b: MatrixBlock) -> MatrixBlock:
    """Format dispatch for matrix (+) matrix element-wise kernels.

    Priority order: same-shape sparse-sparse kernels (both operands stay
    CSR), sparse-dense multiply over the sparse pattern, sparse-vector
    broadcast scaling, then the dense fallback.
    """
    out_shape = _binary_out_shape(a.shape, b.shape)
    same_shape = a.shape == b.shape
    if same_shape and a.is_sparse and b.is_sparse and op in _SPARSE_SPARSE_BINARY:
        result = _SPARSE_SPARSE_BINARY[op](a.to_csr(), b.to_csr())
        return _output(sp.csr_matrix(result))
    if op in _ZERO_PRESERVING_BINARY and same_shape and (a.is_sparse or b.is_sparse):
        # One sparse operand: multiply over its stored pattern without
        # converting the dense operand to CSR.
        mat, other = (a, b) if a.is_sparse else (b, a)
        result = mat.to_csr().multiply(other.to_dense())
        return _output(sp.csr_matrix(result))
    if op == "*" and (a.is_sparse or b.is_sparse) and not same_shape:
        # Sparse matrix times broadcast vector stays sparse.
        mat, vec = (a, b) if not a.is_vector() or a.shape == out_shape else (b, a)
        if mat.shape == out_shape and mat.is_sparse:
            dense_vec = vec.to_dense()
            if dense_vec.shape == (out_shape[0], 1):
                scaled = sp.diags(dense_vec.ravel()) @ mat.to_csr()
                return _output(sp.csr_matrix(scaled))
            if dense_vec.shape == (1, out_shape[1]):
                scaled = mat.to_csr() @ sp.diags(dense_vec.ravel())
                return _output(sp.csr_matrix(scaled))
    lhs = _broadcast_dense(a.to_dense(), out_shape)
    rhs = _broadcast_dense(b.to_dense(), out_shape)
    with np.errstate(divide="ignore", invalid="ignore"):
        out = func(lhs, rhs)
    return _output(np.asarray(out, dtype=np.float64))


def _binary_out_shape(a: tuple[int, int], b: tuple[int, int]) -> tuple[int, int]:
    if a == b:
        return a
    rows = max(a[0], b[0])
    cols = max(a[1], b[1])
    for shape in (a, b):
        if shape not in ((rows, cols), (rows, 1), (1, cols), (1, 1)):
            raise ShapeError(f"incompatible shapes {a} and {b}")
    return (rows, cols)


def ternary(op: str, a: Value, b: Value, c: Value, stats=None) -> Value:
    """Ternary cell ops: '+*' (a + b*c), '-*' (a - b*c), 'ifelse'."""
    if op == "+*":
        return binary("+", a, binary("*", b, c, stats), stats)
    if op == "-*":
        return binary("-", a, binary("*", b, c, stats), stats)
    if op == "ifelse":
        if _is_scalar(a) and _is_scalar(b) and _is_scalar(c):
            return float(b) if a != 0 else float(c)
        a, b, c = (_decompress(v, stats) for v in (a, b, c))
        shapes = [v.shape for v in (a, b, c) if isinstance(v, MatrixBlock)]
        out_shape = shapes[0]
        for shape in shapes[1:]:
            out_shape = _binary_out_shape(out_shape, shape)

        def dense_of(v):
            if _is_scalar(v):
                return np.full(out_shape, float(v))
            return _broadcast_dense(v.to_dense(), out_shape)

        out = np.where(dense_of(a) != 0, dense_of(b), dense_of(c))
        return _output(out)
    raise RuntimeExecError(f"unknown ternary op '{op}'")


def agg_unary(op: str, x: Value, direction: str = "full", stats=None) -> Value:
    """Aggregations: sum/sumsq/min/max/mean over full/row/col direction.

    Row direction aggregates within each row (output n x 1), col within
    each column (output 1 x m), matching SystemML's rowSums/colSums.
    """
    if _is_scalar(x):
        value = float(x)
        return value * value if op == "sumsq" else value
    if isinstance(x, CompressedMatrix):
        result = _agg_compressed(op, x, direction)
        if result is not None:
            _count_compressed_op(stats)
            return result
        x = _decompress(x, stats)
    axis = {"full": None, "row": 1, "col": 0}[direction]
    if x.is_sparse and op in {"min", "max"}:
        # scipy accounts for implicit zeros, so CSR inputs reduce
        # without densification.
        csr = x.to_csr()
        result = csr.min(axis=axis) if op == "min" else csr.max(axis=axis)
        if axis is None:
            return float(result)
        out = np.asarray(result.todense(), dtype=np.float64)
        return MatrixBlock(out.reshape(-1, 1) if axis == 1 else out.reshape(1, -1))
    if x.is_sparse and op in {"sum", "sumsq", "mean"}:
        csr = x.to_csr()
        target = csr.multiply(csr) if op == "sumsq" else csr
        result = target.sum(axis=axis)
        if op == "mean":
            denom = x.rows * x.cols if axis is None else (x.cols if axis == 1 else x.rows)
            result = result / denom
        if axis is None:
            return float(result)
        out = np.asarray(result, dtype=np.float64)
        return MatrixBlock(out.reshape(-1, 1) if axis == 1 else out.reshape(1, -1))
    dense = x.to_dense()
    if op == "sum":
        result = dense.sum(axis=axis)
    elif op == "sumsq":
        result = (dense * dense).sum(axis=axis)
    elif op == "min":
        result = dense.min(axis=axis)
    elif op == "max":
        result = dense.max(axis=axis)
    elif op == "mean":
        result = dense.mean(axis=axis)
    else:
        raise RuntimeExecError(f"unknown aggregation '{op}'")
    if axis is None:
        return float(result)
    out = np.asarray(result, dtype=np.float64)
    return MatrixBlock(out.reshape(-1, 1) if axis == 1 else out.reshape(1, -1))


def _agg_compressed(op: str, x: CompressedMatrix, direction: str):
    """Dictionary-direct aggregations, or None for the decompress path.

    Sum-like aggregates are count-weighted dictionary reductions;
    full/col min and max read dictionaries alone (every tuple occurs at
    least once by construction).  Row-wise min/max would need row
    alignment across groups, so they fall back.
    """
    cells = x.rows * x.cols
    if direction == "full":
        if op == "sum":
            return x.sum()
        if op == "sumsq":
            return x.sum_sq()
        if op == "mean":
            return x.sum() / max(cells, 1)
        if op in ("min", "max"):
            reducer = np.min if op == "min" else np.max
            return float(reducer([reducer(g.dictionary) for g in x.groups]))
    elif direction == "col":
        if op == "sum":
            return x.col_sums()
        if op == "sumsq":
            return x.col_sums_sq()
        if op == "mean":
            return MatrixBlock(x.col_sums().to_dense() / max(x.rows, 1))
        if op in ("min", "max"):
            return x.col_reduce(np.min if op == "min" else np.max)
    elif direction == "row":
        if op == "sum":
            return x.row_sums()
        if op == "mean":
            return MatrixBlock(x.row_sums().to_dense() / max(x.cols, 1))
    return None


def matmult(a: "MatrixBlock | CompressedMatrix",
            b: "MatrixBlock | CompressedMatrix", stats=None) -> MatrixBlock:
    """Matrix multiplication with sparse dispatch."""
    if a.cols != b.rows:
        raise ShapeError(f"matmult shapes {a.shape} x {b.shape}")
    if isinstance(a, CompressedMatrix) and isinstance(b, MatrixBlock) and b.cols == 1:
        # X @ v pre-aggregates each group dictionary against v's slice
        # and scatters by codes/offsets (the CLA cache-conscious path).
        _count_compressed_op(stats)
        return a.matvec(b.to_dense())
    a = _decompress(a, stats)
    b = _decompress(b, stats)
    if a.is_sparse and b.is_sparse:
        out = a.to_csr() @ b.to_csr()
        return _output(sp.csr_matrix(out))
    if a.is_sparse:
        out = a.to_csr() @ b.to_dense()
        return _output(np.asarray(out))
    if b.is_sparse:
        out = (b.to_csr().T @ a.to_dense().T).T
        return _output(np.ascontiguousarray(out))
    return _output(a.to_dense() @ b.to_dense())


def transpose(x: Value, stats=None) -> Value:
    """Matrix transpose."""
    if _is_scalar(x):
        return float(x)
    x = _decompress(x, stats)  # reorg breaks column-group layout
    if x.is_sparse:
        return MatrixBlock(x.to_csr().T.tocsr())
    return MatrixBlock(np.ascontiguousarray(x.to_dense().T))


def rix(x: MatrixBlock, rl: int, ru: int, cl: int, cu: int,
        stats=None) -> MatrixBlock:
    """Right indexing X[rl:ru, cl:cu] (0-based, exclusive upper)."""
    x = _decompress(x, stats)
    if not (0 <= rl <= ru <= x.rows and 0 <= cl <= cu <= x.cols):
        raise ShapeError(
            f"index [{rl}:{ru}, {cl}:{cu}] out of bounds for {x.shape}"
        )
    if x.is_sparse:
        return _output(x.to_csr()[rl:ru, cl:cu])
    return MatrixBlock(np.ascontiguousarray(x.to_dense()[rl:ru, cl:cu]))


def cbind(a: MatrixBlock, b: MatrixBlock, stats=None) -> MatrixBlock:
    """Column concatenation."""
    if a.rows != b.rows:
        raise ShapeError(f"cbind rows {a.rows} != {b.rows}")
    a, b = _decompress(a, stats), _decompress(b, stats)
    if a.is_sparse and b.is_sparse:
        return MatrixBlock(sp.hstack([a.to_csr(), b.to_csr()]).tocsr())
    return MatrixBlock(np.hstack([a.to_dense(), b.to_dense()]))


def rbind(a: MatrixBlock, b: MatrixBlock, stats=None) -> MatrixBlock:
    """Row concatenation."""
    if a.cols != b.cols:
        raise ShapeError(f"rbind cols {a.cols} != {b.cols}")
    a, b = _decompress(a, stats), _decompress(b, stats)
    if a.is_sparse and b.is_sparse:
        return MatrixBlock(sp.vstack([a.to_csr(), b.to_csr()]).tocsr())
    return MatrixBlock(np.vstack([a.to_dense(), b.to_dense()]))
