"""MatrixBlock: the in-memory matrix representation of the runtime.

A ``MatrixBlock`` holds either a dense ``numpy.ndarray`` (row-major,
float64) or a ``scipy.sparse.csr_matrix``.  The representation is chosen
by sparsity, mirroring SystemML's dense/sparse hybrid blocks: blocks
whose density falls below ``CodegenConfig.sparse_threshold`` are stored
in CSR.  Compressed blocks live in :mod:`repro.runtime.compressed` and
are deliberately a separate type, as in the paper.

:func:`recommend_format` is the single storage-format policy shared by
the compiler's size estimates (:mod:`repro.hops.memory`), the runtime
kernels (:mod:`repro.runtime.ops`), the fused skeletons, and the
adaptive recompiler — all format decisions flow through the same
sparsity threshold.
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp

from repro.errors import ShapeError

SPARSE_THRESHOLD = 0.4

ArrayLike = Union[np.ndarray, sp.spmatrix, "MatrixBlock", list]


def estimate_compressed_bytes(rows: int, cols: int, nnz: int,
                              distinct: float) -> float:
    """Estimated CLA size from shape, nnz, and distinct values per column.

    Mirrors :meth:`ColumnGroup.size_bytes`: every column stores a
    dictionary of ``distinct`` 8B values plus either DDC codes (1/2/4B
    per row by cardinality) or OLE offset lists (4B per non-zero cell);
    the estimate takes the cheaper encoding, like the compressor does.
    """
    distinct = max(1.0, float(distinct))
    code_bytes = 1.0 if distinct <= 256 else 2.0 if distinct <= 65536 else 4.0
    dict_bytes = cols * distinct * 8.0
    ddc = dict_bytes + rows * cols * code_bytes
    ole = dict_bytes + max(nnz, 0) * 4.0
    return min(ddc, ole)


def recommend_format(rows: int, cols: int, nnz: int,
                     threshold: float = SPARSE_THRESHOLD,
                     distinct: float = -1.0,
                     compress_ratio: float = 2.0) -> str:
    """The storage format policy: ``'sparse'`` (CSR), ``'dense'``, or
    ``'compressed'`` (CLA column groups).

    A matrix is stored sparse when its density ``nnz / cells`` falls
    below ``threshold`` (SystemML's 0.4 rule).  Unknown nnz (``< 0``)
    recommends dense — the conservative default the compiler assumes
    until runtime observation corrects it.  Empty shapes are dense.

    ``distinct`` is the estimated number of distinct values per column;
    when known (``>= 0``) and the estimated CLA size undercuts the
    dense/CSR size by at least ``compress_ratio``, the policy recommends
    ``'compressed'`` instead.  Unknown distinct counts (the default)
    never recommend compression, so callers without a distinct-value
    observation keep the two-format behavior.
    """
    cells = rows * cols
    if cells == 0 or nnz < 0:
        return "dense"
    base = "sparse" if nnz / cells < threshold else "dense"
    if distinct < 0:
        return base
    base_bytes = (
        nnz * 12.0 + (rows + 1) * 4.0 if base == "sparse" else cells * 8.0
    )
    compressed = estimate_compressed_bytes(rows, cols, nnz, distinct)
    if compressed * max(compress_ratio, 1.0) <= base_bytes:
        return "compressed"
    return base


class MatrixBlock:
    """A two-dimensional float64 matrix in dense or CSR representation."""

    # __weakref__ lets the distributed RDD-cache model guard identity-
    # keyed entries against freed-and-reallocated blocks.
    __slots__ = ("_dense", "_sparse", "_nnz", "__weakref__")

    def __init__(self, data: ArrayLike):
        self._nnz = None  # lazily computed and cached (values never mutate)
        if isinstance(data, MatrixBlock):
            self._dense = data._dense
            self._sparse = data._sparse
            self._nnz = data._nnz
            return
        if sp.issparse(data):
            self._dense = None
            self._sparse = data.tocsr().astype(np.float64, copy=False)
            self._sparse.sum_duplicates()
            return
        arr = np.asarray(data, dtype=np.float64)
        if arr.ndim == 0:
            arr = arr.reshape(1, 1)
        elif arr.ndim == 1:
            arr = arr.reshape(-1, 1)
        elif arr.ndim != 2:
            raise ShapeError(f"expected 2-D data, got ndim={arr.ndim}")
        self._dense = np.ascontiguousarray(arr)
        self._sparse = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_array(cls, arr: np.ndarray) -> "MatrixBlock":
        """Wrap a dense numpy array (no sparsity examination)."""
        return cls(arr)

    @classmethod
    def from_sparse(cls, mat: sp.spmatrix) -> "MatrixBlock":
        """Wrap a scipy sparse matrix, converting to CSR."""
        return cls(mat)

    @classmethod
    def zeros(cls, rows: int, cols: int, sparse: bool = False) -> "MatrixBlock":
        """An all-zero matrix, sparse or dense on request."""
        if sparse:
            return cls(sp.csr_matrix((rows, cols), dtype=np.float64))
        return cls(np.zeros((rows, cols)))

    @classmethod
    def rand(
        cls,
        rows: int,
        cols: int,
        sparsity: float = 1.0,
        low: float = 0.0,
        high: float = 1.0,
        seed: int | None = None,
    ) -> "MatrixBlock":
        """Random matrix in ``[low, high)`` with the requested sparsity.

        Mirrors SystemML's ``rand`` built-in used by the paper's data
        generation scripts.
        """
        rng = np.random.default_rng(seed)
        if sparsity >= 1.0:
            return cls(rng.uniform(low, high, size=(rows, cols)))
        nnz = int(round(sparsity * rows * cols))
        mat = sp.random(
            rows,
            cols,
            density=min(1.0, max(nnz / max(1, rows * cols), 0.0)),
            format="csr",
            dtype=np.float64,
            random_state=np.random.RandomState(seed),
        )
        if mat.nnz:
            mat.data[:] = rng.uniform(low, high, size=mat.nnz)
            # Avoid accidental explicit zeros (low could be negative)
            # with an in-range replacement: the midpoint, or — when the
            # midpoint itself is 0.0 (symmetric ranges like [-a, a)) —
            # the three-quarter point, which is non-zero whenever the
            # range is non-degenerate.
            replacement = (low + high) / 2.0
            if replacement == 0.0:
                replacement = low + 0.75 * (high - low)
            if replacement != 0.0:
                mat.data[mat.data == 0.0] = replacement
        block = cls(mat)
        return block.examine_representation()

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def is_sparse(self) -> bool:
        """True if stored in CSR representation."""
        return self._sparse is not None

    @property
    def shape(self) -> tuple[int, int]:
        """(rows, cols)."""
        store = self._sparse if self._sparse is not None else self._dense
        return store.shape

    @property
    def rows(self) -> int:
        return self.shape[0]

    @property
    def cols(self) -> int:
        return self.shape[1]

    @property
    def nnz(self) -> int:
        """Number of non-zero values (exact, cached).

        Blocks are value-immutable by convention (kernels always build
        fresh blocks), so the count is computed once; representation
        switches preserve it.
        """
        if self._nnz is None:
            if self._sparse is not None:
                # Explicit zeros may appear after arithmetic; count true nnz.
                self._nnz = int(np.count_nonzero(self._sparse.data))
            else:
                self._nnz = int(np.count_nonzero(self._dense))
        return self._nnz

    @property
    def sparsity(self) -> float:
        """Density nnz / cells in [0, 1]."""
        cells = self.rows * self.cols
        if cells == 0:
            return 0.0
        return self.nnz / cells

    @property
    def size_bytes(self) -> float:
        """In-memory size estimate in bytes.

        CSR stores 8B values and 4B column indices per stored entry,
        plus a ``rows + 1``-entry (4B) indptr array.
        """
        if self._sparse is not None:
            return self._sparse.nnz * 12.0 + (self.rows + 1) * 4.0
        return self.rows * self.cols * 8.0

    # ------------------------------------------------------------------
    # Representation management
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """The contents as a dense 2-D numpy array (may copy)."""
        if self._sparse is not None:
            return np.asarray(self._sparse.todense())
        return self._dense

    def to_csr(self) -> sp.csr_matrix:
        """The contents as a CSR matrix (may copy)."""
        if self._sparse is not None:
            return self._sparse
        return sp.csr_matrix(self._dense)

    def examine_representation(self, threshold: float = SPARSE_THRESHOLD) -> "MatrixBlock":
        """Switch to the representation :func:`recommend_format` suggests.

        Returns ``self`` (mutated) for chaining, like SystemML's
        ``examSparsity``.  Values are unchanged, so the cached nnz
        survives the representation switch.
        """
        target = recommend_format(self.rows, self.cols, self.nnz, threshold)
        if self.is_sparse and target == "dense":
            self._dense = np.asarray(self._sparse.todense())
            self._sparse = None
        elif not self.is_sparse and target == "sparse":
            self._sparse = sp.csr_matrix(self._dense)
            self._dense = None
        elif self.is_sparse:
            self._sparse.eliminate_zeros()
        return self

    # ------------------------------------------------------------------
    # Value access
    # ------------------------------------------------------------------
    def get(self, i: int, j: int) -> float:
        """Single-cell read (slow path; used by tests and side inputs)."""
        if self._sparse is not None:
            return float(self._sparse[i, j])
        return float(self._dense[i, j])

    def row(self, i: int) -> np.ndarray:
        """Row ``i`` as a dense 1-D array."""
        if self._sparse is not None:
            return np.asarray(self._sparse.getrow(i).todense()).ravel()
        return self._dense[i]

    def is_vector(self) -> bool:
        """True for n x 1 or 1 x n shapes."""
        return self.rows == 1 or self.cols == 1

    def as_scalar(self) -> float:
        """The single value of a 1 x 1 block."""
        if self.shape != (1, 1):
            raise ShapeError(f"not a 1x1 matrix: {self.shape}")
        return self.get(0, 0)

    # ------------------------------------------------------------------
    # Comparison helpers (tests)
    # ------------------------------------------------------------------
    def allclose(self, other: ArrayLike, rtol: float = 1e-9, atol: float = 1e-9) -> bool:
        """Numeric comparison against another matrix-like object."""
        other_arr = MatrixBlock(other).to_dense() if not isinstance(other, MatrixBlock) else other.to_dense()
        return bool(
            self.shape == other_arr.shape
            and np.allclose(self.to_dense(), other_arr, rtol=rtol, atol=atol)
        )

    def __repr__(self) -> str:
        fmt = "sparse" if self.is_sparse else "dense"
        return f"MatrixBlock({self.rows}x{self.cols}, {fmt}, nnz={self.nnz})"
