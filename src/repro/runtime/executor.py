"""Runtime executor: schedules lowered ``Program`` instructions.

Two scheduling modes over the same instruction semantics:

* **serial** — a flat loop over the (topologically ordered)
  instruction list,
* **parallel** — a dependency-readiness scheduler over a thread pool:
  an instruction is submitted once all its producers completed, so
  independent DAG branches (e.g. the per-root chains of a multi-root
  ``eval_all``) run concurrently.  NumPy kernels release the GIL, so
  this overlaps real compute on multicore hosts.

Both modes maintain per-slot reference counts and eagerly free
intermediates once their last consumer ran (roots and constants are
pinned), cutting peak memory for long programs.  Scheduling counters
(tasks launched, peak concurrency, early frees) land in
:class:`~repro.runtime.stats.RuntimeStats`.

The simulated Spark backend mutates shared cost-model state, so
programs carrying a cluster config always run serially; distributed
instructions dispatch per-instruction via
``SparkExecutor.execute_instruction``.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor

from repro.config import CodegenConfig
from repro.errors import RuntimeExecError
from repro.hops.types import ExecType
from repro.runtime.matrix import MatrixBlock
from repro.runtime.stats import RuntimeStats


def _record_output(stats: RuntimeStats, result) -> None:
    stats.n_intermediates += 1
    if isinstance(result, MatrixBlock):
        stats.bytes_written += result.size_bytes


def execute_instruction(instr, inputs: list, config: CodegenConfig,
                        stats: RuntimeStats, spark=None):
    """Execute one lowered instruction on runtime values."""
    from repro.runtime.distributed import _basic_kernel
    from repro.runtime.skeletons import execute_operator

    hop = instr.hop
    if instr.opcode == "fused":
        result = instr.fused_match.compute(inputs)
        stats.record_spoof("Fused")
        _record_output(stats, result)
        return result
    if instr.opcode == "spoof_out":
        return float(inputs[0].get(hop.index, 0))
    if instr.opcode == "spoof":
        if spark is not None and hop.exec_type is ExecType.SPARK:
            result = spark.execute_instruction(instr, inputs)
        else:
            result = execute_operator(hop.operator, inputs, config, stats)
        _record_output(stats, result)
        return result
    if spark is not None and hop.exec_type is ExecType.SPARK:
        result = spark.execute_instruction(instr, inputs)
    else:
        result = _basic_kernel(hop, inputs)
    _record_output(stats, result)
    return result


class ProgramExecutor:
    """Executes programs serially or over a shared thread pool."""

    def __init__(self, config: CodegenConfig, stats: RuntimeStats,
                 spark=None):
        self.config = config
        self.stats = stats
        self.spark = spark
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def n_threads(self) -> int:
        if self.config.executor_threads > 0:
            return self.config.executor_threads
        return min(8, os.cpu_count() or 1)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.n_threads,
                thread_name_prefix="repro-exec",
            )
        return self._pool

    # ------------------------------------------------------------------
    def run(self, program) -> list:
        """Execute a program; returns the root slot values."""
        values: list = [None] * program.n_slots
        for slot, value in program.constants:
            values[slot] = value
        if self._should_parallelize(program):
            self._run_parallel(program, values)
        else:
            self._run_serial(program, values)
        return [values[slot] for slot in program.root_slots]

    def _should_parallelize(self, program) -> bool:
        if self.config.executor_mode != "parallel":
            return False
        if self.spark is not None:
            # The simulated distributed backend mutates shared cache /
            # cost state; keep its accounting deterministic.
            return False
        if self.n_threads < 2:
            return False
        heavy = sum(
            1 for instr in program.instructions
            if instr.weight >= self.config.parallel_min_cells
        )
        if heavy < 2:
            return False
        # A purely sequential chain of heavy ops gains nothing from the
        # pool and pays per-instruction dispatch overhead.
        return program.max_width() >= 2

    # ------------------------------------------------------------------
    def _free_dead_inputs(self, instr, values, counts, pinned) -> int:
        """Decrement input refcounts; free slots with no consumers left."""
        freed = 0
        for slot in instr.input_slots:
            counts[slot] -= 1
            if counts[slot] == 0 and slot not in pinned:
                values[slot] = None
                freed += 1
        return freed

    def _run_serial(self, program, values: list) -> None:
        stats = self.stats
        counts = list(program.consumer_counts)
        pinned = program.pinned
        for instr in program.instructions:
            inputs = [values[slot] for slot in instr.input_slots]
            values[instr.output_slot] = execute_instruction(
                instr, inputs, self.config, stats, self.spark
            )
            stats.n_freed_early += self._free_dead_inputs(
                instr, values, counts, pinned
            )
        stats.n_instructions_executed += program.n_instructions
        stats.n_serial_runs += 1
        if program.n_instructions:
            stats.executor_max_concurrency = max(
                stats.executor_max_concurrency, 1
            )

    # ------------------------------------------------------------------
    def _run_parallel(self, program, values: list) -> None:
        pool = self._ensure_pool()
        instructions = program.instructions
        counts = list(program.consumer_counts)
        pinned = program.pinned

        lock = self._lock
        done = threading.Event()
        state = {
            "pending": {
                i.index: len(i.dep_indices) for i in instructions
            },
            "remaining": len(instructions),
            "running": 0,
            "max_running": 0,
            "launched": 0,
            "freed": 0,
            "error": None,
        }

        def worker(instr):
            # Per-task stats keep kernel-level recording race-free; they
            # merge into the engine stats under the scheduler lock.
            local_stats = RuntimeStats()
            with lock:
                state["running"] += 1
                state["max_running"] = max(
                    state["max_running"], state["running"]
                )
            try:
                inputs = [values[slot] for slot in instr.input_slots]
                result = execute_instruction(
                    instr, inputs, self.config, local_stats, self.spark
                )
            except BaseException as exc:  # propagate to the caller
                with lock:
                    if state["error"] is None:
                        state["error"] = exc
                    state["remaining"] -= 1
                    state["running"] -= 1
                    if state["remaining"] == 0 or state["error"] is not None:
                        done.set()
                return
            ready = []
            with lock:
                values[instr.output_slot] = result
                state["freed"] += self._free_dead_inputs(
                    instr, values, counts, pinned
                )
                self.stats.merge(local_stats)
                for dep_index in instr.dependent_indices:
                    state["pending"][dep_index] -= 1
                    if state["pending"][dep_index] == 0:
                        ready.append(instructions[dep_index])
                state["remaining"] -= 1
                state["running"] -= 1
                if state["error"] is None:
                    for nxt in ready:
                        _submit(nxt)
                if state["remaining"] == 0:
                    done.set()

        def _submit(instr) -> None:
            # Caller holds the lock; `running` is tracked by the worker
            # itself so peak concurrency reflects tasks actually on a
            # thread, not queued submissions.
            state["launched"] += 1
            pool.submit(worker, instr)

        initial = [i for i in instructions if not i.dep_indices]
        if not instructions:
            return
        with lock:
            for instr in initial:
                _submit(instr)
        done.wait()
        # Drain: on error some workers may still be running; they only
        # touch `values` under the lock, and we re-raise afterwards.
        if state["error"] is not None:
            raise state["error"]
        stats = self.stats
        stats.n_instructions_executed += len(instructions)
        stats.n_parallel_tasks += state["launched"]
        stats.executor_max_concurrency = max(
            stats.executor_max_concurrency, state["max_running"]
        )
        stats.n_freed_early += state["freed"]
        stats.n_parallel_runs += 1


def run_program(program, config: CodegenConfig,
                stats: RuntimeStats | None = None, spark=None) -> list:
    """One-shot convenience: execute ``program`` and return root values."""
    executor = ProgramExecutor(config, stats or RuntimeStats(), spark)
    try:
        return executor.run(program)
    finally:
        executor.close()


__all__ = [
    "ProgramExecutor",
    "execute_instruction",
    "run_program",
    "RuntimeExecError",
]
