"""Runtime executor: schedules lowered ``Program`` instructions.

Two scheduling modes over the same instruction semantics:

* **serial** — a flat loop over the (topologically ordered)
  instruction list,
* **parallel** — a dependency-readiness scheduler over a thread pool:
  an instruction is submitted once all its producers completed, so
  independent DAG branches (e.g. the per-root chains of a multi-root
  ``eval_all``) run concurrently.  NumPy kernels release the GIL, so
  this overlaps real compute on multicore hosts.

Both modes maintain per-slot reference counts and eagerly free
intermediates once their last consumer ran (roots and constants are
pinned), cutting peak memory for long programs.  Scheduling counters
(tasks launched, peak concurrency, early frees) land in
:class:`~repro.runtime.stats.RuntimeStats`.

**Adaptive recompilation** (serial local runs): programs whose plan
choices rest on unknown sparsity estimates carry recompilation markers
(``instr.meta_checks``).  The serial loop records observed dims/nnz of
materialized intermediates into a :class:`~repro.runtime.meta
.RuntimeMetadata` sidecar, and at each marked instruction compares the
estimates against the observations; when they diverge beyond
``config.recompile_divergence_ratio`` the program remainder is
recompiled (:mod:`repro.compiler.recompile`) with the observed values
spliced in as exact leaves, and execution continues inside the fresh
program.  Marked programs always take the serial path so every segment
boundary is honored; distributed (Spark) runs never recompile.

``run`` is safe to call from several threads at once against the same
executor (the serving scheduler multiplexes in-flight programs over one
shared pool): every run works on its own symbol-table ``values`` array,
records into a run-local stats object, and merges into the shared stats
under its lock.  Per-request inputs are injected through the
``bindings`` overlay — a prepared (shape-specialized) ``Program`` stays
immutable and is shared by all concurrent requests.

The simulated Spark backend mutates shared cost-model state, so
programs carrying a cluster config always run serially and one at a
time (a dedicated lock serializes them).
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor

from repro.analysis import lockset
from repro.config import CodegenConfig
from repro.errors import RuntimeExecError
from repro.hops.types import ExecType
from repro.obs import trace as obs_trace
from repro.runtime.compressed import CompressedMatrix
from repro.runtime.matrix import MatrixBlock
from repro.runtime.meta import RuntimeMetadata
from repro.runtime.parallel import shared_budget
from repro.runtime.stats import RuntimeStats


def _record_output(stats: RuntimeStats, result) -> None:
    stats.n_intermediates += 1
    if isinstance(result, (MatrixBlock, CompressedMatrix)):
        stats.bytes_written += result.size_bytes


def _instr_label(instr) -> str:
    """Stable span/profile label for one instruction."""
    if instr.opcode == "spoof":
        return f"spoof:{instr.hop.operator.cplan.ttype.value}"
    if instr.opcode == "fused":
        name = getattr(instr.fused_match, "name", None) or "match"
        return f"fused:{name}"
    return f"{instr.opcode}:{instr.hop.opcode()}"


def _moved_bytes(inputs: list, result) -> float:
    """Bytes an instruction touched: matrix inputs plus its output."""
    total = 0.0
    for value in inputs:
        if isinstance(value, (MatrixBlock, CompressedMatrix)):
            total += value.size_bytes
    if isinstance(result, (MatrixBlock, CompressedMatrix)):
        total += result.size_bytes
    return total


def execute_instruction(instr, inputs: list, config: CodegenConfig,
                        stats: RuntimeStats, spark=None,
                        input_keys: list | None = None, output_key=None):
    """Execute one lowered instruction on runtime values.

    ``input_keys`` / ``output_key`` are lineage keys (stable per
    symbol-table slot) that the distributed backend's RDD-cache model
    uses instead of runtime-value identity.
    """
    from repro.runtime.distributed import BlockedMatrix, _basic_kernel
    from repro.runtime.skeletons import execute_operator

    hop = instr.hop
    if instr.opcode == "fused":
        has_compressed = any(
            isinstance(v, CompressedMatrix) for v in inputs
        )
        if has_compressed and not instr.fused_match.compressed_capable:
            # Hand-coded patterns without a dictionary-direct variant
            # run on blocks; the decompression is explicit and counted.
            stats.n_decompressions += 1
            inputs = [
                v.decompress() if isinstance(v, CompressedMatrix) else v
                for v in inputs
            ]
        elif has_compressed:
            stats.n_compressed_ops += 1
        result = instr.fused_match.compute(inputs)
        stats.record_spoof("Fused")
        _record_output(stats, result)
        return result
    if instr.opcode == "spoof_out":
        return float(inputs[0].get(hop.index, 0))
    if instr.opcode == "collect":
        # Exec-type boundary: materialize a distributed intermediate.
        value = inputs[0]
        if isinstance(value, BlockedMatrix):
            result = (
                spark.collect_value(value) if spark is not None
                else value.collect()
            )
        else:
            result = value  # producer already returned a local value
        _record_output(stats, result)
        return result
    if instr.opcode == "spoof":
        if spark is not None and hop.exec_type is ExecType.SPARK:
            result = spark.execute_instruction(
                instr, inputs, input_keys, output_key
            )
        else:
            result = execute_operator(hop.operator, inputs, config, stats)
        _record_output(stats, result)
        return result
    if spark is not None and hop.exec_type is ExecType.SPARK:
        result = spark.execute_instruction(
            instr, inputs, input_keys, output_key
        )
    else:
        result = _basic_kernel(hop, inputs, stats)
    _record_output(stats, result)
    return result


class ProgramExecutor:
    """Executes programs serially or over a shared thread pool."""

    def __init__(self, config: CodegenConfig, stats: RuntimeStats,
                 spark=None, recompiler=None):
        self.config = config
        self.stats = stats
        self.spark = spark
        # Adaptive recompilation hook (compiler/recompile.Recompiler);
        # None for hand-built programs executed without an engine.
        self.recompiler = recompiler
        self._pool: ThreadPoolExecutor | None = None
        # Tracked locks: the lockset race detector verifies the epoch
        # counter and the Spark backend's shared state against them.
        self._lock = lockset.make_lock("ProgramExecutor._lock")
        # Serializes runs that dispatch to the (stateful) simulated
        # Spark backend; purely local runs may overlap freely.
        self._spark_run_lock = lockset.make_lock(
            "ProgramExecutor._spark_run_lock"
        )
        # Monotonic program counter: makes intermediate lineage keys
        # unique across the programs one engine executes.
        self._epoch = 0

    # ------------------------------------------------------------------
    @property
    def n_threads(self) -> int:
        if self.config.executor_threads > 0:
            return self.config.executor_threads
        return min(8, os.cpu_count() or 1)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.n_threads,
                    thread_name_prefix="repro-exec",
                )
            return self._pool

    # ------------------------------------------------------------------
    def run(self, program, bindings: dict | None = None) -> list:
        """Execute a program; returns the root slot values.

        ``bindings`` maps symbol-table slots to runtime values that
        override the program's preloaded constants — how a prepared
        program binds per-request inputs into an isolated symbol-table
        epoch without mutating the shared ``Program``.
        """
        values: list = [None] * program.n_slots
        for slot, value in program.constants:
            values[slot] = value
        if bindings:
            for slot, value in bindings.items():
                values[slot] = value
        with self._lock:
            lockset.note_access("ProgramExecutor", self, "epoch")
            self._epoch += 1
            epoch = self._epoch

        tracer = self.stats.tracer
        started = time.perf_counter()
        with tracer.span("request", cat="request",
                         n_instructions=program.n_instructions):
            if self.spark is not None:
                # The simulated distributed backend mutates shared cache
                # / cost state: serialize whole runs and record directly
                # into the shared stats (held for the whole run).
                with self._spark_run_lock, self.stats.lock:
                    # Previous programs' intermediate lineages (and
                    # inputs whose guard died) can never be probed again
                    # — release their share of the modeled memory.
                    self.spark.prune_cache(epoch)
                    self._run_serial(program, values, self.stats, epoch)
            elif self._should_parallelize(program):
                # Draw worker tokens from the process-wide budget: when
                # the serving scheduler or other in-flight runs already
                # claim the machine, this run degrades (fewer in-flight
                # instructions, or fully serial) instead of
                # oversubscribing.
                budget = shared_budget()
                granted = budget.acquire(
                    self.n_threads, limit=self.config.thread_budget or None
                )
                run_stats = RuntimeStats()
                run_stats.tracer = tracer
                try:
                    if granted >= 2:
                        self._run_parallel(program, values, run_stats,
                                           granted)
                    else:
                        run_stats.n_budget_degraded_runs += 1
                        self._run_serial(program, values, run_stats, epoch)
                finally:
                    budget.release(granted)
                self.stats.merge(run_stats)
            else:
                run_stats = RuntimeStats()
                run_stats.tracer = tracer
                self._run_serial(program, values, run_stats, epoch)
                self.stats.merge(run_stats)
        self.stats.metrics.histogram("executor_run_seconds").observe(
            time.perf_counter() - started
        )
        return [self._as_root_value(values[slot])
                for slot in program.root_slots]

    def _as_root_value(self, value):
        """Safety net: lowering inserts ``collect`` boundaries at roots,
        but a hand-built program may still leave a blocked root."""
        from repro.runtime.distributed import BlockedMatrix

        if isinstance(value, BlockedMatrix):
            if self.spark is not None:
                return self.spark.collect_value(value)
            return value.collect()
        return value

    def _slot_keys(self, program, epoch: int, values: list) -> list:
        """Lineage keys per symbol-table slot.

        Instruction outputs key by (epoch, slot) — unique for the
        lifetime of the engine, so a freed-and-reallocated block can
        never alias a cache entry.  Program inputs key by data identity
        (guarded by a weakref inside the cache) so iterative workloads
        re-binding the same input block keep hitting the RDD cache
        across programs.  Bound (per-request) input overlays take part
        through the same identity keys via the ``values`` array.
        """
        keys = [("v", epoch, slot) for slot in range(program.n_slots)]
        for slot, _ in program.constants:
            if isinstance(values[slot], MatrixBlock):
                keys[slot] = ("data", id(values[slot]))
        return keys

    def _adaptive_for(self, program) -> bool:
        """Does adaptive recompilation apply to this program?"""
        return (
            self.recompiler is not None
            and self.spark is None
            and self.config.adaptive_recompile
            and program.has_recompile_markers
        )

    def _should_parallelize(self, program) -> bool:
        if self._adaptive_for(program):
            # Marked programs run serially so every recompilation
            # segment boundary is honored in instruction order.
            return False
        if self.config.executor_mode != "parallel":
            return False
        if self.n_threads < 2:
            return False
        heavy = sum(
            1 for instr in program.instructions
            if instr.weight >= self.config.parallel_min_cells
        )
        if heavy < 2:
            return False
        # A purely sequential chain of heavy ops gains nothing from the
        # pool and pays per-instruction dispatch overhead.
        return program.max_width() >= 2

    # ------------------------------------------------------------------
    def _free_dead_inputs(self, instr, values, counts, pinned) -> int:
        """Decrement input refcounts; free slots with no consumers left."""
        freed = 0
        for slot in instr.input_slots:
            counts[slot] -= 1
            if counts[slot] == 0 and slot not in pinned:
                values[slot] = None
                freed += 1
        return freed

    def _run_serial(self, program, values: list, stats: RuntimeStats,
                    epoch: int, recompiles_done: int = 0,
                    continuation: bool = False) -> None:
        counts = list(program.consumer_counts)
        pinned = program.pinned
        slot_keys = (
            self._slot_keys(program, epoch, values)
            if self.spark is not None else None
        )
        adaptive = self._adaptive_for(program)
        meta = RuntimeMetadata() if adaptive else None
        tracer = stats.tracer
        # Hoisted level check: at trace_level "off"/"phases" the loop
        # below pays one branch per instruction, nothing else.
        trace_instr = tracer.enabled(obs_trace.INSTRUCTIONS)
        executed = 0
        for instr in program.instructions:
            if (
                adaptive
                and instr.meta_checks
                and recompiles_done < self.config.max_recompiles_per_run
                and self._diverged(instr, values, meta, stats)
            ):
                with tracer.span("recompile-splice", cat="recompile",
                                 at_instruction=instr.index,
                                 op=_instr_label(instr)):
                    self._recompile_and_finish(
                        program, instr.index, values, stats, epoch,
                        recompiles_done
                    )
                break  # the remainder ran inside the recompiled program
            inputs = [values[slot] for slot in instr.input_slots]
            input_keys = output_key = None
            if slot_keys is not None:
                input_keys = [slot_keys[slot] for slot in instr.input_slots]
                output_key = slot_keys[instr.output_slot]
            if trace_instr:
                with tracer.span(_instr_label(instr), cat="instruction",
                                 level=obs_trace.INSTRUCTIONS,
                                 index=instr.index) as span:
                    result = execute_instruction(
                        instr, inputs, self.config, stats, self.spark,
                        input_keys, output_key
                    )
                    span.annotate(bytes=_moved_bytes(inputs, result))
            else:
                result = execute_instruction(
                    instr, inputs, self.config, stats, self.spark,
                    input_keys, output_key
                )
            values[instr.output_slot] = result
            executed += 1
            if meta is not None:
                meta.observe(
                    instr.output_slot, result,
                    with_nnz=instr.output_slot in program.observe_slots,
                )
            stats.n_freed_early += self._free_dead_inputs(
                instr, values, counts, pinned
            )
        stats.n_instructions_executed += executed
        if not continuation:
            # Recompiled remainders continue the same logical run; only
            # the outermost invocation counts toward run totals.
            stats.n_serial_runs += 1
        if program.n_instructions:
            stats.executor_max_concurrency = max(
                stats.executor_max_concurrency, 1
            )

    def _diverged(self, instr, values: list, meta: RuntimeMetadata,
                  stats: RuntimeStats) -> bool:
        """Compare estimates against observed nnz at a segment boundary.

        Every comparison lands in the divergence histogram; the check
        triggers when the worst ratio crosses the configured threshold.
        ``+1`` smoothing keeps empty observations finite.
        """
        tracer = stats.tracer
        worst = 0.0
        for slot, est_nnz, _cells in instr.meta_checks:
            observed = meta.observed_nnz(slot, values)
            if observed < 0:
                continue
            stats.n_meta_checks += 1
            ratio = max(
                (est_nnz + 1.0) / (observed + 1.0),
                (observed + 1.0) / (est_nnz + 1.0),
            )
            stats.record_divergence(ratio)
            if ratio >= self.config.recompile_divergence_ratio:
                stats.n_estimate_misses += 1
            if tracer.level >= obs_trace.PHASES:
                tracer.instant(
                    "meta-check", cat="recompile", op=_instr_label(instr),
                    slot=slot, nnz_est=est_nnz, nnz_obs=observed,
                    ratio=ratio,
                )
            worst = max(worst, ratio)
        return worst >= self.config.recompile_divergence_ratio

    def _recompile_and_finish(self, program, start_index: int, values: list,
                              stats: RuntimeStats, epoch: int,
                              recompiles_done: int) -> None:
        """Recompile the remainder with observed metadata and run it.

        The fresh program's root values are copied back into the
        original symbol table, so callers keep reading the original
        ``root_slots``.  A recompiled remainder without markers of its
        own regains the parallel scheduler (the serial constraint only
        exists to honor segment boundaries).
        """
        new_program, old_root_slots = self.recompiler.recompile_remainder(
            program, start_index, values, stats
        )
        stats.n_recompiles += 1
        sub_values: list = [None] * new_program.n_slots
        for slot, value in new_program.constants:
            sub_values[slot] = value
        if self._should_parallelize(new_program):
            budget = shared_budget()
            granted = budget.acquire(
                self.n_threads, limit=self.config.thread_budget or None
            )
            try:
                if granted >= 2:
                    self._run_parallel(
                        new_program, sub_values, stats, granted,
                        continuation=True,
                    )
                else:
                    stats.n_budget_degraded_runs += 1
                    self._run_serial(
                        new_program, sub_values, stats, epoch,
                        recompiles_done + 1, continuation=True,
                    )
            finally:
                budget.release(granted)
        else:
            self._run_serial(
                new_program, sub_values, stats, epoch, recompiles_done + 1,
                continuation=True,
            )
        for position, old_slot in enumerate(old_root_slots):
            values[old_slot] = sub_values[new_program.root_slots[position]]

    # ------------------------------------------------------------------
    def _run_parallel(self, program, values: list,
                      run_stats: RuntimeStats,
                      max_concurrency: int | None = None,
                      continuation: bool = False) -> None:
        pool = self._ensure_pool()
        instructions = program.instructions
        counts = list(program.consumer_counts)
        pinned = program.pinned
        tracer = run_stats.tracer
        trace_instr = tracer.enabled(obs_trace.INSTRUCTIONS)
        # Bound in-flight instructions to the budget tokens granted for
        # this run; ready instructions beyond the cap wait in a queue.
        cap = max_concurrency if max_concurrency else self.n_threads

        # Per-run lock: concurrent runs sharing this executor must not
        # serialize each other's dependency bookkeeping.
        lock = threading.Lock()
        done = threading.Event()
        state = {
            "pending": {
                i.index: len(i.dep_indices) for i in instructions
            },
            "remaining": len(instructions),
            "running": 0,
            "max_running": 0,
            "launched": 0,
            "inflight": 0,
            "queued": deque(),
            "freed": 0,
            "error": None,
        }

        def worker(instr):
            # Per-task stats keep kernel-level recording race-free; they
            # merge into the run stats under the scheduler lock.
            local_stats = RuntimeStats()
            local_stats.tracer = tracer
            with lock:
                state["running"] += 1
                state["max_running"] = max(
                    state["max_running"], state["running"]
                )
            try:
                inputs = [values[slot] for slot in instr.input_slots]
                if trace_instr:
                    with tracer.span(_instr_label(instr),
                                     cat="instruction",
                                     level=obs_trace.INSTRUCTIONS,
                                     index=instr.index) as span:
                        result = execute_instruction(
                            instr, inputs, self.config, local_stats,
                            self.spark
                        )
                        span.annotate(bytes=_moved_bytes(inputs, result))
                else:
                    result = execute_instruction(
                        instr, inputs, self.config, local_stats, self.spark
                    )
            except BaseException as exc:  # propagate to the caller
                with lock:
                    if state["error"] is None:
                        state["error"] = exc
                    state["remaining"] -= 1
                    state["running"] -= 1
                    state["inflight"] -= 1
                    if state["remaining"] == 0 or state["error"] is not None:
                        done.set()
                return
            ready = []
            with lock:
                values[instr.output_slot] = result
                state["freed"] += self._free_dead_inputs(
                    instr, values, counts, pinned
                )
                run_stats.merge(local_stats)
                for dep_index in instr.dependent_indices:
                    state["pending"][dep_index] -= 1
                    if state["pending"][dep_index] == 0:
                        ready.append(instructions[dep_index])
                state["remaining"] -= 1
                state["running"] -= 1
                state["inflight"] -= 1
                if state["error"] is None:
                    for nxt in ready:
                        _submit(nxt)
                    while state["queued"] and state["inflight"] < cap:
                        _submit(state["queued"].popleft())
                if state["remaining"] == 0:
                    done.set()

        def _submit(instr) -> None:
            # Caller holds the lock; `running` is tracked by the worker
            # itself so peak concurrency reflects tasks actually on a
            # thread, not queued submissions.  In-flight submissions are
            # capped at the budget tokens granted to this run; excess
            # ready instructions wait in the queue.
            if state["inflight"] >= cap:
                state["queued"].append(instr)
                return
            state["inflight"] += 1
            state["launched"] += 1
            pool.submit(worker, instr)

        initial = [i for i in instructions if not i.dep_indices]
        if not instructions:
            return
        with lock:
            for instr in initial:
                _submit(instr)
        done.wait()
        # Drain: on error some workers may still be running; they only
        # touch `values` under the lock, and we re-raise afterwards.
        if state["error"] is not None:
            raise state["error"]
        run_stats.n_instructions_executed += len(instructions)
        run_stats.n_parallel_tasks += state["launched"]
        run_stats.executor_max_concurrency = max(
            run_stats.executor_max_concurrency, state["max_running"]
        )
        run_stats.n_freed_early += state["freed"]
        if not continuation:
            run_stats.n_parallel_runs += 1


def run_program(program, config: CodegenConfig,
                stats: RuntimeStats | None = None, spark=None) -> list:
    """One-shot convenience: execute ``program`` and return root values."""
    executor = ProgramExecutor(config, stats or RuntimeStats(), spark)
    try:
        return executor.run(program)
    finally:
        executor.close()


__all__ = [
    "ProgramExecutor",
    "execute_instruction",
    "run_program",
    "RuntimeExecError",
]
