"""Runtime statistics counters.

Execution engines record the bytes they materialize, the simulated
network traffic of the distributed backend, and compilation overhead.
The counters feed Table 3, Figure 11, and Table 6 of the reproduction,
plus the serving subsystem's per-request telemetry.

Thread-safety convention: one ``RuntimeStats`` instance may be shared
by concurrent executor runs and a serving scheduler.  Every *runtime*
mutation of a shared instance goes through :meth:`merge` (or explicit
increments) while holding :attr:`lock`; compile-time counters are
protected by the engine's compilation lock, which serializes compiles.
:meth:`merge` skips zero-valued fields, so concurrent writers touching
disjoint counter families never race through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.analysis import lockset
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER


@dataclass
class RuntimeStats:
    """Mutable statistics attached to one engine instance."""

    # Materialization traffic (local interpreter).
    bytes_written: float = 0.0
    bytes_read: float = 0.0
    n_intermediates: int = 0

    # Simulated distributed backend.
    sim_broadcast_bytes: float = 0.0
    sim_shuffle_bytes: float = 0.0
    sim_collect_bytes: float = 0.0
    sim_seconds: float = 0.0
    n_distributed_ops: int = 0
    # Blocked dataflow: how distributed intermediates moved between
    # instructions (Table 6 mechanism observability).
    n_partitioned: int = 0  # driver blocks partitioned onto the cluster
    n_blocked_passthrough: int = 0  # ops consuming an already-blocked main
    n_collects: int = 0  # blocked values materialized at the driver
    n_tree_reduces: int = 0  # aggregations combined over partition partials
    # Lineage-keyed RDD-cache model.
    n_rdd_cache_hits: int = 0
    n_rdd_cache_evictions: int = 0  # broadcast-pressure evictions

    # Multiprocess distributed backend (repro.runtime.mpexec).
    n_mp_tasks: int = 0  # partition tasks executed by worker processes
    n_mp_broadcasts: int = 0  # per-worker side-input broadcast payloads sent
    n_mp_block_ships: int = 0  # partition blocks shipped driver -> worker
    n_mp_locality_hits: int = 0  # tasks served from a worker's block cache
    n_task_retries: int = 0  # tasks re-dispatched after worker loss/timeout
    n_lineage_recomputes: int = 0  # lost lineage-keyed blocks recomputed
    n_worker_respawns: int = 0  # worker processes replaced after a failure
    mp_shm_bytes: float = 0.0  # dense bytes moved via shared memory
    mp_pickle_bytes: float = 0.0  # bytes moved via the pickle fallback
    mp_max_workers: int = 0  # gauge: peak worker processes granted

    # Compiler / codegen overhead (Table 3, Fig 11).
    n_dags_optimized: int = 0
    n_cplans_constructed: int = 0
    n_classes_compiled: int = 0
    codegen_seconds: float = 0.0
    class_compile_seconds: float = 0.0
    plan_cache_hits: int = 0
    plan_cache_lookups: int = 0
    plan_cache_size: int = 0  # gauge: entries currently cached (max-merged)

    # Plan enumeration (Fig 12).
    n_plans_evaluated: int = 0
    n_plans_skipped: float = 0.0
    n_partitions: int = 0

    # Compilation pipeline (staged compiler).
    n_programs_compiled: int = 0
    n_exec_type_selections: int = 0
    n_instructions_lowered: int = 0
    pipeline_pass_seconds: dict = field(default_factory=dict)

    # Adaptive recompilation (runtime metadata feedback loop).
    n_marked_instructions: int = 0  # lowered instructions carrying meta checks
    n_meta_checks: int = 0  # estimate-vs-observed comparisons performed
    n_estimate_misses: int = 0  # checks whose divergence crossed the ratio
    n_recompiles: int = 0  # program remainders recompiled mid-run
    n_format_conversions: int = 0  # blocks re-formatted by observed sparsity
    # Histogram of observed estimate divergence (ratio buckets by power
    # of two: '1-2', '2-4', ..., '>=1024').
    recompile_divergence_hist: dict = field(default_factory=dict)

    # Runtime executor scheduling.
    n_instructions_executed: int = 0
    n_parallel_tasks: int = 0  # instructions dispatched to the thread pool
    executor_max_concurrency: int = 0  # peak simultaneously running tasks
    n_freed_early: int = 0  # intermediates freed before end of program
    n_serial_runs: int = 0
    n_parallel_runs: int = 0
    n_budget_degraded_runs: int = 0  # parallel-eligible runs forced serial

    # Intra-operator parallel fused execution.
    n_intra_op_parallel: int = 0  # operators executed partition-wise
    n_intra_op_partitions: int = 0  # total partitions across those operators
    intra_op_combine_levels: int = 0  # total tree-reduce levels combined
    intra_op_max_threads: int = 0  # gauge: peak workers granted per operator

    # Tiered vectorized-kernel backend for generated fused operators.
    n_kernel_compiles: int = 0  # vectorized kernels emitted and compiled
    n_kernel_promotions: int = 0  # hot operators promoted off the interpreted tier
    n_interpreted_runs: int = 0  # operator executions on the interpreted tier
    n_compiled_runs: int = 0  # operator executions on a compiled kernel
    n_numba_fallbacks: int = 0  # numba requested but unavailable/unjittable
    n_kernel_failures: int = 0  # kernel compiles that failed (operator pinned interpreted)
    n_source_cache_hits: int = 0  # exec() compiles skipped via the source-hash cache

    # Compressed (CLA) execution format.
    n_compressed_ops: int = 0  # ops executed dictionary-direct
    n_decompressions: int = 0  # compressed inputs expanded to blocks
    n_compressions: int = 0  # blocks converted to compressed form

    # Static analysis (repro.analysis): verifier, lint, lockset.
    n_verified_programs: int = 0  # compiles that passed pipeline verification
    n_verifier_findings: int = 0  # IR-verifier findings raised
    n_lint_rejects: int = 0  # generated sources rejected by kernel lint
    n_lockset_reports: int = 0  # empty-lockset race reports emitted

    # Serving subsystem (prepared programs + session scheduler).
    n_requests_served: int = 0
    n_requests_batched: int = 0  # requests that ran inside a micro-batch
    n_batches_executed: int = 0
    n_batch_fallbacks: int = 0  # batches that fell back to per-request runs
    n_specialization_hits: int = 0  # warm plan reuse: compile skipped
    n_specialization_misses: int = 0  # cold bind: full compile pipeline ran
    n_shape_recompiles: int = 0  # dynamic recompiles after the first bind
    n_admission_waits: int = 0  # requests delayed by the memory budget
    serve_queue_seconds: float = 0.0  # total time requests sat queued
    serve_exec_seconds: float = 0.0  # total bind+execute time
    serve_latency_seconds: float = 0.0  # total submit-to-result latency

    # Fused-operator executions by template name.
    spoof_executions: dict = field(default_factory=dict)

    #: Gauge fields combine via max (not addition) when merging.
    _GAUGES = ("executor_max_concurrency", "plan_cache_size",
               "intra_op_max_threads", "mp_max_workers")

    def __post_init__(self):
        # Reentrant: the distributed backend mutates shared stats while
        # an executor run already holds the lock for the whole program.
        # Tracked so the lockset detector sees it in held-lock sets.
        self.lock = lockset.make_rlock("RuntimeStats.lock")
        # The engine's span tracer rides on stats because stats already
        # reach every instrumentation point (executor, skeletons, plan
        # cache, scheduler).  Engines replace the no-op default when
        # trace_level != "off"; run-local stats copy the shared tracer.
        self.tracer = NULL_TRACER
        # Metrics registry, created lazily: run-local stats objects are
        # constructed per executor task, and most never touch metrics.
        self._metrics: MetricsRegistry | None = None

    @property
    def metrics(self) -> MetricsRegistry:
        """The labeled counter/gauge/histogram registry (lazy)."""
        if self._metrics is None:
            with self.lock:
                if self._metrics is None:
                    self._metrics = MetricsRegistry()
        return self._metrics

    def scheduling_summary(self) -> dict:
        """Executor scheduling counters (bench harness JSON output)."""
        return {
            "n_instructions_executed": self.n_instructions_executed,
            "n_parallel_tasks": self.n_parallel_tasks,
            "executor_max_concurrency": self.executor_max_concurrency,
            "n_freed_early": self.n_freed_early,
            "n_serial_runs": self.n_serial_runs,
            "n_parallel_runs": self.n_parallel_runs,
        }

    def parallel_summary(self) -> dict:
        """Intra-operator parallelism counters (bench/doc observability).

        ``mean_partitions`` is per parallel-executed operator;
        ``intra_op_max_threads`` reports the peak worker grant the
        shared thread budget allowed (1 = partitions executed on the
        calling thread because outer layers held the budget).
        """
        ops = max(self.n_intra_op_parallel, 1)
        return {
            "n_intra_op_parallel": self.n_intra_op_parallel,
            "n_intra_op_partitions": self.n_intra_op_partitions,
            "mean_partitions": self.n_intra_op_partitions / ops,
            "intra_op_combine_levels": self.intra_op_combine_levels,
            "intra_op_max_threads": self.intra_op_max_threads,
            "n_budget_degraded_runs": self.n_budget_degraded_runs,
            "n_parallel_runs": self.n_parallel_runs,
            "n_serial_runs": self.n_serial_runs,
            "executor_max_concurrency": self.executor_max_concurrency,
        }

    def distributed_summary(self) -> dict:
        """Blocked-dataflow counters (Table 6 bench reporting)."""
        return {
            "n_distributed_ops": self.n_distributed_ops,
            "n_partitioned": self.n_partitioned,
            "n_blocked_passthrough": self.n_blocked_passthrough,
            "n_collects": self.n_collects,
            "n_tree_reduces": self.n_tree_reduces,
            "n_rdd_cache_hits": self.n_rdd_cache_hits,
            "n_rdd_cache_evictions": self.n_rdd_cache_evictions,
            "sim_seconds": self.sim_seconds,
            "sim_broadcast_mb": self.sim_broadcast_bytes / 1e6,
            "sim_shuffle_mb": self.sim_shuffle_bytes / 1e6,
            "sim_collect_mb": self.sim_collect_bytes / 1e6,
        }

    def distributed_backend_summary(self) -> dict:
        """Multiprocess-backend counters (transport, locality, faults).

        ``shm_fraction`` reports how much of the shipped block volume
        moved zero-copy through shared memory rather than the pickle
        fallback; the retry/recompute counters make the failure model
        (lost workers recovered via lineage recompute) observable.
        """
        shipped = self.mp_shm_bytes + self.mp_pickle_bytes
        return {
            "n_mp_tasks": self.n_mp_tasks,
            "n_mp_broadcasts": self.n_mp_broadcasts,
            "n_mp_block_ships": self.n_mp_block_ships,
            "n_mp_locality_hits": self.n_mp_locality_hits,
            "n_task_retries": self.n_task_retries,
            "n_lineage_recomputes": self.n_lineage_recomputes,
            "n_worker_respawns": self.n_worker_respawns,
            "mp_shm_mb": self.mp_shm_bytes / 1e6,
            "mp_pickle_mb": self.mp_pickle_bytes / 1e6,
            "shm_fraction": self.mp_shm_bytes / max(shipped, 1.0),
            "mp_max_workers": self.mp_max_workers,
        }

    def observe_request(self, program: str, tenant: str,
                        queue_seconds: float, exec_seconds: float,
                        latency_seconds: float) -> None:
        """Record one served request into the latency histograms.

        Labeled by (tenant, program) so ``serving_summary()`` can report
        percentiles per tenant as well as in aggregate.  The metrics
        registry takes its own lock; callers need not hold stats.lock.
        """
        labels = {"tenant": tenant, "program": program}
        metrics = self.metrics
        metrics.histogram("serve_latency_seconds").observe(
            latency_seconds, **labels
        )
        metrics.histogram("serve_queue_seconds").observe(
            queue_seconds, **labels
        )
        metrics.histogram("serve_exec_seconds").observe(
            exec_seconds, **labels
        )

    def serving_summary(self) -> dict:
        """Per-request serving telemetry plus plan-cache health.

        All pre-percentile keys are preserved; the p50/p95/p99 fields
        (and the per-tenant breakdown) come from the log-bucketed
        latency histograms the scheduler feeds via
        :meth:`observe_request`.
        """
        latency = self.metrics.histogram("serve_latency_seconds")
        queue = self.metrics.histogram("serve_queue_seconds")
        lat_all = latency.aggregate()
        queue_all = queue.aggregate()
        per_tenant = {
            tenant: {"n": cell.count, "latency_p50": cell.percentile(50),
                     "latency_p99": cell.percentile(99),
                     "mean_latency_seconds": cell.mean}
            for tenant, cell in latency.grouped("tenant").items()
        }
        served = max(self.n_requests_served, 1)
        return {
            "latency_p50": lat_all.percentile(50),
            "latency_p95": lat_all.percentile(95),
            "latency_p99": lat_all.percentile(99),
            "queue_p50": queue_all.percentile(50),
            "queue_p99": queue_all.percentile(99),
            "per_tenant": per_tenant,
            "n_requests_served": self.n_requests_served,
            "n_requests_batched": self.n_requests_batched,
            "n_batches_executed": self.n_batches_executed,
            "n_batch_fallbacks": self.n_batch_fallbacks,
            "n_specialization_hits": self.n_specialization_hits,
            "n_specialization_misses": self.n_specialization_misses,
            "n_shape_recompiles": self.n_shape_recompiles,
            "n_admission_waits": self.n_admission_waits,
            "serve_queue_seconds": self.serve_queue_seconds,
            "serve_exec_seconds": self.serve_exec_seconds,
            "serve_latency_seconds": self.serve_latency_seconds,
            "mean_latency_seconds": self.serve_latency_seconds / served,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_lookups - self.plan_cache_hits,
            "plan_cache_size": self.plan_cache_size,
        }

    def kernel_summary(self) -> dict:
        """Tiered-kernel counters (bench/doc observability).

        All fields are plain additive counters, so run-local instances
        merge into a shared engine's stats through :meth:`merge` under
        its lock like every other runtime counter family.
        """
        runs = self.n_interpreted_runs + self.n_compiled_runs
        return {
            "n_kernel_compiles": self.n_kernel_compiles,
            "n_kernel_promotions": self.n_kernel_promotions,
            "n_interpreted_runs": self.n_interpreted_runs,
            "n_compiled_runs": self.n_compiled_runs,
            "n_numba_fallbacks": self.n_numba_fallbacks,
            "n_kernel_failures": self.n_kernel_failures,
            "n_source_cache_hits": self.n_source_cache_hits,
            "compiled_run_fraction": self.n_compiled_runs / max(runs, 1),
        }

    def compressed_summary(self) -> dict:
        """Compressed-format counters (bench/doc observability)."""
        return {
            "n_compressed_ops": self.n_compressed_ops,
            "n_decompressions": self.n_decompressions,
            "n_compressions": self.n_compressions,
        }

    def record_divergence(self, ratio: float) -> None:
        """Bucket one observed estimate divergence (power-of-two bins)."""
        bucket = 1
        while bucket < 1024 and ratio >= 2 * bucket:
            bucket *= 2
        label = f">={bucket}" if bucket >= 1024 else f"{bucket}-{2 * bucket}"
        hist = self.recompile_divergence_hist
        hist[label] = hist.get(label, 0) + 1

    def adaptive_summary(self) -> dict:
        """Adaptive-recompilation counters (bench/doc observability)."""
        return {
            "n_marked_instructions": self.n_marked_instructions,
            "n_meta_checks": self.n_meta_checks,
            "n_estimate_misses": self.n_estimate_misses,
            "n_recompiles": self.n_recompiles,
            "n_format_conversions": self.n_format_conversions,
            "recompile_divergence_hist": dict(self.recompile_divergence_hist),
        }

    def analysis_summary(self) -> dict:
        """Static-analysis counters (verifier, lint, lockset)."""
        return {
            "n_verified_programs": self.n_verified_programs,
            "n_verifier_findings": self.n_verifier_findings,
            "n_lint_rejects": self.n_lint_rejects,
            "n_lockset_reports": self.n_lockset_reports,
        }

    def record_spoof(self, template_name: str) -> None:
        """Count one execution of a generated operator."""
        count = self.spoof_executions.get(template_name, 0)
        self.spoof_executions[template_name] = count + 1

    def reset(self) -> None:
        """Zero all counters in place (lock and tracer are kept).

        Enumerates ``dataclasses.fields`` so every declared counter —
        including ones added after this method was written — resets;
        non-field attributes (lock, tracer, metrics) are handled
        explicitly.
        """
        fresh = RuntimeStats()
        with self.lock:
            for spec in fields(self):
                setattr(self, spec.name, getattr(fresh, spec.name))
            if self._metrics is not None:
                self._metrics.clear()

    def merge(self, other: "RuntimeStats") -> None:
        """Accumulate another stats object into this one.

        Enumerates ``dataclasses.fields`` (not instance ``__dict__``),
        so a newly declared counter can never be silently dropped by a
        merge; the field audit test locks this in.  Zero-valued fields
        are skipped, so merging a run-local stats object only writes
        the counter families that run touched — concurrent writers of
        disjoint families (runtime vs compile vs serving) cannot lose
        updates through a merge.
        """
        with self.lock:
            note = lockset.active() is not None
            for spec in fields(other):
                key = spec.name
                value = getattr(other, key)
                if isinstance(value, dict):
                    if not value:
                        continue
                    mine = getattr(self, key)
                    for name, count in value.items():
                        mine[name] = mine.get(name, 0) + count
                elif not isinstance(value, (int, float)):
                    continue  # defensive: non-counter field values
                elif key in self._GAUGES:
                    # Peak/gauge values combine via max, not addition.
                    setattr(self, key, max(getattr(self, key), value))
                elif value:
                    setattr(self, key, getattr(self, key) + value)
                else:
                    continue
                if note:
                    lockset.note_access("RuntimeStats", self, key)
            if other._metrics is not None:
                self.metrics.merge(other._metrics)
