"""Real multiprocess backend for the distributed path.

The simulated :class:`~repro.runtime.distributed.SparkExecutor`
partitions and reduces in-process, so every "distributed" plan still
serializes behind one GIL.  This module supplies the alternative
selected by ``CodegenConfig.distributed_backend = "multiprocess"``: a
:class:`ProcessPoolBackend` that ships the same per-partition tasks to
a pool of *spawned* worker processes.

Design invariants (what makes the two backends bit-identical):

* Placement, partitioning (``partition_bounds``), side-input slicing
  (driver-side ``rops.rix``), and the fixed tree-reduce topology all
  stay on the driver; workers only run the per-partition kernel the
  simulated loop would have run, with ``allow_parallel=False``.
* The kernel tier is resolved on the driver (one ``resolve_kernel``
  call per partition, exactly like the simulated loop) and shipped as
  a boolean; workers rebuild generated operators from the shipped
  ``(name, source, cplan)`` and *assert* that regenerating the source
  from the cplan reproduces it byte-for-byte (the deterministic
  ``TMP_<hash10>`` naming makes this checkable), so the worker executes
  the same code the driver compiled.

Transport: dense blocks move zero-copy through
``multiprocessing.shared_memory`` (driver creates + copies once,
workers attach a read-only ndarray view, the driver unlinks after the
operator completes — on Linux existing mappings stay valid); CSR
blocks, ``CompressedMatrix`` values, and scalars take the pickle
fallback.  Side inputs are encoded once per operator and broadcast to
every participating worker; the driver's existing broadcast-pressure
accounting has already charged them before this module is reached.

Failure model: a worker that dies or produces no result for
``mp_task_timeout`` seconds is replaced (``n_worker_respawns``) and
its tasks are re-dispatched (``n_task_retries``).  Because every task
spec is retained keyed by the lineage key of the block it produces,
a lost block is recomputed from its lineage (``n_lineage_recomputes``)
instead of re-running the program; driver-held inputs are simply
re-shipped.  Worker-side *exceptions* are deterministic and are raised
to the caller without retry.

Worker counts coordinate with the process-wide ThreadBudget: each
operator acquires up to ``mp_workers`` tokens before dispatching, so
driver threads plus worker processes stay within one shared pool.
"""

from __future__ import annotations

import atexit
import itertools
import threading
import time
import weakref
from collections import OrderedDict, deque
from dataclasses import fields as dataclass_fields
from dataclasses import replace as dataclass_replace
from multiprocessing import connection as mp_connection
from multiprocessing import get_context
from multiprocessing import shared_memory as mp_shm

import numpy as np

from repro.errors import RuntimeExecError
from repro.runtime.matrix import MatrixBlock

#: Satellite guard: fork would duplicate held locks (stats RLock, plan
#: cache, thread budget) into children — spawn starts workers clean.
_SPAWN = get_context("spawn")

#: Dense blocks below this ship via pickle: segment setup dominates.
_SHM_MIN_BYTES = 1 << 14

#: In-flight tasks per worker: keeps pipes shallow (no send/send
#: deadlock) while hiding one task of dispatch latency.
_MAX_INFLIGHT = 2

#: Globally monotonic task ids so results from an aborted operator can
#: never be matched against a later one.
_TASK_IDS = itertools.count(1)


def start_method() -> str:
    """Start method used for worker processes (always ``spawn``)."""
    return _SPAWN.get_start_method()


# ----------------------------------------------------------------------
# Transport: encode on the driver, decode in the worker
# ----------------------------------------------------------------------
def _approx_bytes(value) -> float:
    size = getattr(value, "size_bytes", None)
    return float(size) if size is not None else 8.0


def encode_value(value, segments: list | None = None,
                 force_shm: bool = False):
    """Encode one runtime value for shipment to a worker.

    Dense :class:`MatrixBlock` payloads at or above ``_SHM_MIN_BYTES``
    (or with ``force_shm``) move through a shared-memory segment; the
    created segment is appended to ``segments`` so the driver can
    unlink it once the operator completes.  Everything else — CSR
    blocks, ``CompressedMatrix``, scalars — is shipped by value over
    the pipe (the pickle fallback).  Returns
    ``(descriptor, shm_bytes, pickle_bytes)``.
    """
    if isinstance(value, MatrixBlock) and not value.is_sparse:
        arr = value.to_dense()
        if force_shm or arr.nbytes >= _SHM_MIN_BYTES:
            seg = mp_shm.SharedMemory(create=True, size=max(1, arr.nbytes))
            view = np.ndarray(arr.shape, dtype=np.float64, buffer=seg.buf)
            view[:] = arr
            if segments is not None:
                segments.append(seg)
            return ("shm", seg.name, arr.shape), float(arr.nbytes), 0.0
    return ("raw", value), 0.0, _approx_bytes(value)


def _attach_shm(name: str) -> mp_shm.SharedMemory:
    """Attach to a driver-created segment without registering it with
    the resource tracker (the driver owns unlinking; a second
    registration collapses in the tracker's name set, so the paired
    driver/worker unregisters would double-remove and spam KeyErrors)."""
    try:
        return mp_shm.SharedMemory(name=name, create=False, track=False)
    except TypeError:  # Python < 3.13: no track= parameter
        from multiprocessing import resource_tracker

        orig_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return mp_shm.SharedMemory(name=name, create=False)
        finally:
            resource_tracker.register = orig_register


def decode_value(desc):
    """Decode one shipped value; returns ``(value, segment | None)``.

    Shared-memory blocks come back as a read-only zero-copy view; the
    returned segment object must stay referenced for as long as the
    value is alive (cache entries hold the pair together).
    """
    if desc[0] == "shm":
        _, name, shape = desc
        seg = _attach_shm(name)
        arr = np.ndarray(shape, dtype=np.float64, buffer=seg.buf)
        arr.setflags(write=False)
        return MatrixBlock(arr), seg
    return desc[1], None


# ----------------------------------------------------------------------
# Task specs for basic hops (mirrors distributed._basic_kernel)
# ----------------------------------------------------------------------
def hop_task_spec(hop) -> tuple:
    """Picklable kernel spec for the map-placed basic hops."""
    from repro.hops.hop import (
        AggBinaryOp,
        AggUnaryOp,
        BinaryOp,
        TernaryOp,
        UnaryOp,
    )

    if isinstance(hop, UnaryOp):
        return ("unary", hop.op)
    if isinstance(hop, BinaryOp):
        return ("binary", hop.op)
    if isinstance(hop, TernaryOp):
        return ("ternary", hop.op)
    if isinstance(hop, AggUnaryOp):
        return ("agg_unary", hop.agg_op.value, hop.direction.value)
    if isinstance(hop, AggBinaryOp):
        return ("matmult",)
    raise RuntimeExecError(f"no multiprocess spec for {hop.opcode()}")


def _apply_spec(spec: tuple, values: list, stats):
    """Run one hop kernel spec — the worker-side twin of the driver's
    per-partition ``_basic_kernel`` dispatch (same rops entry points,
    so results are bitwise identical)."""
    from repro.runtime import ops as rops

    op = spec[0]
    if op == "unary":
        return rops.unary(spec[1], values[0], stats=stats)
    if op == "binary":
        return rops.binary(spec[1], values[0], values[1], stats=stats)
    if op == "ternary":
        return rops.ternary(spec[1], values[0], values[1], values[2],
                            stats=stats)
    if op == "agg_unary":
        return rops.agg_unary(spec[1], values[0], spec[2], stats=stats)
    if op == "matmult":
        return rops.matmult(values[0], values[1], stats=stats)
    raise RuntimeExecError(f"unknown multiprocess kernel spec {spec!r}")


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
class _BlockCache:
    """Per-worker LRU block cache (locality), bounded in bytes."""

    def __init__(self, cap_bytes: float):
        self.cap = cap_bytes
        self.entries: OrderedDict = OrderedDict()  # wkey -> (value, seg, nbytes)
        self.bytes = 0.0

    def get(self, wkey):
        entry = self.entries.get(wkey)
        if entry is None:
            return None
        self.entries.move_to_end(wkey)
        return entry[0]

    def put(self, wkey, value, seg) -> list:
        """Insert; returns the keys evicted to make room."""
        if wkey in self.entries:
            self.entries.move_to_end(wkey)
            return []
        nbytes = _approx_bytes(value)
        evicted = []
        while self.entries and self.bytes + nbytes > self.cap:
            old_key, (_, old_seg, old_bytes) = self.entries.popitem(last=False)
            self.bytes -= old_bytes
            if old_seg is not None:
                try:
                    old_seg.close()
                except BufferError:
                    pass  # a live view still pins the mapping
            evicted.append(old_key)
        self.entries[wkey] = (value, seg, nbytes)
        self.bytes += nbytes
        return evicted

    def prune(self, backend_id: int, live_epoch) -> None:
        for wkey in list(self.entries):
            bid, key, _p = wkey
            if bid != backend_id or not (isinstance(key, tuple) and key):
                continue
            if key[0] == "v" and (live_epoch is None or key[1] < live_epoch):
                _, seg, nbytes = self.entries.pop(wkey)
                self.bytes -= nbytes
                if seg is not None:
                    try:
                        seg.close()
                    except BufferError:
                        pass


def _materialize_operator(operators: dict, name: str, stats):
    """Rebuild a generated operator from its shipped payload.

    Asserts the fork-safety contract: regenerating the source from the
    shipped cplan must reproduce the driver's source byte-for-byte
    (deterministic ``TMP_<hash10>`` naming), so the source-hash compile
    cache and the driver/worker execution paths can never diverge.
    """
    entry = operators[name]
    if not isinstance(entry, tuple):
        return entry
    source, cplan, inline = entry
    from repro.codegen import plan_cache, pygen

    regen_name, regen_source = pygen.generate_source(cplan, inline)
    if regen_name != name or regen_source != source:
        raise RuntimeExecError(
            f"worker regeneration of operator {name} diverged from the "
            "driver's source — generated code is not deterministic"
        )
    genexec = plan_cache.compile_operator(name, source, backend="exec",
                                          stats=stats)
    operator = pygen.GeneratedOperator(name=name, cplan=cplan,
                                       source=source, genexec=genexec)
    operators[name] = operator
    return operator


def _export_stats(stats):
    """Nonzero counter fields (plus metric cells) as plain picklables."""
    counters = {}
    for spec in dataclass_fields(stats):
        value = getattr(stats, spec.name)
        if isinstance(value, dict):
            if value:
                counters[spec.name] = dict(value)
        elif isinstance(value, (int, float)) and value:
            counters[spec.name] = value
    metrics = None
    if stats._metrics is not None:
        registry = stats._metrics
        metrics = []
        with registry._lock:
            for (kind, name), metric in registry._metrics.items():
                metrics.append((kind, name, dict(metric._cells)))
    return counters, metrics


def _run_task(task: dict, caches: dict, operators: dict,
              broadcasts: dict):
    """Execute one task; returns (result, stats, evicted, holds).

    ``holds`` are the shared-memory segments of *inline* (uncached)
    inputs — the caller closes them after the reply is sent so worker
    file descriptors don't accumulate across tasks.
    """
    from repro.runtime.compressed import CompressedMatrix
    from repro.runtime.stats import RuntimeStats

    inject = task.get("inject")
    if inject == "die":
        import os

        os._exit(13)
    elif inject == "hang":
        time.sleep(600.0)

    stats = RuntimeStats()
    cache = caches.get("blocks")
    if cache is None or cache.cap != task["cache_bytes"]:
        cache = caches["blocks"] = _BlockCache(task["cache_bytes"])
    values = []
    holds = []  # segments of inline values: alive for the task only
    evicted: list = []
    for desc in task["inputs"]:
        tag = desc[0]
        if tag == "value":
            value, seg = decode_value(desc[1])
            holds.append(seg)
            values.append(value)
        elif tag == "block":
            _, wkey, payload = desc
            if payload is None:
                value = cache.get(wkey)
                if value is None:
                    return wkey, None, evicted, holds
            else:
                value, seg = decode_value(payload)
                evicted.extend(cache.put(wkey, value, seg))
            values.append(value)
        else:  # ("bcast", bkey, i)
            values.append(broadcasts[desc[1]][desc[2]][0])

    kind = task["kind"]
    if kind == "echo":
        result = values
    elif kind == "hop":
        result = _apply_spec(task["spec"], values, stats)
    else:  # "spoof"
        operator = _materialize_operator(operators, task["op_name"], stats)
        config = dataclass_replace(task["config"],
                                   vectorized_kernels=task["use_kernel"],
                                   kernel_hot_threshold=0)
        from repro.runtime.skeletons import execute_operator

        result = execute_operator(operator, values, config, stats,
                                  allow_parallel=False)

    cache_as = task.get("cache_as")
    if cache_as is not None:
        cached = result
        if not isinstance(cached, (MatrixBlock, CompressedMatrix)):
            if isinstance(cached, np.ndarray):
                # Mirror the driver's BlockedMatrix wrapping so a later
                # cache hit sees exactly what the driver would ship.
                cached = MatrixBlock(cached)
            else:
                cached = None
        if cached is not None:
            evicted.extend(cache.put(cache_as, cached, None))
    return result, stats, evicted, holds


def _worker_main(conn, worker_id: int) -> None:
    """Worker process main loop: decode, execute, reply — strictly in
    message order (the driver relies on FIFO pipes for setup-before-
    task ordering)."""
    import os

    os.environ.setdefault("OMP_NUM_THREADS", "1")
    caches: dict = {}
    operators: dict = {}
    broadcasts: dict = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        tag = msg[0]
        if tag == "stop":
            break
        if tag == "operator":
            _, name, source, cplan, inline = msg
            if name not in operators:
                operators[name] = (source, cplan, inline)
            continue
        if tag == "bcast":
            _, bkey, descs = msg
            broadcasts[bkey] = [decode_value(d) for d in descs]
            continue
        if tag == "free":
            for bkey in msg[1]:
                broadcasts.pop(bkey, None)
            continue
        if tag == "prune":
            _, backend_id, live_epoch = msg
            cache = caches.get("blocks")
            if cache is not None:
                cache.prune(backend_id, live_epoch)
            continue
        if tag != "task":
            continue
        task = msg[1]
        task_id = task["id"]
        holds: list = []
        try:
            wall_start = time.time()
            t0 = time.perf_counter()
            result, stats, notes, holds = _run_task(task, caches,
                                                    operators, broadcasts)
            duration = time.perf_counter() - t0
            if stats is None:  # cache miss: ask the driver to re-ship
                conn.send(("miss", task_id, result))
                continue
            counters, metrics = _export_stats(stats)
            spans = None
            if task.get("trace"):
                spans = [("mp:task", "mp",
                          {"kind": task["kind"],
                           "label": task.get("label", ""),
                           "partition": task.get("partition", -1),
                           "worker": worker_id},
                          wall_start, duration)]
            conn.send(("ok", task_id, result, counters, metrics, spans,
                       notes))
        except SystemExit:
            raise
        except BaseException:
            import traceback

            try:
                conn.send(("err", task_id, traceback.format_exc()))
            except (OSError, ValueError):
                break
        finally:
            # Inline shared-memory inputs are dead once the reply is
            # out; close them so fds don't accumulate.  BufferError
            # means a view escaped into the cache — leave it mapped.
            result = stats = None
            for seg in holds:
                if seg is not None:
                    try:
                        seg.close()
                    except BufferError:
                        pass
    try:
        conn.close()
    except OSError:
        pass


# ----------------------------------------------------------------------
# Driver-side pool
# ----------------------------------------------------------------------
class _Worker:
    __slots__ = ("id", "proc", "conn", "last_activity")

    def __init__(self, wid: int, proc, conn):
        self.id = wid
        self.proc = proc
        self.conn = conn
        self.last_activity = time.monotonic()


class ProcessPool:
    """Lazily grown, process-global pool of spawned workers.

    Shared by every :class:`ProcessPoolBackend` (worker block caches
    namespace their keys by backend id); lives until interpreter exit.
    """

    def __init__(self):
        self.workers: list[_Worker] = []
        self.lock = threading.Lock()

    def _spawn(self, wid: int) -> _Worker:
        import os
        import sys

        parent_conn, child_conn = _SPAWN.Pipe(duplex=True)
        proc = _SPAWN.Process(target=_worker_main, args=(child_conn, wid),
                              name=f"repro-mp-{wid}", daemon=True)
        # Spawn preparation re-executes the parent's __main__ by path;
        # an interactive/stdin main ("<stdin>") has no re-runnable file
        # and would kill every worker at startup.  The worker target
        # lives in this importable module, so __main__ is not needed —
        # hide the bogus path for the duration of the start.
        main = sys.modules.get("__main__")
        main_path = getattr(main, "__file__", None)
        hide = main_path is not None and not os.path.exists(main_path)
        try:
            if hide:
                del main.__file__
            proc.start()
        finally:
            if hide:
                main.__file__ = main_path
        child_conn.close()
        return _Worker(wid, proc, parent_conn)

    def ensure(self, n: int) -> list[_Worker]:
        with self.lock:
            # Replace workers that died between operators (e.g. killed
            # by fault injection after their run was aborted) silently:
            # no task was lost, so this is not a counted respawn.
            for wid, worker in enumerate(self.workers[:n]):
                if not worker.proc.is_alive():
                    try:
                        worker.conn.close()
                    except OSError:
                        pass
                    self.workers[wid] = self._spawn(wid)
            while len(self.workers) < n:
                self.workers.append(self._spawn(len(self.workers)))
            return self.workers[:n]

    def respawn(self, wid: int) -> _Worker:
        with self.lock:
            old = self.workers[wid]
            try:
                old.conn.close()
            except OSError:
                pass
            if old.proc.is_alive():
                old.proc.terminate()
            old.proc.join(timeout=5.0)
            fresh = self._spawn(wid)
            self.workers[wid] = fresh
            return fresh

    def broadcast(self, message) -> None:
        """Best-effort send to every live worker (prune/free)."""
        with self.lock:
            workers = list(self.workers)
        for worker in workers:
            try:
                worker.conn.send(message)
            except (OSError, ValueError):
                pass

    def shutdown(self) -> None:
        with self.lock:
            workers, self.workers = self.workers, []
        for worker in workers:
            try:
                worker.conn.send(("stop",))
            except (OSError, ValueError):
                pass
        for worker in workers:
            worker.proc.join(timeout=1.0)
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:
                pass


_POOL: ProcessPool | None = None
_POOL_LOCK = threading.Lock()


def shared_pool() -> ProcessPool:
    global _POOL
    with _POOL_LOCK:
        if _POOL is None:
            _POOL = ProcessPool()
            atexit.register(_POOL.shutdown)
        return _POOL


def shutdown_pool() -> None:
    """Stop all worker processes (tests / explicit teardown)."""
    global _POOL
    with _POOL_LOCK:
        pool, _POOL = _POOL, None
    if pool is not None:
        pool.shutdown()


# ----------------------------------------------------------------------
# Backend
# ----------------------------------------------------------------------
class ProcessPoolBackend:
    """Ships SparkExecutor partition tasks to the worker pool.

    One instance per SparkExecutor; created when
    ``config.distributed_backend == "multiprocess"``.  All methods are
    called with the executor's stats lock held (the Spark run path is
    serialized), so counter updates are plain attribute bumps.
    """

    _IDS = itertools.count(1)

    def __init__(self, config, stats):
        self.config = config
        self.stats = stats
        self.backend_id = next(self._IDS)
        # (lineage_key, p) -> set of worker ids caching that block.
        self._locations: dict[tuple, set] = {}
        # lineage_key -> weakref guard for ("data", id) input keys: an
        # address-reused block must never alias a dead lineage entry.
        self._guards: dict = {}
        self._bids = itertools.count(1)
        self._inject: deque = deque()

    # -- public knobs --------------------------------------------------
    def resolve_workers(self) -> int:
        import os

        if self.config.mp_workers > 0:
            return self.config.mp_workers
        return min(4, os.cpu_count() or 1)

    def inject_failure(self, mode: str, count: int = 1) -> None:
        """Arm deterministic fault injection: the next ``count``
        first-attempt task dispatches carry ``mode`` ('die' or 'hang')."""
        if mode not in ("die", "hang"):
            raise ValueError(f"unknown injection mode {mode!r}")
        self._inject.extend([mode] * count)

    # -- SparkExecutor entry points ------------------------------------
    def run_map(self, spec: tuple, main_blocked, plans: list,
                main_key, output_key) -> list:
        """Per-partition basic-hop execution (map and reduce partials)."""
        from repro.runtime import ops as rops

        sides: list = []
        compiled = []
        for mode, value in plans:
            if mode == "whole":
                compiled.append(("bcast", len(sides)))
                sides.append(value)
            else:
                compiled.append((mode, value))
        protos = []
        for p, (r0, r1) in enumerate(main_blocked.bounds):
            inputs = []
            for mode, value in compiled:
                if mode == "main":
                    inputs.append(("block", main_key, p,
                                   main_blocked.blocks[p]))
                elif mode == "zip":
                    inputs.append(("block", getattr(value, "mp_key", None),
                                   p, value.blocks[p]))
                elif mode == "slice":
                    inputs.append(("value",
                                   rops.rix(value, r0, r1, 0, value.cols)))
                else:
                    inputs.append((mode, value))  # ("bcast", i)
            protos.append({
                "kind": "hop", "spec": spec, "inputs": inputs,
                "cache_as": (output_key, p) if output_key is not None
                else None,
                "label": spec[0], "partition": p,
            })
        return self._execute(protos, sides, None)

    def run_spoof(self, operator, values: list, sliceable: set,
                  main_index: int, main_blocked, main_key,
                  output_key, use_kernel: list) -> list:
        """Per-partition generated-operator execution."""
        from repro.runtime import ops as rops

        sides: list = []
        compiled = []
        for idx, value in enumerate(values):
            if idx == main_index:
                compiled.append(("main", None))
            elif idx in sliceable:
                compiled.append(("slice", value))
            else:
                compiled.append(("bcast", len(sides)))
                sides.append(value)
        protos = []
        for p, (r0, r1) in enumerate(main_blocked.bounds):
            inputs = []
            for mode, value in compiled:
                if mode == "main":
                    inputs.append(("block", main_key, p,
                                   main_blocked.blocks[p]))
                elif mode == "slice":
                    inputs.append(("value",
                                   rops.rix(value, r0, r1, 0, value.cols)))
                else:
                    inputs.append((mode, value))
            protos.append({
                "kind": "spoof", "op_name": operator.name,
                "use_kernel": use_kernel[p], "inputs": inputs,
                "cache_as": (output_key, p) if output_key is not None
                else None,
                "label": operator.name, "partition": p,
            })
        payload = ("operator", operator.name, operator.source,
                   operator.cplan, self.config.inline_primitives)
        return self._execute(protos, sides, payload)

    def roundtrip(self, values: list, force_shm: bool = False) -> list:
        """Ship ``values`` to one worker and back through the real
        transport (contract-test hook)."""
        protos = [{"kind": "echo",
                   "inputs": [("value", v) for v in values],
                   "cache_as": None, "label": "echo", "partition": 0}]
        return self._execute(protos, [], None, force_shm=force_shm)[0]

    def prune(self, live_epoch) -> None:
        """Forget locality entries (and worker cache blocks) whose
        lineage epoch ended — mirrors SparkExecutor.prune_cache."""
        for loc_key in list(self._locations):
            key = loc_key[0]
            guard = self._guards.get(key)
            dead = (
                guard() is None if guard is not None
                else isinstance(key, tuple) and key and key[0] == "v"
                and (live_epoch is None or key[1] < live_epoch)
            )
            if dead:
                del self._locations[loc_key]
        for key in list(self._guards):
            if self._guards[key]() is None:
                del self._guards[key]
        if _POOL is not None:
            _POOL.broadcast(("prune", self.backend_id, live_epoch))

    # -- internals -----------------------------------------------------
    def _worker_config(self):
        return dataclass_replace(
            self.config,
            distributed_backend="simulated",
            lockset_debug=False,
            trace_level="off",
        )

    def register_guard(self, key, source) -> None:
        """Pin a ``("data", id)`` lineage key to its source object.

        Identity keys alias once the source dies and its address is
        reused; the weakref guard (same discipline as the driver's RDD
        cache) invalidates every worker-cache location for the key the
        moment the source is gone.  Called by ``SparkExecutor`` when it
        partitions a driver-side input.
        """
        if not (isinstance(key, tuple) and key and key[0] == "data"):
            return
        guard = self._guards.get(key)
        if guard is not None and guard() is not None:
            return
        try:
            self._guards[key] = weakref.ref(source)
        except TypeError:
            self._guards.pop(key, None)

    def _location_hit(self, key, p: int, wid: int) -> bool:
        if key is None:
            return False
        wids = self._locations.get((key, p))
        if not wids or wid not in wids:
            return False
        if isinstance(key, tuple) and key and key[0] == "data":
            guard = self._guards.get(key)
            if guard is None or guard() is None:
                # The guarded input died (or its address was reused):
                # the worker's cached block belongs to a dead lineage.
                self._drop_location(key)
                return False
        return True

    def _note_location(self, key, p: int, wid: int) -> None:
        if key is None:
            return
        if (isinstance(key, tuple) and key and key[0] == "data"
                and key not in self._guards):
            # No liveness guard registered for this identity key: a
            # cached copy could silently alias a future object at the
            # same address, so never remember it.
            return
        self._locations.setdefault((key, p), set()).add(wid)

    def _drop_location(self, key) -> None:
        for loc_key in [k for k in self._locations if k[0] == key]:
            del self._locations[loc_key]
        self._guards.pop(key, None)

    def _drop_worker_locations(self, wid: int) -> None:
        for loc_key in list(self._locations):
            wids = self._locations[loc_key]
            wids.discard(wid)
            if not wids:
                del self._locations[loc_key]

    def _execute(self, protos: list, sides: list, operator_payload,
                 force_shm: bool = False) -> list:
        from repro.runtime import parallel as parallel_mod

        if not protos:
            return []
        config = self.config
        stats = self.stats
        budget = parallel_mod.shared_budget()
        n_workers = self.resolve_workers()
        granted = budget.acquire(min(n_workers, len(protos)), minimum=1,
                                 limit=config.thread_budget or None)
        segments: list = []
        bid = (self.backend_id, next(self._bids))
        state: dict | None = None
        try:
            pool = shared_pool()
            active = {w.id: w for w in pool.ensure(granted)}
            stats.mp_max_workers = max(stats.mp_max_workers, len(active))
            self._drain_stale(active)

            # Encode side inputs once; every worker attaches the same
            # shared-memory segments (one-time broadcast per operator).
            side_descs = []
            for value in sides:
                desc, shm_b, pkl_b = encode_value(value, segments,
                                                  force_shm)
                stats.mp_shm_bytes += shm_b
                stats.mp_pickle_bytes += pkl_b
                side_descs.append(desc)

            worker_config = self._worker_config()
            trace = getattr(stats.tracer, "_events", None) is not None

            # Locality-aware assignment: a partition whose main block
            # already sits in a worker's cache goes to that worker.
            queues: dict[int, deque] = {wid: deque() for wid in active}
            rr = itertools.cycle(sorted(active))
            entries = []
            for index, proto in enumerate(protos):
                entry = {"index": index, "proto": proto, "attempts": 0}
                entries.append(entry)
                wid = self._preferred_worker(proto, active)
                queues[wid if wid is not None else next(rr)].append(entry)

            state = {
                "pool": pool, "active": active, "queues": queues,
                "inflight": {wid: [] for wid in active}, "pending": {},
                "setup_sent": set(), "segments": segments,
                "side_descs": side_descs, "bid": bid,
                "operator_payload": operator_payload,
                "worker_config": worker_config, "trace": trace,
                "force_shm": force_shm,
            }
            for wid in list(active):
                self._send_next(wid, state)

            results: list = [None] * len(protos)
            remaining = len(protos)
            while remaining:
                remaining -= self._pump(state, results)
            return results
        except BaseException:
            if state is not None:
                self._sanitize_pool(state)
            raise
        finally:
            budget.release(granted)
            if _POOL is not None:
                _POOL.broadcast(("free", [bid]))
            for seg in segments:
                try:
                    seg.close()
                    seg.unlink()
                except (FileNotFoundError, OSError):
                    pass

    def _preferred_worker(self, proto: dict, active: dict):
        for desc in proto["inputs"]:
            if desc[0] != "block":
                continue
            _, key, p, value = desc
            if key is None:
                continue
            for wid in self._locations.get((key, p), ()):
                if wid in active and self._location_hit(key, p, wid):
                    return wid
        return None

    def _send_next(self, wid: int, state: dict) -> None:
        queues, inflight = state["queues"], state["inflight"]
        while queues[wid] and len(inflight[wid]) < _MAX_INFLIGHT:
            entry = queues[wid].popleft()
            try:
                self._dispatch(wid, entry, state)
            except (OSError, ValueError):
                queues[wid].appendleft(entry)
                self._fail_worker(wid, "send failed", state)
                return
            inflight[wid].append(entry)
            state["pending"][entry["task_id"]] = (wid, entry)

    def _dispatch(self, wid: int, entry: dict, state: dict) -> None:
        stats = self.stats
        worker = state["active"][wid]
        if wid not in state["setup_sent"]:
            if state["operator_payload"] is not None:
                worker.conn.send(state["operator_payload"])
            if state["side_descs"]:
                worker.conn.send(("bcast", state["bid"],
                                  state["side_descs"]))
                stats.n_mp_broadcasts += 1
            state["setup_sent"].add(wid)

        proto = entry["proto"]
        inputs = []
        for desc in proto["inputs"]:
            tag = desc[0]
            if tag == "value":
                enc, shm_b, pkl_b = encode_value(desc[1],
                                                 state["segments"],
                                                 state["force_shm"])
                stats.mp_shm_bytes += shm_b
                stats.mp_pickle_bytes += pkl_b
                inputs.append(("value", enc))
            elif tag == "block":
                _, key, p, value = desc
                if key is None:
                    enc, shm_b, pkl_b = encode_value(value,
                                                     state["segments"],
                                                     state["force_shm"])
                    stats.mp_shm_bytes += shm_b
                    stats.mp_pickle_bytes += pkl_b
                    inputs.append(("value", enc))
                    continue
                wkey = (self.backend_id, key, p)
                if self._location_hit(key, p, wid):
                    stats.n_mp_locality_hits += 1
                    inputs.append(("block", wkey, None))
                else:
                    enc, shm_b, pkl_b = encode_value(value,
                                                     state["segments"],
                                                     state["force_shm"])
                    stats.mp_shm_bytes += shm_b
                    stats.mp_pickle_bytes += pkl_b
                    stats.n_mp_block_ships += 1
                    self._note_location(key, p, wid)
                    inputs.append(("block", wkey, enc))
            else:  # ("bcast", i)
                inputs.append(("bcast", state["bid"], desc[1]))

        task_id = next(_TASK_IDS)
        entry["task_id"] = task_id
        cache_as = proto.get("cache_as")
        if cache_as is not None:
            cache_as = (self.backend_id, cache_as[0], cache_as[1])
        task = {
            "id": task_id,
            "kind": proto["kind"],
            "inputs": inputs,
            "cache_as": cache_as,
            "cache_bytes": self.config.mp_worker_cache_bytes,
            "config": state["worker_config"],
            "trace": state["trace"],
            "label": proto.get("label", ""),
            "partition": proto.get("partition", -1),
        }
        if proto["kind"] == "hop":
            task["spec"] = proto["spec"]
        elif proto["kind"] == "spoof":
            task["op_name"] = proto["op_name"]
            task["use_kernel"] = proto["use_kernel"]
        if self._inject:
            # Armed fault injection: each armed fault fells exactly one
            # task *dispatch* (so retries can be made to fail too, which
            # is how the retry-exhaustion path is tested).
            task["inject"] = self._inject.popleft()
        worker.conn.send(("task", task))
        worker.last_activity = time.monotonic()

    def _pump(self, state: dict, results: list) -> int:
        """Wait for one round of events; returns completed-task count."""
        config = self.config
        active, inflight = state["active"], state["inflight"]
        conn_map, sentinel_map = {}, {}
        deadline = None
        for wid, worker in active.items():
            if not inflight[wid]:
                continue
            conn_map[worker.conn] = wid
            sentinel_map[worker.proc.sentinel] = wid
            worker_deadline = worker.last_activity + config.mp_task_timeout
            deadline = (worker_deadline if deadline is None
                        else min(deadline, worker_deadline))
        if not conn_map:
            raise RuntimeExecError(
                "multiprocess backend stalled: tasks queued but no "
                "worker holds any in-flight task"
            )
        timeout = max(0.0, deadline - time.monotonic())
        ready = mp_connection.wait(
            list(conn_map) + list(sentinel_map), timeout=timeout
        )
        completed = 0
        if not ready:
            now = time.monotonic()
            for wid in list(active):
                worker = active[wid]
                if inflight[wid] and (
                    now - worker.last_activity > config.mp_task_timeout
                ):
                    self._fail_worker(wid, "task timeout", state)
            return 0
        for obj in ready:
            if obj in sentinel_map:
                wid = sentinel_map[obj]
                worker = active.get(wid)
                if worker is not None and worker.proc.sentinel == obj:
                    self._fail_worker(wid, "worker died", state)
                continue
            wid = conn_map[obj]
            worker = active.get(wid)
            if worker is None or worker.conn is not obj:
                continue  # worker was replaced this round
            completed += self._drain_worker(wid, state, results)
        return completed

    def _drain_worker(self, wid: int, state: dict, results: list) -> int:
        worker = state["active"][wid]
        completed = 0
        while True:
            try:
                if not worker.conn.poll():
                    return completed
                msg = worker.conn.recv()
            except (EOFError, OSError):
                self._fail_worker(wid, "connection lost", state)
                return completed
            worker.last_activity = time.monotonic()
            tag = msg[0]
            if tag == "ok":
                completed += self._handle_ok(wid, msg, state, results)
            elif tag == "miss":
                self._handle_miss(wid, msg, state)
            elif tag == "err":
                _, task_id, tb = msg
                if task_id in state["pending"]:
                    raise RuntimeExecError(
                        f"multiprocess worker {wid} task failed:\n{tb}"
                    )

    def _handle_ok(self, wid: int, msg, state: dict, results: list) -> int:
        _, task_id, payload, counters, metrics, spans, notes = msg
        pending = state["pending"].pop(task_id, None)
        if pending is None:
            return 0  # stale result from an aborted operator
        _, entry = pending
        state["inflight"][wid].remove(entry)
        results[entry["index"]] = payload
        stats = self.stats
        stats.n_mp_tasks += 1
        cache_as = entry["proto"].get("cache_as")
        if cache_as is not None:
            self._note_location(cache_as[0], cache_as[1], wid)
        for wkey in notes:
            # Worker-side LRU evictions: forget stale locality entries.
            if wkey[0] == self.backend_id:
                loc = self._locations.get((wkey[1], wkey[2]))
                if loc is not None:
                    loc.discard(wid)
                    if not loc:
                        del self._locations[(wkey[1], wkey[2])]
        if counters:
            self._merge_worker_stats(counters, metrics)
        if spans:
            self._inject_spans(spans, wid)
        self._send_next(wid, state)
        return 1

    def _handle_miss(self, wid: int, msg, state: dict) -> None:
        """Worker no longer caches a block we assumed it held: drop the
        locality entry and re-dispatch with the full payload."""
        _, task_id, wkey = msg
        pending = state["pending"].pop(task_id, None)
        loc = self._locations.get((wkey[1], wkey[2]))
        if loc is not None:
            loc.discard(wid)
            if not loc:
                del self._locations[(wkey[1], wkey[2])]
        if pending is None:
            return
        _, entry = pending
        state["inflight"][wid].remove(entry)
        state["queues"][wid].appendleft(entry)
        self._send_next(wid, state)

    def _fail_worker(self, wid: int, reason: str, state: dict) -> None:
        """Replace a lost worker and re-dispatch its tasks.

        Lost in-flight tasks are recomputed from their retained specs —
        lineage-keyed outputs count as ``n_lineage_recomputes`` — and
        every locality entry pointing at the dead process is dropped,
        so its lost cache re-ships from the driver on next use.
        """
        stats = self.stats
        active, inflight = state["active"], state["inflight"]
        stats.n_worker_respawns += 1
        lost = list(inflight[wid])
        inflight[wid] = state["inflight"][wid] = []
        for entry in lost:
            state["pending"].pop(entry.get("task_id"), None)
            entry["attempts"] += 1
            if entry["attempts"] > self.config.mp_max_retries:
                raise RuntimeExecError(
                    f"multiprocess task {entry['proto'].get('label')} "
                    f"failed after {entry['attempts']} attempts "
                    f"({reason})"
                )
            stats.n_task_retries += 1
            if entry["proto"].get("cache_as") is not None:
                stats.n_lineage_recomputes += 1
        self._drop_worker_locations(wid)
        state["setup_sent"].discard(wid)
        active[wid] = state["pool"].respawn(wid)
        targets = sorted(w for w in active if w != wid) or [wid]
        for i, entry in enumerate(lost):
            state["queues"][targets[i % len(targets)]].append(entry)
        for target in dict.fromkeys(targets + [wid]):
            self._send_next(target, state)

    def _sanitize_pool(self, state: dict) -> None:
        """An operator that failed mid-flight leaves dispatched tasks
        in worker pipes; a worker may still execute one — or die on an
        injected fault — *after* the error unwinds, polluting the next
        operator's failure counters. Replace every worker holding
        outstanding work; the run already failed, so these are hygiene
        respawns, not counted ones."""
        for wid, entries in state["inflight"].items():
            if not entries:
                continue
            self._drop_worker_locations(wid)
            try:
                state["active"][wid] = state["pool"].respawn(wid)
            except (OSError, ValueError):
                pass

    def _drain_stale(self, active: dict) -> None:
        """Discard leftovers from a previous aborted operator."""
        for worker in active.values():
            try:
                while worker.conn.poll():
                    worker.conn.recv()
            except (EOFError, OSError):
                continue

    # -- stats / span merge-back ---------------------------------------
    def _merge_worker_stats(self, counters: dict, metrics) -> None:
        from repro.runtime.stats import RuntimeStats

        fresh = RuntimeStats()
        for name, value in counters.items():
            if hasattr(fresh, name):
                setattr(fresh, name, value)
        self.stats.merge(fresh)
        if metrics:
            from repro.obs.metrics import MetricsRegistry

            registry = self.stats.metrics
            for kind, name, cells in metrics:
                cls = MetricsRegistry._CLASSES.get(kind)
                if cls is None:
                    continue
                shadow = cls(name, threading.Lock())
                shadow._cells = cells
                registry._get(kind, name)._merge(shadow)

    def _inject_spans(self, spans, wid: int) -> None:
        tracer = self.stats.tracer
        if getattr(tracer, "_events", None) is None:
            return
        from repro.obs.trace import Span

        # Map worker wall-clock timestamps onto the driver tracer's
        # perf_counter origin (best effort: clocks are the same host's).
        origin_wall = time.time() - (time.perf_counter() - tracer._origin)
        for name, cat, args, wall_start, duration in spans:
            span = Span(tracer, name, cat, dict(args))
            span.start = wall_start - origin_wall
            span.duration = duration
            span.tid = 1_000_000 + wid
            span.depth = 0
            tracer._append(span)
