"""Observed runtime metadata: the executor's per-run sidecar.

The compiler works on *estimates*; the executor sees *facts*.  A
:class:`RuntimeMetadata` instance accompanies one executor run and
records the observed dimensions and non-zero counts of materialized
intermediates per symbol-table slot.  At recompilation segment
boundaries (instructions carrying ``meta_checks``) the executor
compares these observations against the compile-time estimates and
hands the live values to the recompiler when they diverge.

Non-zero counting over a dense block is O(cells), so eager nnz
observation is restricted to the slots that some marked instruction
will actually check (``Program.observe_slots``); all other slots record
dimensions only, and :meth:`observed_nnz` fills nnz lazily on demand
(``MatrixBlock`` caches the count, so repeated checks of one slot are
free).
"""

from __future__ import annotations

from repro.analysis import lockset
from repro.runtime.compressed import CompressedMatrix
from repro.runtime.matrix import MatrixBlock


class ObservedMeta:
    """Observed shape and non-zero count of one materialized value."""

    __slots__ = ("rows", "cols", "nnz")

    def __init__(self, rows: int, cols: int, nnz: int = -1):
        self.rows = rows
        self.cols = cols
        self.nnz = nnz  # -1 = not (yet) counted

    def __repr__(self) -> str:
        return f"ObservedMeta({self.rows}x{self.cols}, nnz={self.nnz})"


class RuntimeMetadata:
    """Per-run sidecar mapping symbol-table slots to observed metadata."""

    __slots__ = ("_slots",)

    def __init__(self):
        self._slots: dict[int, ObservedMeta] = {}

    def observe(self, slot: int, value, with_nnz: bool = False) -> None:
        """Record a materialized intermediate (matrix values only)."""
        # Per-run sidecar: single-threaded by design (the serial loop
        # owns it).  Instrumented so the lockset detector would flag a
        # future executor change that shares one sidecar across threads.
        lockset.note_access("RuntimeMetadata", self, "slots")
        if isinstance(value, MatrixBlock):
            nnz = value.nnz if with_nnz else -1
            self._slots[slot] = ObservedMeta(value.rows, value.cols, nnz)
        elif isinstance(value, CompressedMatrix):
            # Compressed nnz is O(distinct values) via cached counts, so
            # it is always observed eagerly.
            self._slots[slot] = ObservedMeta(value.rows, value.cols, value.nnz)

    def get(self, slot: int) -> ObservedMeta | None:
        return self._slots.get(slot)

    def observed_nnz(self, slot: int, values: list) -> int:
        """The observed nnz of ``values[slot]``, counting lazily.

        Returns -1 for slots that do not hold a matrix (scalars,
        distributed handles) — callers skip the divergence check then.
        """
        lockset.note_access("RuntimeMetadata", self, "slots")
        meta = self._slots.get(slot)
        if meta is not None and meta.nnz >= 0:
            return meta.nnz
        value = values[slot]
        if not isinstance(value, (MatrixBlock, CompressedMatrix)):
            return -1
        nnz = value.nnz
        if meta is None:
            self._slots[slot] = ObservedMeta(value.rows, value.cols, nnz)
        else:
            meta.nnz = nnz
        return nnz

    def __len__(self) -> int:
        return len(self._slots)
