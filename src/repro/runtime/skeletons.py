"""Fused-operator skeletons (runtime integration, Figure 4).

The hand-coded skeletons implement the data access over dense, sparse,
and compressed matrices — depending on sparse-safeness over cells or
non-zero values — and call the generated ``genexec`` per tile / row /
non-zero batch.  Generated operators only override ``genexec``, which
keeps them lean; the skeletons own tiling (the cache-blocking/ring
buffer analogue), aggregation, and output assembly.

Large operators additionally execute *intra-operator parallel*: the
main input splits into a fixed number of row partitions (dense slices,
CSR row ranges, compressed column-group views) that run on the shared
worker pool (:mod:`repro.runtime.parallel`) with thread-local partial
results.  Row-aligned outputs concatenate; aggregating outputs combine
through :func:`reduce_spoof_partials` over the fixed-topology
:func:`tree_reduce` — the same combine path the simulated distributed
backend charges network traffic for — so parallel results are
deterministic run-to-run.
"""

from __future__ import annotations

import numpy as np

from repro.codegen.cplan import Access, CPlan, OutType, compressed_cell_eligible
from repro.codegen.template import TemplateType
from repro.errors import RuntimeExecError
from repro.obs import trace as obs_trace
from repro.runtime.compressed import CompressedMatrix
from repro.runtime.matrix import MatrixBlock, recommend_format
from repro.runtime.parallel import run_tasks
from repro.runtime.sideinput import SideInput

_TILE_CELLS = 1 << 18

#: Output variants whose partition-wise results are row-aligned with the
#: main input — the distributed backend keeps them as a BlockedMatrix.
_ROW_PARTITIONED_OUT = frozenset({
    OutType.NO_AGG,
    OutType.ROW_AGG,
    OutType.OUTER_NO_AGG,
    OutType.OUTER_RIGHT,
})


def is_row_partitioned_output(out_type: OutType) -> bool:
    """True when partition-wise execution yields row-aligned blocks."""
    return out_type in _ROW_PARTITIONED_OUT


def partition_bounds(rows: int, n_partitions: int) -> list[tuple[int, int]]:
    """Contiguous row ranges splitting ``rows`` into ``n_partitions``.

    Shared by the local intra-op partitioner and the distributed
    backend's :class:`~repro.runtime.distributed.BlockedMatrix`, so both
    execution strategies partition (and therefore reassociate
    aggregations) identically for a given partition count.
    """
    if rows <= 0:
        return []
    n_partitions = max(1, min(n_partitions, rows))
    step = (rows + n_partitions - 1) // n_partitions
    return [(r0, min(rows, r0 + step)) for r0 in range(0, rows, step)]


def tree_reduce(partials: list, combine) -> tuple[object, int]:
    """Pairwise tree-reduction with a *fixed* topology.

    Partial ``i`` always combines with partial ``i+1`` per level, so a
    given partition count yields bit-identical results run-to-run — the
    property the determinism tests pin down.  Returns ``(result,
    levels)``; both the local intra-op combiner and the simulated
    distributed backend (which additionally charges network traffic per
    level) reduce through this one topology.
    """
    parts = list(partials)
    if not parts:
        raise RuntimeExecError("tree_reduce over zero partials")
    levels = 0
    while len(parts) > 1:
        merged = [
            combine(parts[i], parts[i + 1])
            for i in range(0, len(parts) - 1, 2)
        ]
        if len(parts) % 2:
            merged.append(parts[-1])
        parts = merged
        levels += 1
    return parts[0], levels


def reduce_spoof_partials(cplan: CPlan, partials: list, tree_reduce):
    """Combine per-partition partials of an aggregating fused operator.

    ``tree_reduce(parts, combine) -> (result, levels)`` is supplied by
    the caller: the local intra-op path passes :func:`tree_reduce`
    directly, the distributed backend wraps it to charge the combine
    topology's network traffic.  Returns the combined value plus the
    number of reduction levels.
    """
    out = cplan.out_type
    if out in (OutType.FULL_AGG, OutType.OUTER_FULL_AGG):
        agg = cplan.agg_ops[0] if cplan.agg_ops else "sum"
        return tree_reduce(
            [float(p) for p in partials],
            lambda a, b: float(_combine(np.float64(a), b, agg)),
        )
    if out in (OutType.COL_AGG, OutType.COL_AGG_T, OutType.OUTER_LEFT):
        agg = cplan.agg_ops[0] if cplan.agg_ops else "sum"

        def combine_blocks(a, b):
            return MatrixBlock(_combine(a.to_dense(), b.to_dense(), agg))

        return tree_reduce(partials, combine_blocks)
    if out is OutType.MULTI_AGG:
        # k x 1 partials; each root row combines under its own agg op.
        def combine_multi(a, b):
            a_arr, b_arr = a.to_dense(), b.to_dense()
            merged = np.empty_like(a_arr)
            for k in range(a_arr.shape[0]):
                agg = cplan.agg_ops[k] if k < len(cplan.agg_ops) else "sum"
                merged[k] = _combine(a_arr[k], b_arr[k], agg)
            return MatrixBlock(merged)

        return tree_reduce(partials, combine_multi)
    raise RuntimeExecError(f"non-aggregating out type {out}")


def execute_operator(operator, inputs: list, config, stats=None,
                     allow_parallel: bool = True):
    """Execute a generated fused operator on runtime values.

    ``inputs`` parallels ``operator.cplan.inputs``: MatrixBlock /
    CompressedMatrix for matrix bindings, floats for scalars.

    When the main input is large enough and ``intra_op_threads`` allows,
    it is split into row partitions (dense slices, CSR row ranges,
    compressed column-group views) executed on the shared worker pool
    with thread-local partial results, which combine through the fixed
    :func:`tree_reduce` topology.  ``allow_parallel=False`` keeps the
    serial skeletons — the distributed backend sets it for its
    per-partition calls so partitions never nest another fan-out.
    """
    from repro.runtime import npexec

    cplan = operator.cplan
    if stats is not None:
        stats.record_spoof(cplan.ttype.value)
    inputs = _consult_observed_sparsity(cplan, inputs, config, stats)
    if stats is not None and isinstance(
        inputs[cplan.main_index] if 0 <= cplan.main_index < len(inputs) else None,
        CompressedMatrix,
    ):
        # Dictionary-compatible plans run over distinct values only;
        # everything else decompresses inside the skeleton below.
        if compressed_cell_eligible(cplan):
            stats.n_compressed_ops += 1
        else:
            stats.n_decompressions += 1
    # Side inputs are consumed through dense/CSR tile access in every
    # skeleton (only the main input has a dictionary-direct path), so
    # compressed sides decompress once here, explicitly and counted.
    for idx, (spec, value) in enumerate(zip(cplan.inputs, inputs)):
        if idx == cplan.main_index or spec.access is Access.SCALAR:
            continue
        if isinstance(value, CompressedMatrix):
            if stats is not None:
                stats.n_decompressions += 1
            inputs = list(inputs)
            inputs[idx] = value.decompress()
    # Tier resolution happens once, before partitioning, so every
    # intra-op partition of this execution runs the same backend and
    # the run counters count one execution each.
    kernel = npexec.resolve_kernel(operator, config, stats)
    if kernel is not None and not npexec.kernel_supported(kernel, cplan, inputs):
        kernel = None
    if stats is not None:
        if kernel is not None:
            stats.n_compiled_runs += 1
        else:
            stats.n_interpreted_runs += 1
    tracer = stats.tracer if stats is not None else obs_trace.NULL_TRACER
    tier = _tier_name(kernel)
    if tracer.level >= obs_trace.INSTRUCTIONS:
        # Enrich the executor's enclosing instruction span (same
        # thread) with what the profiler attributes per operator.
        tracer.annotate(template=cplan.ttype.value, tier=tier,
                        fmt=_main_input_format(cplan, inputs))
    with tracer.span(f"op:{cplan.ttype.value}", cat="operator",
                     level=obs_trace.FULL, tier=tier):
        if allow_parallel and config.effective_intra_op_threads() > 1:
            plan = _plan_intra_op(cplan, inputs, config)
            if plan is not None:
                return _execute_intra_op(operator, plan, config, stats,
                                         kernel=kernel)
        return _execute_serial(operator, inputs, config, kernel=kernel)


def _tier_name(kernel) -> str:
    """The execution tier a resolved kernel implies."""
    if kernel is None:
        return "interpreted"
    if getattr(kernel, "numba_entry", None) is not None \
            and not getattr(kernel, "numba_failed", False):
        return "numba"
    return "kernel"


def _main_input_format(cplan: CPlan, inputs: list) -> str:
    """Storage format of the operator's main input."""
    if not 0 <= cplan.main_index < len(inputs):
        return "scalar"
    main = inputs[cplan.main_index]
    if isinstance(main, CompressedMatrix):
        return "compressed"
    if isinstance(main, MatrixBlock):
        return "csr" if main.is_sparse else "dense"
    return "scalar"


def _consult_observed_sparsity(cplan: CPlan, inputs: list, config,
                               stats=None) -> list:
    """Observed-sparsity format consult for sparse-safe plans.

    A dense-stored main input whose *actual* density falls below the
    shared threshold switches to CSR before partitioning/execution, so
    sparse-safe skeletons (and the intra-op partitioner's CSR row-range
    slicing) run over non-zeros even when the compiler's estimate —
    or the producer's storage choice — said dense.  Gated by
    ``adaptive_recompile`` so estimate-frozen baselines stay frozen.
    """
    if not (config.adaptive_recompile and cplan.sparse_safe):
        return inputs
    if not 0 <= cplan.main_index < len(inputs):
        return inputs
    main = inputs[cplan.main_index]
    if not isinstance(main, MatrixBlock) or main.is_sparse:
        return inputs
    fmt = recommend_format(
        main.rows, main.cols, main.nnz, config.sparse_threshold
    )
    if fmt != "sparse":
        return inputs
    if stats is not None:
        stats.n_format_conversions += 1
    inputs = list(inputs)
    inputs[cplan.main_index] = MatrixBlock(main.to_csr())
    return inputs


def _execute_serial(operator, inputs: list, config, kernel=None):
    """Dispatch to the single-threaded skeleton for the template.

    With a resolved ``kernel`` the whole-value driver of
    :mod:`repro.runtime.npexec` runs instead of the tile loops; a
    driver failure pins the operator back to the interpreted tier and
    re-executes these inputs interpreted (same inputs, same result
    contract), so a kernel bug can never fail a run the interpreted
    skeletons would have completed.
    """
    cplan = operator.cplan
    if kernel is not None:
        from repro.runtime import npexec

        try:
            return npexec.execute_kernel(operator, kernel, inputs, config)
        except Exception:
            with operator.lock:
                operator.kernel = None
                operator.kernel_failed = True
    if cplan.ttype in (TemplateType.CELL, TemplateType.MAGG):
        return _execute_cellwise(operator, inputs, config)
    if cplan.ttype is TemplateType.ROW:
        return _execute_rowwise(operator, inputs, config)
    if cplan.ttype is TemplateType.OUTER:
        return _execute_outer(operator, inputs, config)
    raise RuntimeExecError(f"unknown template {cplan.ttype}")


# ----------------------------------------------------------------------
# Intra-operator parallel execution
# ----------------------------------------------------------------------
def _compressed_cell_compatible(cplan: CPlan, inputs: list) -> bool:
    """Dictionary-only execution guard (Figure 9 conditions).

    Delegates to :func:`repro.codegen.cplan.compressed_cell_eligible`
    — a static plan property shared with npgen's compressed-kernel
    emission; ``inputs`` is kept for signature compatibility.
    """
    return compressed_cell_eligible(cplan)


def _plan_intra_op(cplan: CPlan, inputs: list, config):
    """Per-partition input lists, or None when serial execution wins.

    The partition count is ``config.effective_intra_op_threads()`` —
    fixed by configuration, never by the tokens the thread budget later
    grants — so a given (config, input shape) pair always produces the
    same partitioning and combine topology.
    """
    n_parts = config.effective_intra_op_threads()
    main_index = cplan.main_index
    if main_index < 0 or main_index >= len(inputs):
        return None
    main = inputs[main_index]
    if isinstance(main, CompressedMatrix):
        if main.rows * main.cols < config.intra_op_min_cells:
            return None
        if _compressed_cell_compatible(cplan, inputs):
            return _plan_group_partitions(main, inputs, main_index, n_parts)
        if main.rows < 2 * n_parts:
            return None  # gate on metadata before materializing anything
        # Dictionary-only execution does not apply: decompress once here
        # (instead of once per partition) and row-partition the result.
        inputs = list(inputs)
        inputs[main_index] = main.decompress()
        main = inputs[main_index]
    if not isinstance(main, MatrixBlock):
        return None
    rows, cols = main.shape
    if rows * cols < config.intra_op_min_cells or rows < 2 * n_parts:
        return None
    bounds = partition_bounds(rows, n_parts)
    if len(bounds) < 2:
        return None
    inputs = decompress_side_inputs(cplan, inputs, rows)
    if main.is_sparse:
        csr = main.to_csr()
        main_parts = [MatrixBlock(csr[r0:r1]) for r0, r1 in bounds]
    else:
        arr = main.to_dense()
        main_parts = [MatrixBlock(arr[r0:r1]) for r0, r1 in bounds]
    sliceable = sliceable_spoof_inputs(cplan, inputs, rows)
    part_inputs = []
    for p, (r0, r1) in enumerate(bounds):
        values = []
        for idx, value in enumerate(inputs):
            if idx == main_index:
                values.append(main_parts[p])
            elif idx in sliceable:
                values.append(_row_slice(value, r0, r1))
            else:
                values.append(value)
        part_inputs.append(values)
    return part_inputs


def _plan_group_partitions(main: CompressedMatrix, inputs: list,
                           main_index: int, n_parts: int):
    """Split a compressed main input by column groups.

    Valid only under :func:`_compressed_cell_compatible` (sum-aggregated
    sparse-safe cell plans without side inputs): each partition sums its
    groups' dictionary contributions independently, and the per-group
    sums add up to the full result exactly as the serial group loop
    does.
    """
    groups = main.groups
    if len(groups) < 2:
        return None
    n_parts = min(n_parts, len(groups))
    bounds = partition_bounds(len(groups), n_parts)
    part_inputs = []
    for g0, g1 in bounds:
        # Each view carries its column-share of the parent's
        # uncompressed bytes, so per-view compression ratios (and any
        # size-based accounting) stay proportional instead of every
        # view claiming the full matrix.
        share = sum(len(g.cols) for g in groups[g0:g1]) / max(main.cols, 1)
        view = CompressedMatrix(
            main.rows, main.cols, groups[g0:g1],
            main.uncompressed_bytes * share,
        )
        values = list(inputs)
        values[main_index] = view
        part_inputs.append(values)
    return part_inputs


def _row_slice(block: MatrixBlock, r0: int, r1: int) -> MatrixBlock:
    if block.is_sparse:
        return MatrixBlock(block.to_csr()[r0:r1])
    return MatrixBlock(block.to_dense()[r0:r1])


def _execute_intra_op(operator, part_inputs: list, config, stats,
                      kernel=None):
    cplan = operator.cplan
    tasks = [
        (lambda values: lambda: _execute_serial(
            operator, values, config, kernel=kernel))(pv)
        for pv in part_inputs
    ]
    partials, workers = run_tasks(
        tasks, limit=config.thread_budget or None
    )
    if is_row_partitioned_output(cplan.out_type):
        result = _concat_row_partials(partials)
        levels = 0
    else:
        result, levels = reduce_spoof_partials(cplan, partials, tree_reduce)
    if stats is not None:
        stats.n_intra_op_parallel += 1
        stats.n_intra_op_partitions += len(part_inputs)
        stats.intra_op_combine_levels += levels
        stats.intra_op_max_threads = max(stats.intra_op_max_threads, workers)
    return result


def _concat_row_partials(partials: list) -> MatrixBlock:
    """Stack row-aligned partition outputs back into one block."""
    import scipy.sparse as sp

    blocks = [
        p if isinstance(p, MatrixBlock) else MatrixBlock(p) for p in partials
    ]
    if all(not b.is_sparse for b in blocks):
        stacked = np.concatenate([b.to_dense() for b in blocks], axis=0)
        return MatrixBlock(stacked).examine_representation()
    stacked = sp.vstack([b.to_csr() for b in blocks], format="csr")
    return MatrixBlock(stacked).examine_representation()


def decompress_side_inputs(cplan: CPlan, values: list, main_rows: int,
                           row_aligned_only: bool = False) -> list:
    """Decompress compressed side inputs ahead of partitioning.

    Compressed blocks cannot be row-sliced, so a *row-aligned*
    compressed side MUST decompress before partition-wise execution —
    otherwise :func:`sliceable_spoof_inputs` skips it and every
    partition reads rows ``[0, len)`` of the full side through
    partition-local indices.  The local partitioner decompresses every
    compressed side once up front (``row_aligned_only=False`` — cheaper
    than the serial skeletons decompressing inside each partition); the
    distributed path keeps non-aligned sides compressed
    (``row_aligned_only=True``) since it charges broadcast traffic for
    the compressed representation.
    """
    normalized = list(values)
    for idx, (spec, value) in enumerate(zip(cplan.inputs, normalized)):
        if idx == cplan.main_index or spec.access is Access.SCALAR:
            continue
        if not isinstance(value, CompressedMatrix):
            continue
        row_aligned = (
            value.rows == main_rows > 1
            or idx in (cplan.u_index, cplan.w_index)
        )
        if row_aligned or not row_aligned_only:
            normalized[idx] = value.decompress()
    return normalized


def sliceable_spoof_inputs(cplan: CPlan, values: list,
                           main_rows: int) -> set[int]:
    """Indices of side inputs that are row-aligned with the main input
    and therefore sliced to each partition's row range.  Shared by the
    local intra-op partitioner and the distributed backend."""
    sliceable: set[int] = set()
    for idx, (spec, value) in enumerate(zip(cplan.inputs, values)):
        if idx == cplan.main_index or spec.access is Access.SCALAR:
            continue
        if not isinstance(value, MatrixBlock):
            continue
        if cplan.ttype is TemplateType.OUTER:
            # U is row-aligned by construction; W is row-aligned only
            # for the left-multiply accumulation; V never is.
            if idx == cplan.u_index:
                sliceable.add(idx)
            elif idx == cplan.w_index:
                if cplan.out_type is OutType.OUTER_LEFT:
                    sliceable.add(idx)
            elif idx != cplan.v_index and value.rows == main_rows > 1:
                sliceable.add(idx)
        elif (spec.access is Access.SIDE_ROW
              and value.rows == main_rows > 1):
            sliceable.add(idx)
    return sliceable


# ----------------------------------------------------------------------
# Shared input preparation
# ----------------------------------------------------------------------
def _split_inputs(cplan: CPlan, inputs: list):
    main = None
    sides: list = []
    scalars: list[float] = []
    for idx, (spec, value) in enumerate(zip(cplan.inputs, inputs)):
        if idx == cplan.main_index:
            main = value
        elif spec.access is Access.SCALAR:
            scalars.append(_as_float(value))
        else:
            sides.append((spec, value))
    return main, sides, scalars


def _as_float(value) -> float:
    if isinstance(value, MatrixBlock):
        return value.as_scalar()
    return float(value)


def _tile_rows(rows: int, cols: int) -> int:
    return max(16, min(rows, _TILE_CELLS // max(1, cols)))


def _combine(acc, value, agg: str):
    if acc is None:
        return value
    if agg == "sum":
        return acc + value
    if agg == "min":
        return np.minimum(acc, value)
    if agg == "max":
        return np.maximum(acc, value)
    raise RuntimeExecError(f"unknown aggregation '{agg}'")


# ----------------------------------------------------------------------
# Cell / MultiAgg skeleton
# ----------------------------------------------------------------------
def _execute_cellwise(operator, inputs, config):
    cplan = operator.cplan
    main, sides, scalars = _split_inputs(cplan, inputs)
    if main is None:
        raise RuntimeExecError("cell operator without main input")

    if isinstance(main, CompressedMatrix):
        if _compressed_cell_compatible(cplan, inputs):
            return _execute_cell_compressed(operator, main, sides, scalars)
        main = main.decompress()
    if main.is_sparse and cplan.sparse_safe:
        return _execute_cell_sparse(operator, main, sides, scalars)
    return _execute_cell_dense(operator, main, sides, scalars)


def _cell_finalize(cplan: CPlan, accs, out):
    if cplan.out_type is OutType.NO_AGG:
        return MatrixBlock(out).examine_representation()
    if cplan.out_type is OutType.FULL_AGG:
        return float(accs[0])
    if cplan.out_type is OutType.MULTI_AGG:
        return MatrixBlock(np.array([[float(a)] for a in accs]))
    if cplan.out_type is OutType.ROW_AGG:
        return MatrixBlock(out)
    if cplan.out_type is OutType.COL_AGG:
        return MatrixBlock(accs[0].reshape(1, -1))
    raise RuntimeExecError(f"bad cell out type {cplan.out_type}")


def _execute_cell_dense(operator, main: MatrixBlock, sides, scalars):
    cplan = operator.cplan
    rows, cols = main.shape
    arr = main.to_dense()
    side_inputs = [SideInput(v) for (_, v) in sides]
    bs = _tile_rows(rows, cols)
    agg = cplan.agg_ops[0] if cplan.agg_ops else "sum"

    # Output shapes derive from the runtime inputs: operators are
    # size-generic and shared across matrix sizes via the plan cache.
    out = None
    if cplan.out_type is OutType.ROW_AGG:
        out = np.empty((rows, 1))
    accs = [None] * max(1, len(cplan.roots))

    reducer = {"sum": np.sum, "min": np.min, "max": np.max}[agg]
    for r0 in range(0, rows, bs):
        r1 = min(rows, r0 + bs)
        tile = arr[r0:r1]
        side_tiles = [s.row_tile(r0, r1) for s in side_inputs]
        value = operator.genexec(tile, side_tiles, scalars)
        if cplan.out_type is OutType.NO_AGG:
            if out is None:
                out = np.empty((rows, np.shape(value)[-1]))
            out[r0:r1] = np.broadcast_to(value, (r1 - r0, out.shape[1]))
        elif cplan.out_type is OutType.ROW_AGG:
            out[r0:r1] = reducer(np.broadcast_to(value, tile.shape), axis=1, keepdims=True)
        elif cplan.out_type is OutType.COL_AGG:
            tile_val = reducer(np.broadcast_to(value, tile.shape), axis=0)
            accs[0] = _combine(accs[0], tile_val, agg)
        elif cplan.out_type is OutType.FULL_AGG:
            accs[0] = _combine(accs[0], reducer(value), agg)
        else:  # MULTI_AGG
            for k, part in enumerate(value):
                red = {"sum": np.sum, "min": np.min, "max": np.max}[cplan.agg_ops[k]]
                accs[k] = _combine(accs[k], red(part), cplan.agg_ops[k])
    return _cell_finalize(cplan, accs, out)


def _execute_cell_sparse(operator, main: MatrixBlock, sides, scalars):
    """Sparse-safe execution over non-zero cells only."""
    import scipy.sparse as sp

    cplan = operator.cplan
    csr = main.to_csr()
    rows, cols = csr.shape
    side_inputs = [SideInput(v) for (_, v) in sides]
    bs = _tile_rows(rows, max(1, csr.nnz // max(1, rows)))

    accs = [None] * max(1, len(cplan.roots))
    out_data = np.empty(csr.nnz) if cplan.out_type is OutType.NO_AGG else None
    row_out = (
        np.zeros((rows, 1)) if cplan.out_type is OutType.ROW_AGG else None
    )
    col_acc = (
        np.zeros(cols) if cplan.out_type is OutType.COL_AGG else None
    )

    indptr = csr.indptr
    for r0 in range(0, rows, bs):
        r1 = min(rows, r0 + bs)
        lo, hi = indptr[r0], indptr[r1]
        if hi == lo:
            continue
        values = csr.data[lo:hi]
        col_idx = csr.indices[lo:hi]
        row_idx = np.repeat(
            np.arange(r0, r1), np.diff(indptr[r0 : r1 + 1])
        )
        side_vals = [s.gather(row_idx, col_idx) for s in side_inputs]
        value = operator.genexec(values, side_vals, scalars)
        if cplan.out_type is OutType.NO_AGG:
            out_data[lo:hi] = value
        elif cplan.out_type is OutType.ROW_AGG:
            row_out[r0:r1, 0] += np.bincount(
                row_idx - r0, weights=np.broadcast_to(value, values.shape), minlength=r1 - r0
            )
        elif cplan.out_type is OutType.COL_AGG:
            col_acc += np.bincount(
                col_idx, weights=np.broadcast_to(value, values.shape), minlength=cols
            )
        elif cplan.out_type is OutType.FULL_AGG:
            accs[0] = _combine(accs[0], float(np.sum(value)), "sum")
        else:  # MULTI_AGG
            for k, part in enumerate(value):
                accs[k] = _combine(accs[k], float(np.sum(part)), "sum")

    if cplan.out_type is OutType.NO_AGG:
        result = sp.csr_matrix((out_data, csr.indices.copy(), csr.indptr.copy()), shape=csr.shape)
        return MatrixBlock(result).examine_representation()
    if cplan.out_type is OutType.ROW_AGG:
        return MatrixBlock(row_out)
    if cplan.out_type is OutType.COL_AGG:
        return MatrixBlock(col_acc.reshape(1, -1))
    if cplan.out_type is OutType.FULL_AGG:
        return float(accs[0] or 0.0)
    return MatrixBlock(np.array([[float(a or 0.0)] for a in accs]))


def _execute_cell_compressed(operator, main: CompressedMatrix, sides, scalars):
    """Execute over distinct dictionary values only (Figure 9).

    Valid for sparse-safe, single-input, sum-aggregated cell plans;
    the caller routes other plans through decompression.
    """
    cplan = operator.cplan
    accs = [0.0] * max(1, len(cplan.roots))
    for values, counts in main.iter_distinct():
        result = operator.genexec(values, [], scalars)
        parts = result if cplan.out_type is OutType.MULTI_AGG else (result,)
        for k, part in enumerate(parts):
            accs[k] += float(np.dot(np.broadcast_to(part, values.shape), counts))
    if cplan.out_type is OutType.FULL_AGG:
        return accs[0]
    return MatrixBlock(np.array([[a] for a in accs]))


# ----------------------------------------------------------------------
# Row skeleton
# ----------------------------------------------------------------------
def _execute_rowwise(operator, inputs, config):
    cplan = operator.cplan
    main, sides, scalars = _split_inputs(cplan, inputs)
    if main is None:
        raise RuntimeExecError("row operator without main input")
    if isinstance(main, CompressedMatrix):
        main = main.decompress()
    rows, cols = main.shape
    side_handles = [
        (spec, SideInput(v if not isinstance(v, CompressedMatrix) else v.decompress()))
        for (spec, v) in sides
    ]
    bs = _tile_rows(rows, cols)
    agg = cplan.agg_ops[0] if cplan.agg_ops else "sum"

    # Output allocation is deferred until the first tile result is
    # known: operators are size-generic (plan-cache reuse across
    # sizes), so the runtime — not the CPlan — determines the shape.
    out = None
    acc = None

    dense_main = None if main.is_sparse else main.to_dense()
    csr = main.to_csr() if main.is_sparse else None
    for r0 in range(0, rows, bs):
        r1 = min(rows, r0 + bs)
        if dense_main is not None:
            tile = dense_main[r0:r1]
        else:
            tile = np.asarray(csr[r0:r1].todense())
        side_tiles = [
            handle.dense() if spec.access is Access.SIDE_FULL else handle.row_tile(r0, r1)
            for (spec, handle) in side_handles
        ]
        value = operator.genexec(tile, side_tiles, scalars)
        if cplan.out_type in (OutType.NO_AGG, OutType.ROW_AGG):
            if out is None:
                width = 1 if cplan.out_type is OutType.ROW_AGG else np.shape(value)[-1]
                out = np.empty((rows, width))
            out[r0:r1] = value
        elif cplan.out_type in (OutType.COL_AGG, OutType.COL_AGG_T):
            acc = _combine(acc, value, agg)
        else:  # FULL_AGG
            acc = _combine(acc, float(value), agg)

    if cplan.out_type in (OutType.NO_AGG, OutType.ROW_AGG):
        return MatrixBlock(out).examine_representation()
    if cplan.out_type is OutType.FULL_AGG:
        return float(acc)
    result = np.asarray(acc)
    if result.ndim == 1:
        result = result.reshape(1, -1)
    return MatrixBlock(result).examine_representation()


# ----------------------------------------------------------------------
# Outer-product skeleton
# ----------------------------------------------------------------------
def _execute_outer(operator, inputs, config):
    import scipy.sparse as sp

    cplan = operator.cplan
    driver = inputs[cplan.main_index]
    if isinstance(driver, CompressedMatrix):
        driver = driver.decompress()
    u_arr = _dense_of(inputs[cplan.u_index])
    v_arr = _dense_of(inputs[cplan.v_index])
    if cplan.v_transposed:
        v_arr = np.ascontiguousarray(v_arr.T)
    w_arr = _dense_of(inputs[cplan.w_index]) if cplan.w_index >= 0 else None

    side_handles = []
    scalars: list[float] = []
    for idx, (spec, value) in enumerate(zip(cplan.inputs, inputs)):
        if idx in (cplan.main_index, cplan.u_index, cplan.v_index, cplan.w_index):
            continue
        if spec.access is Access.SCALAR:
            scalars.append(_as_float(value))
        else:
            side_handles.append(
                SideInput(value if not isinstance(value, CompressedMatrix) else value.decompress())
            )

    rows, cols = driver.shape
    out_type = cplan.out_type
    if out_type is OutType.OUTER_FULL_AGG:
        acc = 0.0
    elif out_type is OutType.OUTER_RIGHT:
        acc = np.zeros((rows, w_arr.shape[1]))
    elif out_type is OutType.OUTER_LEFT:
        acc = np.zeros((cols, w_arr.shape[1]))
    else:  # OUTER_NO_AGG
        acc = None

    if driver.is_sparse:
        csr = driver.to_csr()
        indptr, indices, data = csr.indptr, csr.indices, csr.data
        out_data = np.empty(csr.nnz) if out_type is OutType.OUTER_NO_AGG else None
        for i in range(rows):
            lo, hi = indptr[i], indptr[i + 1]
            if hi == lo:
                continue
            cols_i = indices[lo:hi]
            xv = data[lo:hi]
            uv = v_arr[cols_i] @ u_arr[i]
            side_vals = [s.gather_row(i, cols_i) for s in side_handles]
            w_vals = operator.genexec(xv, uv, side_vals, scalars)
            w_vals = np.broadcast_to(w_vals, xv.shape)
            if out_type is OutType.OUTER_FULL_AGG:
                acc += float(np.sum(w_vals))
            elif out_type is OutType.OUTER_RIGHT:
                acc[i] = w_vals @ w_arr[cols_i]
            elif out_type is OutType.OUTER_LEFT:
                acc[cols_i] += np.outer(w_vals, w_arr[i])
            else:
                out_data[lo:hi] = w_vals
        if out_type is OutType.OUTER_NO_AGG:
            result = sp.csr_matrix(
                (out_data, indices.copy(), indptr.copy()), shape=(rows, cols)
            )
            return MatrixBlock(result).examine_representation()
    else:
        arr = driver.to_dense()
        all_cols = np.arange(cols)
        out_dense = np.empty((rows, cols)) if out_type is OutType.OUTER_NO_AGG else None
        for i in range(rows):
            xv = arr[i]
            uv = v_arr @ u_arr[i]
            side_vals = [s.gather_row(i, all_cols) for s in side_handles]
            w_vals = operator.genexec(xv, uv, side_vals, scalars)
            w_vals = np.broadcast_to(w_vals, xv.shape)
            if out_type is OutType.OUTER_FULL_AGG:
                acc += float(np.sum(w_vals))
            elif out_type is OutType.OUTER_RIGHT:
                acc[i] = w_vals @ w_arr
            elif out_type is OutType.OUTER_LEFT:
                acc += np.outer(w_vals, w_arr[i])
            else:
                out_dense[i] = w_vals
        if out_type is OutType.OUTER_NO_AGG:
            return MatrixBlock(out_dense).examine_representation()

    if out_type is OutType.OUTER_FULL_AGG:
        return float(acc)
    return MatrixBlock(acc).examine_representation()


def _dense_of(value) -> np.ndarray:
    if isinstance(value, CompressedMatrix):
        return value.decompress().to_dense()
    return value.to_dense()
