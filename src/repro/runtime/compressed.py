"""Compressed linear algebra (CLA) matrices.

A lightweight reproduction of SystemML's compressed matrix blocks
(Elgohary et al., PVLDB 2016), which the paper's templates support:
column-wise compression with per-group dictionaries of distinct values,
optional column co-coding, and two encoding formats:

* DDC — dense dictionary codes: one code per row,
* OLE — offset lists per distinct value (for few distinct values).

Fused operators run over compressed inputs by executing ``genexec``
only for the *distinct values* of each group and combining with value
counts — valid for single-input sparse-safe cell operations with sum
aggregation, exactly the conditions of the paper's Figure 9 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import RuntimeExecError
from repro.runtime.matrix import MatrixBlock


@dataclass
class ColumnGroup:
    """One compressed column group."""

    cols: tuple[int, ...]  # column indices covered by this group
    encoding: str  # 'ddc' or 'ole'
    dictionary: np.ndarray  # (n_distinct, len(cols)) distinct value tuples
    codes: np.ndarray | None = None  # ddc: (rows,) dictionary indices
    offsets: list[np.ndarray] | None = None  # ole: row offsets per value
    _counts: np.ndarray | None = None  # cached value counts (metadata)

    @property
    def n_distinct(self) -> int:
        return self.dictionary.shape[0]

    n_rows: int = 0  # total rows (needed for implicit-zero counts)

    def counts(self) -> np.ndarray:
        """Occurrences of each distinct value tuple (cached metadata —
        value-count aggregates are O(n_distinct), the CLA fast path)."""
        if self._counts is None:
            if self.encoding == "ddc":
                counts = np.bincount(self.codes, minlength=self.n_distinct)
                self._counts = counts.astype(np.float64)
            else:
                counts = np.array(
                    [0 if off is None else len(off) for off in self.offsets],
                    dtype=np.float64,
                )
                # OLE stores no offsets for the implicit zero tuple; its
                # count is the remainder.
                for value_idx, off in enumerate(self.offsets):
                    if off is None:
                        counts[value_idx] = self.n_rows - counts.sum()
                        break
                self._counts = counts
        return self._counts

    @property
    def implicit_index(self) -> int:
        """Index of the offset-less (implicit) tuple, or -1."""
        if self.encoding == "ole" and self.offsets is not None:
            for value_idx, off in enumerate(self.offsets):
                if off is None:
                    return value_idx
        return -1

    def decompress_into(self, out: np.ndarray) -> None:
        if self.encoding == "ddc":
            out[:, list(self.cols)] = self.dictionary[self.codes]
            return
        implicit = self.implicit_index
        if implicit >= 0:
            # The implicit tuple fills the whole column first (it is
            # the zero tuple unless a dictionary transform changed it).
            out[:, list(self.cols)] = self.dictionary[implicit]
        # Outer row-by-column indexing: rows[:, None] pairs every offset
        # row with every group column, so a co-coded (multi-column) OLE
        # group scatters its whole value tuple instead of corrupting
        # through element-wise fancy-index pairing.
        cols = list(self.cols)
        for value_idx, rows in enumerate(self.offsets):
            if rows is None:
                continue
            out[np.asarray(rows)[:, None], cols] = self.dictionary[value_idx]

    def size_bytes(self) -> float:
        dict_bytes = self.dictionary.size * 8.0
        if self.encoding == "ddc":
            code_bytes = len(self.codes) * (1.0 if self.n_distinct <= 256 else 2.0 if self.n_distinct <= 65536 else 4.0)
            return dict_bytes + code_bytes
        return dict_bytes + sum(
            0.0 if off is None else len(off) * 4.0 for off in self.offsets
        )


class CompressedMatrix:
    """A column-compressed matrix (read-only)."""

    def __init__(self, rows: int, cols: int, groups: list[ColumnGroup],
                 uncompressed_bytes: float):
        self.rows = rows
        self.cols = cols
        self.groups = groups
        self.uncompressed_bytes = uncompressed_bytes
        self._nnz: int | None = None  # cached (values never mutate)

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.cols)

    @property
    def size_bytes(self) -> float:
        return sum(g.size_bytes() for g in self.groups)

    @property
    def compression_ratio(self) -> float:
        return self.uncompressed_bytes / max(self.size_bytes, 1.0)

    @property
    def nnz(self) -> int:
        if self._nnz is None:
            total = 0
            for group in self.groups:
                nz_per_value = np.count_nonzero(group.dictionary, axis=1)
                total += int(np.dot(nz_per_value, group.counts()))
            self._nnz = total
        return self._nnz

    @property
    def n_distinct(self) -> float:
        """Mean distinct-value count per column (format-policy input)."""
        if not self.groups:
            return 0.0
        total = sum(g.n_distinct * len(g.cols) for g in self.groups)
        return total / max(self.cols, 1)

    @property
    def sparsity(self) -> float:
        cells = self.rows * self.cols
        return self.nnz / cells if cells else 0.0

    def decompress(self) -> MatrixBlock:
        out = np.zeros((self.rows, self.cols))
        for group in self.groups:
            group.decompress_into(out)
        return MatrixBlock(out)

    # ------------------------------------------------------------------
    # Direct compressed operations (the hand-coded CLA baseline)
    # ------------------------------------------------------------------
    def sum(self) -> float:
        total = 0.0
        for group in self.groups:
            total += float(np.dot(group.dictionary.sum(axis=1), group.counts()))
        return total

    def sum_sq(self) -> float:
        total = 0.0
        for group in self.groups:
            sq = (group.dictionary ** 2).sum(axis=1)
            total += float(np.dot(sq, group.counts()))
        return total

    def col_sums(self) -> MatrixBlock:
        out = np.zeros((1, self.cols))
        for group in self.groups:
            weighted = group.dictionary * group.counts()[:, None]
            out[0, list(group.cols)] += weighted.sum(axis=0)
        return MatrixBlock(out)

    def col_sums_sq(self) -> MatrixBlock:
        out = np.zeros((1, self.cols))
        for group in self.groups:
            weighted = (group.dictionary ** 2) * group.counts()[:, None]
            out[0, list(group.cols)] += weighted.sum(axis=0)
        return MatrixBlock(out)

    def col_reduce(self, reducer) -> MatrixBlock:
        """Per-column min/max over dictionaries (every tuple occurs)."""
        out = np.zeros((1, self.cols))
        for group in self.groups:
            out[0, list(group.cols)] = reducer(group.dictionary, axis=0)
        return MatrixBlock(out)

    def row_sums(self) -> MatrixBlock:
        """Per-row sums via per-group dictionary pre-aggregation.

        OLE groups scatter only their explicit offset lists; the
        implicit (offset-less) tuple contributes its value to *every*
        row as a base term — non-zero whenever a dictionary transform
        (e.g. ``X + 1``) moved the implicit zero — and explicit tuples
        add their delta against that base, exactly like :meth:`matvec`.
        """
        out = np.zeros(self.rows)
        for group in self.groups:
            row_contrib = group.dictionary.sum(axis=1)
            if group.encoding == "ddc":
                out += row_contrib[group.codes]
            else:
                implicit = group.implicit_index
                base = row_contrib[implicit] if implicit >= 0 else 0.0
                if base != 0.0:
                    out += base
                for value_idx, rows in enumerate(group.offsets):
                    if rows is None:
                        continue
                    out[np.asarray(rows)] += row_contrib[value_idx] - base
        return MatrixBlock(out.reshape(-1, 1))

    def matvec(self, v: np.ndarray) -> MatrixBlock:
        """X @ v via per-group pre-aggregation over the dictionary."""
        v = np.asarray(v).ravel()
        out = np.zeros(self.rows)
        for group in self.groups:
            # Pre-aggregate each distinct tuple against v's slice, then
            # scatter by codes -- the CLA cache-conscious trick.
            contrib = group.dictionary @ v[list(group.cols)]
            if group.encoding == "ddc":
                out += contrib[group.codes]
            else:
                implicit = group.implicit_index
                base = contrib[implicit] if implicit >= 0 else 0.0
                if base != 0.0:
                    out += base
                for value_idx, rows in enumerate(group.offsets):
                    if rows is None:
                        continue
                    out[np.asarray(rows)] += contrib[value_idx] - base
        return MatrixBlock(out.reshape(-1, 1))

    # ------------------------------------------------------------------
    # Fused-operator support: iterate distinct values with counts
    # ------------------------------------------------------------------
    def iter_distinct(self):
        """Yield (values, counts) per single-column group member.

        Valid for executing sparse-safe single-input cell operators
        over distinct values only (paper, Section 5.2 "CLA").
        """
        for group in self.groups:
            counts = group.counts()
            for local_col in range(len(group.cols)):
                yield group.dictionary[:, local_col], counts

    def __repr__(self) -> str:
        return (
            f"CompressedMatrix({self.rows}x{self.cols}, "
            f"{len(self.groups)} groups, ratio={self.compression_ratio:.2f}x)"
        )


def transform_dictionaries(comp: CompressedMatrix, func) -> CompressedMatrix:
    """A shallow value-wise transform: dictionaries only.

    Codes/offsets and cached counts are shared with the source (the
    Figure 9 fast path) — only the per-group dictionaries run through
    ``func``, so a cell-wise op over a compressed matrix costs
    O(distinct values), not O(cells).
    """
    groups = [
        ColumnGroup(g.cols, g.encoding, func(g.dictionary), g.codes,
                    g.offsets, g.counts(), g.n_rows)
        for g in comp.groups
    ]
    return CompressedMatrix(comp.rows, comp.cols, groups,
                            comp.uncompressed_bytes)


def estimate_distinct(block: MatrixBlock, sample_rows: int = 2048) -> float:
    """Estimated distinct values per column from a leading-row sample.

    Deterministic (no RNG): the first ``sample_rows`` rows bound the
    O(rows log rows) per-column ``unique`` cost that a full scan would
    pay.  The estimate feeds the shared format policy's compressed leg;
    underestimating on a sample only makes compression look better than
    it is, which the compressor's real ratio then corrects.
    """
    rows = min(block.rows, max(int(sample_rows), 1))
    if rows == 0 or block.cols == 0:
        return 0.0
    if block.is_sparse:
        sample = np.asarray(block.to_csr()[:rows].todense())
    else:
        sample = block.to_dense()[:rows]
    if sample.shape[0] <= 1:
        return 1.0
    ordered = np.sort(sample, axis=0)
    counts = (np.diff(ordered, axis=0) != 0.0).sum(axis=0) + 1
    return float(np.mean(counts))


def cla_kernel(hop, values):
    """Execute a basic HOP over compressed inputs, CLA-style.

    Value-wise operations transform the dictionaries only (a shallow
    copy of the compressed data, as in the paper's Figure 9 discussion);
    aggregates combine dictionary values with counts; matrix-vector
    multiplies pre-aggregate per group.  Returns None when the
    operation requires decompression (the caller falls back).
    """
    from repro.hops.hop import AggBinaryOp, AggUnaryOp, BinaryOp, UnaryOp
    from repro.hops.types import AggDir, AggOp
    from repro.runtime import ops as rops

    if isinstance(hop, UnaryOp) and isinstance(values[0], CompressedMatrix):
        if hop.op == "cumsum":
            return None
        func = lambda d: np.asarray(rops.unary(hop.op, MatrixBlock(d)).to_dense())
        return transform_dictionaries(values[0], func)

    if isinstance(hop, BinaryOp):
        comp = next((v for v in values if isinstance(v, CompressedMatrix)), None)
        other = values[0] if values[1] is comp else values[1]
        if comp is not None and not isinstance(other, (MatrixBlock, CompressedMatrix)):
            scalar = float(other)
            swapped = values[0] is not comp

            def func(d):
                a, b = (scalar, MatrixBlock(d)) if swapped else (MatrixBlock(d), scalar)
                return np.asarray(rops.binary(hop.op, a, b).to_dense())

            return transform_dictionaries(comp, func)
        return None

    if isinstance(hop, AggUnaryOp) and isinstance(values[0], CompressedMatrix):
        comp = values[0]
        if hop.direction is AggDir.FULL:
            if hop.agg_op is AggOp.SUM:
                return comp.sum()
            if hop.agg_op is AggOp.SUM_SQ:
                return comp.sum_sq()
            if hop.agg_op in (AggOp.MIN, AggOp.MAX):
                reducer = np.min if hop.agg_op is AggOp.MIN else np.max
                return float(
                    reducer([reducer(g.dictionary) for g in comp.groups])
                )
            if hop.agg_op is AggOp.MEAN:
                return comp.sum() / (comp.rows * comp.cols)
        if hop.direction is AggDir.COL and hop.agg_op is AggOp.SUM:
            return comp.col_sums()
        if hop.direction is AggDir.ROW and hop.agg_op is AggOp.SUM:
            return comp.row_sums()
        return None

    if isinstance(hop, AggBinaryOp) and isinstance(values[0], CompressedMatrix):
        right = values[1]
        if isinstance(right, MatrixBlock) and right.cols == 1:
            return values[0].matvec(right.to_dense())
        return None

    return None


def decompress_values(values):
    """Replace compressed inputs by their decompressed blocks."""
    return [
        v.decompress() if isinstance(v, CompressedMatrix) else v for v in values
    ]


def compress(block: MatrixBlock, co_code: bool = True,
             max_distinct_frac: float = 0.2) -> CompressedMatrix:
    """Compress a matrix column-wise.

    Columns whose number of distinct values is small are encoded as DDC
    (or OLE when very few); pairs of low-cardinality columns are
    co-coded greedily.  Columns that do not compress keep a trivial
    DDC group (matching CLA's uncompressed-column fallback closely
    enough for our experiments).
    """
    dense = block.to_dense()
    rows, cols = dense.shape
    uncompressed = block.size_bytes

    col_info = []
    for j in range(cols):
        values, codes = np.unique(dense[:, j], return_inverse=True)
        col_info.append((j, values, codes))

    groups: list[ColumnGroup] = []
    used: set[int] = set()

    if co_code:
        # Greedy co-coding of adjacent low-cardinality columns whose
        # combined cardinality stays small.
        j = 0
        while j + 1 < cols:
            j1, vals1, _ = col_info[j]
            j2, vals2, _ = col_info[j + 1]
            if len(vals1) * len(vals2) <= max(16, int(rows * 0.01)):
                pair = dense[:, [j1, j2]]
                tuples, codes = np.unique(pair, axis=0, return_inverse=True)
                groups.append(
                    ColumnGroup((j1, j2), "ddc", tuples,
                                codes.astype(np.int64), n_rows=rows)
                )
                used.update((j1, j2))
                j += 2
            else:
                j += 1

    for j, values, codes in col_info:
        if j in used:
            continue
        n_distinct = len(values)
        dictionary = values.reshape(-1, 1)
        zero_pos = int(np.searchsorted(values, 0.0))
        has_zero = zero_pos < n_distinct and values[zero_pos] == 0.0
        zero_frac = np.mean(codes == zero_pos) if has_zero else 0.0
        if has_zero and zero_frac > 0.5:
            # Zero-dominated column: OLE with implicit zeros stores
            # offsets for non-zero values only (4B per non-zero cell).
            offsets = [
                None if v == zero_pos else np.flatnonzero(codes == v)
                for v in range(n_distinct)
            ]
            groups.append(
                ColumnGroup((j,), "ole", dictionary, offsets=offsets, n_rows=rows)
            )
        elif n_distinct <= 8 and rows > 64:
            offsets = [np.flatnonzero(codes == v) for v in range(n_distinct)]
            groups.append(
                ColumnGroup((j,), "ole", dictionary, offsets=offsets, n_rows=rows)
            )
        else:
            groups.append(
                ColumnGroup((j,), "ddc", dictionary,
                            codes.astype(np.int64), n_rows=rows)
            )

    if not groups:
        raise RuntimeExecError("cannot compress an empty matrix")
    return CompressedMatrix(rows, cols, groups, uncompressed)
