"""Vector-primitive library used by generated fused operators.

The paper's generated Java operators call a shared library of vector
primitives (``dotProduct``, ``vectMultAdd``, ``vectMatMult``, ...) so
that generated methods stay small and primitives stay hot.  Generated
Python operators in this reproduction call the functions below.

All primitives are *tile-polymorphic*: they accept a single row (shape
``(n,)``) or a row-block tile (shape ``(bs, n)``) and operate row-wise.
Per-row scalars are represented as shape-``(bs,)`` arrays (or Python
floats for a single row); the :func:`rs` helper reshapes them for
broadcasting against row vectors.
"""

from __future__ import annotations

import numpy as np
import scipy.special


def rs(x):
    """Reshape a per-row scalar for broadcasting against row vectors."""
    if isinstance(x, np.ndarray) and x.ndim == 1:
        return x[:, None]
    return x


# ----------------------------------------------------------------------
# Reductions (row-wise)
# ----------------------------------------------------------------------
def vect_sum(a):
    """Row-wise sum -> per-row scalar."""
    return np.sum(a, axis=-1)


def vect_min(a):
    return np.min(a, axis=-1)


def vect_max(a):
    return np.max(a, axis=-1)


def vect_mean(a):
    return np.mean(a, axis=-1)


def dot_product(a, b):
    """Row-wise inner product -> per-row scalar."""
    return np.sum(a * b, axis=-1)


# keepdims variants: per-row scalars as (bs, 1) columns, the convention
# of generated Row operators.
def vect_sum_kd(a):
    return np.sum(a, axis=-1, keepdims=True)


def vect_min_kd(a):
    return np.min(a, axis=-1, keepdims=True)


def vect_max_kd(a):
    return np.max(a, axis=-1, keepdims=True)


def vect_mean_kd(a):
    return np.mean(a, axis=-1, keepdims=True)


def dot_product_kd(a, b):
    return np.sum(a * b, axis=-1, keepdims=True)


# ----------------------------------------------------------------------
# Matrix-shaped primitives
# ----------------------------------------------------------------------
def vect_matmult(a, block):
    """Row(s) times a matrix: (bs, n) @ (n, k) -> (bs, k)."""
    return a @ block


def vect_tmatmult(a, block):
    """Row(s) times a transposed matrix: (bs, n) @ (k, n)^T -> (bs, k)."""
    return a @ block.T


def vect_outer_mult_add(a, b, c):
    """Accumulate per-row outer products: c += sum_i outer(a_i, b_i).

    For tiles this is exactly ``c += a^T @ b`` which realizes column
    aggregation of ``t(X) %*% F(X)`` patterns in a single pass.
    """
    if a.ndim == 1:
        c += np.outer(a, b)
    else:
        c += a.T @ b
    return c


def vect_cumsum(a):
    """Row-wise cumulative sum."""
    return np.cumsum(a, axis=-1)


# ----------------------------------------------------------------------
# Element-wise binary primitives (operands are shape-aligned tiles,
# (bs, 1) per-row scalars, (1, m) row vectors, or Python scalars; numpy
# broadcasting applies directly)
# ----------------------------------------------------------------------
def vect_mult(a, b):
    return a * b


def vect_div(a, b):
    with np.errstate(divide="ignore", invalid="ignore"):
        return a / b


def vect_add(a, b):
    return a + b


def vect_minus(a, b):
    return a - b


def vect_pow(a, b):
    return np.power(a, b)


def vect_min2(a, b):
    return np.minimum(a, b)


def vect_max2(a, b):
    return np.maximum(a, b)


def vect_mult_add(a, s, c):
    """c += s * a with per-row scalar s (the paper's vectMultAdd)."""
    c += a * s
    return c


# Comparison primitives return 0/1 float tiles.
def vect_eq(a, b):
    return (a == b) * 1.0


def vect_neq(a, b):
    return (a != b) * 1.0


def vect_lt(a, b):
    return (a < b) * 1.0


def vect_gt(a, b):
    return (a > b) * 1.0


def vect_le(a, b):
    return (a <= b) * 1.0


def vect_ge(a, b):
    return (a >= b) * 1.0


def vect_and(a, b):
    return ((a != 0) & (b != 0)) * 1.0


def vect_or(a, b):
    return ((a != 0) | (b != 0)) * 1.0


# ----------------------------------------------------------------------
# Element-wise unary primitives
# ----------------------------------------------------------------------
def vect_exp(a):
    return np.exp(a)


def vect_log(a):
    return np.log(a)


def vect_sqrt(a):
    return np.sqrt(a)


def vect_abs(a):
    return np.abs(a)


def vect_sign(a):
    return np.sign(a)


def vect_round(a):
    return np.round(a)


def vect_floor(a):
    return np.floor(a)


def vect_ceil(a):
    return np.ceil(a)


def vect_neg(a):
    return -a


def vect_not(a):
    return (a == 0).astype(np.float64)


def vect_sigmoid(a):
    return 1.0 / (1.0 + np.exp(-a))


def vect_sprop(a):
    return a * (1.0 - a)


def vect_pow2(a):
    return a * a


def vect_erf(a):
    return scipy.special.erf(a)


def vect_normpdf(a):
    return np.exp(-0.5 * a * a) / np.sqrt(2.0 * np.pi)


def vect_ifelse(cond, a, b):
    return np.where(cond != 0, a, b)


# Mapping from IR op names to primitive function names used by codegen.
UNARY_PRIMITIVES = {
    "exp": "vect_exp",
    "log": "vect_log",
    "sqrt": "vect_sqrt",
    "abs": "vect_abs",
    "sign": "vect_sign",
    "round": "vect_round",
    "floor": "vect_floor",
    "ceil": "vect_ceil",
    "neg": "vect_neg",
    "not": "vect_not",
    "sigmoid": "vect_sigmoid",
    "sprop": "vect_sprop",
    "pow2": "vect_pow2",
    "erf": "vect_erf",
    "normpdf": "vect_normpdf",
}

BINARY_PRIMITIVES = {
    "+": "vect_add",
    "-": "vect_minus",
    "*": "vect_mult",
    "/": "vect_div",
    "^": "vect_pow",
    "min": "vect_min2",
    "max": "vect_max2",
    "==": "vect_eq",
    "!=": "vect_neq",
    "<": "vect_lt",
    ">": "vect_gt",
    "<=": "vect_le",
    ">=": "vect_ge",
    "&": "vect_and",
    "|": "vect_or",
}
