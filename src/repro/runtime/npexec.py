"""Compiled-kernel execution drivers (tiered vectorized backend).

:mod:`repro.runtime.skeletons` owns the *interpreted* tier: tile /
non-zero-batch / per-row loops around ``genexec``.  This module owns the
*compiled* tier: whole-value drivers around the vectorized kernels of
:mod:`repro.codegen.npgen`, plus the tier-resolution policy
(hotness-based promotion, failure pinning, Numba fallback accounting).

The drivers mirror the skeleton semantics value-for-value:

* Cell/MAgg over a dense main runs ``genkernel`` once on the whole
  array (aggregation folded in, einsum contraction when eligible);
  sparse-safe mains evaluate the body over batched non-zero gathers and
  assemble outputs with ``bincount``/CSR rebuilds,
* Row runs the whole row block through one kernel call, staying CSR for
  CSR-main-safe plans,
* Outer batches CSR row ranges (bounded by ``kernel_chunk_cells``) and
  folds the U/V/W products into block matmuls.

Element-wise and row-aligned kernels reproduce the interpreted results
bit-identically; kernels that reassociate an aggregation (whole-array
sums, einsum) match within ``config.kernel_compare_rtol``.
"""

from __future__ import annotations

import numpy as np

from repro.codegen.cplan import Access, OutType, compressed_cell_eligible
from repro.codegen.template import TemplateType
from repro.errors import RuntimeExecError
from repro.runtime.compressed import CompressedMatrix
from repro.runtime.matrix import MatrixBlock
from repro.runtime.sideinput import SideInput

_CELL_TEMPLATES = (TemplateType.CELL, TemplateType.MAGG)


# ----------------------------------------------------------------------
# Tier resolution
# ----------------------------------------------------------------------
def resolve_kernel(operator, config, stats=None):
    """Resolve the execution tier for one operator execution.

    Bumps the operator's hotness (executions count toward promotion,
    alongside the plan-cache hits and serving warm binds recorded via
    ``note_hot``), compiles the vectorized kernel when the operator
    crosses ``kernel_hot_threshold`` (0 = first execution), and returns
    the kernel — or ``None`` to stay interpreted.  Compile failures pin
    the operator to the interpreted tier permanently.

    The kernel lands on the shared :class:`GeneratedOperator`, so every
    program, serving specialization, and adaptive recompile that reuses
    the operator through the plan cache shares one compiled kernel.
    """
    if not getattr(config, "vectorized_kernels", False):
        return None
    with operator.lock:
        operator.hotness += 1
        if operator.kernel is not None:
            return operator.kernel
        if operator.kernel_failed:
            return None
        threshold = getattr(config, "kernel_hot_threshold", 0)
        if threshold > 0 and operator.hotness < threshold:
            return None
        promoted = operator.hotness > 1
        from repro.codegen.npgen import compile_kernel
        from repro.obs import trace as obs_trace

        tracer = (stats.tracer if stats is not None
                  else obs_trace.NULL_TRACER)
        try:
            with tracer.span("kernel-compile", cat="kernel",
                             op=operator.name,
                             template=operator.cplan.ttype.value):
                kernel = compile_kernel(operator.cplan, config, stats)
        except Exception:
            operator.kernel_failed = True
            if stats is not None:
                stats.n_kernel_failures += 1
            return None
        operator.kernel = kernel
    if stats is not None:
        stats.n_kernel_compiles += 1
        if promoted:
            stats.n_kernel_promotions += 1
            tracer.instant("kernel-promote", cat="kernel",
                           op=operator.name, hotness=operator.hotness)
    return kernel


def kernel_supported(kernel, cplan, inputs) -> bool:
    """Whether the compiled kernel can execute these runtime inputs.

    Decided once per operator execution — before partitioning — so all
    intra-op partitions run the same tier.  Unsupported combinations
    (dictionary-compatible compressed cell plans, where the interpreted
    distinct-value loop is already optimal; sparse Row mains whose body
    is not CSR-main-safe) fall back to the interpreted skeletons.
    """
    if not 0 <= cplan.main_index < len(inputs):
        return False
    main = inputs[cplan.main_index]
    if cplan.ttype in _CELL_TEMPLATES:
        if isinstance(main, CompressedMatrix):
            if compressed_cell_eligible(cplan):
                # Dictionary-compatible plans run compiled only when the
                # compressed-CELL variant was emitted; otherwise the
                # interpreted distinct-value loop stays the oracle.
                return kernel.comp_entry is not None
            return True  # driver decompresses, then runs the cell kernel
        return isinstance(main, MatrixBlock)
    if cplan.ttype is TemplateType.ROW:
        if isinstance(main, CompressedMatrix):
            return True
        if not isinstance(main, MatrixBlock):
            return False
        return (not main.is_sparse) or kernel.csr_main_safe
    if cplan.ttype is TemplateType.OUTER:
        return isinstance(main, (MatrixBlock, CompressedMatrix))
    return False


def execute_kernel(operator, kernel, inputs, config):
    """Execute a generated operator on its compiled vectorized kernel.

    Callers must have checked :func:`kernel_supported` for these inputs.
    """
    cplan = operator.cplan
    if cplan.ttype in _CELL_TEMPLATES:
        return _execute_cell(operator, kernel, inputs, config)
    if cplan.ttype is TemplateType.ROW:
        return _execute_row(operator, kernel, inputs, config)
    if cplan.ttype is TemplateType.OUTER:
        return _execute_outer(operator, kernel, inputs, config)
    raise RuntimeExecError(f"no kernel driver for {cplan.ttype}")


def _csr_row_chunks(indptr, rows: int, budget_nnz: int):
    """Row ranges whose non-zero counts fit the cell budget.

    A single row larger than the budget forms its own chunk, so the
    generator always advances.
    """
    r0 = 0
    while r0 < rows:
        target = indptr[r0] + budget_nnz
        r1 = int(np.searchsorted(indptr, target, side="left"))
        r1 = min(rows, max(r1, r0 + 1))
        yield r0, r1, int(indptr[r0]), int(indptr[r1])
        r0 = r1


# ----------------------------------------------------------------------
# Cell / MultiAgg driver
# ----------------------------------------------------------------------
def _execute_cell(operator, kernel, inputs, config):
    from repro.runtime.skeletons import _split_inputs

    cplan = operator.cplan
    main, sides, scalars = _split_inputs(cplan, inputs)
    if isinstance(main, CompressedMatrix):
        if kernel.comp_entry is not None and compressed_cell_eligible(cplan):
            return _cell_compressed(operator, kernel, main, scalars)
        # No dictionary-direct variant: run on the dense values.
        main = main.decompress()
    if main.is_sparse and cplan.sparse_safe:
        return _cell_sparse(operator, main, sides, scalars, config)
    return _cell_dense(operator, kernel, main, sides, scalars)


def _cell_compressed(operator, kernel, main: CompressedMatrix, scalars):
    """Dictionary-direct compiled execution (Figure 9, compiled tier).

    Runs the compressed-CELL kernel variant over each column member's
    distinct values with its counts; per-column contributions sum into
    the per-root accumulators exactly like the interpreted
    distinct-value loop in :mod:`repro.runtime.skeletons`.
    """
    cplan = operator.cplan
    accs = np.zeros(max(1, len(cplan.roots)))
    for values, counts in main.iter_distinct():
        accs += np.atleast_1d(kernel.comp_entry(values, counts, [], scalars))
    if cplan.out_type is OutType.FULL_AGG:
        return float(accs[0])
    return MatrixBlock(accs.reshape(-1, 1))


def _cell_dense(operator, kernel, main: MatrixBlock, sides, scalars):
    cplan = operator.cplan
    rows, _ = main.shape
    arr = main.to_dense()
    side_tiles = [SideInput(v).row_tile(0, rows) for (_, v) in sides]

    raw = None
    if kernel.numba_entry is not None and not kernel.numba_failed:
        try:
            raw = kernel.numba_entry(
                arr,
                *[np.ascontiguousarray(t) for t in side_tiles],
                *scalars,
            )
        except Exception:
            # JIT/runtime failure: pin this kernel to the NumPy tier.
            kernel.numba_failed = True
            raw = None
    if raw is None:
        raw = kernel.entry(arr, side_tiles, scalars)

    out = cplan.out_type
    if out is OutType.NO_AGG:
        return MatrixBlock(raw).examine_representation()
    if out is OutType.FULL_AGG:
        return float(raw)
    if out in (OutType.ROW_AGG, OutType.COL_AGG, OutType.MULTI_AGG):
        return MatrixBlock(np.asarray(raw))
    raise RuntimeExecError(f"bad cell out type {out}")


def _cell_sparse(operator, main: MatrixBlock, sides, scalars, config):
    """Sparse-safe cell execution over batched non-zero gathers.

    The body evaluates once per chunk over the flat non-zero values (no
    tile loop); outputs assemble through ``bincount`` / CSR rebuilds,
    mirroring the interpreted sparse skeleton's per-batch logic.
    """
    import scipy.sparse as sp

    cplan = operator.cplan
    csr = main.to_csr()
    rows, cols = csr.shape
    side_inputs = [SideInput(v) for (_, v) in sides]
    budget = max(1024, getattr(config, "kernel_chunk_cells", 1 << 22))

    out = cplan.out_type
    accs = [None] * max(1, len(cplan.roots))
    out_data = np.empty(csr.nnz) if out is OutType.NO_AGG else None
    row_out = np.zeros((rows, 1)) if out is OutType.ROW_AGG else None
    col_acc = np.zeros(cols) if out is OutType.COL_AGG else None

    indptr, indices, data = csr.indptr, csr.indices, csr.data
    for r0, r1, lo, hi in _csr_row_chunks(indptr, rows, budget):
        if hi == lo:
            continue
        values = data[lo:hi]
        col_idx = indices[lo:hi]
        row_idx = np.repeat(np.arange(r0, r1), np.diff(indptr[r0:r1 + 1]))
        side_vals = [s.gather(row_idx, col_idx) for s in side_inputs]
        value = operator.genexec(values, side_vals, scalars)
        if out is OutType.NO_AGG:
            out_data[lo:hi] = value
        elif out is OutType.ROW_AGG:
            row_out[r0:r1, 0] += np.bincount(
                row_idx - r0,
                weights=np.broadcast_to(value, values.shape),
                minlength=r1 - r0,
            )
        elif out is OutType.COL_AGG:
            col_acc += np.bincount(
                col_idx,
                weights=np.broadcast_to(value, values.shape),
                minlength=cols,
            )
        elif out is OutType.FULL_AGG:
            accs[0] = accs[0] if accs[0] is not None else 0.0
            accs[0] += float(np.sum(value))
        else:  # MULTI_AGG
            for k, part in enumerate(value):
                accs[k] = (accs[k] or 0.0) + float(np.sum(part))

    if out is OutType.NO_AGG:
        result = sp.csr_matrix(
            (out_data, indices.copy(), indptr.copy()), shape=csr.shape
        )
        return MatrixBlock(result).examine_representation()
    if out is OutType.ROW_AGG:
        return MatrixBlock(row_out)
    if out is OutType.COL_AGG:
        return MatrixBlock(col_acc.reshape(1, -1))
    if out is OutType.FULL_AGG:
        return float(accs[0] or 0.0)
    return MatrixBlock(np.array([[float(a or 0.0)] for a in accs]))


# ----------------------------------------------------------------------
# Row driver
# ----------------------------------------------------------------------
def _execute_row(operator, kernel, inputs, config):
    from repro.runtime.skeletons import _split_inputs

    cplan = operator.cplan
    main, sides, scalars = _split_inputs(cplan, inputs)
    if isinstance(main, CompressedMatrix):
        main = main.decompress()
    rows, _ = main.shape
    side_tiles = []
    for spec, value in sides:
        handle = SideInput(
            value if not isinstance(value, CompressedMatrix)
            else value.decompress()
        )
        side_tiles.append(
            handle.dense() if spec.access is Access.SIDE_FULL
            else handle.row_tile(0, rows)
        )
    if main.is_sparse:
        # kernel_supported admitted this input: the body is
        # CSR-main-safe (main feeds matmuls only), so the kernel runs
        # on the CSR directly without densifying.
        a = main.to_csr()
    else:
        a = main.to_dense()
    raw = kernel.entry(a, side_tiles, scalars)

    out = cplan.out_type
    if out in (OutType.NO_AGG, OutType.ROW_AGG):
        return MatrixBlock(raw).examine_representation()
    if out is OutType.FULL_AGG:
        return float(raw)
    if out in (OutType.COL_AGG, OutType.COL_AGG_T):
        return MatrixBlock(np.asarray(raw)).examine_representation()
    raise RuntimeExecError(f"bad row out type {out}")


# ----------------------------------------------------------------------
# Outer driver
# ----------------------------------------------------------------------
def _execute_outer(operator, kernel, inputs, config):
    """Outer-template execution over batched row ranges.

    Replaces the interpreted per-row Python loop: each batch evaluates
    ``uv`` for all its non-zeros in one einsum, runs the body once, and
    folds the W-side accumulation into a block matmul (chunk-CSR
    ``S @ W`` / ``S.T @ W`` for sparse drivers).
    """
    import scipy.sparse as sp

    from repro.runtime.skeletons import _as_float

    cplan = operator.cplan
    driver = inputs[cplan.main_index]
    if isinstance(driver, CompressedMatrix):
        driver = driver.decompress()
    u_arr = _dense_of(inputs[cplan.u_index])
    v_arr = _dense_of(inputs[cplan.v_index])
    if cplan.v_transposed:
        v_arr = np.ascontiguousarray(v_arr.T)
    w_arr = _dense_of(inputs[cplan.w_index]) if cplan.w_index >= 0 else None

    side_handles = []
    scalars: list[float] = []
    for idx, (spec, value) in enumerate(zip(cplan.inputs, inputs)):
        if idx in (cplan.main_index, cplan.u_index, cplan.v_index,
                   cplan.w_index):
            continue
        if spec.access is Access.SCALAR:
            scalars.append(_as_float(value))
        else:
            side_handles.append(SideInput(
                value if not isinstance(value, CompressedMatrix)
                else value.decompress()
            ))

    rows, cols = driver.shape
    rank = max(1, u_arr.shape[1])
    budget = max(1024, getattr(config, "kernel_chunk_cells", 1 << 22) // rank)
    out_type = cplan.out_type
    genk = kernel.entry

    if out_type is OutType.OUTER_FULL_AGG:
        acc = 0.0
    elif out_type is OutType.OUTER_RIGHT:
        acc = np.zeros((rows, w_arr.shape[1]))
    elif out_type is OutType.OUTER_LEFT:
        acc = np.zeros((cols, w_arr.shape[1]))
    else:  # OUTER_NO_AGG
        acc = None

    if driver.is_sparse:
        csr = driver.to_csr()
        indptr, indices, data = csr.indptr, csr.indices, csr.data
        out_data = (
            np.empty(csr.nnz) if out_type is OutType.OUTER_NO_AGG else None
        )
        for r0, r1, lo, hi in _csr_row_chunks(indptr, rows, budget):
            if hi == lo:
                continue
            col_idx = indices[lo:hi]
            row_idx = np.repeat(
                np.arange(r0, r1), np.diff(indptr[r0:r1 + 1])
            )
            xv = data[lo:hi]
            uv = np.einsum("ij,ij->i", u_arr[row_idx], v_arr[col_idx])
            side_vals = [s.gather(row_idx, col_idx) for s in side_handles]
            w_vals = np.broadcast_to(genk(xv, uv, side_vals, scalars),
                                     xv.shape)
            if out_type is OutType.OUTER_FULL_AGG:
                acc += float(np.sum(w_vals))
            elif out_type is OutType.OUTER_RIGHT:
                chunk = sp.csr_matrix(
                    (np.ascontiguousarray(w_vals), col_idx,
                     indptr[r0:r1 + 1] - lo),
                    shape=(r1 - r0, cols),
                )
                acc[r0:r1] = chunk @ w_arr
            elif out_type is OutType.OUTER_LEFT:
                chunk = sp.csr_matrix(
                    (np.ascontiguousarray(w_vals), col_idx,
                     indptr[r0:r1 + 1] - lo),
                    shape=(r1 - r0, cols),
                )
                acc += chunk.T @ w_arr[r0:r1]
            else:
                out_data[lo:hi] = w_vals
        if out_type is OutType.OUTER_NO_AGG:
            result = sp.csr_matrix(
                (out_data, indices.copy(), indptr.copy()), shape=(rows, cols)
            )
            return MatrixBlock(result).examine_representation()
    else:
        arr = driver.to_dense()
        v_t = v_arr.T
        bs = max(16, budget // max(1, cols))
        out_dense = (
            np.empty((rows, cols)) if out_type is OutType.OUTER_NO_AGG
            else None
        )
        for r0 in range(0, rows, bs):
            r1 = min(rows, r0 + bs)
            xv = arr[r0:r1]
            uv = u_arr[r0:r1] @ v_t
            side_vals = [s.row_tile(r0, r1) for s in side_handles]
            w_vals = np.broadcast_to(genk(xv, uv, side_vals, scalars),
                                     xv.shape)
            if out_type is OutType.OUTER_FULL_AGG:
                acc += float(np.sum(w_vals))
            elif out_type is OutType.OUTER_RIGHT:
                acc[r0:r1] = w_vals @ w_arr
            elif out_type is OutType.OUTER_LEFT:
                acc += w_vals.T @ w_arr[r0:r1]
            else:
                out_dense[r0:r1] = w_vals
        if out_type is OutType.OUTER_NO_AGG:
            return MatrixBlock(out_dense).examine_representation()

    if out_type is OutType.OUTER_FULL_AGG:
        return float(acc)
    return MatrixBlock(acc).examine_representation()


def _dense_of(value) -> np.ndarray:
    if isinstance(value, CompressedMatrix):
        return value.decompress().to_dense()
    return value.to_dense()
