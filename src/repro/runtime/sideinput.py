"""Side-input access for fused-operator skeletons.

The paper's skeletons expose side inputs through a stateless
``getValue`` abstraction backed by stateful iterators for sparse data.
Here a :class:`SideInput` prepares row-aligned tile views and per-cell
gathers for dense, sparse, and vector-shaped sides.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.matrix import MatrixBlock


class SideInput:
    """Wraps one side input of a fused operator."""

    def __init__(self, block: MatrixBlock):
        self.block = block
        self.rows, self.cols = block.shape
        self._dense_cache: np.ndarray | None = None

    def dense(self) -> np.ndarray:
        """Full dense view (cached; used for SIDE_FULL access)."""
        if self._dense_cache is None:
            self._dense_cache = self.block.to_dense()
        return self._dense_cache

    def row_tile(self, r0: int, r1: int) -> np.ndarray:
        """Rows [r0, r1) as a dense tile (SIDE_ROW access).

        Row and column vectors return broadcast-compatible views: a
        (1, m) row vector is shared across all tiles, a column vector
        yields a (bs, 1) slice.
        """
        if self.rows == 1:
            return self.dense()
        if self.block.is_sparse:
            return np.asarray(self.block.to_csr()[r0:r1].todense())
        return self.block.to_dense()[r0:r1]

    def gather(self, row_idx: np.ndarray, col_idx: np.ndarray) -> np.ndarray:
        """Per-cell values at (row_idx, col_idx) as a flat array.

        Vector-shaped sides broadcast along the missing dimension —
        this is the sparse-side analogue of the paper's
        ``getValue(b, rix, cix)``.
        """
        if self.rows == 1 and self.cols == 1:
            value = self.block.get(0, 0)
            return np.full(len(row_idx), value)
        if self.cols == 1:
            return self.dense()[row_idx, 0]
        if self.rows == 1:
            return self.dense()[0, col_idx]
        if self.block.is_sparse:
            csr = self.block.to_csr()
            return np.asarray(csr[row_idx, col_idx]).ravel()
        return self.dense()[row_idx, col_idx]

    def gather_row(self, row: int, col_idx: np.ndarray) -> np.ndarray:
        """Values of one row at the given columns (Outer template)."""
        if self.rows == 1 and self.cols == 1:
            return np.full(len(col_idx), self.block.get(0, 0))
        if self.cols == 1:
            return np.full(len(col_idx), self.dense()[row, 0])
        if self.rows == 1:
            return self.dense()[0, col_idx]
        if self.block.is_sparse:
            csr = self.block.to_csr()
            row_arr = np.asarray(csr[row].todense()).ravel()
            return row_arr[col_idx]
        return self.dense()[row, col_idx]
