"""Recursive-descent parser for the DML-subset language.

Grammar (precedence climbing, loosest to tightest):

    script    := stmt*
    stmt      := assign | if | while | for | expr
    assign    := ID ('=' | '<-') expr
    expr      := or
    or        := and ( ('|' | '||') and )*
    and       := cmp ( ('&' | '&&') cmp )*
    cmp       := add ( ('=='|'!='|'<'|'>'|'<='|'>=') add )?
    add       := mul ( ('+'|'-') mul )*
    mul       := power ( ('*'|'/'|'%*%') power )*
    power     := unary ( '^' power )?       # right associative
    unary     := ('-' | '!') unary | postfix
    postfix   := primary ( '[' index ']' )*
    primary   := NUM | ID | call | '(' expr ')'
    call      := ID '(' args ')'
"""

from __future__ import annotations

from repro.errors import LanguageError
from repro.lang.ast import (
    Assign,
    Binary,
    Call,
    Expr,
    ExprStmt,
    For,
    If,
    Index,
    InputDecl,
    Num,
    Script,
    Stmt,
    Str,
    Unary,
    Var,
    While,
)
from repro.lang.lexer import Token, tokenize


def parse(source: str) -> Script:
    """Parse a script into an AST."""
    return _Parser(tokenize(source)).parse_script()


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ---------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def match(self, kind: str, text: str | None = None) -> bool:
        token = self.peek()
        if token.kind != kind:
            return False
        if text is not None and token.text != text:
            return False
        self.advance()
        return True

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.peek()
        if token.kind != kind or (text is not None and token.text != text):
            want = text or kind
            raise LanguageError(
                f"expected {want!r}, found {token.text!r} at line {token.line}"
            )
        return self.advance()

    # -- statements ------------------------------------------------------
    def parse_script(self) -> Script:
        body: list[Stmt] = []
        while self.peek().kind != "eof":
            body.append(self.parse_stmt())
            self.match("op", ";")
        return Script(body)

    def parse_stmt(self) -> Stmt:
        token = self.peek()
        if token.kind == "kw" and token.text == "if":
            return self.parse_if()
        if token.kind == "kw" and token.text == "while":
            return self.parse_while()
        if token.kind == "kw" and token.text == "for":
            return self.parse_for()
        if token.kind == "kw" and token.text == "input":
            return self.parse_input_decl()
        if token.kind == "id" and self.peek(1).kind == "op" and self.peek(1).text in ("=", "<-"):
            name = self.advance().text
            self.advance()
            return Assign(name, self.parse_expr())
        return ExprStmt(self.parse_expr())

    def parse_input_decl(self) -> InputDecl:
        """``input X, y`` — declared external inputs (serving slots)."""
        self.expect("kw", "input")
        names = [self.expect("id").text]
        while self.match("op", ","):
            names.append(self.expect("id").text)
        return InputDecl(names)

    def parse_block(self) -> list[Stmt]:
        if self.match("op", "{"):
            body: list[Stmt] = []
            while not self.match("op", "}"):
                if self.peek().kind == "eof":
                    raise LanguageError("unterminated block")
                body.append(self.parse_stmt())
                self.match("op", ";")
            return body
        return [self.parse_stmt()]

    def parse_if(self) -> If:
        self.expect("kw", "if")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        then_body = self.parse_block()
        else_body: list[Stmt] = []
        if self.peek().kind == "kw" and self.peek().text == "else":
            self.advance()
            else_body = self.parse_block()
        return If(cond, then_body, else_body)

    def parse_while(self) -> While:
        self.expect("kw", "while")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        return While(cond, self.parse_block())

    def parse_for(self) -> For:
        self.expect("kw", "for")
        self.expect("op", "(")
        var = self.expect("id").text
        self.expect("kw", "in")
        start = self.parse_add()
        self.expect("op", ":")
        stop = self.parse_add()
        self.expect("op", ")")
        return For(var, start, stop, self.parse_block())

    # -- expressions -----------------------------------------------------
    def parse_expr(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        expr = self.parse_and()
        while self.peek().kind == "op" and self.peek().text in ("|", "||"):
            self.advance()
            expr = Binary("|", expr, self.parse_and())
        return expr

    def parse_and(self) -> Expr:
        expr = self.parse_cmp()
        while self.peek().kind == "op" and self.peek().text in ("&", "&&"):
            self.advance()
            expr = Binary("&", expr, self.parse_cmp())
        return expr

    def parse_cmp(self) -> Expr:
        expr = self.parse_add()
        token = self.peek()
        if token.kind == "op" and token.text in ("==", "!=", "<", ">", "<=", ">="):
            self.advance()
            return Binary(token.text, expr, self.parse_add())
        return expr

    def parse_add(self) -> Expr:
        expr = self.parse_mul()
        while self.peek().kind == "op" and self.peek().text in ("+", "-"):
            op = self.advance().text
            expr = Binary(op, expr, self.parse_mul())
        return expr

    def parse_mul(self) -> Expr:
        expr = self.parse_power()
        while self.peek().kind == "op" and self.peek().text in ("*", "/", "%*%"):
            op = self.advance().text
            expr = Binary(op, expr, self.parse_power())
        return expr

    def parse_power(self) -> Expr:
        expr = self.parse_unary()
        if self.peek().kind == "op" and self.peek().text == "^":
            self.advance()
            return Binary("^", expr, self.parse_power())
        return expr

    def parse_unary(self) -> Expr:
        token = self.peek()
        if token.kind == "op" and token.text in ("-", "!"):
            self.advance()
            return Unary(token.text, self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> Expr:
        expr = self.parse_primary()
        while self.peek().kind == "op" and self.peek().text == "[":
            self.advance()
            row_lo = row_hi = col_lo = col_hi = None
            if not (self.peek().kind == "op" and self.peek().text == ","):
                row_lo, row_hi = self.parse_range()
            self.expect("op", ",")
            if not (self.peek().kind == "op" and self.peek().text == "]"):
                col_lo, col_hi = self.parse_range()
            self.expect("op", "]")
            expr = Index(expr, row_lo, row_hi, col_lo, col_hi)
        return expr

    def parse_range(self) -> tuple[Expr, Expr]:
        lo = self.parse_add()
        if self.match("op", ":"):
            return lo, self.parse_add()
        return lo, lo

    def parse_primary(self) -> Expr:
        token = self.peek()
        if token.kind == "num":
            self.advance()
            return Num(float(token.text))
        if token.kind == "str":
            self.advance()
            return Str(token.text)
        if token.kind == "kw" and token.text in ("TRUE", "FALSE"):
            self.advance()
            return Num(1.0 if token.text == "TRUE" else 0.0)
        if token.kind == "id":
            name = self.advance().text
            if self.match("op", "("):
                args: list[Expr] = []
                kwargs: dict[str, Expr] = {}
                if not self.match("op", ")"):
                    while True:
                        if (
                            self.peek().kind == "id"
                            and self.peek(1).kind == "op"
                            and self.peek(1).text == "="
                        ):
                            key = self.advance().text
                            self.advance()
                            kwargs[key] = self.parse_expr()
                        else:
                            args.append(self.parse_expr())
                        if self.match("op", ")"):
                            break
                        self.expect("op", ",")
                return Call(name, args, kwargs)
            return Var(name)
        if token.kind == "op" and token.text == "(":
            self.advance()
            expr = self.parse_expr()
            self.expect("op", ")")
            return expr
        raise LanguageError(
            f"unexpected token {token.text!r} at line {token.line}"
        )
