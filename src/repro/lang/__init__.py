"""A DML-subset scripting language (R-like syntax).

SystemML scripts are parsed into a hierarchy of statement blocks
delineated by control flow; per block, DAGs of high-level operators are
compiled and executed (Section 2.1).  This package provides the same
front end at reproduction scale:

* :mod:`repro.lang.lexer`  — tokenizer,
* :mod:`repro.lang.parser` — recursive-descent parser to the AST,
* :mod:`repro.lang.interp` — statement-block interpreter that compiles
  straight-line blocks to HOP DAGs and hands them to an engine.
"""

from repro.lang.interp import run_script

__all__ = ["run_script"]
