"""AST node classes for the DML-subset language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


class Expr:
    """Base class for expressions."""


@dataclass
class Num(Expr):
    value: float


@dataclass
class Var(Expr):
    name: str


@dataclass
class Str(Expr):
    value: str


@dataclass
class Unary(Expr):
    op: str  # '-' or '!'
    operand: Expr


@dataclass
class Binary(Expr):
    op: str  # +, -, *, /, ^, %*%, comparisons, &, |
    left: Expr
    right: Expr


@dataclass
class Call(Expr):
    name: str
    args: list[Expr]
    kwargs: dict[str, Expr] = field(default_factory=dict)


@dataclass
class Index(Expr):
    """X[rows, cols]; missing parts are None (full range)."""

    target: Expr
    row_lo: Optional[Expr]
    row_hi: Optional[Expr]
    col_lo: Optional[Expr]
    col_hi: Optional[Expr]


class Stmt:
    """Base class for statements."""


@dataclass
class InputDecl(Stmt):
    """``input X, y`` — declares externally bound (served) inputs."""

    names: list[str]


@dataclass
class Assign(Stmt):
    name: str
    value: Expr


@dataclass
class ExprStmt(Stmt):
    value: Expr


@dataclass
class If(Stmt):
    cond: Expr
    then_body: list[Stmt]
    else_body: list[Stmt] = field(default_factory=list)


@dataclass
class While(Stmt):
    cond: Expr
    body: list[Stmt]


@dataclass
class For(Stmt):
    var: str
    start: Expr
    stop: Expr
    body: list[Stmt]


@dataclass
class Script:
    body: list[Stmt]


def declared_inputs(script: Script) -> tuple[str, ...]:
    """All names declared by top-level ``input`` statements, in order."""
    names: list[str] = []
    for stmt in script.body:
        if isinstance(stmt, InputDecl):
            names.extend(n for n in stmt.names if n not in names)
    return tuple(names)
