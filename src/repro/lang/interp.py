"""Statement-block interpreter for the DML-subset language.

Executes a parsed script against an execution engine.  Straight-line
assignments accumulate *lazily* as HOP expressions; whenever control
flow needs a scalar (a condition, loop bound, or ``as.scalar``), all
pending expressions flush as one multi-root DAG through the engine —
the statement-block semantics of SystemML, which is what exposes
cross-statement fusion and multi-aggregates to the code generator.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro import api
from repro.errors import LanguageError
from repro.hops.hop import DataOp, LiteralOp
from repro.lang import ast as A
from repro.lang.parser import parse
from repro.runtime.matrix import MatrixBlock

Value = Union[api.Mat, float]


def run_script(source: str, inputs: dict | None = None, engine=None) -> dict:
    """Parse and execute a script; returns the final variable bindings.

    ``inputs`` maps variable names to numpy arrays / MatrixBlocks /
    floats.  Matrix results come back as MatrixBlocks, scalars as
    floats.

    Without an explicit ``engine`` the process-wide shared engine is
    used, so repeated interpreter calls reuse warm plan and operator
    caches instead of paying a fresh compile pipeline per call.
    """
    if engine is None:
        from repro.compiler.execution import shared_engine

        engine = shared_engine("gen")
    interp = Interpreter(engine)
    for name, value in (inputs or {}).items():
        interp.bind(name, value)
    interp.execute(parse(source))
    interp.flush()
    return interp.exports()


class Interpreter:
    """Evaluates statements with lazy statement-block semantics."""

    def __init__(self, engine):
        self.engine = engine
        self.env: dict[str, Value] = {}

    # ------------------------------------------------------------------
    def bind(self, name: str, value) -> None:
        if isinstance(value, (int, float, np.floating, np.integer)):
            self.env[name] = float(value)
        elif isinstance(value, api.Mat):
            self.env[name] = value
        else:
            self.env[name] = api.matrix(value, name=name)

    def exports(self) -> dict:
        out = {}
        for name, value in self.env.items():
            if isinstance(value, api.Mat):
                hop = value.hop
                assert isinstance(hop, DataOp), "flush() must precede exports()"
                out[name] = hop.data
            else:
                out[name] = value
        return out

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def execute(self, node) -> None:
        if isinstance(node, A.Script):
            for stmt in node.body:
                self.execute(stmt)
            return
        if isinstance(node, A.Assign):
            self.env[node.name] = self.compile_expr(node.value)
            return
        if isinstance(node, A.InputDecl):
            missing = [n for n in node.names if n not in self.env]
            if missing:
                raise LanguageError(
                    f"declared input(s) not bound: {missing}"
                )
            return
        if isinstance(node, A.ExprStmt):
            self.compile_expr(node.value)
            return
        if isinstance(node, A.If):
            if self.force_scalar_expr(node.cond) != 0.0:
                for stmt in node.then_body:
                    self.execute(stmt)
            else:
                for stmt in node.else_body:
                    self.execute(stmt)
            return
        if isinstance(node, A.While):
            while self.force_scalar_expr(node.cond) != 0.0:
                for stmt in node.body:
                    self.execute(stmt)
                # Loop bodies are statement blocks: flush per iteration
                # (SystemML recompiles block DAGs during runtime).
                self.flush()
            return
        if isinstance(node, A.For):
            start = int(self.force_scalar_expr(node.start))
            stop = int(self.force_scalar_expr(node.stop))
            for i in range(start, stop + 1):
                self.env[node.var] = float(i)
                for stmt in node.body:
                    self.execute(stmt)
                self.flush()
            return
        raise LanguageError(f"cannot execute {type(node).__name__}")

    # ------------------------------------------------------------------
    # Flushing: evaluate all pending lazy expressions as one DAG
    # ------------------------------------------------------------------
    def _is_pending(self, value: Value) -> bool:
        return isinstance(value, api.Mat) and not isinstance(
            value.hop, (DataOp,)
        )

    def flush(self, extra: list[api.Mat] | None = None) -> list:
        pending_names = [n for n, v in self.env.items() if self._is_pending(v)]
        extra = extra or []
        exprs = [self.env[n] for n in pending_names] + extra
        if not exprs:
            return []
        results = api.eval_all(exprs, engine=self.engine)
        for name, result in zip(pending_names, results):
            if isinstance(result, float):
                self.env[name] = result
            else:
                self.env[name] = api.matrix(result, name=name)
        return results[len(pending_names):]

    def force_scalar_expr(self, expr: A.Expr) -> float:
        value = self.compile_expr(expr)
        return self.force_scalar(value)

    def force_scalar(self, value: Value) -> float:
        if isinstance(value, float):
            return value
        if isinstance(value.hop, LiteralOp):
            return value.hop.value
        if not value.hop.is_scalar and not value.hop.dims == (1, 1):
            raise LanguageError("expected a scalar expression")
        (result,) = self.flush([value])
        if isinstance(result, MatrixBlock):
            return result.as_scalar()
        return float(result)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def compile_expr(self, expr: A.Expr) -> Value:
        if isinstance(expr, A.Num):
            return expr.value
        if isinstance(expr, A.Str):
            raise LanguageError("string values are only valid as arguments")
        if isinstance(expr, A.Var):
            if expr.name not in self.env:
                raise LanguageError(f"undefined variable '{expr.name}'")
            return self.env[expr.name]
        if isinstance(expr, A.Unary):
            operand = self.compile_expr(expr.operand)
            if expr.op == "-":
                return -operand if isinstance(operand, float) else -operand
            if isinstance(operand, float):
                return 0.0 if operand != 0 else 1.0
            return api.logical_not(operand)
        if isinstance(expr, A.Binary):
            return self._binary(expr)
        if isinstance(expr, A.Index):
            return self._index(expr)
        if isinstance(expr, A.Call):
            return self._call(expr)
        raise LanguageError(f"cannot compile {type(expr).__name__}")

    def _binary(self, expr: A.Binary) -> Value:
        left = self.compile_expr(expr.left)
        right = self.compile_expr(expr.right)
        if expr.op == "%*%":
            if isinstance(left, float) or isinstance(right, float):
                raise LanguageError("%*% requires matrix operands")
            return left @ right
        if isinstance(left, float) and isinstance(right, float):
            from repro.runtime import ops as rops

            return float(rops.binary(expr.op, left, right))
        lhs = left if isinstance(left, api.Mat) else api.scalar(left)
        rhs = right if isinstance(right, api.Mat) else api.scalar(right)
        from repro.hops.hop import BinaryOp

        return api.Mat(BinaryOp(expr.op, lhs.hop, rhs.hop))

    def _index(self, expr: A.Index) -> Value:
        target = self.compile_expr(expr.target)
        if not isinstance(target, api.Mat):
            raise LanguageError("indexing requires a matrix")
        rows, cols = target.shape

        def bound(node, default):
            if node is None:
                return default
            return int(self.force_scalar_expr(node))

        row_lo = bound(expr.row_lo, 1)
        row_hi = bound(expr.row_hi, rows)
        col_lo = bound(expr.col_lo, 1)
        col_hi = bound(expr.col_hi, cols)
        # DML is 1-based with inclusive upper bounds.
        return target[row_lo - 1 : row_hi, col_lo - 1 : col_hi]

    # ------------------------------------------------------------------
    def _call(self, expr: A.Call) -> Value:
        name = expr.name
        args = [self.compile_expr(a) for a in expr.args]
        kwargs = {k: v for k, v in expr.kwargs.items()}

        def mat(value: Value) -> api.Mat:
            return value if isinstance(value, api.Mat) else api.scalar(value)

        unary_funcs = {
            "exp": api.exp, "log": api.log, "sqrt": api.sqrt, "abs": api.abs_,
            "sign": api.sign, "round": api.round_, "floor": api.floor,
            "ceil": api.ceil, "sigmoid": api.sigmoid, "cumsum": api.cumsum,
            "erf": api.erf, "normpdf": api.normpdf,
        }
        if name in unary_funcs:
            return unary_funcs[name](mat(args[0]))
        if name == "sum":
            return mat(args[0]).sum()
        if name == "mean":
            return mat(args[0]).mean()
        if name == "rowSums":
            return mat(args[0]).row_sums()
        if name == "colSums":
            return mat(args[0]).col_sums()
        if name == "rowMins":
            return mat(args[0]).row_mins()
        if name == "rowMaxs":
            return mat(args[0]).row_maxs()
        if name == "colMins":
            return mat(args[0]).col_mins()
        if name == "colMaxs":
            return mat(args[0]).col_maxs()
        if name in ("min", "max"):
            if len(args) == 1:
                return mat(args[0]).min() if name == "min" else mat(args[0]).max()
            func = api.minimum if name == "min" else api.maximum
            return func(args[0], args[1])
        if name == "t":
            return mat(args[0]).T
        if name == "ifelse":
            return api.ifelse(args[0], args[1], args[2])
        if name == "cbind":
            return api.cbind(*[mat(a) for a in args])
        if name == "rbind":
            return api.rbind(*[mat(a) for a in args])
        if name == "nrow":
            return float(mat(args[0]).hop.rows)
        if name == "ncol":
            return float(mat(args[0]).hop.cols)
        if name == "as.scalar":
            return self.force_scalar(args[0])
        if name == "rand":
            return self._rand(args, kwargs)
        if name == "matrix":
            value = self.force_scalar(args[0]) if args else 0.0
            rows = int(self.force_scalar_expr(kwargs["rows"]))
            cols = int(self.force_scalar_expr(kwargs["cols"]))
            return api.matrix(np.full((rows, cols), value), name="matrix")
        raise LanguageError(f"unknown function '{name}'")

    def _rand(self, args, kwargs) -> api.Mat:
        rows = int(self.force_scalar_expr(kwargs["rows"]))
        cols = int(self.force_scalar_expr(kwargs["cols"]))
        sparsity = (
            self.force_scalar_expr(kwargs["sparsity"]) if "sparsity" in kwargs else 1.0
        )
        low = self.force_scalar_expr(kwargs["min"]) if "min" in kwargs else 0.0
        high = self.force_scalar_expr(kwargs["max"]) if "max" in kwargs else 1.0
        seed = (
            int(self.force_scalar_expr(kwargs["seed"])) if "seed" in kwargs else None
        )
        return api.matrix(
            MatrixBlock.rand(rows, cols, sparsity=sparsity, low=low, high=high, seed=seed),
            name="rand",
        )


class TracingInterpreter(Interpreter):
    """Symbolic interpreter used to prepare scripts for serving.

    Nothing executes: statements accumulate into one lazy multi-root
    DAG over the (symbolic) input slots.  Control flow that resolves
    from scalar values unrolls into the trace; anything that would need
    matrix data at trace time raises ``ServingError`` — such scripts
    must run through the regular interpreter instead.

    ``dim_reads`` records symbolic inputs whose dimensions leaked into
    trace-time scalars (``nrow``/``ncol``): such scalars bake the
    traced shape into the plan, so a stacked micro-batch would bake the
    *stacked* row count — the serving layer refuses to batch those.
    """

    def __init__(self, engine):
        super().__init__(engine)
        self.dim_reads: set[str] = set()

    def _call(self, expr):
        if expr.name in ("nrow", "ncol"):
            target = self.compile_expr(expr.args[0])
            if isinstance(target, api.Mat):
                from repro.hops.hop import collect_dag
                from repro.serve.symbolic import SymbolicBlock

                for hop in collect_dag([target.hop]):
                    if isinstance(hop, DataOp) and isinstance(
                            hop.data, SymbolicBlock):
                        self.dim_reads.add(hop.data.name)
        return super()._call(expr)

    def flush(self, extra: list[api.Mat] | None = None) -> list:
        from repro.errors import ServingError

        if extra:
            raise ServingError(
                "prepared scripts cannot force matrix values at compile "
                "time (as.scalar over a matrix expression)"
            )
        # Statement-block boundaries (loop iterations) stay lazy: the
        # whole script lowers into a single prepared Program.
        return []

    def force_scalar(self, value) -> float:
        from repro.errors import ServingError

        if isinstance(value, float):
            return value
        if isinstance(value.hop, LiteralOp):
            return value.hop.value
        raise ServingError(
            "prepared scripts cannot branch on matrix data; conditions "
            "and bounds must resolve from scalar inputs"
        )
