"""Tokenizer for the DML-subset scripting language."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LanguageError

KEYWORDS = {
    "if", "else", "while", "for", "in", "function", "return",
    "input", "TRUE", "FALSE",
}

# Multi-character operators first (maximal munch).
OPERATORS = [
    "%*%", "<-", "==", "!=", "<=", ">=", "&&", "||", "->",
    "+", "-", "*", "/", "^", "<", ">", "=", "(", ")", "{", "}",
    "[", "]", ",", ";", ":", "!", "&", "|",
]


@dataclass(frozen=True)
class Token:
    kind: str  # 'num', 'id', 'str', 'op', 'kw', 'eof'
    text: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"{self.kind}:{self.text!r}@{self.line}:{self.col}"


def tokenize(source: str) -> list[Token]:
    """Split a script into tokens; raises LanguageError on bad input."""
    tokens: list[Token] = []
    line, col = 1, 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "#":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            while i < n and (source[i].isdigit() or source[i] == "."):
                i += 1
            if i < n and source[i] in "eE":
                i += 1
                if i < n and source[i] in "+-":
                    i += 1
                while i < n and source[i].isdigit():
                    i += 1
            text = source[start:i]
            tokens.append(Token("num", text, line, col))
            col += i - start
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] in "_."):
                i += 1
            text = source[start:i]
            kind = "kw" if text in KEYWORDS else "id"
            tokens.append(Token(kind, text, line, col))
            col += i - start
            continue
        if ch == '"':
            start = i
            i += 1
            while i < n and source[i] != '"':
                i += 1
            if i >= n:
                raise LanguageError(f"unterminated string at line {line}")
            i += 1
            tokens.append(Token("str", source[start + 1 : i - 1], line, col))
            col += i - start
            continue
        matched = None
        for op in OPERATORS:
            if source.startswith(op, i):
                matched = op
                break
        if matched is None:
            raise LanguageError(f"unexpected character {ch!r} at line {line}:{col}")
        tokens.append(Token("op", matched, line, col))
        i += len(matched)
        col += len(matched)
    tokens.append(Token("eof", "", line, col))
    return tokens
