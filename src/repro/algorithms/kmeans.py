"""K-Means clustering (Lloyd's algorithm), following SystemML's script.

Per iteration: squared Euclidean distances via

    D = -2 * X %*% t(C) + rowSums(C^2)  (+ rowSums(X^2), constant)

assignments via ``P = (D <= rowMins(D))`` with tie normalization, and
the centroid update ``C = (t(P) %*% X) / t(colSums(P))``.  The distance
and assignment expressions are large fused Cell/Row chains; the
objective is a fused multi-aggregate.
"""

from __future__ import annotations

import numpy as np

from repro import api
from repro.algorithms.common import FitResult, as_block, default_engine, evaluate, leaf
from repro.runtime.matrix import MatrixBlock


def kmeans(x, n_centroids: int = 5, engine=None, tol: float = 1e-12,
           max_iter: int = 20, seed: int = 0) -> FitResult:
    """Cluster rows of x into ``n_centroids`` groups (one run).

    Returns centroids plus the within-cluster sum of squares per
    iteration.
    """
    engine = engine or default_engine()
    x_block = as_block(x)
    n, m = x_block.shape
    rng = np.random.default_rng(seed)
    centroid_block = MatrixBlock(
        x_block.to_dense()[rng.choice(n, size=n_centroids, replace=False)]
    )

    # rowSums(X^2) is loop-invariant (matches the SystemML script).
    X = leaf(x_block, "X")
    (x_sq_block,) = evaluate(engine, (X * X).row_sums())

    losses: list[float] = []
    iteration = 0
    prev_loss = np.inf
    while iteration < max_iter:
        X, C = leaf(x_block, "X"), leaf(centroid_block, "C")
        x_sq = leaf(x_sq_block, "Xsq")
        # Distances without the constant rowSums(X^2) term; the
        # objective adds it back (fused row/cell chains).
        d_part = -2.0 * (X @ C.T) + (C * C).row_sums().T
        p_raw = d_part <= d_part.row_mins()
        # Normalize ties so each row sums to one.
        p_norm = p_raw / p_raw.row_sums()
        (p_block, wcss) = evaluate(
            engine,
            p_norm,
            (x_sq + (p_raw * d_part).row_mins()).sum(),
        )
        losses.append(wcss)

        # Centroid update (t(P) %*% X row template, fused divide).
        X, P = leaf(x_block, "X"), leaf(p_block, "P")
        (centroid_block,) = evaluate(
            engine, (P.T @ X) / api.maximum(P.col_sums().T, 1e-30)
        )
        iteration += 1
        if abs(prev_loss - wcss) <= tol * max(abs(prev_loss), 1.0):
            break
        prev_loss = wcss

    return FitResult(
        model={"centroids": centroid_block},
        losses=losses,
        n_outer_iterations=iteration,
    )
