"""Two-layer sigmoid autoencoder with mini-batch SGD (Table 2).

Architecture 784 -> H1 -> H2 -> H1 -> 784 (H1=500, H2=2 in the paper,
scaled at call sites), squared reconstruction loss.  The forward and
backward passes are chains of matrix multiplies with fused element-wise
activations and their derivatives — the paper's compute-intensive,
mini-batch workload where fusion still buys ~2x (Table 5).
"""

from __future__ import annotations

import numpy as np

from repro import api
from repro.algorithms.common import FitResult, as_block, default_engine, evaluate, leaf
from repro.runtime.matrix import MatrixBlock


def autoencoder(x, h1: int = 500, h2: int = 2, engine=None,
                batch_size: int = 512, learning_rate: float = 0.01,
                n_epochs: int = 1, seed: int = 0) -> FitResult:
    """Train a 2-layer autoencoder; one epoch is nrow(X)/batch steps.

    Returns the four weight matrices / biases and per-batch losses.
    """
    engine = engine or default_engine()
    x_block = as_block(x)
    n, m = x_block.shape
    rng = np.random.default_rng(seed)

    def init(rows, cols):
        scale = np.sqrt(6.0 / (rows + cols))
        return MatrixBlock(rng.uniform(-scale, scale, (rows, cols)))

    w1, w2 = init(m, h1), init(h1, h2)
    w3, w4 = init(h2, h1), init(h1, m)
    b1 = MatrixBlock(np.zeros((1, h1)))
    b2 = MatrixBlock(np.zeros((1, h2)))
    b3 = MatrixBlock(np.zeros((1, h1)))
    b4 = MatrixBlock(np.zeros((1, m)))

    dense_x = x_block.to_dense()
    losses: list[float] = []
    n_batches = 0
    for _ in range(n_epochs):
        order = rng.permutation(n)
        for start in range(0, n - batch_size + 1, batch_size):
            batch = MatrixBlock(dense_x[order[start : start + batch_size]])
            (w1, w2, w3, w4, b1, b2, b3, b4, loss) = _sgd_step(
                engine, batch, w1, w2, w3, w4, b1, b2, b3, b4, learning_rate
            )
            losses.append(loss)
            n_batches += 1

    return FitResult(
        model={
            "W1": w1, "W2": w2, "W3": w3, "W4": w4,
            "b1": b1, "b2": b2, "b3": b3, "b4": b4,
        },
        losses=losses,
        n_outer_iterations=n_batches,
    )


def _sgd_step(engine, batch, w1, w2, w3, w4, b1, b2, b3, b4, lr):
    """One forward/backward/update pass as fused statement blocks."""
    X = leaf(batch, "X")
    W1, W2 = leaf(w1, "W1"), leaf(w2, "W2")
    W3, W4 = leaf(w3, "W3"), leaf(w4, "W4")
    B1, B2 = leaf(b1, "b1"), leaf(b2, "b2")
    B3, B4 = leaf(b3, "b3"), leaf(b4, "b4")

    # Forward: fused matmult + bias + sigmoid rows.
    h1_act = api.sigmoid(X @ W1 + B1)
    h2_act = api.sigmoid(h1_act @ W2 + B2)
    h3_act = api.sigmoid(h2_act @ W3 + B3)
    x_hat = api.sigmoid(h3_act @ W4 + B4)
    (h1_b, h2_b, h3_b, xhat_b, loss) = evaluate(
        engine, h1_act, h2_act, h3_act, x_hat,
        ((x_hat - X) * (x_hat - X)).sum(),
    )

    # Backward: deltas with fused sprop (sigmoid derivative) chains.
    X = leaf(batch, "X")
    H1, H2, H3, XH = leaf(h1_b, "H1"), leaf(h2_b, "H2"), leaf(h3_b, "H3"), leaf(xhat_b, "Xh")
    W2, W3, W4 = leaf(w2, "W2"), leaf(w3, "W3"), leaf(w4, "W4")
    d4 = (XH - X) * api.sprop(XH)
    d3 = (d4 @ W4.T) * api.sprop(H3)
    d2 = (d3 @ W3.T) * api.sprop(H2)
    d1 = (d2 @ W2.T) * api.sprop(H1)
    (d4_b, d3_b, d2_b, d1_b) = evaluate(engine, d4, d3, d2, d1)

    # Updates: t(A) %*% D row templates plus colSums for biases.
    bs = float(batch.rows)
    X = leaf(batch, "X")
    H1, H2, H3 = leaf(h1_b, "H1"), leaf(h2_b, "H2"), leaf(h3_b, "H3")
    D1, D2 = leaf(d1_b, "D1"), leaf(d2_b, "D2")
    D3, D4 = leaf(d3_b, "D3"), leaf(d4_b, "D4")
    W1, W2 = leaf(w1, "W1"), leaf(w2, "W2")
    W3, W4 = leaf(w3, "W3"), leaf(w4, "W4")
    B1, B2 = leaf(b1, "b1"), leaf(b2, "b2")
    B3, B4 = leaf(b3, "b3"), leaf(b4, "b4")
    results = evaluate(
        engine,
        W1 - (lr / bs) * (X.T @ D1),
        W2 - (lr / bs) * (H1.T @ D2),
        W3 - (lr / bs) * (H2.T @ D3),
        W4 - (lr / bs) * (H3.T @ D4),
        B1 - (lr / bs) * D1.col_sums(),
        B2 - (lr / bs) * D2.col_sums(),
        B3 - (lr / bs) * D3.col_sums(),
        B4 - (lr / bs) * D4.col_sums(),
    )
    return (*results, loss)
