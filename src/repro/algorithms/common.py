"""Shared helpers for the algorithm implementations."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import api
from repro.runtime.matrix import MatrixBlock


@dataclass
class FitResult:
    """Outcome of one algorithm run."""

    model: dict
    losses: list[float] = field(default_factory=list)
    n_outer_iterations: int = 0

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


def default_engine():
    from repro.compiler.execution import Engine

    return Engine(mode="gen")


def as_block(value) -> MatrixBlock:
    """Coerce user input to a MatrixBlock."""
    if isinstance(value, MatrixBlock):
        return value
    return MatrixBlock(np.asarray(value, dtype=np.float64))


def leaf(block: MatrixBlock, name: str) -> api.Mat:
    """Fresh input leaf (per-iteration DAG construction)."""
    return api.matrix(block, name=name)


def evaluate(engine, *exprs):
    """Evaluate expressions as one statement-block DAG."""
    return api.eval_all(list(exprs), engine=engine)
