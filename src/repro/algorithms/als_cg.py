"""ALS-CG: alternating least squares via conjugate gradient (rank-r
matrix factorization with weighted-L2 regularization).

The inner-loop update rule is Expression (1) of the paper,

    ((X != 0) * (U %*% t(V))) %*% V + lambda * U,

the sparsity-exploiting Outer-template pattern: the CG Hessian-vector
products and the loss ``sum((X - U t(V))^2 * (X != 0))`` must never
materialize the dense ``U V^T`` — with basic operators or bad fusion
plans this blows up (the paper's N/A entries in Table 5).
"""

from __future__ import annotations

import numpy as np

from repro import api
from repro.algorithms.common import FitResult, as_block, default_engine, evaluate, leaf
from repro.runtime.matrix import MatrixBlock


def _cg_factor_update(engine, x_block, fixed_block, target_block, lam,
                      max_inner, transpose_driver):
    """One CG solve for a factor, using Expression (1) as the matvec.

    For the U update (``transpose_driver=False``) the matvec is
    ``((X != 0) * (S %*% t(V))) %*% V + lam * S``; the V update swaps
    the roles via the transposed driver.
    """
    # Gradient: ((X != 0) * (T t(F))) F - X F + lam T.  Splitting off
    # the X F term keeps the first term in Expression (1) form (the
    # sparsity-exploiting Outer pattern); guard * X == X makes the two
    # formulations algebraically identical.
    X = leaf(x_block, "X")
    T, F = leaf(target_block, "T"), leaf(fixed_block, "F")
    guard = X != 0.0
    (grad_block,) = evaluate(
        engine, (guard * (T @ F.T)) @ F - X @ F + lam * T
    )

    r_block = grad_block
    d_block = MatrixBlock(-grad_block.to_dense())
    (rr_old,) = evaluate(engine, (leaf(r_block, "r") * leaf(r_block, "r")).sum())
    rr_init = rr_old
    delta_block = MatrixBlock(np.zeros(target_block.shape))
    for _ in range(max_inner):
        if rr_old <= max(1e-16 * rr_init, 1e-300):
            break
        X = leaf(x_block, "X")
        D, F = leaf(d_block, "D"), leaf(fixed_block, "F")
        guard = X != 0.0
        # Expression (1): the Outer-template Hessian-vector product.
        (hd_block,) = evaluate(engine, (guard * (D @ F.T)) @ F + lam * D)
        (dhd,) = evaluate(engine, (leaf(d_block, "D") * leaf(hd_block, "HD")).sum())
        if dhd <= 0:
            break
        alpha = rr_old / dhd
        delta, d_leaf = leaf(delta_block, "dT"), leaf(d_block, "D")
        r_leaf, hd_leaf = leaf(r_block, "r"), leaf(hd_block, "HD")
        (delta_block, r_block, rr_new) = evaluate(
            engine,
            delta + alpha * d_leaf,
            r_leaf + alpha * hd_leaf,
            ((r_leaf + alpha * hd_leaf) * (r_leaf + alpha * hd_leaf)).sum(),
        )
        beta = rr_new / rr_old if rr_old > 0 else 0.0
        r_leaf, d_leaf = leaf(r_block, "r"), leaf(d_block, "D")
        (d_block,) = evaluate(engine, -r_leaf + beta * d_leaf)
        rr_old = rr_new

    T, delta = leaf(target_block, "T"), leaf(delta_block, "dT")
    (updated,) = evaluate(engine, T + delta)
    return updated


def als_cg(x, rank: int = 20, engine=None, lam: float = 1e-3,
           tol: float = 1e-12, max_iter: int = 20, max_inner: int | None = None,
           seed: int = 0) -> FitResult:
    """Factorize a (sparse) matrix X ~ U V^T.

    ``max_inner`` defaults to the rank, matching Table 2 (MaxIter
    20/rank).  Returns factors U, V and the weighted squared loss per
    outer iteration.
    """
    engine = engine or default_engine()
    x_block = as_block(x)
    n, m = x_block.shape
    max_inner = max_inner or rank
    rng = np.random.default_rng(seed)
    u_block = MatrixBlock(rng.uniform(0.1, 1.0, (n, rank)))
    v_block = MatrixBlock(rng.uniform(0.1, 1.0, (m, rank)))

    # The transposed driver for the V update is loop-invariant.
    (xt_block,) = evaluate(engine, leaf(x_block, "X").T)

    losses: list[float] = []
    iteration = 0
    while iteration < max_iter:
        u_block = _cg_factor_update(
            engine, x_block, v_block, u_block, lam, max_inner, False
        )
        v_block = _cg_factor_update(
            engine, xt_block, u_block, v_block, lam, max_inner, True
        )

        # Sparsity-exploiting loss (wsloss pattern, Figure 1(d)).
        X = leaf(x_block, "X")
        U, V = leaf(u_block, "U"), leaf(v_block, "V")
        (loss_val,) = evaluate(
            engine,
            (((X - U @ V.T) ** 2.0) * (X != 0.0)).sum()
            + lam * ((U * U).sum() + (V * V).sum()),
        )
        losses.append(loss_val)
        iteration += 1
        if len(losses) >= 2 and abs(losses[-2] - losses[-1]) <= tol * max(
            abs(losses[-2]), 1.0
        ):
            break

    return FitResult(
        model={"U": u_block, "V": v_block},
        losses=losses,
        n_outer_iterations=iteration,
    )
