"""Generalized linear model: binomial family, probit link (Table 2).

Iteratively reweighted least squares (IRLS) with an inner conjugate
gradient solve of the weighted normal equations.  The CG matvec
``t(X) %*% (w * (X %*% p))`` exercises the Row template with fused
cell-wise weighting; the link/mean computations exercise Cell chains
over ``erf``/``normpdf``.
"""

from __future__ import annotations

import numpy as np

from repro import api
from repro.algorithms.common import FitResult, as_block, default_engine, evaluate, leaf
from repro.runtime.matrix import MatrixBlock

_SQRT2 = float(np.sqrt(2.0))


def glm_binomial_probit(x, y, engine=None, lam: float = 1e-3,
                        tol: float = 1e-12, max_iter: int = 20,
                        max_inner: int = 10) -> FitResult:
    """Fit a binomial GLM with probit link; labels y in {0, 1}.

    Returns coefficients and the deviance per outer iteration.
    """
    engine = engine or default_engine()
    x_block, y_block = as_block(x), as_block(y)
    n, m = x_block.shape
    beta_block = MatrixBlock(np.zeros((m, 1)))

    losses: list[float] = []
    iteration = 0
    while iteration < max_iter:
        # IRLS working response and weights (fused cell chains).
        X, Y, B = leaf(x_block, "X"), leaf(y_block, "Y"), leaf(beta_block, "B")
        eta = X @ B
        mu = 0.5 * (api.erf(eta / _SQRT2) + 1.0)
        mu_c = api.minimum(api.maximum(mu, 1e-10), 1.0 - 1e-10)
        phi = api.normpdf(eta)
        weights = (phi * phi) / (mu_c * (1.0 - mu_c))
        z_resid = (Y - mu_c) / api.maximum(phi, 1e-10)
        (w_block, z_block, eta_block, deviance) = evaluate(
            engine,
            weights,
            z_resid,
            eta,
            -2.0
            * (
                Y * api.log(mu_c) + (1.0 - Y) * api.log(1.0 - mu_c)
            ).sum(),
        )
        losses.append(deviance)

        # CG solve: (t(X) W X + lam I) d = t(X) W z.
        X, W, Z = leaf(x_block, "X"), leaf(w_block, "W"), leaf(z_block, "Z")
        (rhs_block,) = evaluate(engine, X.T @ (W * Z))
        d_sol = MatrixBlock(np.zeros((m, 1)))
        r_block = MatrixBlock(-rhs_block.to_dense())
        p_block = rhs_block
        (rr_old,) = evaluate(
            engine, (leaf(r_block, "r") * leaf(r_block, "r")).sum()
        )
        rr_init = rr_old
        for _ in range(max_inner):
            if rr_old <= max(tol * rr_init, 1e-300):
                break
            X, W, P = leaf(x_block, "X"), leaf(w_block, "W"), leaf(p_block, "p")
            (ap_block,) = evaluate(engine, X.T @ (W * (X @ P)) + lam * P)
            (p_ap,) = evaluate(
                engine, (leaf(p_block, "p") * leaf(ap_block, "Ap")).sum()
            )
            if p_ap <= 0:
                break
            alpha = rr_old / p_ap
            d_leaf, p_leaf = leaf(d_sol, "d"), leaf(p_block, "p")
            r_leaf, ap_leaf = leaf(r_block, "r"), leaf(ap_block, "Ap")
            (d_sol, r_block, rr_new) = evaluate(
                engine,
                d_leaf + alpha * p_leaf,
                r_leaf + alpha * ap_leaf,
                ((r_leaf + alpha * ap_leaf) * (r_leaf + alpha * ap_leaf)).sum(),
            )
            beta_cg = rr_new / rr_old if rr_old > 0 else 0.0
            r_leaf, p_leaf = leaf(r_block, "r"), leaf(p_block, "p")
            (p_block,) = evaluate(engine, -r_leaf + beta_cg * p_leaf)
            rr_old = rr_new

        B, D = leaf(beta_block, "B"), leaf(d_sol, "d")
        (beta_block, step_norm) = evaluate(engine, B + D, (D * D).sum())
        iteration += 1
        if step_norm < tol:
            break

    return FitResult(
        model={"beta": beta_block}, losses=losses, n_outer_iterations=iteration
    )
