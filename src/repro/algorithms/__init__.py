"""The six ML algorithms of the paper's evaluation (Table 2).

Each algorithm is implemented against the lazy expression API with
per-iteration DAG construction — the reproduction of SystemML's
statement blocks plus dynamic recompilation.  All algorithms accept an
execution engine, so every experimental configuration (Base / Fused /
Gen / Gen-FA / Gen-FNR) runs the identical algorithm code.
"""

from repro.algorithms.l2svm import l2svm
from repro.algorithms.mlogreg import mlogreg
from repro.algorithms.glm import glm_binomial_probit
from repro.algorithms.kmeans import kmeans
from repro.algorithms.als_cg import als_cg
from repro.algorithms.autoencoder import autoencoder

__all__ = [
    "l2svm",
    "mlogreg",
    "glm_binomial_probit",
    "kmeans",
    "als_cg",
    "autoencoder",
]
