"""Multinomial logistic regression via Newton-CG (MLogreg).

Follows the structure of SystemML's ``MultiLogReg``: an outer loop
computing class probabilities and the gradient, plus an inner
conjugate-gradient loop whose Hessian-vector product is Expression (2)
of the paper — the Figure 5 fusion pattern:

    Q = P[, 1:k] * (X %*% V)
    HV = t(X) %*% (Q - P[, 1:k] * rowSums(Q)) + lambda * V
"""

from __future__ import annotations

import numpy as np

from repro import api
from repro.algorithms.common import FitResult, as_block, default_engine, evaluate, leaf
from repro.runtime.matrix import MatrixBlock


def _probabilities(engine, x_block, beta_block):
    """P = softmax([X B, 0]) with the baseline class appended."""
    X, B = leaf(x_block, "X"), leaf(beta_block, "B")
    scores = X @ B
    (scores_b,) = evaluate(engine, scores)
    # Stable softmax over k-1 scores plus the implicit zero column.
    arr = scores_b.to_dense()
    full = np.hstack([arr, np.zeros((arr.shape[0], 1))])
    full -= full.max(axis=1, keepdims=True)
    expd = np.exp(full)
    probs = expd / expd.sum(axis=1, keepdims=True)
    return MatrixBlock(probs)


def mlogreg(x, labels, n_classes: int, engine=None, lam: float = 1e-3,
            tol: float = 1e-12, max_iter: int = 20,
            max_inner: int = 10) -> FitResult:
    """Train multinomial logistic regression.

    ``labels`` are in {1, .., n_classes}.  Returns the (m x k-1)
    coefficient matrix and the negative log-likelihood per iteration.
    """
    engine = engine or default_engine()
    x_block = as_block(x)
    labels_arr = as_block(labels).to_dense().ravel().astype(int)
    n, m = x_block.shape
    k = n_classes - 1
    y_full = np.zeros((n, n_classes))
    y_full[np.arange(n), labels_arr - 1] = 1.0
    y_block = MatrixBlock(y_full[:, :k])  # indicator of non-baseline classes

    beta_block = MatrixBlock(np.zeros((m, k)))
    losses: list[float] = []
    iteration = 0
    while iteration < max_iter:
        p_block = _probabilities(engine, x_block, beta_block)
        # Gradient: t(X) %*% (P[,1:k] - Y) + lambda * B (row template).
        X = leaf(x_block, "X")
        P, Y, B = leaf(p_block, "P"), leaf(y_block, "Y"), leaf(beta_block, "B")
        (grad_block, loss_val) = evaluate(
            engine,
            X.T @ (P[:, 0:k] - Y) + lam * B,
            -(Y * api.log(api.maximum(P[:, 0:k], 1e-15))).sum()
            + lam / 2.0 * (B * B).sum(),
        )
        losses.append(loss_val)

        # Inner CG: solve H dB = -grad with Expression (2) as H*V.
        r_block = grad_block
        d_block = MatrixBlock(-grad_block.to_dense())
        dbeta = MatrixBlock(np.zeros((m, k)))
        (rr_old,) = evaluate(
            engine, (leaf(r_block, "r") * leaf(r_block, "r")).sum()
        )
        rr_init = rr_old
        for _ in range(max_inner):
            if rr_old <= max(tol * rr_init, 1e-300):
                break
            X, P = leaf(x_block, "X"), leaf(p_block, "P")
            D = leaf(d_block, "D")
            q = P[:, 0:k] * (X @ D)
            hv = X.T @ (q - P[:, 0:k] * q.row_sums()) + lam * D
            (hv_block,) = evaluate(engine, hv)
            (dhd,) = evaluate(
                engine, (leaf(d_block, "D") * leaf(hv_block, "HV")).sum()
            )
            if dhd <= 0:
                break
            alpha = rr_old / dhd
            db, d_leaf = leaf(dbeta, "dB"), leaf(d_block, "D")
            r_leaf, hv_leaf = leaf(r_block, "r"), leaf(hv_block, "HV")
            (dbeta, r_block, rr_new) = evaluate(
                engine,
                db + alpha * d_leaf,
                r_leaf + alpha * hv_leaf,
                ((r_leaf + alpha * hv_leaf) * (r_leaf + alpha * hv_leaf)).sum(),
            )
            if rr_old == 0:
                break
            beta_cg = rr_new / rr_old
            r_leaf, d_leaf = leaf(r_block, "r"), leaf(d_block, "D")
            (d_block,) = evaluate(engine, -r_leaf + beta_cg * d_leaf)
            rr_old = rr_new

        B, dB = leaf(beta_block, "B"), leaf(dbeta, "dB")
        (beta_block, step_norm) = evaluate(engine, B + dB, (dB * dB).sum())
        iteration += 1
        if step_norm < tol:
            break

    return FitResult(
        model={"beta": beta_block}, losses=losses, n_outer_iterations=iteration
    )
