"""L2-regularized squared-hinge-loss SVM (binary), nonlinear CG.

Follows SystemML's ``l2-svm`` script: an outer conjugate-gradient loop
with an inner Newton line search.  Fusion opportunities per iteration:
multi-aggregates over shared ``Xd`` / ``out`` vectors, and the row-wise
``t(X) %*% (out * Y)`` gradient.
"""

from __future__ import annotations

from repro import api
from repro.algorithms.common import FitResult, as_block, default_engine, evaluate, leaf


def l2svm(x, y, engine=None, lam: float = 1e-3, tol: float = 1e-12,
          max_iter: int = 20, max_inner: int = 20) -> FitResult:
    """Train a binary L2SVM; labels must be in {-1, +1}.

    Returns the weight vector in ``result.model['w']`` and the squared
    gradient norms per outer iteration in ``result.losses``.
    """
    engine = engine or default_engine()
    x_block, y_block = as_block(x), as_block(y)
    n, m = x_block.shape

    # g_old = t(X) %*% Y ; s = g_old ; w = 0 ; Xw = 0
    X, Y = leaf(x_block, "X"), leaf(y_block, "Y")
    (g_old_b,) = evaluate(engine, X.T @ Y)
    s_block = g_old_b
    import numpy as np

    from repro.runtime.matrix import MatrixBlock

    w_block = MatrixBlock(np.zeros((m, 1)))
    xw_block = MatrixBlock(np.zeros((n, 1)))
    (g_old_norm,) = evaluate(
        engine, (leaf(g_old_b, "g") * leaf(g_old_b, "g")).sum()
    )

    losses: list[float] = []
    iteration = 0
    while iteration < max_iter:
        X, Y = leaf(x_block, "X"), leaf(y_block, "Y")
        w, s = leaf(w_block, "w"), leaf(s_block, "s")
        xw = leaf(xw_block, "Xw")
        # Block 1: directional quantities (Xd fused row operator).
        (xd_block, wd, dd) = evaluate(
            engine,
            X @ s,
            lam * (w * s).sum(),
            lam * (s * s).sum(),
        )

        # Inner Newton line search on the step size.
        step_sz = 0.0
        for _ in range(max_inner):
            xd = leaf(xd_block, "Xd")
            xw = leaf(xw_block, "Xw")
            Y = leaf(y_block, "Y")
            out = api.maximum(1.0 - Y * (xw + step_sz * xd), 0.0)
            # Multi-aggregates sharing out / Xd (Figure 1(c) pattern).
            (g_val, h_val) = evaluate(
                engine,
                wd + step_sz * dd - (out * Y * xd).sum(),
                dd + ((xd * xd) * (out > 0.0)).sum(),
            )
            if h_val == 0.0:
                break
            step = g_val / h_val
            step_sz -= step
            if step * step < 1e-18:
                break

        # Block 2: take the step, new gradient (row template t(X)%*%..).
        X, Y = leaf(x_block, "X"), leaf(y_block, "Y")
        w, s = leaf(w_block, "w"), leaf(s_block, "s")
        xd, xw = leaf(xd_block, "Xd"), leaf(xw_block, "Xw")
        new_w = w + step_sz * s
        new_xw = xw + step_sz * xd
        out = api.maximum(1.0 - Y * new_xw, 0.0)
        g_new = X.T @ (out * Y) - lam * new_w
        (w_block, xw_block, g_new_b, g_new_norm, loss_val) = evaluate(
            engine,
            new_w,
            new_xw,
            g_new,
            (g_new * g_new).sum(),
            (out * out).sum() + lam * (new_w * new_w).sum(),
        )
        losses.append(loss_val)
        iteration += 1
        if g_new_norm < tol * g_old_norm or g_old_norm == 0.0:
            break
        beta = g_new_norm / g_old_norm
        s_leaf, g_leaf = leaf(s_block, "s"), leaf(g_new_b, "g")
        (s_block,) = evaluate(engine, beta * s_leaf + g_leaf)
        g_old_norm = g_new_norm

    return FitResult(model={"w": w_block}, losses=losses,
                     n_outer_iterations=iteration)
