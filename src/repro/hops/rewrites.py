"""Static and dynamic HOP DAG rewrites, including CSE elimination.

SystemML applies size-independent (static) rewrites plus common
subexpression elimination before inter-procedural analysis, and
size-dependent (dynamic) rewrites afterwards (Section 2.1).  The code
generator runs after dynamic rewrites, so the rewrites below execute at
the start of every engine invocation.
"""

from __future__ import annotations

from repro.hops.hop import (
    AggUnaryOp,
    BinaryOp,
    DataOp,
    Hop,
    LiteralOp,
    ReorgOp,
    TernaryOp,
    UnaryOp,
    collect_dag,
    topological_order,
)
from repro.hops.types import AggDir, OpKind


def apply_rewrites(roots: list[Hop], enable_cse: bool = True) -> list[Hop]:
    """Run simplification rewrites and CSE; returns the new root list."""
    roots = _simplify(roots)
    if enable_cse:
        roots = eliminate_cse(roots)
        # CSE can expose new simplifications (e.g. shared double
        # transposes); one more pass reaches a fixpoint for our rules.
        roots = _simplify(roots)
    return roots


# ----------------------------------------------------------------------
# Algebraic simplifications
# ----------------------------------------------------------------------
def _simplify(roots: list[Hop]) -> list[Hop]:
    replaced: dict[int, Hop] = {}
    for hop in topological_order(roots):
        new = _simplify_hop(hop)
        if new is not hop:
            hop.rewire_to(new)
            replaced[hop.id] = new
    return [replaced.get(r.id, r) for r in roots]


def _literal_value(hop: Hop):
    return hop.value if isinstance(hop, LiteralOp) else None


def _simplify_hop(hop: Hop) -> Hop:
    if isinstance(hop, ReorgOp):
        inner = hop.inputs[0]
        if isinstance(inner, ReorgOp):  # t(t(X)) -> X
            return inner.inputs[0]
        return hop
    if isinstance(hop, UnaryOp):
        inner = hop.inputs[0]
        if hop.op == "neg" and isinstance(inner, UnaryOp) and inner.op == "neg":
            return inner.inputs[0]
        return hop
    if isinstance(hop, AggUnaryOp):
        inner = hop.inputs[0]
        if hop.direction is AggDir.FULL and isinstance(inner, ReorgOp):
            # sum(t(X)) -> sum(X)
            return AggUnaryOp(hop.agg_op, AggDir.FULL, inner.inputs[0])
        return hop
    if isinstance(hop, BinaryOp):
        return _simplify_binary(hop)
    if isinstance(hop, TernaryOp) and hop.op == "ifelse":
        cond = _literal_value(hop.inputs[0])
        if cond is not None:
            return hop.inputs[1] if cond != 0 else hop.inputs[2]
        return hop
    return hop


def _simplify_binary(hop: BinaryOp) -> Hop:
    left, right = hop.inputs
    lval, rval = _literal_value(left), _literal_value(right)
    op = hop.op
    if op == "*":
        if rval == 1.0:
            return left
        if lval == 1.0:
            return right
        if left is right and left.is_matrix:
            # X * X -> pow2(X): enables squared-value execution over
            # compressed dictionaries and sparse non-zeros.
            return UnaryOp("pow2", left)
    elif op == "/":
        if rval == 1.0:
            return left
    elif op == "+":
        if rval == 0.0:
            return left
        if lval == 0.0:
            return right
    elif op == "-":
        if rval == 0.0:
            return left
        if lval == 0.0 and right.is_matrix:
            return UnaryOp("neg", right)
    elif op == "^":
        if rval == 1.0:
            return left
        if rval == 2.0:
            return UnaryOp("pow2", left)
    if lval is not None and rval is not None:
        from repro.runtime import ops as rops

        return LiteralOp(rops.binary(op, lval, rval))
    return hop


# ----------------------------------------------------------------------
# Common subexpression elimination
# ----------------------------------------------------------------------
def _cse_key(hop: Hop, mapping: dict[int, int]):
    """A structural key; equal keys imply semantically equal hops."""
    input_keys = tuple(mapping[i.id] for i in hop.inputs)
    if isinstance(hop, DataOp):
        return ("data", id(hop.data))
    if isinstance(hop, LiteralOp):
        return ("lit", hop.value)
    if isinstance(hop, BinaryOp):
        ordered = input_keys
        if hop.op in {"+", "*", "min", "max", "==", "!=", "&", "|"}:
            ordered = tuple(sorted(input_keys))
        return ("b", hop.op, ordered)
    if isinstance(hop, UnaryOp):
        return ("u", hop.op, input_keys)
    if isinstance(hop, TernaryOp):
        return ("t", hop.op, input_keys)
    if isinstance(hop, AggUnaryOp):
        return ("ua", hop.agg_op.value, hop.direction.value, input_keys)
    if hop.kind is OpKind.AGG_BINARY:
        return ("ba", input_keys)
    if isinstance(hop, ReorgOp):
        return ("r", hop.op, input_keys)
    if hop.kind is OpKind.INDEX:
        return ("rix", hop.rl, hop.ru, hop.cl, hop.cu, input_keys)
    # Nary / spoof and anything else: never merged.
    return ("unique", hop.id)


def eliminate_cse(roots: list[Hop]) -> list[Hop]:
    """Merge structurally identical subexpressions into shared hops."""
    canonical: dict[tuple, Hop] = {}
    mapping: dict[int, int] = {}  # hop id -> canonical hop id
    replaced: dict[int, Hop] = {}
    for hop in topological_order(roots):
        key = _cse_key(hop, mapping)
        existing = canonical.get(key)
        if existing is None or existing is hop:
            canonical[key] = hop
            mapping[hop.id] = hop.id
        else:
            mapping[hop.id] = existing.id
            hop.rewire_to(existing)
            replaced[hop.id] = existing
    return [replaced.get(r.id, r) for r in roots]


def validate_dag(roots: list[Hop]) -> None:
    """Sanity-check parent/input symmetry (used by tests)."""
    for hop in collect_dag(roots):
        for hop_in in hop.inputs:
            assert any(p is hop for p in hop_in.parents), (
                f"{hop_in} missing parent link to {hop}"
            )
