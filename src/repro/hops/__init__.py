"""High-level operator (HOP) intermediate representation."""

from repro.hops.hop import (
    AggBinaryOp,
    AggUnaryOp,
    DataOp,
    Hop,
    IndexingOp,
    LiteralOp,
    NaryOp,
    ReorgOp,
    SpoofOp,
    TernaryOp,
    UnaryOp,
    BinaryOp,
    collect_dag,
    topological_order,
)
from repro.hops.types import AggDir, AggOp, ExecType, OpKind

__all__ = [
    "AggBinaryOp",
    "AggUnaryOp",
    "AggDir",
    "AggOp",
    "BinaryOp",
    "DataOp",
    "ExecType",
    "Hop",
    "IndexingOp",
    "LiteralOp",
    "NaryOp",
    "OpKind",
    "ReorgOp",
    "SpoofOp",
    "TernaryOp",
    "UnaryOp",
    "collect_dag",
    "topological_order",
]
