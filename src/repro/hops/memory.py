"""Memory estimates and FLOP counts per HOP.

Memory estimates drive execution-type selection (local vs distributed),
exactly as in SystemML's compiler (Section 2.1).  FLOP counts feed the
analytical cost model of Section 4.3.
"""

from __future__ import annotations

from repro.config import CodegenConfig
from repro.hops.hop import AggBinaryOp, DataOp, Hop
from repro.hops.types import OpKind
from repro.runtime.compressed import CompressedMatrix
from repro.runtime.matrix import recommend_format


def output_bytes(hop: Hop, threshold: float = 0.4) -> float:
    """Estimated in-memory size of the hop's output.

    The sparse (CSR) estimate charges 8B values plus 4B column indices
    per non-zero, and a ``rows + 1``-entry (4B) row-pointer array —
    column indices scale with nnz, indptr with rows.  A ``DataOp``
    bound to a compressed matrix reports the *actual* compressed
    footprint — that is what the serving admission controller holds
    resident, and the multiplier CLA buys in admitted concurrency.
    """
    if hop.is_scalar:
        return 8.0
    if isinstance(hop, DataOp) and isinstance(hop.data, CompressedMatrix):
        return hop.data.size_bytes
    if recommend_format(hop.rows, hop.cols, hop.nnz, threshold) == "sparse":
        return hop.nnz * 12.0 + (hop.rows + 1) * 4.0
    return hop.cells * 8.0


def operation_bytes(hop: Hop) -> float:
    """Memory footprint estimate: inputs + output resident at once."""
    total = output_bytes(hop)
    for hop_in in hop.inputs:
        total += output_bytes(hop_in)
    return total


def compute_flops(hop: Hop, config: CodegenConfig) -> float:
    """Estimated floating point operations to evaluate ``hop`` once.

    Sparse-input operations are scaled by the processed fraction; the
    per-op weights of expensive cell functions come from the config.
    """
    kind = hop.kind
    if kind in (OpKind.DATA, OpKind.LITERAL):
        return 0.0
    if kind is OpKind.AGG_BINARY:
        assert isinstance(hop, AggBinaryOp)
        left, right = hop.inputs
        density = min(left.sparsity, 1.0)
        return 2.0 * left.rows * left.cols * right.cols * max(density, 1e-12)
    if kind is OpKind.AGG_UNARY:
        hop_in = hop.inputs[0]
        return max(hop_in.cells * min(hop_in.sparsity, 1.0), 1.0)
    if kind in (OpKind.REORG, OpKind.INDEX, OpKind.NARY):
        return max(hop.cells, 1.0)
    # Cell-wise unary/binary/ternary.
    weight = 1.0
    op = getattr(hop, "op", None)
    if op is not None:
        weight = config.op_flop_weights.get(op, 1.0)
    cells = hop.cells if hop.is_matrix else 1
    return max(cells, 1.0) * weight


def exceeds_local_budget(hop: Hop, config: CodegenConfig) -> bool:
    """True if the operation does not fit the local memory budget."""
    return operation_bytes(hop) > config.local_mem_budget
