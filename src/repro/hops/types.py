"""Enumerations shared across the HOP IR and the codegen optimizer."""

from __future__ import annotations

from enum import Enum


class OpKind(Enum):
    """Classes of high-level operators."""

    DATA = "data"  # matrix input bound to a MatrixBlock
    LITERAL = "lit"  # scalar literal
    UNARY = "u"  # cell-wise unary (plus cumsum-style column ops)
    BINARY = "b"  # cell-wise binary with broadcasting
    TERNARY = "t"  # cell-wise ternary (+*, -*, ifelse)
    AGG_UNARY = "ua"  # aggregation (sum/min/max/... x full/row/col)
    AGG_BINARY = "ba"  # matrix multiplication ba(+*)
    REORG = "r"  # transpose
    INDEX = "rix"  # right indexing
    NARY = "nary"  # cbind / rbind
    SPOOF = "spoof"  # generated fused operator


class AggOp(Enum):
    """Aggregation functions."""

    SUM = "sum"
    SUM_SQ = "sumsq"
    MIN = "min"
    MAX = "max"
    MEAN = "mean"


class AggDir(Enum):
    """Aggregation directions (SystemML: full / row- / col-wise)."""

    FULL = "full"
    ROW = "row"
    COL = "col"


class ExecType(Enum):
    """Execution type of an operator in the runtime plan."""

    CP = "cp"  # single-node (control program)
    SPARK = "spark"  # simulated distributed


# Cell-wise unary ops eligible for fusion templates.  'cumsum' is a
# column operation and deliberately excluded.
CELLWISE_UNARY = {
    "exp",
    "log",
    "sqrt",
    "abs",
    "sign",
    "round",
    "floor",
    "ceil",
    "neg",
    "not",
    "sigmoid",
    "sprop",
    "pow2",
    "erf",
    "normpdf",
}

CELLWISE_BINARY = {
    "+",
    "-",
    "*",
    "/",
    "^",
    "min",
    "max",
    "==",
    "!=",
    "<",
    ">",
    "<=",
    ">=",
    "&",
    "|",
}

CELLWISE_TERNARY = {"+*", "-*", "ifelse"}

# Unary ops with f(0) == 0 (sparse-safe).
SPARSE_SAFE_UNARY = {"abs", "sign", "sqrt", "round", "floor", "ceil", "neg", "sprop", "pow2"}
