"""HOP DAG node classes with size and sparsity propagation.

Each statement-block expression compiles into a DAG of high-level
operators (HOPs).  Leaves are :class:`DataOp` (bound to a
:class:`~repro.runtime.matrix.MatrixBlock`) or :class:`LiteralOp`
scalars, so matrix dimensions and non-zero estimates propagate through
the entire DAG at construction time — the situation the paper's
optimizer relies on after dynamic recompilation (Section 2.1).

Scalars are represented with ``rows == cols == 0``.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional, Sequence

from repro.errors import CompileError, ShapeError
from repro.hops.types import (
    AggDir,
    AggOp,
    CELLWISE_UNARY,
    ExecType,
    OpKind,
    SPARSE_SAFE_UNARY,
)
from repro.runtime.matrix import MatrixBlock

_ID_COUNTER = itertools.count(1)


def _estimate_mm_nnz(rows, k, cols, nnz_a, nnz_b) -> int:
    """Estimated nnz of an (rows x k) @ (k x cols) product.

    Uses the standard independence assumption: the probability of an
    output cell being non-zero is 1 - (1 - dA*dB)^k.
    """
    cells_a = max(rows * k, 1)
    cells_b = max(k * cols, 1)
    d_a = min(1.0, nnz_a / cells_a)
    d_b = min(1.0, nnz_b / cells_b)
    p_zero_term = 1.0 - d_a * d_b
    if p_zero_term <= 0.0:
        density = 1.0
    else:
        density = 1.0 - p_zero_term ** k
    return int(round(min(1.0, max(density, 0.0)) * rows * cols))


class Hop:
    """Base class for all high-level operators."""

    kind: OpKind = OpKind.DATA

    def __init__(self, inputs: Sequence["Hop"] = (), name: str = ""):
        self.id: int = next(_ID_COUNTER)
        self.name = name
        self.inputs: list[Hop] = []
        self.parents: list[Hop] = []
        self.rows: int = 0
        self.cols: int = 0
        self.nnz: int = -1
        self.exec_type: ExecType = ExecType.CP
        for hop_in in inputs:
            self.add_input(hop_in)
        self.refresh_sizes()

    # ------------------------------------------------------------------
    # DAG wiring
    # ------------------------------------------------------------------
    def add_input(self, hop_in: "Hop") -> None:
        self.inputs.append(hop_in)
        hop_in.parents.append(self)

    def replace_input(self, old: "Hop", new: "Hop") -> None:
        """Replace every occurrence of ``old`` among this hop's inputs.

        Parent links are edge-consistent: a hop consumed through two
        input slots of the same consumer appears twice in ``parents``.
        """
        count = 0
        for idx, hop_in in enumerate(self.inputs):
            if hop_in is old:
                self.inputs[idx] = new
                count += 1
        if count == 0:
            raise CompileError(f"{old} is not an input of {self}")
        kept: list[Hop] = []
        removed = 0
        for parent in old.parents:
            if parent is self and removed < count:
                removed += 1
                continue
            kept.append(parent)
        old.parents = kept
        new.parents.extend([self] * count)

    def rewire_to(self, new: "Hop") -> None:
        """Replace this hop by ``new`` in all consumers."""
        seen: set[int] = set()
        for parent in list(self.parents):
            if id(parent) in seen:
                continue
            seen.add(id(parent))
            parent.replace_input(self, new)

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def is_scalar(self) -> bool:
        return self.rows == 0 and self.cols == 0

    @property
    def is_matrix(self) -> bool:
        return not self.is_scalar

    @property
    def is_vector(self) -> bool:
        return self.is_matrix and (self.rows == 1 or self.cols == 1)

    @property
    def is_col_vector(self) -> bool:
        return self.is_matrix and self.cols == 1

    @property
    def is_row_vector(self) -> bool:
        return self.is_matrix and self.rows == 1

    @property
    def dims(self) -> tuple[int, int]:
        return (self.rows, self.cols)

    @property
    def cells(self) -> int:
        return self.rows * self.cols

    @property
    def sparsity(self) -> float:
        """Estimated density (1.0 when unknown or scalar)."""
        if self.is_scalar or self.cells == 0:
            return 1.0
        if self.nnz < 0:
            return 1.0
        return min(1.0, self.nnz / self.cells)

    def refresh_sizes(self) -> None:
        """Recompute output dims and nnz estimate from the inputs."""

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def opcode(self) -> str:
        """A compact operator label, e.g. ``b(*)`` or ``ua(R+)``."""
        return self.kind.value

    def is_sparse_est(self, threshold: float = 0.4) -> bool:
        """Would this output be stored sparse under the estimate?"""
        return self.is_matrix and self.nnz >= 0 and self.sparsity < threshold

    def __repr__(self) -> str:
        shape = "scalar" if self.is_scalar else f"{self.rows}x{self.cols}"
        return f"{self.id} {self.opcode()} [{shape}]"


class DataOp(Hop):
    """A matrix input bound to concrete data (a transient read).

    ``nnz_unknown=True`` models inputs whose sparsity metadata is not
    available at compile time (e.g. a read whose statistics were never
    collected): dimensions stay known but ``nnz`` compiles as ``-1``, so
    the optimizer assumes dense and the adaptive recompiler corrects the
    plan once the runtime observes the actual non-zero count.
    """

    kind = OpKind.DATA

    def __init__(self, data: MatrixBlock, name: str = "",
                 nnz_unknown: bool = False):
        self.data = data
        self.nnz_unknown = nnz_unknown
        super().__init__((), name=name or f"in{id(data) & 0xFFFF}")

    def refresh_sizes(self) -> None:
        self.rows, self.cols = self.data.shape
        self.nnz = -1 if self.nnz_unknown else self.data.nnz

    def opcode(self) -> str:
        return f"data({self.name})"


class LiteralOp(Hop):
    """A scalar literal."""

    kind = OpKind.LITERAL

    def __init__(self, value: float):
        self.value = float(value)
        super().__init__(())

    def refresh_sizes(self) -> None:
        self.rows = self.cols = 0
        self.nnz = -1

    def opcode(self) -> str:
        return f"lit({self.value:g})"


class UnaryOp(Hop):
    """Cell-wise unary function; also hosts cumsum (column op)."""

    kind = OpKind.UNARY

    def __init__(self, op: str, hop_in: Hop):
        self.op = op
        super().__init__((hop_in,))

    def refresh_sizes(self) -> None:
        hop_in = self.inputs[0]
        self.rows, self.cols = hop_in.dims
        if self.is_scalar:
            self.nnz = -1
        elif self.op in SPARSE_SAFE_UNARY:
            self.nnz = hop_in.nnz
        else:
            self.nnz = self.cells

    @property
    def is_cellwise(self) -> bool:
        return self.op in CELLWISE_UNARY

    def opcode(self) -> str:
        return f"u({self.op})"


class BinaryOp(Hop):
    """Cell-wise binary function with matrix/vector/scalar broadcasting."""

    kind = OpKind.BINARY

    def __init__(self, op: str, left: Hop, right: Hop):
        self.op = op
        super().__init__((left, right))

    def refresh_sizes(self) -> None:
        left, right = self.inputs
        if left.is_scalar and right.is_scalar:
            self.rows = self.cols = 0
            self.nnz = -1
            return
        if left.is_scalar or right.is_scalar:
            mat = right if left.is_scalar else left
            self.rows, self.cols = mat.dims
        else:
            self.rows = max(left.rows, right.rows)
            self.cols = max(left.cols, right.cols)
            for side in (left, right):
                valid = side.dims in (
                    (self.rows, self.cols),
                    (self.rows, 1),
                    (1, self.cols),
                    (1, 1),
                )
                if not valid:
                    raise ShapeError(
                        f"binary '{self.op}': {left.dims} vs {right.dims}"
                    )
        self.nnz = self._estimate_nnz()

    def _estimate_nnz(self) -> int:
        left, right = self.inputs
        cells = self.cells
        if self.op == "*":
            if left.is_scalar or right.is_scalar:
                mat = right if left.is_scalar else left
                return mat.nnz if mat.nnz >= 0 else cells
            estimates = []
            for side in (left, right):
                if side.nnz >= 0 and side.dims == self.dims:
                    estimates.append(side.nnz)
            return min(estimates) if estimates else cells
        if self.op in {"+", "-"} and left.is_matrix and right.is_matrix:
            if left.nnz >= 0 and right.nnz >= 0 and left.dims == right.dims == self.dims:
                return min(cells, left.nnz + right.nnz)
        if self.op == "!=":
            # X != 0 keeps the sparsity of X when comparing with 0.
            lit = right if isinstance(right, LiteralOp) else (
                left if isinstance(left, LiteralOp) else None
            )
            mat = left if lit is right else right
            if lit is not None and lit.value == 0.0 and mat.nnz >= 0:
                return mat.nnz
        return cells

    def opcode(self) -> str:
        return f"b({self.op})"


class TernaryOp(Hop):
    """Cell-wise ternary function (+*, -*, ifelse)."""

    kind = OpKind.TERNARY

    def __init__(self, op: str, a: Hop, b: Hop, c: Hop):
        self.op = op
        super().__init__((a, b, c))

    def refresh_sizes(self) -> None:
        mats = [h for h in self.inputs if h.is_matrix]
        if not mats:
            self.rows = self.cols = 0
            self.nnz = -1
            return
        self.rows = max(h.rows for h in mats)
        self.cols = max(h.cols for h in mats)
        self.nnz = self.cells

    def opcode(self) -> str:
        return f"t({self.op})"


class AggUnaryOp(Hop):
    """Aggregation: sum/sumsq/min/max/mean in full/row/col direction."""

    kind = OpKind.AGG_UNARY

    def __init__(self, agg_op: AggOp, direction: AggDir, hop_in: Hop):
        self.agg_op = agg_op
        self.direction = direction
        super().__init__((hop_in,))

    def refresh_sizes(self) -> None:
        hop_in = self.inputs[0]
        if self.direction is AggDir.FULL:
            self.rows = self.cols = 0
            self.nnz = -1
        elif self.direction is AggDir.ROW:
            self.rows, self.cols = hop_in.rows, 1
            self.nnz = self.cells
        else:
            self.rows, self.cols = 1, hop_in.cols
            self.nnz = self.cells

    def opcode(self) -> str:
        prefix = {AggDir.FULL: "", AggDir.ROW: "R", AggDir.COL: "C"}[self.direction]
        symbol = {
            AggOp.SUM: "+",
            AggOp.SUM_SQ: "sq+",
            AggOp.MIN: "min",
            AggOp.MAX: "max",
            AggOp.MEAN: "mean",
        }[self.agg_op]
        return f"ua({prefix}{symbol})"


class AggBinaryOp(Hop):
    """Matrix multiplication ``ba(+*)``."""

    kind = OpKind.AGG_BINARY

    def __init__(self, left: Hop, right: Hop):
        super().__init__((left, right))

    def refresh_sizes(self) -> None:
        left, right = self.inputs
        if left.cols != right.rows:
            raise ShapeError(f"matmult {left.dims} x {right.dims}")
        self.rows, self.cols = left.rows, right.cols
        nnz_a = left.nnz if left.nnz >= 0 else left.cells
        nnz_b = right.nnz if right.nnz >= 0 else right.cells
        self.nnz = _estimate_mm_nnz(self.rows, left.cols, self.cols, nnz_a, nnz_b)

    def opcode(self) -> str:
        return "ba(+*)"


class ReorgOp(Hop):
    """Transpose (the only reorg operation we need)."""

    kind = OpKind.REORG

    def __init__(self, hop_in: Hop, op: str = "t"):
        self.op = op
        super().__init__((hop_in,))

    def refresh_sizes(self) -> None:
        hop_in = self.inputs[0]
        self.rows, self.cols = hop_in.cols, hop_in.rows
        self.nnz = hop_in.nnz

    def opcode(self) -> str:
        return f"r({self.op})"


class IndexingOp(Hop):
    """Right indexing X[rl:ru, cl:cu] with static bounds (0-based)."""

    kind = OpKind.INDEX

    def __init__(self, hop_in: Hop, rl: int, ru: int, cl: int, cu: int):
        self.rl, self.ru, self.cl, self.cu = rl, ru, cl, cu
        super().__init__((hop_in,))

    def refresh_sizes(self) -> None:
        hop_in = self.inputs[0]
        if not (0 <= self.rl <= self.ru <= hop_in.rows):
            raise ShapeError(f"row index [{self.rl}:{self.ru}] for {hop_in.dims}")
        if not (0 <= self.cl <= self.cu <= hop_in.cols):
            raise ShapeError(f"col index [{self.cl}:{self.cu}] for {hop_in.dims}")
        self.rows = self.ru - self.rl
        self.cols = self.cu - self.cl
        if hop_in.cells > 0 and hop_in.nnz >= 0:
            self.nnz = int(round(hop_in.sparsity * self.cells))
        else:
            self.nnz = self.cells

    def opcode(self) -> str:
        return "rix"


class NaryOp(Hop):
    """cbind / rbind."""

    kind = OpKind.NARY

    def __init__(self, op: str, inputs: Sequence[Hop]):
        self.op = op
        super().__init__(tuple(inputs))

    def refresh_sizes(self) -> None:
        if self.op == "cbind":
            self.rows = self.inputs[0].rows
            self.cols = sum(h.cols for h in self.inputs)
        else:
            self.rows = sum(h.rows for h in self.inputs)
            self.cols = self.inputs[0].cols
        nnzs = [h.nnz if h.nnz >= 0 else h.cells for h in self.inputs]
        self.nnz = sum(nnzs)

    def opcode(self) -> str:
        return self.op


class SpoofOp(Hop):
    """A generated fused operator covering a sub-DAG (still a valid HOP)."""

    kind = OpKind.SPOOF

    def __init__(self, template_name, operator, output_hop: Hop, inputs: Sequence[Hop],
                 covered_roots: Sequence[Hop] | None = None):
        self.template_name = template_name
        self.operator = operator  # GeneratedOperator
        self._out_dims = output_hop.dims
        self._out_nnz = output_hop.nnz
        self.covered_root = output_hop
        # All original root hops this operator produces (one per
        # aggregate for multi-aggregate operators); the adaptive
        # recompiler de-fuses through them to re-run plan selection
        # with observed metadata.
        self.covered_roots = list(covered_roots) if covered_roots else [output_hop]
        super().__init__(tuple(inputs))

    def refresh_sizes(self) -> None:
        self.rows, self.cols = self._out_dims
        self.nnz = self._out_nnz

    def opcode(self) -> str:
        return f"spoof({self.template_name})"


class SpoofOutOp(Hop):
    """Extracts one scalar output of a multi-aggregate fused operator.

    A multi-aggregate SpoofOp produces a k x 1 matrix; each original
    aggregate root is replaced by a SpoofOutOp selecting its row.
    """

    kind = OpKind.SPOOF

    def __init__(self, spoof: SpoofOp, index: int):
        self.index = index
        super().__init__((spoof,))

    def refresh_sizes(self) -> None:
        self.rows = self.cols = 0
        self.nnz = -1

    def opcode(self) -> str:
        return f"spoofout[{self.index}]"


# ----------------------------------------------------------------------
# DAG utilities
# ----------------------------------------------------------------------
def collect_dag(roots: Iterable[Hop]) -> list[Hop]:
    """All hops reachable from ``roots`` (each exactly once)."""
    seen: dict[int, Hop] = {}
    stack = list(roots)
    while stack:
        hop = stack.pop()
        if hop.id in seen:
            continue
        seen[hop.id] = hop
        stack.extend(hop.inputs)
    return list(seen.values())


def topological_order(roots: Iterable[Hop]) -> list[Hop]:
    """Inputs-before-consumers ordering of the DAG under ``roots``."""
    order: list[Hop] = []
    state: dict[int, int] = {}  # 0 = visiting, 1 = done

    def visit(hop: Hop) -> None:
        stack = [(hop, iter(hop.inputs))]
        while stack:
            node, it = stack[-1]
            if state.get(node.id) == 1:
                stack.pop()
                continue
            state[node.id] = 0
            advanced = False
            for child in it:
                if state.get(child.id) != 1:
                    if state.get(child.id) == 0:
                        raise CompileError("cycle in HOP DAG")
                    stack.append((child, iter(child.inputs)))
                    advanced = True
                    break
            if not advanced:
                state[node.id] = 1
                order.append(node)
                stack.pop()

    for root in roots:
        if state.get(root.id) != 1:
            visit(root)
    return order


def consumers_in_dag(hop: Hop, dag_ids: set[int]) -> list[Hop]:
    """The hop's parents restricted to a DAG membership set."""
    return [p for p in hop.parents if p.id in dag_ids]
