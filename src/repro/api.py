"""Lazy linear-algebra expression API.

This is the primary public interface: expressions over :class:`Mat`
handles build HOP DAGs, and :func:`eval` / :func:`eval_all` hand the
DAG(s) to an execution engine (Base / Fused / Gen / heuristics).
Evaluating several expressions together compiles them into one DAG with
multiple roots, which is what exposes multi-aggregate fusion.

Evaluation flows through the staged pipeline: the engine's compiler
front half (rewrites → codegen → exec-type selection) optimizes the
DAG, lowering turns it into a runtime ``Program`` of instructions, and
the executor schedules it (in parallel where the DAG allows).

Example::

    import numpy as np
    from repro import api
    from repro.compiler import Engine

    X = api.matrix(np.random.rand(1000, 100), name="X")
    v = api.matrix(np.random.rand(100, 1), name="v")
    expr = X.T @ (X @ v)

    engine = Engine(mode="gen")
    result = api.eval(expr, engine=engine)

    # The staged pipeline is inspectable: compile without executing.
    program = engine.compile([expr.hop])
    print(program.instructions)
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

from repro.errors import CompileError
from repro.hops.hop import (
    AggBinaryOp,
    AggUnaryOp,
    BinaryOp,
    DataOp,
    Hop,
    IndexingOp,
    LiteralOp,
    NaryOp,
    ReorgOp,
    TernaryOp,
    UnaryOp,
)
from repro.hops.types import AggDir, AggOp
from repro.runtime.matrix import MatrixBlock

Operand = Union["Mat", float, int]


def _hop_of(value: Operand) -> Hop:
    if isinstance(value, Mat):
        return value.hop
    if isinstance(value, (int, float, np.floating, np.integer)):
        return LiteralOp(float(value))
    raise CompileError(f"cannot use {type(value).__name__} as an operand")


class Mat:
    """A lazy matrix (or scalar) expression wrapping a HOP."""

    __slots__ = ("hop",)

    def __init__(self, hop: Hop):
        self.hop = hop

    # -- shape ---------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self.hop.dims

    @property
    def is_scalar(self) -> bool:
        return self.hop.is_scalar

    # -- arithmetic ----------------------------------------------------
    def _binary(self, op: str, other: Operand, swapped: bool = False) -> "Mat":
        left, right = _hop_of(other if swapped else self), _hop_of(self if swapped else other)
        return Mat(BinaryOp(op, left, right))

    def __add__(self, other: Operand) -> "Mat":
        return self._binary("+", other)

    def __radd__(self, other: Operand) -> "Mat":
        return self._binary("+", other, swapped=True)

    def __sub__(self, other: Operand) -> "Mat":
        return self._binary("-", other)

    def __rsub__(self, other: Operand) -> "Mat":
        return self._binary("-", other, swapped=True)

    def __mul__(self, other: Operand) -> "Mat":
        return self._binary("*", other)

    def __rmul__(self, other: Operand) -> "Mat":
        return self._binary("*", other, swapped=True)

    def __truediv__(self, other: Operand) -> "Mat":
        return self._binary("/", other)

    def __rtruediv__(self, other: Operand) -> "Mat":
        return self._binary("/", other, swapped=True)

    def __pow__(self, other: Operand) -> "Mat":
        return self._binary("^", other)

    def __neg__(self) -> "Mat":
        return Mat(UnaryOp("neg", self.hop))

    def __matmul__(self, other: "Mat") -> "Mat":
        return Mat(AggBinaryOp(self.hop, _hop_of(other)))

    # -- comparisons (return 0/1 matrices, R-style) ---------------------
    def __eq__(self, other: Operand) -> "Mat":  # type: ignore[override]
        return self._binary("==", other)

    def __ne__(self, other: Operand) -> "Mat":  # type: ignore[override]
        return self._binary("!=", other)

    def __lt__(self, other: Operand) -> "Mat":
        return self._binary("<", other)

    def __gt__(self, other: Operand) -> "Mat":
        return self._binary(">", other)

    def __le__(self, other: Operand) -> "Mat":
        return self._binary("<=", other)

    def __ge__(self, other: Operand) -> "Mat":
        return self._binary(">=", other)

    def __hash__(self):
        return id(self)

    # -- reorg / indexing ------------------------------------------------
    @property
    def T(self) -> "Mat":
        return Mat(ReorgOp(self.hop))

    def __getitem__(self, key) -> "Mat":
        if not (isinstance(key, tuple) and len(key) == 2):
            raise CompileError("indexing requires X[rows, cols] slices")
        rows, cols = key
        rl, ru = _slice_bounds(rows, self.hop.rows)
        cl, cu = _slice_bounds(cols, self.hop.cols)
        return Mat(IndexingOp(self.hop, rl, ru, cl, cu))

    # -- aggregations ----------------------------------------------------
    def sum(self) -> "Mat":
        return Mat(AggUnaryOp(AggOp.SUM, AggDir.FULL, self.hop))

    def row_sums(self) -> "Mat":
        return Mat(AggUnaryOp(AggOp.SUM, AggDir.ROW, self.hop))

    def col_sums(self) -> "Mat":
        return Mat(AggUnaryOp(AggOp.SUM, AggDir.COL, self.hop))

    def min(self) -> "Mat":
        return Mat(AggUnaryOp(AggOp.MIN, AggDir.FULL, self.hop))

    def max(self) -> "Mat":
        return Mat(AggUnaryOp(AggOp.MAX, AggDir.FULL, self.hop))

    def mean(self) -> "Mat":
        return Mat(AggUnaryOp(AggOp.MEAN, AggDir.FULL, self.hop))

    def row_mins(self) -> "Mat":
        return Mat(AggUnaryOp(AggOp.MIN, AggDir.ROW, self.hop))

    def row_maxs(self) -> "Mat":
        return Mat(AggUnaryOp(AggOp.MAX, AggDir.ROW, self.hop))

    def col_mins(self) -> "Mat":
        return Mat(AggUnaryOp(AggOp.MIN, AggDir.COL, self.hop))

    def col_maxs(self) -> "Mat":
        return Mat(AggUnaryOp(AggOp.MAX, AggDir.COL, self.hop))

    def col_sums_sq(self) -> "Mat":
        return Mat(AggUnaryOp(AggOp.SUM_SQ, AggDir.COL, self.hop))

    def sum_sq(self) -> "Mat":
        return Mat(AggUnaryOp(AggOp.SUM_SQ, AggDir.FULL, self.hop))

    def __repr__(self) -> str:
        return f"Mat({self.hop!r})"


def _slice_bounds(part, extent: int) -> tuple[int, int]:
    if isinstance(part, slice):
        if part.step not in (None, 1):
            raise CompileError("strided indexing is not supported")
        lo = 0 if part.start is None else int(part.start)
        hi = extent if part.stop is None else int(part.stop)
        return lo, hi
    idx = int(part)
    return idx, idx + 1


# ----------------------------------------------------------------------
# Constructors
# ----------------------------------------------------------------------
def matrix(data, name: str = "", nnz_unknown: bool = False) -> Mat:
    """Bind a numpy array / scipy matrix / MatrixBlock / CompressedMatrix
    as an input.

    ``nnz_unknown=True`` hides the input's sparsity from the compiler
    (dimensions stay known): the plan is built assuming dense, and the
    adaptive recompiler corrects exec-type, fusion, and format choices
    at runtime once the actual non-zero count is observed — the
    situation of reads without metadata in SystemML (Section 2.1).
    """
    from repro.runtime.compressed import CompressedMatrix

    if isinstance(data, (MatrixBlock, CompressedMatrix)):
        block = data
    else:
        block = MatrixBlock(data)
    return Mat(DataOp(block, name=name, nnz_unknown=nnz_unknown))


def scalar(value: float) -> Mat:
    """A scalar literal expression."""
    return Mat(LiteralOp(value))


def rand(rows: int, cols: int, sparsity: float = 1.0, seed: int | None = None,
         low: float = 0.0, high: float = 1.0, name: str = "") -> Mat:
    """A random input matrix (generated eagerly, consumed lazily)."""
    return matrix(
        MatrixBlock.rand(rows, cols, sparsity=sparsity, low=low, high=high, seed=seed),
        name=name or "rand",
    )


# ----------------------------------------------------------------------
# Cell functions
# ----------------------------------------------------------------------
def _unary(op: str, x: Operand) -> Mat:
    return Mat(UnaryOp(op, _hop_of(x)))


def exp(x: Operand) -> Mat:
    return _unary("exp", x)


def log(x: Operand) -> Mat:
    return _unary("log", x)


def sqrt(x: Operand) -> Mat:
    return _unary("sqrt", x)


def abs_(x: Operand) -> Mat:
    return _unary("abs", x)


def sign(x: Operand) -> Mat:
    return _unary("sign", x)


def round_(x: Operand) -> Mat:
    return _unary("round", x)


def floor(x: Operand) -> Mat:
    return _unary("floor", x)


def ceil(x: Operand) -> Mat:
    return _unary("ceil", x)


def sigmoid(x: Operand) -> Mat:
    return _unary("sigmoid", x)


def sprop(x: Operand) -> Mat:
    return _unary("sprop", x)


def logical_not(x: Operand) -> Mat:
    return _unary("not", x)


def erf(x: Operand) -> Mat:
    return _unary("erf", x)


def normpdf(x: Operand) -> Mat:
    return _unary("normpdf", x)


def cumsum(x: Operand) -> Mat:
    return _unary("cumsum", x)


def minimum(a: Operand, b: Operand) -> Mat:
    return Mat(BinaryOp("min", _hop_of(a), _hop_of(b)))


def maximum(a: Operand, b: Operand) -> Mat:
    return Mat(BinaryOp("max", _hop_of(a), _hop_of(b)))


def ifelse(cond: Operand, a: Operand, b: Operand) -> Mat:
    return Mat(TernaryOp("ifelse", _hop_of(cond), _hop_of(a), _hop_of(b)))


def cbind(*parts: Mat) -> Mat:
    return Mat(NaryOp("cbind", [p.hop for p in parts]))


def rbind(*parts: Mat) -> Mat:
    return Mat(NaryOp("rbind", [p.hop for p in parts]))


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------
def eval(expr: Mat, engine=None):
    """Evaluate one expression; returns a MatrixBlock or float."""
    return eval_all([expr], engine=engine)[0]


def eval_all(exprs: Iterable[Mat], engine=None) -> list:
    """Evaluate several expressions as one multi-root DAG.

    Grouped evaluation mirrors a SystemML statement block: common
    subexpressions are shared and multi-aggregate fusion can apply.
    Without an explicit ``engine`` the process-wide shared ``base``
    engine is used, so repeated calls keep their caches warm.
    """
    expr_list = list(exprs)
    if engine is None:
        from repro.compiler.execution import shared_engine

        engine = shared_engine("base")
    return engine.execute([e.hop for e in expr_list])


def prepare(builder, engine=None, name: str = "prepared",
            batch_inputs: tuple = ()):
    """Prepare an expression builder for repeated (served) evaluation.

    ``builder`` receives a dict of named input placeholders and returns
    the output expression(s); see :mod:`repro.serve`.
    """
    if engine is None:
        from repro.compiler.execution import shared_engine

        engine = shared_engine("gen")
    return engine.prepare(builder, name=name, batch_inputs=batch_inputs)
