"""Global configuration for the compiler, optimizer, and runtime.

The defaults mirror the hardware model of the paper's experimental setup
(Section 5.1): peak read bandwidth 32 GB/s, measured STREAM-like write
bandwidth, and per-node peak compute.  The cost model (Section 4.3)
normalizes byte and FLOP counts by these constants, so only their ratios
matter for plan choices.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field


@dataclass
class ClusterConfig:
    """Configuration of the simulated distributed (Spark-like) backend.

    Matches the 1+6 node cluster of Section 5.1 by default: six workers
    whose aggregate memory holds the distributed datasets, connected via
    10 Gb Ethernet.
    """

    n_workers: int = 6
    executor_mem: float = 60e9 * 0.6  # usable executor memory [bytes]
    net_bandwidth: float = 1.25e9  # 10 Gb/s Ethernet [bytes/s]
    hdfs_bandwidth: float = 0.6e9  # distributed read bandwidth [bytes/s]

    @property
    def aggregate_mem(self) -> float:
        """Total usable cluster memory in bytes."""
        return self.n_workers * self.executor_mem


@dataclass
class CodegenConfig:
    """Knobs of the codegen optimizer and the analytical cost model."""

    # Cost model bandwidths (Section 4.3).
    read_bandwidth: float = 32e9  # peak local read [bytes/s]
    write_bandwidth: float = 16e9  # peak local write [bytes/s]
    peak_flops: float = 115.2e9  # peak compute [FLOP/s]

    # Memory budget of the driver / local node; operations whose inputs
    # and output exceed it are selected for distributed execution.
    local_mem_budget: float = 35e9

    # Block size of blocked (distributed) matrices; the Row template has
    # the constraint ncol(X) <= blocksize for distributed operations.
    blocksize: int = 1024

    # Tile size (rows) used by the local fused-operator skeletons.  Row
    # tiles play the role of the cache-resident ring-buffer intermediates
    # of the paper's generated operators.
    tile_rows: int = 256

    # Outer template: the common dimension (rank) must be small.
    outer_max_rank: int = 256

    # Sparse output/representation threshold (SystemML uses nnz/cells <
    # 0.4 to pick the sparse format).  Drives the compiler's size
    # estimates and the adaptive layer's format decisions (recompile
    # boundaries, skeleton CSR switch).  The kernel library's output
    # policy uses the shared recommend_format() default (the same 0.4);
    # overriding this knob retunes the compiler and adaptive layers
    # only, not per-kernel output storage.
    sparse_threshold: float = 0.4

    # Compressed (CLA) execution format.  At recompile boundaries the
    # executor estimates distinct values per column from a leading-row
    # sample and converts blocks whose estimated compressed size
    # undercuts dense/CSR by at least compression_min_ratio; small
    # blocks (below compression_min_cells) never compress — the
    # conversion cost would dominate any dictionary-direct win.
    compressed_execution: bool = True
    compression_min_ratio: float = 2.0
    compression_min_cells: int = 1 << 14
    compression_sample_rows: int = 2048

    # Adaptive recompilation (dynamic recompile, Section 2.1): lowering
    # marks instructions whose exec-type / fusion / format choices rest
    # on unknown (nnz < 0) or unknown-derived sparsity estimates; at
    # those segment boundaries the executor compares estimates against
    # observed metadata and recompiles the program remainder — with the
    # observed values spliced in as exact leaves — when they diverge by
    # more than this ratio.  The flag also gates the fused skeletons'
    # observed-sparsity format switch.
    adaptive_recompile: bool = True
    recompile_divergence_ratio: float = 4.0
    # Upper bound on recompilations per executor run (settles runaway
    # oscillation; one recompile usually makes every estimate exact).
    max_recompiles_per_run: int = 5

    # Candidate selection.
    max_enum_plans: int = 1 << 22  # safety cap per partition
    # Partitions at least this large with zero interesting points skip
    # the per-node cost descent (quadratic in partition size, and its
    # depth-limited lookahead systematically underestimates deep chains)
    # and take the maximal-fusion cover directly.  Far above any DAG the
    # experiments produce; only pathological programs (e.g. thousands of
    # chained cellwise ops) hit it.
    large_partition_members: int = 512
    enable_cost_pruning: bool = True
    enable_structural_pruning: bool = True
    enable_partitioning: bool = True

    # Runtime executor: 'parallel' schedules lowered Program instructions
    # over a thread pool by dependency readiness (independent DAG
    # branches run concurrently; NumPy kernels release the GIL);
    # 'serial' interprets instructions in topological order.
    executor_mode: str = "parallel"
    # Worker threads (0 = min(8, cpu_count)).  With one thread the
    # executor always falls back to serial interpretation.
    executor_threads: int = 0
    # Programs whose instructions all touch fewer cells than this run
    # serially: thread-pool dispatch overhead dominates tiny operators.
    parallel_min_cells: int = 1 << 16

    # Intra-operator parallelism: generated fused operators split their
    # main input into this many row partitions (dense slices, CSR row
    # ranges, compressed column-group views) and combine aggregation
    # partials through a fixed tree topology.  0 = auto (min(8, cpus));
    # 1 falls back to the exact serial skeleton code path.  The
    # partition count is fixed by this knob — the thread budget only
    # bounds how many partitions run concurrently — so results are
    # deterministic run-to-run.
    intra_op_threads: int = 0
    # Operators whose main input has fewer cells than this run the
    # serial skeletons: partition dispatch overhead dominates.
    intra_op_min_cells: int = 1 << 16
    # Process-wide token budget shared by the executor pool, intra-op
    # workers, and serving scheduler (no oversubscription when all
    # three layers are active).  0 = the shared default
    # (max(8, cpu_count)); >0 caps grants made under this config.
    thread_budget: int = 0

    # Tiered vectorized-kernel backend for generated fused operators.
    # Operators start on the interpreted path (tile-loop skeletons
    # calling ``genexec``); once their hotness — executions plus
    # plan-cache hits plus serving warm-bind touches — reaches
    # ``kernel_hot_threshold``, a vectorized NumPy kernel is emitted
    # (whole-array CELL/MAGG bodies with einsum contraction, whole-block
    # ROW bodies that stay CSR for sparse-safe matmult chains, OUTER
    # bodies batched over CSR row ranges) and shared through the
    # semantic-hash plan cache.  0 = compile at first execution.
    vectorized_kernels: bool = True
    kernel_hot_threshold: int = 0
    # Optionally JIT the per-cell kernel variant with Numba when a
    # kernel is promoted.  With Numba absent (or the body outside the
    # jittable subset) execution degrades to the vectorized NumPy
    # kernel and records a fallback — never an error.
    numba_kernels: bool = False
    # Cell budget for the Outer driver's CSR row-range batches: each
    # batch holds roughly this many (nnz x rank) gather cells, bounding
    # the batched side-product temporaries.
    kernel_chunk_cells: int = 1 << 22
    # Relative tolerance for compiled-vs-interpreted comparisons where
    # the vectorized kernel reassociates an aggregation (whole-array
    # einsum/sum vs the tile-loop combine chain).  Order-preserving
    # kernels (element-wise, row-wise) are compared exactly.
    kernel_compare_rtol: float = 1e-9

    # Static analysis (repro.analysis).  verify_level gates the IR
    # verifier and the generated-kernel lint: 'off' disables them,
    # 'boundaries' verifies the optimized DAG and the lowered program at
    # every compile (and lints every generated source before exec),
    # 'full' additionally re-verifies the DAG after every compiler pass
    # and at adaptive-recompile splice points.
    verify_level: str = "off"
    # Eraser-style lockset race detection over the shared runtime
    # structures (plan cache, stats, thread budget, lineage cache).
    # Debug instrumentation: enables a process-wide checker whose
    # reports land in RuntimeStats.n_lockset_reports.
    lockset_debug: bool = False

    # Observability (repro.obs): hierarchical span tracing.  'off' uses
    # the module-level no-op tracer (near-zero cost); 'phases' records
    # request, compiler-pass, lowering/verify, kernel-compile,
    # recompile-splice, and serving admission/queue/batch/bind spans;
    # 'instructions' adds one span per executed instruction (the
    # profiler's input); 'full' adds operator-body (kernel/interpreted
    # run) spans.  Spans land in a bounded ring buffer of
    # trace_buffer_events entries, exportable as Chrome trace-event
    # JSON via Engine.export_trace() (loadable in Perfetto).
    trace_level: str = "off"
    trace_buffer_events: int = 65536

    # Code generation backend: 'exec' is the fast in-memory compiler
    # (janino analogue); 'file' writes sources to disk and imports them
    # (javac analogue).
    compiler: str = "exec"
    plan_cache_enabled: bool = True
    inline_primitives: bool = False  # Fig 10: inline vs shared primitives

    # Distributed backend implementation behind SparkExecutor:
    # 'simulated' partitions and reduces in-process (cost model only);
    # 'multiprocess' ships partition tasks to a pool of spawned worker
    # processes (repro.runtime.mpexec) with shared-memory dense block
    # transport — same placement, partitioning, and tree-reduce
    # topology, so results are bit-identical to the simulated backend.
    distributed_backend: str = "simulated"
    # Worker processes for the multiprocess backend (0 = min(4, cpus)).
    # Concurrent dispatch is additionally bounded by the process-wide
    # ThreadBudget, so driver threads + worker processes stay within
    # one shared token pool.
    mp_workers: int = 0
    # Straggler/failure handling: a worker that produces no result for
    # this many seconds while holding tasks is declared lost, its
    # process is respawned, and its tasks are re-dispatched (lost
    # cached blocks are recomputed from lineage keys).
    mp_task_timeout: float = 60.0
    # Re-dispatch attempts per task before the run fails.
    mp_max_retries: int = 2
    # Per-worker block cache (locality) byte budget; least recently
    # used blocks are evicted and re-shipped on next use.
    mp_worker_cache_bytes: float = 256e6

    # Simulated cluster; None means pure single-node operation.
    cluster: ClusterConfig | None = None

    # Per-operation compute cost weights (FLOPs per output cell) for
    # expensive cell functions; anything absent costs 1.
    op_flop_weights: dict = field(
        default_factory=lambda: {
            "exp": 20.0,
            "log": 20.0,
            "sqrt": 5.0,
            "sigmoid": 25.0,
            "erf": 30.0,
            "normpdf": 30.0,
            "^": 30.0,
        }
    )

    def effective_intra_op_threads(self) -> int:
        """Resolved partition count for intra-operator execution."""
        if self.intra_op_threads > 0:
            return self.intra_op_threads
        return min(8, os.cpu_count() or 1)

    def copy(self) -> "CodegenConfig":
        """Return a shallow copy (cluster config shared)."""
        import dataclasses

        return dataclasses.replace(self)


DEFAULT_CONFIG = CodegenConfig()
