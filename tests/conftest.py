"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import api
from repro.compiler.execution import Engine
from repro.config import CodegenConfig
from repro.runtime.matrix import MatrixBlock

ALL_MODES = ["base", "numpy", "fused", "gen", "gen-fa", "gen-fnr"]
GEN_MODES = ["gen", "gen-fa", "gen-fnr"]


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def make_engine(mode: str, **config_kwargs) -> Engine:
    config = CodegenConfig(**config_kwargs) if config_kwargs else CodegenConfig()
    return Engine(mode=mode, config=config)


def dense(rng, rows, cols, low=-1.0, high=1.0):
    return MatrixBlock(rng.uniform(low, high, size=(rows, cols)))


def sparse(rows, cols, sparsity=0.1, seed=0):
    return MatrixBlock.rand(rows, cols, sparsity=sparsity, seed=seed, low=0.5, high=2.0)


def as_array(value):
    """Runtime value -> comparable numpy array/scalar."""
    if isinstance(value, MatrixBlock):
        return value.to_dense()
    return np.float64(value)


def assert_engines_agree(build_exprs, modes=ALL_MODES, rtol=1e-8, atol=1e-10):
    """Evaluate the expression builder under every mode and compare."""
    reference = None
    for mode in modes:
        engine = make_engine(mode)
        results = [as_array(v) for v in api.eval_all(build_exprs(), engine=engine)]
        if reference is None:
            reference = results
            continue
        assert len(results) == len(reference)
        for idx, (expected, actual) in enumerate(zip(reference, results)):
            np.testing.assert_allclose(
                actual,
                expected,
                rtol=rtol,
                atol=atol,
                err_msg=f"mode={mode} output={idx}",
            )
    return reference
