"""Generated-kernel lint: real sources pass, contract violations fail."""

import numpy as np
import pytest

from repro import api
from repro.analysis.kernel_lint import check_source, lint_source
from repro.codegen.plan_cache import compile_source
from repro.compiler.execution import Engine
from repro.config import CodegenConfig
from repro.errors import CodegenError, KernelLintError
from repro.runtime.stats import RuntimeStats

CLEAN = """\
import numpy as np
from repro.runtime import vector as vp

def genexec(a, b, s):
    t0 = np.abs(a)
    t1 = t0 * s[0]
    return float(t1.sum())
"""


def _codes(findings):
    return {f.rule for f in findings}


class TestCleanSources:
    def test_handwritten_template_shape_passes(self):
        assert lint_source("ok", CLEAN) == []

    def test_loops_allowed_in_interpreted_and_numba(self):
        src = CLEAN + "\ndef loop(n):\n    for i in range(n):\n        pass\n"
        assert lint_source("ok", src, kind="interpreted") == []
        assert lint_source("ok", src, kind="numba") == []

    def test_real_engine_kernels_pass_lint(self):
        """Every source the gen engine emits under full verification."""
        engine = Engine(
            mode="gen", config=CodegenConfig(verify_level="full")
        )
        rng = np.random.default_rng(11)
        x = api.matrix(rng.random((40, 12)), "X")
        v = api.matrix(rng.random((12, 1)), "v")
        roots = [
            api.exp(x * 0.5).sum().hop,
            (x.T @ (x @ v)).hop,
            api.sigmoid(x + 1.0).row_sums().hop,
        ]
        for root in roots:
            engine.execute([root])
        assert engine.stats.n_lint_rejects == 0
        assert engine.plan_cache.size > 0


class TestViolations:
    def test_disallowed_import(self):
        assert _codes(lint_source("bad", "import os\n" + CLEAN)) == {"import"}
        assert _codes(
            lint_source("bad", "from os import path\n" + CLEAN)
        ) == {"import"}

    def test_forbidden_builtin(self):
        src = CLEAN.replace("return float(t1.sum())",
                            "open('x')\n    return float(t1.sum())")
        assert "forbidden-call" in _codes(lint_source("bad", src))

    def test_nondeterminism(self):
        src = CLEAN.replace("np.abs(a)", "np.random.rand(3, 3)")
        assert "nondeterminism" in _codes(lint_source("bad", src))

    def test_unknown_name(self):
        src = CLEAN.replace("np.abs(a)", "mystery(a)")
        assert _codes(lint_source("bad", src)) == {"unknown-name"}

    def test_loop_in_vectorized_tier(self):
        src = CLEAN + "\ndef loop(n):\n    for i in range(n):\n        pass\n"
        assert _codes(lint_source("bad", src, kind="vectorized")) == {
            "python-loop"
        }

    def test_densification_in_csr_safe_kernel(self):
        src = CLEAN.replace("np.abs(a)", "a.toarray()")
        assert _codes(
            lint_source("bad", src, csr_main_safe=True)
        ) == {"densification"}
        # The same access is legal in a kernel not claiming CSR safety.
        assert lint_source("ok", src, csr_main_safe=False) == []

    def test_densifying_call_on_main_input(self):
        src = CLEAN.replace("np.abs(a)", "np.asarray(a, dtype=np.float64)")
        assert _codes(
            lint_source("bad", src, csr_main_safe=True)
        ) == {"densification"}

    def test_syntax_error(self):
        assert _codes(lint_source("bad", "def genexec(:\n")) == {"syntax"}

    def test_check_source_raises_and_counts(self):
        stats = RuntimeStats()
        with pytest.raises(KernelLintError, match="import"):
            check_source("bad", "import os\n" + CLEAN, stats=stats)
        assert stats.n_lint_rejects == 1


class TestRestrictedExecNamespace:
    def test_disallowed_import_blocked_at_exec_time(self):
        with pytest.raises(CodegenError, match="may not import 'os'"):
            compile_source("evil_import", "import os\n")

    def test_allowed_surface_still_imports(self):
        namespace = compile_source(
            "good_import",
            "import numpy as np\nVALUE = float(np.float64(2.0))\n",
        )
        assert namespace["VALUE"] == 2.0

    def test_builtins_surface_is_allowlisted(self):
        namespace = compile_source(
            "late_open", "def f():\n    return open('x')\n"
        )
        with pytest.raises(NameError):
            namespace["f"]()
