"""Lockset race detection: tracked locks, Eraser state machine, runtime.

The regression anchor is two-sided: the detector must flag a
deliberately unguarded shared counter (true positive) and stay silent
over the runtime's real concurrent paths — plan-cache sharing, the
serving-style overlap of executor runs — whose locking conventions it
encodes (no false positives).
"""

import threading

import numpy as np
import pytest

from repro import api
from repro.analysis import lockset
from repro.compiler.execution import Engine
from repro.config import CodegenConfig
from repro.runtime.stats import RuntimeStats


@pytest.fixture(autouse=True)
def _no_leaked_checker():
    """Lockset checking is process-global: never leak it across tests."""
    lockset.disable()
    yield
    lockset.disable()


class _Shared:
    def __init__(self):
        self.value = 0


def _run_threads(n, target):
    threads = [threading.Thread(target=target) for _ in range(n)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestTrackedLock:
    def test_with_block_tracks_held_set(self):
        lock = lockset.make_lock("t")
        with lockset.lockset_debug() as checker:
            obj = _Shared()
            with lock:
                lockset.note_access("S", obj, "value")
        assert checker.reports == []

    def test_rlock_reentry(self):
        lock = lockset.make_rlock("r")
        with lock:
            with lock:
                pass
        # Fully released: a fresh acquire from this thread still works.
        assert lock.acquire(blocking=False)
        lock.release()

    def test_noop_without_active_checker(self):
        assert lockset.active() is None
        lockset.note_access("S", _Shared(), "value")  # must not raise


class TestEraserStateMachine:
    def test_unguarded_counter_flagged_once(self):
        counter = _Shared()
        stats = RuntimeStats()
        # Both threads must be alive at once: a dead thread's ident can
        # be reused, which would make two sequential threads look like
        # one to the (ident-keyed) exclusive-state tracking.
        barrier = threading.Barrier(2)
        with lockset.lockset_debug(stats=stats) as checker:
            def worker():
                barrier.wait()
                for _ in range(50):
                    lockset.note_access("Counter", counter, "value")
                    counter.value += 1

            _run_threads(2, worker)
        reports = [r for r in checker.reports if r.struct == "Counter"]
        assert len(reports) == 1
        assert reports[0].field == "value"
        assert "no consistently held lock" in str(reports[0])
        assert stats.n_lockset_reports == 1

    def test_guarded_counter_clean(self):
        counter = _Shared()
        lock = lockset.make_lock("counter.lock")
        with lockset.lockset_debug() as checker:
            def worker():
                for _ in range(50):
                    with lock:
                        lockset.note_access("Counter", counter, "value")
                        counter.value += 1

            _run_threads(4, worker)
        assert checker.reports == []

    def test_inconsistent_locking_flagged(self):
        """Each thread locks, but not the *same* lock -> empty lockset."""
        counter = _Shared()
        locks = [lockset.make_lock("a"), lockset.make_lock("b")]
        barrier = threading.Barrier(2)
        with lockset.lockset_debug() as checker:
            # Two rounds: the first access is exclusive, the second
            # thread seeds the candidate set with its own lock, and the
            # second round's cross-thread access empties it.
            def worker(lock):
                for _ in range(2):
                    barrier.wait()
                    with lock:
                        lockset.note_access("Counter", counter, "value")

            threads = [
                threading.Thread(target=worker, args=(lock,))
                for lock in locks
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert [r.field for r in checker.reports] == ["value"]

    def test_single_thread_stays_exclusive(self):
        counter = _Shared()
        with lockset.lockset_debug() as checker:
            for _ in range(10):
                lockset.note_access("Counter", counter, "value")
        assert checker.reports == []
        assert checker.summary()["n_fields_tracked"] == 1


class TestRuntimeCleanliness:
    def test_concurrent_engine_load_runs_clean(self):
        """Serving-style overlap: shared engine, plan cache, stats."""
        engine = Engine(
            mode="gen", config=CodegenConfig(lockset_debug=True)
        )
        checker = lockset.active()
        assert checker is not None
        rng = np.random.default_rng(5)
        data = rng.random((30, 10))
        vec = rng.random((10, 1))

        def job():
            for _ in range(3):
                x = api.matrix(data, "X")
                v = api.matrix(vec, "v")
                expr = (x.T @ (x @ v)).sum() + api.exp(x * 0.5).sum()
                engine.execute([expr.hop])

        _run_threads(4, job)
        assert checker.summary()["reports"] == []
        assert engine.stats.n_lockset_reports == 0
        assert checker.summary()["n_fields_tracked"] > 0
        engine.close()

    def test_serving_scheduler_runs_clean(self):
        """Concurrent serving: scheduler workers over one shared engine."""
        from repro.serve import SessionScheduler

        engine = Engine(
            mode="gen", config=CodegenConfig(lockset_debug=True)
        )
        checker = lockset.active()
        assert checker is not None
        scorer = engine.prepare_script(
            "input X, w\nmargin = X %*% w\n",
            name="score", batch_inputs=("X",),
        )
        rng = np.random.default_rng(9)
        weights = rng.random((40, 1))
        with SessionScheduler(engine, n_workers=4, max_batch=4) as server:
            tickets = [
                server.submit(
                    scorer, {"X": rng.random((32, 40)), "w": weights}
                )
                for _ in range(12)
            ]
            for ticket in tickets:
                ticket.result(60)
        assert checker.summary()["reports"] == []
        assert engine.stats.n_lockset_reports == 0
        engine.close()


class TestObservability:
    """Lockset coverage of the repro.obs shared state (tracer ring
    buffer, metrics registry cells): concurrent use under an active
    checker must note accesses under the tracked locks and stay clean.
    """

    def test_concurrent_tracer_spans_clean(self):
        from repro.obs.trace import Tracer

        tracer = Tracer("instructions")
        with lockset.lockset_debug() as checker:
            def worker():
                for index in range(30):
                    with tracer.span("op", cat="instruction",
                                     level=2, index=index):
                        with tracer.span("inner", cat="operator",
                                         level=2):
                            pass
                    tracer.instant("tick", cat="event")

            _run_threads(4, worker)
        assert checker.reports == []
        # The ring buffer was actually exercised through the tracked
        # lock (not silently bypassed) while the checker was active.
        assert checker.summary()["n_fields_tracked"] >= 1
        assert len(tracer.events()) == 4 * 30 * 3

    def test_concurrent_metrics_observe_clean(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        with lockset.lockset_debug() as checker:
            def worker():
                for index in range(40):
                    registry.counter("c").inc(tenant="t")
                    registry.histogram("h").observe(
                        0.001 * (index + 1), tenant="t"
                    )
                    registry.gauge("g").set(index)

            _run_threads(4, worker)
        assert checker.reports == []
        assert registry.counter("c").total() == 160
        assert registry.histogram("h").aggregate().count == 160

    def test_traced_engine_under_load_runs_clean(self):
        """lockset_debug + trace_level=instructions: the tracer/metrics
        instrumentation itself must not introduce race reports."""
        engine = Engine(
            mode="gen",
            config=CodegenConfig(lockset_debug=True,
                                 trace_level="instructions"),
        )
        checker = lockset.active()
        assert checker is not None
        rng = np.random.default_rng(7)
        data = rng.random((24, 8))

        def job():
            for _ in range(3):
                x = api.matrix(data, "X")
                expr = (x * x).sum() + api.sqrt(api.abs_(x)).sum()
                engine.execute([expr.hop])

        _run_threads(4, job)
        assert checker.summary()["reports"] == []
        assert engine.stats.n_lockset_reports == 0
        assert len(engine.tracer.events()) > 0
        engine.close()
