"""Seeded IR mutants: every invariant violation yields a pointed finding.

Each mutant corrupts a healthy compile in exactly the way the verifier
exists to catch — an understated refcount (the eager-freeing executor
would read a freed slot), an overstated refcount (a leak the executor
would never free), a deleted collect boundary in a distributed program,
and dims corrupted mid-DAG — and the test asserts the finding names the
offending instruction or hop, not just "verification failed".
"""

import numpy as np
import pytest

from repro import api
from repro.analysis.verify import (
    check_program,
    format_report,
    verify_dag,
    verify_program,
)
from repro.compiler.execution import Engine
from repro.compiler.program import lower_program
from repro.config import ClusterConfig, CodegenConfig
from repro.errors import VerificationError
from repro.hops.rewrites import apply_rewrites


def _lower(exprs, mode="base"):
    roots = apply_rewrites([e.hop for e in exprs])
    return lower_program(roots, mode)


def _shared_program(rng):
    """A program with one non-pinned intermediate read twice.

    ``t = X + 1`` feeds both roots, so t's slot has two declared
    consumers and is neither a constant nor a root — the only slot kind
    eager freeing ever drops.
    """
    x = api.matrix(rng.random((6, 6)), "X")
    t = x + 1.0
    return _lower([(t * 2.0).sum(), (t + 3.0).sum()])


def _shared_slot(program):
    """The slot read by two instructions (t's output)."""
    return next(
        slot for slot, count in enumerate(program.consumer_counts)
        if count == 2 and slot not in program.pinned
    )


class TestCleanPrograms:
    def test_healthy_program_verifies_clean(self, rng):
        program = _shared_program(rng)
        assert verify_program(program) == []

    def test_healthy_dag_verifies_clean(self, rng):
        x = api.matrix(rng.random((8, 4)), "X")
        roots = apply_rewrites([((x * 2.0) + x).sum().hop])
        assert verify_dag(roots) == []

    def test_format_report_clean(self):
        assert "clean" in format_report([])


class TestRefcountMutants:
    def test_overstated_refcount_names_producer(self, rng):
        program = _shared_program(rng)
        slot = _shared_slot(program)
        producer = next(
            i for i in program.instructions if i.output_slot == slot
        )
        program.consumer_counts[slot] += 1

        findings = verify_program(program)
        assert {f.code for f in findings} == {"refcount-mismatch"}
        assert any(f"[{producer.index}]" in f.subject for f in findings)
        assert any(f"slot {slot} declares 3" in f.message for f in findings)

    def test_understated_refcount_is_use_after_free(self, rng):
        program = _shared_program(rng)
        slot = _shared_slot(program)
        readers = [
            i for i in program.instructions if slot in i.input_slots
        ]
        program.consumer_counts[slot] -= 1

        findings = verify_program(program)
        codes = {f.code for f in findings}
        assert "use-after-free" in codes
        uaf = next(f for f in findings if f.code == "use-after-free")
        # The diagnostic names the *reading* instruction (the second
        # reader — eager freeing dropped the slot after the first).
        assert f"[{readers[1].index}]" in uaf.subject
        assert f"reads slot {slot}" in uaf.message


class TestCollectMutant:
    def _spark_program(self):
        # base mode keeps individual SPARK operators (gen would fuse the
        # whole expression into one scalar-producing multi-agg, leaving
        # nothing blocked to collect); the matrix root forces a collect.
        engine = Engine(
            mode="base",
            config=CodegenConfig(cluster=ClusterConfig(),
                                 local_mem_budget=1e4),
        )
        rng = np.random.default_rng(3)
        x = api.matrix(rng.random((60, 30)), "X")
        y = api.matrix(rng.random((60, 30)), "Y")
        return engine.compile([((x * y) + x).row_sums().hop])

    def test_deleted_collect_boundary_flagged(self):
        program = self._spark_program()
        assert program.distributed
        collect = next(
            i for i in program.instructions if i.opcode == "collect"
        )
        assert verify_program(program) == []

        # Mutate: drop the collect and rewire its readers straight to
        # the raw blocked slot, keeping everything else consistent.
        raw, collected = collect.input_slots[0], collect.output_slot
        program.instructions.remove(collect)
        for instr in program.instructions:
            instr.input_slots = [
                raw if s == collected else s for s in instr.input_slots
            ]
        program.root_slots = [
            raw if s == collected else s for s in program.root_slots
        ]
        for position, instr in enumerate(program.instructions):
            instr.index = position
        program.finalize()

        findings = verify_program(program)
        assert findings
        assert {f.code for f in findings} == {"missing-collect"}
        assert any(f"slot {raw}" in f.message for f in findings)


class TestDimsMutant:
    def test_corrupted_dims_name_the_hop(self, rng):
        x = api.matrix(rng.random((8, 4)), "X")
        mid = x * 2.0
        root = (mid + x).sum()
        assert verify_dag([root.hop]) == []

        mid.hop.rows = 999  # a dims-inconsistent "rewrite"
        findings = verify_dag([root.hop])
        codes = {f.code for f in findings}
        assert "dims-mismatch" in codes
        dims = next(f for f in findings if f.code == "dims-mismatch")
        assert f"hop {mid.hop.id} " in dims.subject
        assert "999" in dims.message


class TestPipelineIntegration:
    def test_check_program_raises_and_counts(self, rng):
        engine = Engine(mode="base")
        program = _shared_program(rng)
        program.consumer_counts[_shared_slot(program)] += 1
        with pytest.raises(VerificationError, match="refcount-mismatch"):
            check_program(program, engine.context, stage="mutant")
        assert engine.stats.n_verifier_findings >= 1

    def test_full_verify_level_accepts_healthy_compiles(self, rng):
        engine = Engine(
            mode="gen", config=CodegenConfig(verify_level="full")
        )
        x = api.matrix(rng.random((20, 8)), "X")
        out = engine.execute([api.sigmoid(x * 3.0).sum().hop])
        assert np.isfinite(out[0])
        assert engine.stats.n_verified_programs == 1
        assert engine.stats.n_verifier_findings == 0
