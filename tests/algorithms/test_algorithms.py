"""Algorithm tests: convergence, oracle checks, engine equivalence."""

import numpy as np
import pytest

from repro.algorithms import (
    als_cg,
    autoencoder,
    glm_binomial_probit,
    kmeans,
    l2svm,
    mlogreg,
)
from repro.data import generators
from tests.conftest import make_engine

ENGINE_MODES = ["base", "fused", "gen", "gen-fa", "gen-fnr"]


class TestL2svm:
    @pytest.fixture(scope="class")
    def data(self):
        return generators.classification_data(300, 12, n_classes=2, seed=1)

    def test_converges(self, data):
        x, y = data
        result = l2svm(x, y, engine=make_engine("gen"), max_iter=10)
        assert result.losses[-1] <= result.losses[0]

    def test_separates_training_data(self, data):
        x, y = data
        result = l2svm(x, y, engine=make_engine("gen"), max_iter=15)
        w = result.model["w"].to_dense()
        preds = np.sign(x.to_dense() @ w)
        accuracy = np.mean(preds == y.to_dense())
        assert accuracy > 0.9

    @pytest.mark.parametrize("mode", ENGINE_MODES)
    def test_engines_agree(self, data, mode):
        x, y = data
        reference = l2svm(x, y, engine=make_engine("base"), max_iter=3)
        result = l2svm(x, y, engine=make_engine(mode), max_iter=3)
        np.testing.assert_allclose(
            result.model["w"].to_dense(),
            reference.model["w"].to_dense(),
            rtol=1e-6,
            atol=1e-9,
        )

    def test_sparse_input(self):
        x, y = generators.classification_data(400, 20, seed=3, sparsity=0.1)
        result = l2svm(x, y, engine=make_engine("gen"), max_iter=5)
        assert np.isfinite(result.final_loss)


class TestMLogreg:
    @pytest.fixture(scope="class")
    def data(self):
        x, labels = generators.classification_data(300, 10, n_classes=3, seed=2)
        return x, labels

    def test_loss_decreases(self, data):
        x, labels = data
        result = mlogreg(x, labels, n_classes=3, engine=make_engine("gen"), max_iter=5)
        assert result.losses[-1] < result.losses[0]

    def test_training_accuracy(self, data):
        x, labels = data
        result = mlogreg(x, labels, n_classes=3, engine=make_engine("gen"), max_iter=8)
        beta = result.model["beta"].to_dense()
        scores = np.hstack([x.to_dense() @ beta, np.zeros((x.rows, 1))])
        preds = np.argmax(scores, axis=1) + 1
        accuracy = np.mean(preds == labels.to_dense().ravel())
        assert accuracy > 0.8

    @pytest.mark.parametrize("mode", ["fused", "gen", "gen-fa"])
    def test_engines_agree(self, data, mode):
        x, labels = data
        reference = mlogreg(x, labels, 3, engine=make_engine("base"), max_iter=2)
        result = mlogreg(x, labels, 3, engine=make_engine(mode), max_iter=2)
        np.testing.assert_allclose(
            result.model["beta"].to_dense(),
            reference.model["beta"].to_dense(),
            rtol=1e-5,
            atol=1e-8,
        )

    def test_binary_case(self):
        x, labels01 = generators.classification_data(200, 8, n_classes=2, seed=5)
        labels = ((labels01.to_dense() + 3) / 2).reshape(-1, 1)  # {-1,1} -> {1,2}
        result = mlogreg(x, labels, n_classes=2, engine=make_engine("gen"), max_iter=4)
        assert result.losses[-1] < result.losses[0]


class TestGlm:
    @pytest.fixture(scope="class")
    def data(self):
        x, y = generators.classification_data(300, 8, n_classes=2, seed=4)
        y01 = (y.to_dense() + 1) / 2  # {-1,1} -> {0,1}
        return x, y01

    def test_deviance_decreases(self, data):
        x, y = data
        result = glm_binomial_probit(x, y, engine=make_engine("gen"), max_iter=6)
        assert result.losses[-1] < result.losses[0]

    def test_predictions_sane(self, data):
        x, y = data
        result = glm_binomial_probit(x, y, engine=make_engine("gen"), max_iter=8)
        from scipy.stats import norm

        eta = x.to_dense() @ result.model["beta"].to_dense()
        preds = (norm.cdf(eta) > 0.5).astype(float)
        assert np.mean(preds == y) > 0.8

    @pytest.mark.parametrize("mode", ["fused", "gen"])
    def test_engines_agree(self, data, mode):
        x, y = data
        reference = glm_binomial_probit(x, y, engine=make_engine("base"), max_iter=2)
        result = glm_binomial_probit(x, y, engine=make_engine(mode), max_iter=2)
        np.testing.assert_allclose(
            result.model["beta"].to_dense(),
            reference.model["beta"].to_dense(),
            rtol=1e-5,
            atol=1e-8,
        )


class TestKMeans:
    @pytest.fixture(scope="class")
    def data(self):
        return generators.clustering_data(400, 6, n_centers=4, seed=6)

    def test_wcss_decreases(self, data):
        result = kmeans(data, n_centroids=4, engine=make_engine("gen"), max_iter=10)
        assert result.losses[-1] <= result.losses[0] + 1e-9

    def test_recovers_cluster_structure(self, data):
        result = kmeans(data, n_centroids=4, engine=make_engine("gen"), max_iter=15)
        centroids = result.model["centroids"].to_dense()
        arr = data.to_dense()
        dists = ((arr[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        wcss = dists.min(axis=1).sum()
        total_ss = ((arr - arr.mean(axis=0)) ** 2).sum()
        assert wcss < 0.5 * total_ss

    @pytest.mark.parametrize("mode", ENGINE_MODES)
    def test_engines_agree(self, data, mode):
        reference = kmeans(data, 4, engine=make_engine("base"), max_iter=3, seed=9)
        result = kmeans(data, 4, engine=make_engine(mode), max_iter=3, seed=9)
        np.testing.assert_allclose(
            result.model["centroids"].to_dense(),
            reference.model["centroids"].to_dense(),
            rtol=1e-7,
            atol=1e-10,
        )


class TestAlsCg:
    @pytest.fixture(scope="class")
    def data(self):
        return generators.factorization_data(150, 120, rank=4, sparsity=0.08, seed=7)

    def test_loss_decreases(self, data):
        result = als_cg(data, rank=4, engine=make_engine("gen"), max_iter=4, seed=1)
        assert result.losses[-1] < result.losses[0]

    def test_reconstruction_on_observed(self, data):
        result = als_cg(data, rank=4, engine=make_engine("gen"), max_iter=6, seed=1)
        u = result.model["U"].to_dense()
        v = result.model["V"].to_dense()
        csr = data.to_csr()
        rows = np.repeat(np.arange(csr.shape[0]), np.diff(csr.indptr))
        preds = np.einsum("ij,ij->i", u[rows], v[csr.indices])
        rel_err = np.linalg.norm(preds - csr.data) / np.linalg.norm(csr.data)
        assert rel_err < 0.5

    @pytest.mark.parametrize("mode", ["fused", "gen"])
    def test_engines_agree(self, data, mode):
        reference = als_cg(data, 4, engine=make_engine("base"), max_iter=2, seed=2)
        result = als_cg(data, 4, engine=make_engine(mode), max_iter=2, seed=2)
        np.testing.assert_allclose(
            result.model["U"].to_dense(),
            reference.model["U"].to_dense(),
            rtol=1e-5,
            atol=1e-8,
        )

    def test_gen_avoids_dense_outer_product(self, data):
        engine = make_engine("gen")
        als_cg(data, rank=4, engine=engine, max_iter=2, seed=3)
        assert engine.stats.spoof_executions.get("Outer", 0) > 0


class TestAutoencoder:
    @pytest.fixture(scope="class")
    def data(self):
        return generators.rand_dense(256, 50, seed=8)

    def test_loss_decreases(self, data):
        result = autoencoder(
            data, h1=20, h2=2, engine=make_engine("gen"),
            batch_size=64, n_epochs=3, learning_rate=0.5, seed=1,
        )
        first = np.mean(result.losses[:2])
        last = np.mean(result.losses[-2:])
        assert last < first

    @pytest.mark.parametrize("mode", ["fused", "gen"])
    def test_engines_agree(self, data, mode):
        kwargs = dict(h1=10, h2=2, batch_size=128, n_epochs=1, seed=2)
        reference = autoencoder(data, engine=make_engine("base"), **kwargs)
        result = autoencoder(data, engine=make_engine(mode), **kwargs)
        np.testing.assert_allclose(
            result.model["W1"].to_dense(),
            reference.model["W1"].to_dense(),
            rtol=1e-6,
            atol=1e-9,
        )
