"""Rewrite and CSE tests: structure and semantics preservation."""

import numpy as np
import pytest

from repro import api
from repro.compiler.execution import Engine
from repro.hops.hop import (
    AggUnaryOp,
    BinaryOp,
    LiteralOp,
    ReorgOp,
    UnaryOp,
    collect_dag,
)
from repro.hops.rewrites import apply_rewrites, eliminate_cse, validate_dag


def _x(rows=5, cols=4, seed=0):
    rng = np.random.default_rng(seed)
    return api.matrix(rng.random((rows, cols)), "X")


class TestSimplifications:
    def test_double_transpose(self):
        x = _x()
        roots = apply_rewrites([x.T.T.hop])
        assert roots[0] is x.hop

    def test_mult_by_one(self):
        x = _x()
        assert apply_rewrites([(x * 1.0).hop])[0] is x.hop
        assert apply_rewrites([(1.0 * x).hop])[0] is x.hop

    def test_div_by_one(self):
        x = _x()
        assert apply_rewrites([(x / 1.0).hop])[0] is x.hop

    def test_add_zero(self):
        x = _x()
        assert apply_rewrites([(x + 0.0).hop])[0] is x.hop
        assert apply_rewrites([(0.0 + x).hop])[0] is x.hop

    def test_sub_zero(self):
        x = _x()
        assert apply_rewrites([(x - 0.0).hop])[0] is x.hop

    def test_zero_minus_matrix_becomes_neg(self):
        x = _x()
        root = apply_rewrites([(0.0 - x).hop])[0]
        assert isinstance(root, UnaryOp) and root.op == "neg"

    def test_pow_one(self):
        x = _x()
        assert apply_rewrites([(x ** 1.0).hop])[0] is x.hop

    def test_pow_two_becomes_pow2(self):
        x = _x()
        root = apply_rewrites([(x ** 2.0).hop])[0]
        assert isinstance(root, UnaryOp) and root.op == "pow2"

    def test_double_negation(self):
        x = _x()
        assert apply_rewrites([(-(-x)).hop])[0] is x.hop

    def test_sum_of_transpose(self):
        x = _x()
        root = apply_rewrites([x.T.sum().hop])[0]
        assert isinstance(root, AggUnaryOp)
        assert not isinstance(root.inputs[0], ReorgOp)

    def test_constant_folding(self):
        root = apply_rewrites([(api.scalar(2.0) * api.scalar(3.0)).hop])[0]
        assert isinstance(root, LiteralOp) and root.value == 6.0

    def test_ifelse_literal_condition(self):
        x, y = _x(seed=1), _x(seed=2)
        root = apply_rewrites([api.ifelse(1.0, x, y).hop])[0]
        assert root is x.hop


class TestCse:
    def test_identical_subtrees_merged(self):
        x = _x()
        expr = (x * 2.0).sum() + (x * 2.0).sum()
        roots = eliminate_cse([expr.hop])
        dag = collect_dag(roots)
        sums = [h for h in dag if isinstance(h, AggUnaryOp)]
        assert len(sums) == 1

    def test_commutative_merge(self):
        x, y = _x(seed=1), _x(seed=2)
        expr = (x * y).sum() + (y * x).sum()
        roots = eliminate_cse([expr.hop])
        mults = [h for h in collect_dag(roots) if isinstance(h, BinaryOp) and h.op == "*"]
        assert len(mults) == 1

    def test_noncommutative_not_merged(self):
        x, y = _x(seed=1), _x(seed=2)
        expr = (x - y).sum() + (y - x).sum()
        roots = eliminate_cse([expr.hop])
        subs = [h for h in collect_dag(roots) if isinstance(h, BinaryOp) and h.op == "-"]
        assert len(subs) == 2

    def test_multi_root_cse(self):
        x = _x()
        a, b = (x * 3.0).sum(), (x * 3.0).row_sums()
        roots = eliminate_cse([a.hop, b.hop])
        mults = [h for h in collect_dag(roots) if isinstance(h, BinaryOp)]
        assert len(mults) == 1

    def test_dag_valid_after_rewrites(self):
        x = _x()
        expr = ((x * 1.0 + 0.0).T.T ** 2.0).sum() + (x ** 2.0).sum()
        roots = apply_rewrites([expr.hop])
        validate_dag(roots)


class TestSemanticsPreserved:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda x, y: (x * 1.0 + 0.0 - 0.0),
            lambda x, y: x.T.T + y,
            lambda x, y: (x ** 2.0) + (y ** 1.0),
            lambda x, y: x.T.sum() + (0.0 - y).sum(),
            lambda x, y: (x * y).sum() + (y * x).sum(),
            lambda x, y: api.ifelse(0.0, x, y),
        ],
    )
    def test_rewritten_equals_raw(self, builder):
        rng = np.random.default_rng(5)
        xd, yd = rng.random((6, 6)), rng.random((6, 6))

        def run(enable):
            x, y = api.matrix(xd, "X"), api.matrix(yd, "Y")
            expr = builder(x, y)
            roots = apply_rewrites([expr.hop]) if enable else [expr.hop]
            engine = Engine(mode="base")
            (value,) = engine.execute(roots)
            return value if isinstance(value, float) else value.to_dense()

        np.testing.assert_allclose(run(True), run(False), rtol=1e-12)
