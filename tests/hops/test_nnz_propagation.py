"""Property tests: HOP nnz/sparsity estimates vs actual runtime nnz.

The propagation rules in :mod:`repro.hops.hop` fall into two classes:

* **exact** rules — transpose, zero-preserving unaries whose output is
  zero iff the input is (abs, sign, neg), and concatenation of exact
  inputs: the estimate must equal the runtime nnz exactly,
* **upper-bound** rules — element-wise multiply (min of aligned
  estimates), add/subtract (sum of estimates), value-rounding unaries
  (round/floor can only create zeros), and the dense ``cells``
  fallback: the estimate must never undershoot the runtime nnz.

Random DAGs over these families verify both claims, and a base-engine
evaluation cross-checks the numpy reference used for the actual counts.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import api
from repro.compiler.execution import Engine
from repro.config import CodegenConfig

ROWS, COLS = 23, 17

_EXACT_UNARY = ["abs", "sign", "neg", "t"]
_BOUND_UNARY = _EXACT_UNARY + ["round", "floor"]
_BOUND_BINARY = ["*", "+", "-"]


def _leaf(rng, density):
    arr = np.zeros((ROWS, COLS))
    mask = rng.random((ROWS, COLS)) < density
    arr[mask] = rng.uniform(-1.2, 1.2, int(mask.sum()))
    return api.matrix(arr, name="leaf"), arr


def _apply_unary(name, expr, arr):
    if name == "abs":
        return api.abs_(expr), np.abs(arr)
    if name == "sign":
        return api.sign(expr), np.sign(arr)
    if name == "neg":
        return -expr, -arr
    if name == "t":
        return expr.T, arr.T
    if name == "round":
        return api.round_(expr), np.round(arr)
    assert name == "floor"
    return api.floor(expr), np.floor(arr)


def _apply_binary(name, a, a_arr, b, b_arr):
    if name == "*":
        return a * b, a_arr * b_arr
    if name == "+":
        return a + b, a_arr + b_arr
    assert name == "-"
    return a - b, a_arr - b_arr


def _build_dag(rng, steps, unary_ops, binary_ops, density):
    """Grow a random DAG; returns [(expr, reference array), ...]."""
    pool = [_leaf(rng, density) for _ in range(3)]
    for step in steps:
        kind, pick_a, pick_b, op_index = step
        if kind == "unary" or not binary_ops:
            expr, arr = pool[pick_a % len(pool)]
            op = unary_ops[op_index % len(unary_ops)]
            pool.append(_apply_unary(op, expr, arr))
        else:
            a, a_arr = pool[pick_a % len(pool)]
            candidates = [
                (e, r) for e, r in pool if r.shape == a_arr.shape
            ]
            b, b_arr = candidates[pick_b % len(candidates)]
            op = binary_ops[op_index % len(binary_ops)]
            pool.append(_apply_binary(op, a, a_arr, b, b_arr))
    return pool


_steps = st.lists(
    st.tuples(
        st.sampled_from(["unary", "binary"]),
        st.integers(0, 63),
        st.integers(0, 63),
        st.integers(0, 63),
    ),
    min_size=3,
    max_size=12,
)


@settings(max_examples=40, deadline=None)
@given(steps=_steps, seed=st.integers(0, 2**32 - 1),
       density=st.sampled_from([0.05, 0.3, 0.9]))
def test_estimates_are_upper_bounds(steps, seed, density):
    rng = np.random.default_rng(seed)
    pool = _build_dag(rng, steps, _BOUND_UNARY, _BOUND_BINARY, density)
    for expr, reference in pool:
        actual = int(np.count_nonzero(reference))
        assert expr.hop.nnz >= 0, "matrix estimates are always known here"
        assert expr.hop.nnz >= actual, (
            f"{expr.hop.opcode()} estimated {expr.hop.nnz} < actual {actual}"
        )
        assert expr.hop.nnz <= expr.hop.cells


@settings(max_examples=40, deadline=None)
@given(steps=_steps, seed=st.integers(0, 2**32 - 1),
       density=st.sampled_from([0.05, 0.3]))
def test_exact_rules_are_exact(steps, seed, density):
    rng = np.random.default_rng(seed)
    pool = _build_dag(rng, steps, _EXACT_UNARY, [], density)
    for expr, reference in pool:
        actual = int(np.count_nonzero(reference))
        assert expr.hop.nnz == actual, (
            f"{expr.hop.opcode()} claims exactness: "
            f"estimated {expr.hop.nnz}, actual {actual}"
        )


@settings(max_examples=15, deadline=None)
@given(steps=_steps, seed=st.integers(0, 2**32 - 1))
def test_runtime_agrees_with_reference(steps, seed):
    """The numpy references above match the engine's actual outputs."""
    rng = np.random.default_rng(seed)
    pool = _build_dag(rng, steps, _BOUND_UNARY, _BOUND_BINARY, 0.1)
    engine = Engine(mode="base", config=CodegenConfig())
    exprs = [expr for expr, _ in pool[-3:]]
    results = api.eval_all(exprs, engine=engine)
    for result, (_, reference) in zip(results, pool[-3:]):
        np.testing.assert_allclose(result.to_dense(), reference,
                                   rtol=1e-12, atol=1e-12)


def test_concatenation_of_exact_inputs_is_exact():
    rng = np.random.default_rng(3)
    x, x_arr = _leaf(rng, 0.1)
    y, y_arr = _leaf(rng, 0.4)
    both = api.cbind(x, api.abs_(y))
    assert both.hop.nnz == np.count_nonzero(
        np.hstack([x_arr, np.abs(y_arr)])
    )
    stacked = api.rbind(x, y)
    assert stacked.hop.nnz == np.count_nonzero(np.vstack([x_arr, y_arr]))


def test_matmult_estimate_is_heuristic_not_a_bound():
    """Documenting the known non-bound: the independence assumption can
    under- or over-estimate; the adaptive recompiler exists for this."""
    x, _ = _leaf(np.random.default_rng(1), 0.2)
    prod = x @ x.T
    assert 0 <= prod.hop.nnz <= prod.hop.cells
