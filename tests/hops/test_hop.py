"""HOP IR tests: shapes, nnz propagation, DAG utilities."""

import numpy as np
import pytest

from repro import api
from repro.errors import ShapeError
from repro.hops.hop import (
    AggBinaryOp,
    AggUnaryOp,
    BinaryOp,
    DataOp,
    LiteralOp,
    ReorgOp,
    UnaryOp,
    collect_dag,
    topological_order,
)
from repro.hops.types import AggDir, AggOp
from repro.runtime.matrix import MatrixBlock


def _data(rows, cols, sparsity=1.0, seed=0):
    return DataOp(MatrixBlock.rand(rows, cols, sparsity=sparsity, seed=seed), name="X")


class TestShapes:
    def test_data_dims(self):
        hop = _data(10, 5)
        assert hop.dims == (10, 5)
        assert hop.is_matrix and not hop.is_scalar

    def test_literal_is_scalar(self):
        lit = LiteralOp(3.0)
        assert lit.is_scalar and lit.dims == (0, 0)

    def test_binary_broadcast_dims(self):
        a = _data(10, 5)
        v = _data(10, 1, seed=1)
        assert BinaryOp("+", a, v).dims == (10, 5)
        r = _data(1, 5, seed=2)
        assert BinaryOp("*", a, r).dims == (10, 5)

    def test_binary_scalar_matrix(self):
        a = _data(4, 4)
        assert BinaryOp("*", a, LiteralOp(2.0)).dims == (4, 4)
        assert BinaryOp("+", LiteralOp(1.0), LiteralOp(2.0)).is_scalar

    def test_binary_shape_error(self):
        with pytest.raises(ShapeError):
            BinaryOp("+", _data(3, 3), _data(4, 4, seed=1))

    def test_agg_dims(self):
        a = _data(10, 5)
        assert AggUnaryOp(AggOp.SUM, AggDir.FULL, a).is_scalar
        assert AggUnaryOp(AggOp.SUM, AggDir.ROW, a).dims == (10, 1)
        assert AggUnaryOp(AggOp.SUM, AggDir.COL, a).dims == (1, 5)

    def test_matmult_dims(self):
        out = AggBinaryOp(_data(10, 5), _data(5, 3, seed=1))
        assert out.dims == (10, 3)
        with pytest.raises(ShapeError):
            AggBinaryOp(_data(10, 5), _data(4, 3, seed=1))

    def test_transpose_dims(self):
        assert ReorgOp(_data(10, 5)).dims == (5, 10)

    def test_vector_predicates(self):
        assert _data(10, 1).is_col_vector
        assert _data(1, 10).is_row_vector
        assert not _data(3, 3).is_vector


class TestNnzPropagation:
    def test_data_nnz_exact(self):
        hop = _data(100, 50, sparsity=0.1)
        assert abs(hop.sparsity - 0.1) < 0.05

    def test_multiply_takes_min(self):
        a = _data(100, 100, sparsity=0.1, seed=1)
        b = _data(100, 100, sparsity=0.5, seed=2)
        out = BinaryOp("*", a, b)
        assert out.nnz == min(a.nnz, b.nnz)

    def test_add_sums_capped(self):
        a = _data(100, 100, sparsity=0.1, seed=1)
        b = _data(100, 100, sparsity=0.1, seed=2)
        out = BinaryOp("+", a, b)
        assert out.nnz <= 100 * 100
        assert out.nnz >= max(a.nnz, b.nnz)

    def test_neq_zero_keeps_sparsity(self):
        a = _data(100, 100, sparsity=0.05, seed=3)
        out = BinaryOp("!=", a, LiteralOp(0.0))
        assert out.nnz == a.nnz

    def test_sparse_safe_unary_keeps_nnz(self):
        a = _data(100, 100, sparsity=0.05, seed=4)
        assert UnaryOp("abs", a).nnz == a.nnz
        assert UnaryOp("exp", a).nnz == 100 * 100

    def test_matmult_density_estimate(self):
        a = _data(50, 40, sparsity=0.05, seed=5)
        b = _data(40, 30, sparsity=0.05, seed=6)
        out = AggBinaryOp(a, b)
        assert 0 <= out.nnz <= 50 * 30

    def test_dense_matmult_estimate_full(self):
        out = AggBinaryOp(_data(10, 10), _data(10, 10, seed=1))
        assert out.nnz == 100


class TestDagUtilities:
    def test_collect_dag_unique(self):
        x = api.matrix(np.ones((5, 5)), "X")
        expr = (x * x + x).sum()
        hops = collect_dag([expr.hop])
        assert len({h.id for h in hops}) == len(hops)

    def test_topological_order_children_first(self):
        x = api.matrix(np.ones((5, 5)), "X")
        expr = (x * 2.0 + 1.0).sum()
        order = topological_order([expr.hop])
        seen = set()
        for hop in order:
            for child in hop.inputs:
                assert child.id in seen
            seen.add(hop.id)

    def test_rewire_to(self):
        x = api.matrix(np.ones((3, 3)), "X")
        a = (x * 2.0).hop
        parent = UnaryOp("exp", a)
        replacement = UnaryOp("abs", x.hop)
        a.rewire_to(replacement)
        assert parent.inputs[0] is replacement
        assert parent in replacement.parents
        assert parent not in a.parents

    def test_multi_root_topological(self):
        x = api.matrix(np.ones((4, 4)), "X")
        s1, s2 = (x * 2.0).sum(), (x * 3.0).sum()
        order = topological_order([s1.hop, s2.hop])
        ids = [h.id for h in order]
        assert len(ids) == len(set(ids))
        assert s1.hop.id in ids and s2.hop.id in ids


class TestMemoryEstimates:
    def test_output_bytes_dense(self):
        from repro.hops import memory

        hop = _data(100, 100)
        assert memory.output_bytes(hop) == 100 * 100 * 8.0

    def test_output_bytes_sparse_smaller(self):
        from repro.hops import memory

        dense = _data(1000, 1000)
        sparse = _data(1000, 1000, sparsity=0.01, seed=1)
        assert memory.output_bytes(sparse) < memory.output_bytes(dense)

    def test_scalar_bytes(self):
        from repro.hops import memory

        assert memory.output_bytes(LiteralOp(1.0)) == 8.0

    def test_flops_matmult(self):
        from repro.config import CodegenConfig
        from repro.hops import memory

        out = AggBinaryOp(_data(10, 20), _data(20, 30, seed=1))
        assert memory.compute_flops(out, CodegenConfig()) == pytest.approx(
            2.0 * 10 * 20 * 30, rel=0.01
        )

    def test_flops_weighted_unary(self):
        from repro.config import CodegenConfig

        from repro.hops import memory

        config = CodegenConfig()
        cheap = memory.compute_flops(UnaryOp("abs", _data(10, 10)), config)
        pricey = memory.compute_flops(UnaryOp("exp", _data(10, 10)), config)
        assert pricey > cheap
