"""Deep-chain regression: compile-time lowering needs no recursion.

The old demand-driven fused interpreter raised ``sys.setrecursionlimit``
to survive long elementwise chains; compile-time lowering of fused
patterns (and the iterative codegen walkers) made that hack obsolete.
These tests build a ~5k-operator chain — far beyond any Python
recursion limit — and require every layer (rewrites, exploration,
costing, CPlan construction, code generation, lowering, execution) to
handle it with the interpreter's default limit untouched.
"""

import sys

import numpy as np
import pytest

from repro import api
from tests.conftest import make_engine

CHAIN_OPS = 5000
ROWS, COLS = 40, 15


def _deep_chain():
    rng = np.random.default_rng(21)
    x = api.matrix(rng.random((ROWS, COLS)), "X")
    e = x
    for i in range(CHAIN_OPS // 2):
        e = e * 1.0001 + 0.0001
    return e.sum()


def _reference():
    arr = np.random.default_rng(21).random((ROWS, COLS))
    for _ in range(CHAIN_OPS // 2):
        arr = arr * 1.0001 + 0.0001
    return float(arr.sum())


class TestDeepChain:
    @pytest.mark.parametrize("mode", ["fused", "gen"])
    def test_deep_chain_compiles_and_runs(self, mode):
        limit = sys.getrecursionlimit()
        engine = make_engine(mode)
        result = api.eval(_deep_chain(), engine=engine)
        assert result == pytest.approx(_reference(), rel=1e-9)
        # The old workaround mutated the limit; lowering must not.
        assert sys.getrecursionlimit() == limit

    def test_gen_fuses_chain_into_one_operator(self):
        engine = make_engine("gen")
        result = api.eval(_deep_chain(), engine=engine)
        assert result == pytest.approx(_reference(), rel=1e-9)
        # The whole chain collapses into a single Cell operator; the
        # program is a handful of instructions, not thousands.
        assert engine.stats.spoof_executions.get("Cell") == 1
        assert engine.stats.n_instructions_lowered < 10

    def test_base_matches_reference(self):
        engine = make_engine("base")
        result = api.eval(_deep_chain(), engine=engine)
        assert result == pytest.approx(_reference(), rel=1e-9)

    def test_no_recursion_limit_workaround_in_tree(self):
        # Regression guard: the workaround must not come back.
        import pathlib

        import repro

        src_root = pathlib.Path(repro.__file__).parent
        offenders = [
            path
            for path in src_root.rglob("*.py")
            if "setrecursionlimit" in path.read_text()
        ]
        assert offenders == []
