"""Cross-engine equivalence: every mode must compute identical results.

These tests execute the paper's expression patterns (and more) under
base / numpy / fused / gen / gen-fa / gen-fnr and compare numerically.
"""

import numpy as np
import pytest

from repro import api
from repro.runtime.matrix import MatrixBlock
from tests.conftest import ALL_MODES, assert_engines_agree, make_engine


RNG = np.random.default_rng(99)
N, M, K = 120, 30, 6
XD = RNG.random((N, M))
YD = RNG.random((N, M))
ZD = RNG.random((N, M))
VD = RNG.random((M, 1))
WD = RNG.random((M, K))
PD = RNG.random((N, K + 1))
UD = RNG.random((N, K))
VFD = RNG.random((M, K))
SD = MatrixBlock.rand(N, M, sparsity=0.08, seed=17)
CVD = RNG.random((N, 1))
RVD = RNG.random((1, M))


def _mats():
    return {
        "X": api.matrix(XD, "X"),
        "Y": api.matrix(YD, "Y"),
        "Z": api.matrix(ZD, "Z"),
        "v": api.matrix(VD, "v"),
        "W": api.matrix(WD, "W"),
        "P": api.matrix(PD, "P"),
        "U": api.matrix(UD, "U"),
        "Vf": api.matrix(VFD, "Vf"),
        "S": api.matrix(SD, "S"),
        "c": api.matrix(CVD, "c"),
        "r": api.matrix(RVD, "r"),
    }


class TestPaperPatterns:
    def test_cell_sum_xyz(self):
        assert_engines_agree(lambda: [(lambda m: (m["X"] * m["Y"] * m["Z"]).sum())(_mats())])

    def test_cell_sum_xyz_sparse(self):
        def build():
            m = _mats()
            return [(m["S"] * m["Y"] * m["Z"]).sum()]

        assert_engines_agree(build)

    def test_multi_aggregates(self):
        def build():
            m = _mats()
            return [(m["X"] * m["Y"]).sum(), (m["X"] * m["Z"]).sum()]

        assert_engines_agree(build)

    def test_row_mv_chain(self):
        def build():
            m = _mats()
            return [m["X"].T @ (m["X"] @ m["v"])]

        assert_engines_agree(build)

    def test_row_mm_chain(self):
        def build():
            m = _mats()
            return [m["X"].T @ (m["X"] @ m["W"])]

        assert_engines_agree(build)

    def test_outer_wce(self):
        def build():
            m = _mats()
            return [(m["S"] * api.log(m["U"] @ m["Vf"].T + 1e-15)).sum()]

        assert_engines_agree(build)

    def test_als_update_rule(self):
        """Expression (1): O = ((X != 0) * (U V^T)) V + 1e-6 * U * r."""

        def build():
            m = _mats()
            guard = m["S"] != 0.0
            return [
                (guard * (m["U"] @ m["Vf"].T)) @ m["Vf"] + m["U"] * 1e-6
            ]

        assert_engines_agree(build)

    def test_mlogreg_inner(self):
        """Expression (2): the Figure 5 pattern."""

        def build():
            m = _mats()
            q = m["P"][:, 0:K] * (m["X"] @ m["W"])
            return [m["X"].T @ (q - m["P"][:, 0:K] * q.row_sums())]

        assert_engines_agree(build)

    def test_fig10_row_chain(self):
        def build():
            m = _mats()
            f = m["X"] / m["X"].row_sums()
            for i in range(5):
                f = f * float(i + 1)
            return [f.sum()]

        assert_engines_agree(build)


class TestBroadcastAndVectors:
    def test_col_vector_side(self):
        def build():
            m = _mats()
            return [((m["X"] - m["c"]) * m["Y"]).sum()]

        assert_engines_agree(build)

    def test_row_vector_side(self):
        def build():
            m = _mats()
            return [((m["X"] * m["r"]) + m["Y"]).sum()]

        assert_engines_agree(build)

    def test_row_and_col_agg_outputs(self):
        def build():
            m = _mats()
            e = m["X"] * m["Y"] + 1.5
            return [e.row_sums(), e.col_sums()]

        assert_engines_agree(build)

    def test_no_agg_cell_output(self):
        def build():
            m = _mats()
            return [m["X"] * m["Y"] * 2.0 + m["Z"]]

        assert_engines_agree(build)

    def test_min_max_aggregates(self):
        def build():
            m = _mats()
            return [(m["X"] * m["Y"]).max(), (m["X"] + m["Z"]).min()]

        assert_engines_agree(build)

    def test_comparison_chain(self):
        def build():
            m = _mats()
            return [((m["X"] > 0.5) * m["Y"]).sum()]

        assert_engines_agree(build)

    def test_ternary_ifelse(self):
        def build():
            m = _mats()
            return [api.ifelse(m["X"] > 0.5, m["Y"], m["Z"]).sum()]

        assert_engines_agree(build)

    def test_sigmoid_sprop_chain(self):
        def build():
            m = _mats()
            return [(api.sigmoid(m["X"]) * api.sprop(api.sigmoid(m["Y"]))).sum()]

        assert_engines_agree(build)


class TestSharedIntermediates:
    def test_diamond_dag(self):
        def build():
            m = _mats()
            shared = m["X"] * m["Y"]
            return [((shared + 1.0) * (shared - 1.0)).sum()]

        assert_engines_agree(build)

    def test_multi_root_share(self):
        def build():
            m = _mats()
            shared = m["X"] * 2.0
            return [(shared * m["Y"]).sum(), shared.row_sums(), (shared + m["Z"]).col_sums()]

        assert_engines_agree(build)

    def test_deep_chain(self):
        def build():
            m = _mats()
            e = m["X"]
            for i in range(8):
                e = e * (0.9 + 0.01 * i) + 0.01
            return [e.sum()]

        assert_engines_agree(build)

    def test_rowsums_shared_between_roots(self):
        def build():
            m = _mats()
            rs = (m["X"] * m["Y"]).row_sums()
            return [(m["X"] * rs).sum(), (m["Z"] / (rs + 1.0)).sum()]

        assert_engines_agree(build)


class TestSparseInputs:
    def test_sparse_row_agg(self):
        def build():
            m = _mats()
            return [(m["S"] * m["Y"]).row_sums()]

        assert_engines_agree(build)

    def test_sparse_col_agg(self):
        def build():
            m = _mats()
            return [(m["S"] * m["S"]).col_sums()]

        assert_engines_agree(build)

    def test_sparse_no_agg_preserves_values(self):
        def build():
            m = _mats()
            return [m["S"] * m["Y"] * 3.0]

        assert_engines_agree(build)

    def test_sparse_mv_chain(self):
        def build():
            m = _mats()
            return [m["S"].T @ (m["S"] @ m["v"])]

        assert_engines_agree(build)

    def test_two_sparse_inputs(self):
        s2 = MatrixBlock.rand(N, M, sparsity=0.15, seed=23)

        def build():
            m = _mats()
            return [(m["S"] * api.matrix(s2, "S2")).sum()]

        assert_engines_agree(build)


class TestPlanCacheBehavior:
    def test_repeated_execution_hits_cache(self):
        engine = make_engine("gen")

        def run():
            m = _mats()
            return api.eval((m["X"] * m["Y"] * m["Z"]).sum(), engine=engine)

        first = run()
        compiled_after_first = engine.stats.n_classes_compiled
        second = run()
        assert first == pytest.approx(second)
        assert engine.stats.n_classes_compiled == compiled_after_first
        assert engine.stats.plan_cache_hits >= 1

    def test_cache_disabled_recompiles(self):
        engine = make_engine("gen", plan_cache_enabled=False)

        def run():
            m = _mats()
            return api.eval((m["X"] * m["Y"]).sum(), engine=engine)

        run()
        first_count = engine.stats.n_classes_compiled
        run()
        assert engine.stats.n_classes_compiled > first_count

    def test_file_compiler_backend(self):
        engine = make_engine("gen", compiler="file")

        def run():
            m = _mats()
            return api.eval((m["X"] * m["Y"]).sum(), engine=engine)

        expected = float(np.sum(XD * YD))
        assert run() == pytest.approx(expected)
