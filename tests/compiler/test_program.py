"""Program lowering: slots, dependencies, refcounts, fused matching."""

import numpy as np
import pytest

from repro import api
from repro.compiler.program import lower_program
from repro.hops.rewrites import apply_rewrites
from tests.conftest import make_engine


def _lower(exprs, mode="base"):
    roots = apply_rewrites([e.hop for e in exprs])
    return lower_program(roots, mode)


class TestLoweringStructure:
    def test_constants_are_not_instructions(self, rng):
        x = api.matrix(rng.random((5, 5)), "X")
        program = _lower([(x * 2.0).sum()])
        # X and the literal 2.0 preload into slots; b(*) and ua(+) are
        # the only scheduled instructions.
        assert len(program.constants) == 2
        assert program.n_instructions == 2
        assert program.n_slots == 4

    def test_topological_instruction_order(self, rng):
        x = api.matrix(rng.random((6, 6)), "X")
        y = api.matrix(rng.random((6, 6)), "Y")
        program = _lower([((x * y) + x).row_sums(), (x * y).sum()])
        produced = set(slot for slot, _ in program.constants)
        for instr in program.instructions:
            assert all(slot in produced for slot in instr.input_slots)
            produced.add(instr.output_slot)

    def test_dependency_edges_match_slots(self, rng):
        x = api.matrix(rng.random((6, 6)), "X")
        program = _lower([(x * 3.0 + 1.0).sum()])
        by_index = {i.index: i for i in program.instructions}
        for instr in program.instructions:
            for dep in instr.dep_indices:
                assert by_index[dep].output_slot in instr.input_slots
                assert instr.index in by_index[dep].dependent_indices

    def test_shared_subexpression_lowered_once(self, rng):
        x = api.matrix(rng.random((8, 8)), "X")
        shared = x * 2.0
        program = _lower([shared.sum(), (shared + 1.0).sum()])
        multiplies = [
            i for i in program.instructions if i.hop.opcode() == "b(*)"
        ]
        assert len(multiplies) == 1

    def test_root_slots_pinned(self, rng):
        x = api.matrix(rng.random((4, 4)), "X")
        program = _lower([x.sum(), (x + 1.0).sum()])
        assert len(program.root_slots) == 2
        assert set(program.root_slots) <= program.pinned

    def test_duplicate_roots_share_slot(self, rng):
        x = api.matrix(rng.random((4, 4)), "X")
        e = x.sum()
        program = _lower([e, e])
        assert program.root_slots[0] == program.root_slots[1]

    def test_data_root_is_constant_slot(self, rng):
        x = api.matrix(rng.random((4, 4)), "X")
        program = _lower([x])
        assert program.n_instructions == 0
        assert program.root_slots[0] in {s for s, _ in program.constants}

    def test_consumer_counts(self, rng):
        x = api.matrix(rng.random((6, 6)), "X")
        shared = x * 2.0
        program = _lower([(shared + shared).sum()])
        mult = next(
            i for i in program.instructions if i.hop.opcode() == "b(*)"
        )
        # shared feeds both operands of the add.
        assert program.consumer_counts[mult.output_slot] == 2

    def test_max_width_of_independent_branches(self, rng):
        mats = [api.matrix(rng.random((5, 5)), f"M{i}") for i in range(3)]
        program = _lower([(m * 2.0).sum() for m in mats])
        assert program.max_width() == 3


class TestFusedLowering:
    def test_sumprod_lowered_to_single_fused_instruction(self, rng):
        x = api.matrix(rng.random((20, 10)), "X")
        y = api.matrix(rng.random((20, 10)), "Y")
        program = _lower([(x * y).sum()], mode="fused")
        assert program.n_instructions == 1
        instr = program.instructions[0]
        assert instr.opcode == "fused"
        assert instr.fused_match.name == "sumprod"

    def test_mmchain_lowered(self, rng):
        x = api.matrix(rng.random((30, 8)), "X")
        v = api.matrix(rng.random((8, 1)), "v")
        program = _lower([x.T @ (x @ v)], mode="fused")
        names = [
            i.fused_match.name for i in program.instructions
            if i.opcode == "fused"
        ]
        assert names == ["mmchain"]

    def test_covered_intermediate_not_lowered_unless_demanded(self, rng):
        x = api.matrix(rng.random((20, 10)), "X")
        y = api.matrix(rng.random((20, 10)), "Y")
        # x*y is covered by sumprod and has no other consumer.
        program = _lower([(x * y).sum()], mode="fused")
        assert all(i.hop.opcode() != "b(*)" for i in program.instructions)
        # With a second consumer the intermediate is materialized too.
        prod = x * y
        program2 = _lower([prod.sum(), prod.row_sums()], mode="fused")
        assert any(i.hop.opcode() == "b(*)" for i in program2.instructions)

    def test_fused_results_match_base(self, rng):
        xd, yd = rng.random((25, 12)), rng.random((25, 12))

        def build():
            x, y = api.matrix(xd, "X"), api.matrix(yd, "Y")
            return [(x * y).sum(), x.T @ (x @ api.matrix(yd[:12, :1], "v"))]

        base = api.eval_all(build(), engine=make_engine("base"))
        fused = api.eval_all(build(), engine=make_engine("fused"))
        assert base[0] == pytest.approx(fused[0])
        np.testing.assert_allclose(
            base[1].to_dense(), fused[1].to_dense(), rtol=1e-10
        )


class TestGenLowering:
    def test_spoof_instructions_present(self, rng):
        engine = make_engine("gen")
        x = api.matrix(rng.random((40, 20)), "X")
        y = api.matrix(rng.random((40, 20)), "Y")
        program = engine.compile([((x * y) * 2.0).sum().hop])
        opcodes = {i.opcode for i in program.instructions}
        assert "spoof" in opcodes

    def test_multi_agg_spoof_out(self, rng):
        engine = make_engine("gen")
        x = api.matrix(rng.random((40, 20)), "X")
        y = api.matrix(rng.random((40, 20)), "Y")
        z = api.matrix(rng.random((40, 20)), "Z")
        roots = [(x * y).sum().hop, (x * z).sum().hop]
        program = engine.compile(roots)
        opcodes = [i.opcode for i in program.instructions]
        if "spoof_out" in opcodes:
            outs = [i for i in program.instructions if i.opcode == "spoof_out"]
            assert len(outs) == 2
