"""Compiler pipeline: pass composition and single-run guarantees."""

import numpy as np
import pytest

from repro import api
from repro.compiler.execution import Engine
from repro.compiler.pipeline import (
    CompilationContext,
    CodegenPass,
    ExecTypeSelectionPass,
    RewritePass,
    build_pipeline,
    compile_program,
)
from repro.config import ClusterConfig, CodegenConfig
from repro.hops.types import ExecType
from tests.conftest import ALL_MODES, make_engine


def _expr(rng):
    x = api.matrix(rng.random((30, 20)), "X")
    y = api.matrix(rng.random((30, 20)), "Y")
    return (x * y).sum()


class TestPipelineShape:
    def test_base_modes_have_no_codegen_pass(self):
        for mode in ("base", "numpy", "fused"):
            names = [p.name for p in build_pipeline(mode)]
            assert names == ["rewrites", "exec-type-selection"]

    def test_gen_modes_have_codegen_pass(self):
        for mode in ("gen", "gen-fa", "gen-fnr"):
            names = [p.name for p in build_pipeline(mode)]
            assert names == ["rewrites", "codegen", "exec-type-selection"]

    def test_codegen_policy_per_mode(self):
        policies = {
            mode: next(
                p.policy for p in build_pipeline(mode)
                if isinstance(p, CodegenPass)
            )
            for mode in ("gen", "gen-fa", "gen-fnr")
        }
        assert policies == {"gen": "cost", "gen-fa": "fa", "gen-fnr": "fnr"}


class TestExecTypeSelectionRunsOnce:
    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_one_selection_per_compile(self, mode, rng):
        engine = make_engine(mode)
        api.eval(_expr(rng), engine=engine)
        assert engine.stats.n_exec_type_selections == 1
        assert engine.stats.n_programs_compiled == 1
        api.eval(_expr(rng), engine=engine)
        assert engine.stats.n_exec_type_selections == 2
        assert engine.stats.n_programs_compiled == 2

    def test_selection_types_spliced_spoofs(self, rng):
        config = CodegenConfig(cluster=ClusterConfig(), local_mem_budget=1.0)
        engine = Engine(mode="gen", config=config)
        program = engine.compile([_expr(rng).hop])
        assert engine.stats.n_exec_type_selections == 1
        spoofs = [i for i in program.instructions if i.opcode == "spoof"]
        assert spoofs, "codegen should have spliced a fused operator"
        # A 1-byte budget forces every computed operator distributed.
        assert all(i.hop.exec_type is ExecType.SPARK for i in spoofs)

    def test_cp_selection_under_local_config(self, rng):
        engine = make_engine("gen")
        program = engine.compile([_expr(rng).hop])
        assert all(
            i.hop.exec_type is ExecType.CP for i in program.instructions
        )


class TestPassTiming:
    def test_pass_seconds_recorded(self, rng):
        engine = make_engine("gen")
        api.eval(_expr(rng), engine=engine)
        seconds = engine.stats.pipeline_pass_seconds
        assert set(seconds) == {
            "rewrites", "codegen", "exec-type-selection", "lowering"
        }
        assert all(v >= 0.0 for v in seconds.values())


class TestRewritePass:
    def test_cse_disabled_for_numpy_mode(self, rng):
        xd = rng.random((10, 10))

        def roots():
            x = api.matrix(xd, "X")
            a = (x * 2.0).sum()
            b = (x * 2.0).sum()
            return [a.hop, b.hop]

        ctx = CompilationContext("base", CodegenConfig())
        shared = RewritePass().run(roots(), ctx)
        assert shared[0] is shared[1]

        ctx_np = CompilationContext("numpy", CodegenConfig())
        unshared = RewritePass().run(roots(), ctx_np)
        assert unshared[0] is not unshared[1]

    def test_numpy_mode_duplicates_instructions(self, rng):
        xd = rng.random((10, 10))

        def build():
            x = api.matrix(xd, "X")
            return [(x * 2.0).sum(), (x * 2.0).sum()]

        cse = make_engine("base").compile([e.hop for e in build()])
        nocse = make_engine("numpy").compile([e.hop for e in build()])
        assert nocse.n_instructions > cse.n_instructions


class TestCompileProgramFacade:
    def test_engine_compile_returns_program(self, rng):
        engine = make_engine("base")
        program = engine.compile([_expr(rng).hop])
        assert program.n_instructions >= 2
        assert len(program.root_slots) == 1

    def test_compile_program_default_pipeline(self, rng):
        ctx = CompilationContext("base", CodegenConfig())
        program = compile_program([_expr(rng).hop], ctx)
        assert program.n_instructions >= 2
        assert ctx.stats.n_programs_compiled == 1
