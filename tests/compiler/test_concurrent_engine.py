"""Concurrent eval_all against one shared Engine (serving substrate).

The serving scheduler multiplexes requests over a single engine, so
compile (context lock), plan cache, and executor stats must all be
safe under concurrent ``execute`` calls — results must equal serial
evaluation and no counters may be lost to races.
"""

import threading

import numpy as np
import pytest

from repro import api
from tests.conftest import GEN_MODES, as_array, make_engine

RNG = np.random.default_rng(17)
XD = RNG.random((80, 30))
YD = RNG.random((80, 30))
VD = RNG.random((30, 1))

N_THREADS = 8
RUNS_PER_THREAD = 4


def _build():
    x = api.matrix(XD, "X")
    y = api.matrix(YD, "Y")
    v = api.matrix(VD, "v")
    return [
        (x * y * 2.0).sum(),
        x.T @ (x @ v),
        api.exp(x * 0.25).row_sums(),
    ]


@pytest.mark.parametrize("mode", ["base"] + GEN_MODES)
def test_concurrent_eval_all_matches_serial(mode):
    engine = make_engine(mode)
    reference = [as_array(value) for value in
                 api.eval_all(_build(), engine=engine)]
    per_run_instructions = engine.stats.n_instructions_executed
    baseline_classes = engine.stats.n_classes_compiled

    results: dict[int, list] = {}
    errors: list[BaseException] = []
    barrier = threading.Barrier(N_THREADS)

    def worker(index):
        try:
            barrier.wait()
            for _ in range(RUNS_PER_THREAD):
                results.setdefault(index, []).append(
                    [as_array(v) for v in api.eval_all(_build(),
                                                       engine=engine)]
                )
        except BaseException as exc:  # surfaces in the main thread
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(N_THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors

    for runs in results.values():
        assert len(runs) == RUNS_PER_THREAD
        for run in runs:
            for expected, actual in zip(reference, run):
                np.testing.assert_allclose(actual, expected, rtol=1e-10)

    # Stats integrity: every run's instruction count was recorded
    # (identical DAG => identical program size), and concurrent misses
    # never compiled the same generated operator twice.
    total_runs = 1 + N_THREADS * RUNS_PER_THREAD
    assert engine.stats.n_instructions_executed == \
        per_run_instructions * total_runs
    assert engine.stats.n_classes_compiled == baseline_classes
    assert engine.stats.n_programs_compiled == total_runs
