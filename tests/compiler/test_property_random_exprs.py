"""Property-based engine equivalence on randomly generated DAGs.

A hypothesis strategy builds random expression DAGs (cell chains,
broadcasts, aggregations, matmult chains, shared subexpressions) and
asserts that all execution engines — including the fusing ones — agree
with the base interpreter.

The differential harness additionally runs every random expression
under the three *execution strategies* of the fusing engine — serial
skeletons, intra-operator parallel (2 and 4 partition threads), and the
simulated Spark backend — and asserts allclose equivalence, keeping the
strategies provably interchangeable.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import api
from repro.compiler.execution import Engine
from repro.config import ClusterConfig, CodegenConfig
from repro.runtime.matrix import MatrixBlock
from tests.conftest import assert_engines_agree, as_array

ROWS, COLS = 40, 12

_SAFE_UNARY = ["abs", "sqrt_abs", "sigmoid", "pow2", "exp_small", "round"]
_BINARY = ["+", "-", "*", "min", "max"]


def _apply_unary(name, expr):
    if name == "abs":
        return api.abs_(expr)
    if name == "sqrt_abs":
        return api.sqrt(api.abs_(expr))
    if name == "sigmoid":
        return api.sigmoid(expr)
    if name == "pow2":
        return expr * expr
    if name == "exp_small":
        return api.exp(expr * 0.1)
    if name == "round":
        return api.round_(expr)
    raise AssertionError(name)


@st.composite
def expression_dags(draw):
    """Build 1-3 root expressions over a small shared leaf pool."""
    seed = draw(st.integers(0, 2**20))
    rng = np.random.default_rng(seed)
    n_leaves = draw(st.integers(2, 4))
    leaves = []
    for i in range(n_leaves):
        sparse = draw(st.booleans())
        if sparse:
            block = MatrixBlock.rand(
                ROWS, COLS, sparsity=0.15, seed=seed + i, low=0.2, high=1.5
            )
        else:
            block = MatrixBlock(rng.uniform(-1.0, 1.0, (ROWS, COLS)))
        leaves.append(block)
    col_vec = MatrixBlock(rng.uniform(0.5, 1.5, (ROWS, 1)))
    row_vec = MatrixBlock(rng.uniform(0.5, 1.5, (1, COLS)))

    n_ops = draw(st.integers(2, 10))
    op_script = []
    for _ in range(n_ops):
        kind = draw(st.sampled_from(["unary", "binary", "scalar", "vector"]))
        if kind == "unary":
            op_script.append(("unary", draw(st.sampled_from(_SAFE_UNARY))))
        elif kind == "binary":
            op_script.append(
                ("binary", draw(st.sampled_from(_BINARY)), draw(st.integers(0, 7)))
            )
        elif kind == "scalar":
            op_script.append(
                ("scalar", draw(st.sampled_from(_BINARY)),
                 draw(st.floats(0.25, 2.0)))
            )
        else:
            op_script.append(
                ("vector", draw(st.sampled_from(["+", "*"])), draw(st.booleans()))
            )
    finishers = draw(
        st.lists(
            st.sampled_from(["sum", "row_sums", "col_sums", "raw", "mv_chain"]),
            min_size=1,
            max_size=3,
        )
    )
    return leaves, col_vec, row_vec, op_script, finishers, seed


def _build(leaves, col_vec, row_vec, op_script, finishers, seed):
    mats = [api.matrix(block, f"L{i}") for i, block in enumerate(leaves)]
    cvec = api.matrix(col_vec, "cv")
    rvec = api.matrix(row_vec, "rv")
    pool = list(mats)
    expr = mats[0]
    for step in op_script:
        if step[0] == "unary":
            expr = _apply_unary(step[1], expr)
        elif step[0] == "binary":
            other = pool[step[2] % len(pool)]
            expr = api.Mat(
                __import__("repro.hops.hop", fromlist=["BinaryOp"]).BinaryOp(
                    step[1], expr.hop, other.hop
                )
            )
        elif step[0] == "scalar":
            expr = api.Mat(
                __import__("repro.hops.hop", fromlist=["BinaryOp"]).BinaryOp(
                    step[1], expr.hop, api.scalar(step[2]).hop
                )
            )
        else:
            vec = cvec if step[2] else rvec
            expr = expr * vec if step[1] == "*" else expr + vec
        pool.append(expr)

    rng = np.random.default_rng(seed)
    roots = []
    for finisher in finishers:
        base = pool[rng.integers(0, len(pool))]
        if finisher == "sum":
            roots.append(base.sum())
        elif finisher == "row_sums":
            roots.append(base.row_sums())
        elif finisher == "col_sums":
            roots.append(base.col_sums())
        elif finisher == "mv_chain":
            v = api.matrix(rng.uniform(0.1, 1.0, (COLS, 1)), "v")
            roots.append(base.T @ (base @ v))
        else:
            roots.append(base)
    return roots


@given(expression_dags())
@settings(max_examples=40, deadline=None)
def test_all_engines_agree_on_random_dags(dag):
    leaves, col_vec, row_vec, op_script, finishers, seed = dag
    assert_engines_agree(
        lambda: _build(leaves, col_vec, row_vec, op_script, finishers, seed),
        rtol=1e-7,
        atol=1e-9,
    )


def _strategy_configs() -> dict[str, CodegenConfig]:
    """The three execution strategies of the fusing engine.

    ``intra_op_min_cells=1`` forces partitioning even on the small
    property-test matrices, so the parallel skeleton paths actually
    execute; the spark config keeps the default driver budget so
    exec-type selection still distributes only oversized operators —
    ``local_mem_budget=0`` would push every tiny operator through the
    cluster path, which the distributed tests already cover.

    The kernel-tier axis rides the same harness: ``interpreted`` pins
    the tile-loop skeletons (the differential oracle), ``serial`` runs
    the compiled vectorized kernels (default threshold 0), and
    ``tiered`` starts interpreted and promotes mid-sequence at hotness
    2 — every strategy must agree with the base interpreter.

    The ``verified`` leg is the static-analysis differential check:
    every random DAG also compiles and runs under ``verify_level=full``
    (per-pass DAG verification, post-lowering program verification,
    generated-kernel lint), asserting the verifier reports zero
    findings on healthy programs — the false-positive guard for the
    analysis passes.
    """
    return {
        "interpreted": CodegenConfig(intra_op_threads=1,
                                     vectorized_kernels=False),
        "serial": CodegenConfig(intra_op_threads=1),
        "tiered": CodegenConfig(intra_op_threads=1, kernel_hot_threshold=2),
        "intra-op-2": CodegenConfig(intra_op_threads=2, intra_op_min_cells=1),
        "intra-op-4": CodegenConfig(intra_op_threads=4, intra_op_min_cells=1),
        "spark": CodegenConfig(cluster=ClusterConfig(),
                               local_mem_budget=1e4),
        "spark-mp": CodegenConfig(cluster=ClusterConfig(),
                                  local_mem_budget=1e4,
                                  distributed_backend="multiprocess",
                                  mp_workers=2),
        "verified": CodegenConfig(intra_op_threads=1, verify_level="full"),
    }


@given(expression_dags())
@settings(max_examples=25, deadline=None)
def test_execution_strategies_agree_on_random_dags(dag):
    """Differential harness: serial vs intra-op parallel vs spark."""
    leaves, col_vec, row_vec, op_script, finishers, seed = dag

    def build():
        return _build(leaves, col_vec, row_vec, op_script, finishers, seed)

    reference = [
        as_array(v)
        for v in api.eval_all(build(), engine=Engine(mode="base"))
    ]
    by_strategy = {}
    for name, config in _strategy_configs().items():
        engine = Engine(mode="gen", config=config)
        results = [as_array(v) for v in api.eval_all(build(), engine=engine)]
        by_strategy[name] = results
        assert len(results) == len(reference)
        for idx, (expected, actual) in enumerate(zip(reference, results)):
            np.testing.assert_allclose(
                actual, expected, rtol=1e-7, atol=1e-9,
                err_msg=f"strategy={name} output={idx}",
            )
        if config.verify_level != "off":
            # Healthy programs must verify clean: a finding here is a
            # verifier false positive (or a genuine compiler bug).
            assert engine.stats.n_verifier_findings == 0
            assert engine.stats.n_lint_rejects == 0
            assert engine.stats.n_verified_programs > 0
    # The multiprocess backend replays the exact simulated per-partition
    # kernels, so the two distributed backends must agree to the bit.
    for idx, (sim, mp) in enumerate(
        zip(by_strategy["spark"], by_strategy["spark-mp"])
    ):
        np.testing.assert_array_equal(
            sim, mp, err_msg=f"spark vs spark-mp output={idx}"
        )


def _quantize_and_compress(leaves, seed):
    """Per-leaf compressed variants covering all encodings.

    Rotates DDC (few distinct dense values), OLE-with-implicit-zero
    (zero-dominated), and co-coded groups; returns the quantized blocks
    (the oracle inputs) alongside their compressed twins.
    """
    from repro.runtime.compressed import compress

    rng = np.random.default_rng(seed)
    quantized, compressed = [], []
    for i, block in enumerate(leaves):
        style = i % 3
        if style == 0:
            arr = np.round(block.to_dense() * 2.0)
            comp = compress(MatrixBlock(arr), co_code=False)
        elif style == 1:
            dense = block.to_dense()
            arr = np.where(np.abs(dense) > 0.8, np.round(dense * 2.0), 0.0)
            comp = compress(MatrixBlock(arr), co_code=False)
            assert any(g.encoding == "ole" for g in comp.groups)
        else:
            arr = rng.integers(0, 3, (ROWS, COLS)).astype(np.float64)
            comp = compress(MatrixBlock(arr), co_code=True)
        quantized.append(MatrixBlock(arr))
        compressed.append(comp)
    return quantized, compressed


def _to_array(value):
    from repro.runtime.compressed import CompressedMatrix

    if isinstance(value, CompressedMatrix):
        return value.decompress().to_dense()
    return as_array(value)


@given(expression_dags())
@settings(max_examples=15, deadline=None)
def test_compressed_inputs_match_decompressed_oracle(dag):
    """Compressed leg of the differential harness: random DAGs over
    DDC / OLE-implicit / co-coded inputs vs the decompressed oracle."""
    leaves, col_vec, row_vec, op_script, finishers, seed = dag
    quantized, compressed = _quantize_and_compress(leaves, seed)

    reference = [
        _to_array(v)
        for v in api.eval_all(
            _build(quantized, col_vec, row_vec, op_script, finishers, seed),
            engine=Engine(mode="base"),
        )
    ]
    for mode in ["base", "fused", "gen"]:
        results = [
            _to_array(v)
            for v in api.eval_all(
                _build(compressed, col_vec, row_vec, op_script, finishers,
                       seed),
                engine=Engine(mode=mode),
            )
        ]
        assert len(results) == len(reference)
        for idx, (expected, actual) in enumerate(zip(reference, results)):
            np.testing.assert_allclose(
                actual, expected, rtol=1e-7, atol=1e-9,
                err_msg=f"mode={mode} output={idx}",
            )
