"""PlanCache.get_or_compile hit/miss behavior and multi-root CSE.

Simulates iterative algorithms: DAGs rebuilt per iteration while
generated operators are reused through the plan cache (Section 2.1's
dynamic recompilation story).
"""

import numpy as np
import pytest

from repro import api
from repro.codegen.plan_cache import PlanCache
from repro.config import CodegenConfig
from tests.conftest import GEN_MODES, make_engine

RNG = np.random.default_rng(31)
XD = RNG.random((60, 25))
YD = RNG.random((60, 25))
ZD = RNG.random((60, 25))


def _sum_expr():
    x = api.matrix(XD, "X")
    y = api.matrix(YD, "Y")
    return (x * y * 2.0).sum()


class TestGetOrCompile:
    def _cplan(self, engine):
        """Compile once through the engine to obtain a realistic CPlan."""
        api.eval(_sum_expr(), engine=engine)
        (operator,) = list(engine.plan_cache._cache.values())
        return operator.cplan

    def test_miss_compiles_then_hits(self):
        engine = make_engine("gen")
        cplan = self._cplan(engine)
        cache = PlanCache(enabled=True)
        config = CodegenConfig()
        first = cache.get_or_compile(cplan, config)
        assert cache.lookups == 1 and cache.hits == 0
        second = cache.get_or_compile(cplan, config)
        assert cache.lookups == 2 and cache.hits == 1
        assert second is first

    def test_disabled_cache_always_misses(self):
        engine = make_engine("gen")
        cplan = self._cplan(engine)
        cache = PlanCache(enabled=False)
        config = CodegenConfig()
        first = cache.get_or_compile(cplan, config)
        second = cache.get_or_compile(cplan, config)
        assert first is not second
        assert cache.hits == 0

    def test_clear_resets_counters_and_entries(self):
        engine = make_engine("gen")
        cplan = self._cplan(engine)
        cache = PlanCache(enabled=True)
        cache.get_or_compile(cplan, CodegenConfig())
        cache.clear()
        assert cache.lookups == 0 and cache.hits == 0
        cache.get_or_compile(cplan, CodegenConfig())
        assert cache.hits == 0  # recompiled after clear


class TestConcurrentAccess:
    def test_concurrent_miss_compiles_exactly_once(self):
        """Threads racing on the same key share one compilation."""
        import threading

        from repro.runtime.stats import RuntimeStats

        engine = make_engine("gen")
        api.eval(_sum_expr(), engine=engine)
        (operator,) = list(engine.plan_cache._cache.values())
        cplan = operator.cplan

        cache = PlanCache(enabled=True)
        config = CodegenConfig()
        stats = RuntimeStats()
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        compiled: dict[int, object] = {}
        errors: list[BaseException] = []

        def worker(index):
            try:
                barrier.wait()
                compiled[index] = cache.get_or_compile(cplan, config, stats)
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        operators = set(map(id, compiled.values()))
        assert len(operators) == 1  # everyone got the same object
        assert stats.n_classes_compiled == 1  # no double-compile
        assert cache.lookups == n_threads
        assert cache.hits == n_threads - 1
        assert cache.size == 1


class TestIterativeExecution:
    @pytest.mark.parametrize("mode", GEN_MODES)
    def test_iterations_compile_once(self, mode):
        """Ten rebuilt DAGs (one per 'iteration') compile one operator."""
        engine = make_engine(mode)
        results = [api.eval(_sum_expr(), engine=engine) for _ in range(10)]
        assert all(r == pytest.approx(results[0]) for r in results)
        compiled = engine.stats.n_classes_compiled
        assert compiled >= 1
        # Every iteration after the first hits the cache.
        assert engine.stats.plan_cache_hits >= 9
        assert engine.stats.plan_cache_lookups == engine.stats.plan_cache_hits + compiled

    def test_changed_shape_reuses_operator(self):
        """Plan-cache keys ignore absolute sizes (shape classes only)."""
        engine = make_engine("gen")
        api.eval(_sum_expr(), engine=engine)
        compiled = engine.stats.n_classes_compiled
        x2 = api.matrix(RNG.random((90, 40)), "X2")
        y2 = api.matrix(RNG.random((90, 40)), "Y2")
        api.eval((x2 * y2 * 2.0).sum(), engine=engine)
        assert engine.stats.n_classes_compiled == compiled
        assert engine.stats.plan_cache_hits >= 1

    def test_different_pattern_compiles_new_operator(self):
        engine = make_engine("gen")
        api.eval(_sum_expr(), engine=engine)
        compiled = engine.stats.n_classes_compiled
        x = api.matrix(XD, "X")
        z = api.matrix(ZD, "Z")
        api.eval((api.exp(x) * z).sum(), engine=engine)
        assert engine.stats.n_classes_compiled > compiled


class TestMultiRootCSE:
    def test_shared_intermediate_computed_once(self):
        engine = make_engine("base")
        x = api.matrix(XD, "X")
        shared = x * 2.0
        program = engine.compile([shared.sum().hop, (shared + 1.0).sum().hop])
        multiplies = [
            i for i in program.instructions if i.hop.opcode() == "b(*)"
        ]
        assert len(multiplies) == 1

    def test_structurally_equal_roots_share(self):
        """CSE merges structurally identical subtrees across roots."""
        engine = make_engine("base")
        x = api.matrix(XD, "X")
        y = api.matrix(YD, "Y")
        r1 = (x * y).sum()
        r2 = (x * y).row_sums()  # distinct hop objects, same structure
        program = engine.compile([r1.hop, r2.hop])
        multiplies = [
            i for i in program.instructions if i.hop.opcode() == "b(*)"
        ]
        assert len(multiplies) == 1

    def test_eval_all_values_match_separate_eval(self):
        def build():
            x = api.matrix(XD, "X")
            y = api.matrix(YD, "Y")
            shared = x * y
            return [shared.sum(), (shared + 1.0).sum(), shared.col_sums()]

        together = api.eval_all(build(), engine=make_engine("gen"))
        separate = [
            api.eval(e, engine=make_engine("gen")) for e in build()
        ]
        assert together[0] == pytest.approx(separate[0])
        assert together[1] == pytest.approx(separate[1])
        np.testing.assert_allclose(
            together[2].to_dense(), separate[2].to_dense(), rtol=1e-10
        )

    def test_multi_root_cse_with_gen_plan_cache(self):
        """Multi-root CSE plus plan cache across repeated eval_all."""
        engine = make_engine("gen")

        def build():
            x = api.matrix(XD, "X")
            y = api.matrix(YD, "Y")
            z = api.matrix(ZD, "Z")
            return [(x * y).sum(), (x * z).sum()]

        first = api.eval_all(build(), engine=engine)
        compiled = engine.stats.n_classes_compiled
        second = api.eval_all(build(), engine=engine)
        assert first == pytest.approx(second)
        assert engine.stats.n_classes_compiled == compiled
