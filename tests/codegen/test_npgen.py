"""Vectorized-kernel code generation (npgen backend)."""

import numpy as np
import pytest

from repro import api
from repro.codegen.construct import construct_cplan
from repro.codegen.npgen import (
    CompiledKernel,
    compile_kernel,
    generate_kernel_source,
    generate_numba_source,
    kernel_name,
)
from repro.codegen.pygen import generate_source, operator_name
from repro.codegen.template import TemplateType
from repro.config import CodegenConfig
from repro.runtime.matrix import MatrixBlock
from repro.runtime.stats import RuntimeStats
from tests.codegen.test_construct_pygen import _select_plan


def _cplan(exprs, want_type=None):
    plan, config = _select_plan(exprs, want_type)
    return construct_cplan(plan, config)[0]


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestKernelEmission:
    def test_cell_kernel_emits_and_names_deterministically(self, rng):
        x = api.matrix(rng.random((30, 10)), "X")
        y = api.matrix(rng.random((30, 10)), "Y")
        cplan = _cplan([(x * y).sum()])
        name1, source1, _ = generate_kernel_source(cplan)
        name2, source2, _ = generate_kernel_source(cplan)
        assert name1 == name2 == kernel_name(cplan)
        assert source1 == source2
        assert name1 == operator_name(cplan) + "_k"
        assert "def genkernel" in source1

    def test_cell_sum_of_products_uses_einsum(self, rng):
        x = api.matrix(rng.random((30, 10)), "X")
        y = api.matrix(rng.random((30, 10)), "Y")
        z = api.matrix(rng.random((30, 10)), "Z")
        cplan = _cplan([(x * y * z).sum()])
        _, source, _ = generate_kernel_source(cplan)
        assert "np.einsum" in source

    def test_einsum_kernel_matches_plain_sum(self, rng):
        xd, yd, zd = (rng.random((64, 12)) for _ in range(3))
        x, y, z = (api.matrix(d, n) for d, n in
                   [(xd, "X"), (yd, "Y"), (zd, "Z")])
        cplan = _cplan([(x * y * z).sum()])
        kernel = compile_kernel(cplan, CodegenConfig())
        # The kernel signature is (a, b, s); side order follows the
        # cplan spec order with the main input removed.
        sides = [d for i, d in enumerate([xd, yd, zd])
                 if i != cplan.main_index]
        result = kernel.entry(
            [xd, yd, zd][cplan.main_index], sides, []
        )
        np.testing.assert_allclose(result, float(np.sum(xd * yd * zd)),
                                   rtol=1e-12)

    def test_mixed_shape_product_keeps_generic_body(self, rng):
        # A column-vector factor cannot join a whole-array einsum
        # contraction (einsum does not broadcast).
        x = api.matrix(rng.random((30, 10)), "X")
        c = api.matrix(rng.random((30, 1)), "c")
        cplan = _cplan([(x * c).sum()])
        _, source, _ = generate_kernel_source(cplan)
        assert "np.einsum" not in source

    def test_row_kernel_csr_main_safe_for_matmul_chain(self, rng):
        x = api.matrix(rng.random((50, 8)), "X")
        v = api.matrix(rng.random((8, 1)), "v")
        cplan = _cplan([x.T @ (x @ v)], TemplateType.ROW)
        _, source, csr_safe = generate_kernel_source(cplan)
        assert csr_safe
        assert "CSR_MAIN_SAFE = True" in source

    def test_row_kernel_not_csr_safe_with_elementwise_main(self, rng):
        # The main input feeds an element-wise multiply, so the kernel
        # cannot run on a CSR main directly.
        x = api.matrix(rng.random((50, 8)), "X")
        v = api.matrix(rng.random((8, 1)), "v")
        cplan = _cplan([(x * api.sigmoid(x @ v)).row_sums()],
                       TemplateType.ROW)
        _, _, csr_safe = generate_kernel_source(cplan)
        assert not csr_safe


class TestNumbaVariant:
    def test_pure_cell_plan_emits_loop_variant(self, rng):
        xd = rng.random((40, 8))
        yd = rng.random((40, 8))
        x, y = api.matrix(xd, "X"), api.matrix(yd, "Y")
        cplan = _cplan([(api.abs_(x * y) + 1.0).sum()])
        source = generate_numba_source(cplan)
        assert source is not None
        assert "def genkernel_numba" in source
        # The emitted variant is valid plain Python: executing it
        # un-jitted must reproduce the vectorized result, which is what
        # keeps the Numba tier testable without Numba installed.
        namespace = {}
        exec(compile(source, "<numba variant>", "exec"), namespace)
        sides = [d for i, d in enumerate([xd, yd])
                 if i != cplan.main_index]
        got = namespace["genkernel_numba"](
            [xd, yd][cplan.main_index], *sides
        )
        np.testing.assert_allclose(got, float(np.sum(np.abs(xd * yd) + 1.0)),
                                   rtol=1e-9)

    def test_row_plan_has_no_loop_variant(self, rng):
        x = api.matrix(rng.random((50, 8)), "X")
        v = api.matrix(rng.random((8, 1)), "v")
        cplan = _cplan([x.T @ (x @ v)], TemplateType.ROW)
        assert generate_numba_source(cplan) is None

    def test_numba_request_degrades_gracefully(self, rng):
        """numba_kernels=True must never fail, with or without Numba.

        Without Numba the compile records a fallback and the NumPy
        kernel stays active; with Numba the jitted entry attaches.
        """
        x = api.matrix(rng.random((30, 10)), "X")
        y = api.matrix(rng.random((30, 10)), "Y")
        cplan = _cplan([(x * y).sum()])
        stats = RuntimeStats()
        kernel = compile_kernel(
            cplan, CodegenConfig(numba_kernels=True), stats=stats
        )
        assert isinstance(kernel, CompiledKernel)
        try:
            import numba  # noqa: F401
            have_numba = True
        except ImportError:
            have_numba = False
        if have_numba:
            assert kernel.tier == "numba"
            assert kernel.numba_entry is not None
        else:
            assert kernel.tier == "numpy"
            assert kernel.numba_failed
            assert stats.n_numba_fallbacks == 1
        assert callable(kernel.entry)


class TestKernelCompilation:
    def test_kernel_shares_source_cache(self, rng):
        x = api.matrix(rng.random((30, 10)), "X")
        y = api.matrix(rng.random((30, 10)), "Y")
        cplan = _cplan([api.sqrt(api.abs_(x - y)).row_sums()])
        stats = RuntimeStats()
        first = compile_kernel(cplan, CodegenConfig(), stats=stats)
        hits_after_first = stats.n_source_cache_hits
        second = compile_kernel(cplan, CodegenConfig(), stats=stats)
        assert stats.n_source_cache_hits == hits_after_first + 1
        # Byte-identical source resolves to the same exec()'d callable.
        assert first.entry is second.entry

    def test_genexec_and_kernel_sources_differ(self, rng):
        x = api.matrix(rng.random((30, 10)), "X")
        y = api.matrix(rng.random((30, 10)), "Y")
        cplan = _cplan([(x * y).sum()])
        _, genexec_source = generate_source(cplan)
        _, kernel_source, _ = generate_kernel_source(cplan)
        assert "def genexec" in genexec_source
        assert "def genkernel" in kernel_source
        assert kernel_source != genexec_source


class TestMatrixBlockHelpers:
    def test_kernel_output_round_trips_matrix_block(self, rng):
        # NO_AGG kernels return contiguous arrays safe to wrap.
        x = api.matrix(rng.random((20, 6)), "X")
        y = api.matrix(rng.random((20, 6)), "Y")
        cplan = _cplan([x * y * 2.0])
        kernel = compile_kernel(cplan, CodegenConfig())
        xd = rng.random((20, 6))
        yd = rng.random((20, 6))
        sides = [d for i, d in enumerate([xd, yd])
                 if i != cplan.main_index]
        raw = kernel.entry([xd, yd][cplan.main_index], sides, [])
        block = MatrixBlock(raw)
        np.testing.assert_array_equal(block.to_dense(), xd * yd * 2.0)
