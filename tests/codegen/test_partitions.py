"""Plan partitions, interesting points, and cut sets (Section 4.2)."""

import numpy as np
import pytest

from repro import api
from repro.codegen.explore import explore
from repro.codegen.partitions import build_partitions, find_cut_sets
from repro.config import CodegenConfig
from repro.hops.hop import collect_dag
from repro.hops.rewrites import apply_rewrites


def _partitions(exprs):
    roots = apply_rewrites([e.hop for e in exprs])
    memo = explore(roots, CodegenConfig())
    parts = build_partitions(memo, roots)
    hop_by_id = {h.id: h for h in collect_dag(roots)}
    return roots, memo, parts, hop_by_id


def _mats(rng, *shapes):
    return [api.matrix(rng.random(s), f"M{i}") for i, s in enumerate(shapes)]


class TestPartitions:
    def test_independent_expressions_separate_partitions(self, rng):
        x, y = _mats(rng, (20, 10), (30, 8))
        _, _, parts, _ = _partitions([(x * 2.0 + 1.0).sum(), (y * 3.0).sum()])
        assert len(parts) == 2

    def test_shared_input_single_partition(self, rng):
        (x,) = _mats(rng, (20, 10))
        # Shared cell subexpression connects the two aggregates.
        shared = x * 2.0
        _, _, parts, _ = _partitions([(shared * 3.0).sum(), (shared + 1.0).sum()])
        assert len(parts) == 1

    def test_roots_are_never_referenced(self, rng):
        (x,) = _mats(rng, (20, 10))
        _, memo, parts, _ = _partitions([(x * 2.0 + 1.0).sum()])
        (part,) = parts
        for root in part.roots:
            for member in part.members:
                for entry in memo.get(member):
                    assert root not in entry.ref_ids() or member == root

    def test_inputs_outside_partition(self, rng):
        (x,) = _mats(rng, (20, 10))
        _, _, parts, _ = _partitions([(x * 2.0).sum()])
        (part,) = parts
        assert x.hop.id in part.inputs
        assert not (part.inputs & part.members)

    def test_materialization_points_multi_consumer(self, rng):
        (x,) = _mats(rng, (20, 10))
        shared = x * 2.0  # consumed twice below
        _, _, parts, hop_by_id = _partitions(
            [(shared * 3.0).sum(), (shared + 1.0).sum()]
        )
        (part,) = parts
        assert shared.hop.id in part.mat_points

    def test_interesting_points_per_consumer(self, rng):
        (x,) = _mats(rng, (20, 10))
        shared = x * 2.0
        _, _, parts, _ = _partitions([(shared * 3.0).sum(), (shared + 1.0).sum()])
        (part,) = parts
        consumers = {
            p.consumer_id for p in part.points if p.target_id == shared.hop.id
        }
        assert len(consumers) == 2  # one boolean decision per dependency

    def test_no_points_for_linear_chain(self, rng):
        (x,) = _mats(rng, (20, 10))
        _, _, parts, _ = _partitions([(x * 2.0 + 1.0).sum()])
        (part,) = parts
        mp_points = [p for p in part.points if p.target_id in part.mat_points]
        assert mp_points == []

    def test_template_switch_point(self, rng):
        """Y + X (U V^T): the Cell consumer of the Outer group is a
        template switch (paper example in Section 4.2)."""
        x = api.matrix(
            api.MatrixBlock.rand(60, 50, sparsity=0.05, seed=3)
            if hasattr(api, "MatrixBlock")
            else np.random.default_rng(0).random((60, 50)),
            "X",
        )
        from repro.runtime.matrix import MatrixBlock

        x = api.matrix(MatrixBlock.rand(60, 50, sparsity=0.05, seed=3), "X")
        y = api.matrix(np.random.default_rng(1).random((60, 50)), "Y")
        u = api.matrix(np.random.default_rng(2).random((60, 4)), "U")
        v = api.matrix(np.random.default_rng(3).random((50, 4)), "V")
        expr = y + x * (u @ v.T)
        roots = apply_rewrites([expr.hop])
        memo = explore(roots, CodegenConfig())
        parts = build_partitions(memo, roots)
        switches = [
            p
            for part in parts
            for p in part.points
            if p.target_id not in part.mat_points
        ]
        assert switches, "expected at least one template-switch point"


class TestCutSets:
    def test_chain_of_shared_points_yields_cut_set(self, rng):
        (x,) = _mats(rng, (30, 10))
        a = x * 2.0
        b = a + 1.0  # shared twice
        e1 = (b * 3.0).sum()
        e2 = (b * 4.0) * a  # a also consumed here
        e3 = e2.sum()
        roots = apply_rewrites([e1.hop, e3.hop])
        memo = explore(roots, CodegenConfig())
        parts = build_partitions(memo, roots)
        hop_by_id = {h.id: h for h in collect_dag(roots)}
        (part,) = parts
        if len(part.points) >= 3:
            cuts = find_cut_sets(part, memo, hop_by_id)
            for cut in cuts:
                covered = set(cut.cut_points) | set(cut.side1) | set(cut.side2)
                assert covered <= set(range(len(part.points)))
                assert not (set(cut.side1) & set(cut.side2))

    def test_cut_set_scores_sorted(self, rng):
        (x,) = _mats(rng, (30, 10))
        a = x * 2.0
        b = a * 3.0
        e1, e2 = (b + a).sum(), (b - a).sum()
        roots = apply_rewrites([e1.hop, e2.hop])
        memo = explore(roots, CodegenConfig())
        parts = build_partitions(memo, roots)
        hop_by_id = {h.id: h for h in collect_dag(roots)}
        for part in parts:
            cuts = find_cut_sets(part, memo, hop_by_id)
            scores = [c.score for c in cuts]
            assert scores == sorted(scores)
