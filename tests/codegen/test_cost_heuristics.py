"""Cost model properties, heuristic selectors, and optimizer behavior."""

import numpy as np
import pytest

from repro import api
from repro.codegen.cost import CostEstimator, blocked_set
from repro.codegen.explore import explore
from repro.codegen.heuristics import fuse_all, fuse_no_redundancy
from repro.codegen.optimizer import CodegenOptimizer
from repro.codegen.partitions import build_partitions
from repro.codegen.template import TemplateType
from repro.config import ClusterConfig, CodegenConfig
from repro.hops.hop import SpoofOp, collect_dag
from repro.hops.rewrites import apply_rewrites
from repro.runtime.matrix import MatrixBlock


def _setup(exprs, config=None):
    config = config or CodegenConfig()
    roots = apply_rewrites([e.hop for e in exprs])
    memo = explore(roots, config)
    hop_by_id = {h.id: h for h in collect_dag(roots)}
    estimator = CostEstimator(memo, config, hop_by_id)
    parts = build_partitions(memo, roots)
    return roots, memo, hop_by_id, estimator, parts, config


class TestCostModel:
    def test_fused_cheaper_than_unfused_chain(self, rng):
        """Fusing a cell chain saves intermediate writes."""
        x = api.matrix(rng.random((1000, 100)), "X")
        y = api.matrix(rng.random((1000, 100)), "Y")
        _, memo, hop_by_id, est, parts, _ = _setup([(x * y * 2.0 + 1.0).sum()])
        (part,) = parts
        fused_cost = est.cost_partition(part, frozenset())
        # Blocking every fusion reference forces basic execution.
        all_edges = frozenset(
            (c, r)
            for m in part.members
            for e in memo.get(m)
            for c, r in [(m, ref) for ref in e.ref_ids()]
        )
        unfused_cost = est.cost_partition(part, all_edges)
        assert fused_cost < unfused_cost

    def test_sparsity_scaling_reduces_outer_cost(self, rng):
        u = rng.random((500, 8))
        v = rng.random((400, 8))

        def cost_for(sparsity):
            s = api.matrix(MatrixBlock.rand(500, 400, sparsity=sparsity, seed=5), "S")
            um, vm = api.matrix(u, "U"), api.matrix(v, "V")
            expr = (s * api.log(um @ vm.T + 1e-15)).sum()
            _, memo, hop_by_id, est, parts, _ = _setup([expr])
            return min(est.cost_partition(p, frozenset()) for p in parts)

        assert cost_for(0.001) < cost_for(0.5)

    def test_intra_op_parallelism_scales_compute(self, rng):
        """More intra-op threads lower fused compute estimates, so plan
        enumeration can prefer fusion plans that parallelize well."""
        x = api.matrix(rng.random((2000, 200)), "X")

        def cost_for(threads):
            # Stacked expensive unaries make the operator compute-bound,
            # so dividing compute by the parallelism moves the
            # max(read, compute) term.
            expr = (api.exp(api.exp(api.exp(x * 0.01))) * x).sum()
            _, memo, hop_by_id, est, parts, _ = _setup(
                [expr], CodegenConfig(intra_op_threads=threads)
            )
            return min(est.cost_partition(p, frozenset()) for p in parts)

        assert cost_for(4) < cost_for(1)

    def test_small_inputs_keep_serial_compute_estimates(self, rng):
        """Below ``intra_op_min_cells`` the runtime stays serial, and
        the cost model must mirror that gate."""
        x = api.matrix(rng.random((40, 12)), "X")

        def cost_for(threads):
            expr = (api.exp(x * 0.5) * x).sum()
            _, memo, hop_by_id, est, parts, _ = _setup(
                [expr], CodegenConfig(intra_op_threads=threads)
            )
            return min(est.cost_partition(p, frozenset()) for p in parts)

        assert cost_for(4) == cost_for(1)

    def test_distributed_costing_charges_broadcasts(self, rng):
        x = api.matrix(rng.random((2000, 50)), "X")
        v = api.matrix(rng.random((2000, 1)), "v")
        expr = ((x * v) * 2.0).sum()
        local_cfg = CodegenConfig()
        dist_cfg = CodegenConfig(
            cluster=ClusterConfig(), local_mem_budget=1e5
        )
        _, _, _, est_l, parts_l, _ = _setup([expr], local_cfg)

        x2 = api.matrix(rng.random((2000, 50)), "X")
        v2 = api.matrix(rng.random((2000, 1)), "v")
        expr2 = ((x2 * v2) * 2.0).sum()
        _, _, _, est_d, parts_d, _ = _setup([expr2], dist_cfg)
        local = sum(est_l.cost_partition(p, frozenset()) for p in parts_l)
        dist = sum(est_d.cost_partition(p, frozenset()) for p in parts_d)
        assert dist > local  # network bandwidths are slower than memory

    def test_partial_costing_cutoff(self, rng):
        x = api.matrix(rng.random((100, 20)), "X")
        _, _, _, est, parts, _ = _setup([(x * 2.0 + 1.0).sum()])
        (part,) = parts
        full = est.cost_partition(part, frozenset())
        assert est.cost_partition(part, frozenset(), bound=full / 2) == float("inf")


class TestHeuristics:
    def _as_setup(self, rng):
        """The ALS pattern where heuristics destroy the Outer template."""
        s = api.matrix(MatrixBlock.rand(300, 200, sparsity=0.02, seed=7), "S")
        u = api.matrix(rng.random((300, 6)), "U")
        v = api.matrix(rng.random((200, 6)), "V")
        expr = ((s != 0.0) * (u @ v.T)) @ v + u * 1e-6
        return _setup([expr])

    def test_fuse_all_maximal_cover(self, rng):
        _, memo, hop_by_id, est, parts, _ = self._as_setup(rng)
        plans = {}
        for part in parts:
            plans.update(fuse_all(est, part))
        total_covered = sum(p.n_covered for p in plans.values())
        assert total_covered >= 3

    def test_fnr_materializes_shared_intermediates(self, rng):
        x = api.matrix(rng.random((200, 30)), "X")
        shared = x * 2.0
        exprs = [(shared + 1.0).sum(), (shared * 3.0).sum()]
        _, memo, hop_by_id, est, parts, _ = _setup(exprs)
        for part in parts:
            plans = fuse_no_redundancy(est, part)
            for plan in plans.values():
                # No plan may cover the shared intermediate twice.
                covered_ids = [h.id for h in plan.covered]
                assert shared.hop.id not in covered_ids or plan.root is not None

    def test_cost_based_beats_heuristics_on_als(self, rng):
        """Gen keeps the sparsity-exploiting Outer; FA destroys it."""
        _, memo, hop_by_id, est, parts, config = self._as_setup(rng)
        from repro.codegen.enumerate import mpskip_enum

        gen_cost = 0.0
        fa_cost = 0.0
        for part in parts:
            result = mpskip_enum(est, part, config, memo, hop_by_id)
            gen_cost += result.cost
            fa_plans = fuse_all(est, part)
            fa_cost += est.cost_partition(
                part, frozenset(), prefer_max_fusion=True
            )
        assert gen_cost <= fa_cost


class TestOptimizerSplicing:
    def test_spoofs_share_materialized_outputs(self, rng):
        """An operator reading another operator's output must reference
        its SpoofOp, not a detached original hop (regression test)."""
        x = api.matrix(rng.random((500, 10)), "X")
        v = api.matrix(rng.random((500, 1)), "v")
        g = x.T @ (v * 2.0 + 1.0)
        exprs = [g, (g * g).sum()]
        roots = apply_rewrites([e.hop for e in exprs])
        optimizer = CodegenOptimizer(CodegenConfig())
        new_roots = optimizer.optimize(roots, policy="cost")
        dag = collect_dag(new_roots)
        spoofs = [h for h in dag if isinstance(h, SpoofOp)]
        if len(spoofs) >= 2:
            spoof_ids = {s.id for s in spoofs}
            for spoof in spoofs:
                for hop_in in spoof.inputs:
                    # No input may be a dead copy of a replaced root.
                    replaced = [
                        s for s in spoofs if s.covered_root.id == hop_in.id
                    ]
                    assert not replaced, "spoof wired to a replaced hop"

    def test_single_op_covers_not_generated(self, rng):
        x = api.matrix(rng.random((50, 10)), "X")
        roots = apply_rewrites([(x * 2.0).hop])
        optimizer = CodegenOptimizer(CodegenConfig())
        new_roots = optimizer.optimize(roots, policy="cost")
        assert not any(isinstance(h, SpoofOp) for h in collect_dag(new_roots))

    def test_multi_agg_grouping_caps_at_three(self, rng):
        x = api.matrix(rng.random((200, 50)), "X")
        mats = [api.matrix(rng.random((200, 50)), f"M{i}") for i in range(4)]
        exprs = [(x * m).sum() for m in mats]
        roots = apply_rewrites([e.hop for e in exprs])
        optimizer = CodegenOptimizer(CodegenConfig())
        new_roots = optimizer.optimize(roots, policy="cost")
        spoofs = {
            h.id: h for h in collect_dag(new_roots) if isinstance(h, SpoofOp)
        }
        for spoof in spoofs.values():
            assert len(spoof.operator.cplan.roots) <= 3

    def test_optimizer_counts_stats(self, rng):
        x = api.matrix(rng.random((100, 20)), "X")
        y = api.matrix(rng.random((100, 20)), "Y")
        optimizer = CodegenOptimizer(CodegenConfig())
        roots = apply_rewrites([((x * y) + 1.0).sum().hop])
        optimizer.optimize(roots, policy="cost")
        stats = optimizer.stats
        assert stats.n_dags_optimized == 1
        assert stats.n_cplans_constructed >= 1
        assert stats.n_classes_compiled >= 1
        assert stats.codegen_seconds > 0
