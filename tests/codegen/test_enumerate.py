"""MPSkipEnum tests: optimality vs exhaustive search, pruning safety."""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import api
from repro.codegen.cost import CostEstimator, blocked_set
from repro.codegen.enumerate import create_assignment, mpskip_enum, _num_skip_plans
from repro.codegen.explore import explore
from repro.codegen.partitions import build_partitions
from repro.config import CodegenConfig
from repro.hops.hop import collect_dag
from repro.hops.rewrites import apply_rewrites
from repro.runtime.stats import RuntimeStats


def _setup(exprs, **config_kwargs):
    config = CodegenConfig(**config_kwargs)
    roots = apply_rewrites([e.hop for e in exprs])
    memo = explore(roots, config)
    hop_by_id = {h.id: h for h in collect_dag(roots)}
    estimator = CostEstimator(memo, config, hop_by_id)
    parts = build_partitions(memo, roots)
    return config, memo, hop_by_id, estimator, parts


def _brute_force(estimator, part):
    best_cost, best_q = math.inf, None
    n = len(part.points)
    for bits in itertools.product([False, True], repeat=n):
        cost = estimator.cost_partition(part, blocked_set(part.points, bits))
        if cost < best_cost:
            best_cost, best_q = cost, bits
    return best_cost, best_q


def _shared_dag_exprs(rng, n_shared=2):
    x = api.matrix(rng.random((50, 20)), "X")
    shared1 = x * 2.0
    shared2 = shared1 + 1.0
    e1 = (shared2 * 3.0).sum()
    e2 = (shared2 * shared1).sum()
    e3 = (shared1 - 0.5).sum()
    return [e1, e2, e3]


class TestCreateAssignment:
    def test_first_assignment_all_false(self):
        assert create_assignment(4, 1) == [False] * 4

    def test_last_assignment_all_true(self):
        assert create_assignment(4, 16) == [True] * 4

    def test_linearization_negative_to_positive(self):
        # Position 0 is the most significant bit.
        assert create_assignment(3, 2) == [False, False, True]
        assert create_assignment(3, 5) == [True, False, False]

    def test_all_assignments_distinct(self):
        seen = {tuple(create_assignment(4, j)) for j in range(1, 17)}
        assert len(seen) == 16

    def test_num_skip_plans(self):
        # q = [F, T, F, F]: last positive index 1 -> skip 2^(4-2)-1 = 3.
        assert _num_skip_plans([False, True, False, False]) == 3
        assert _num_skip_plans([False, False, False, True]) == 0
        assert _num_skip_plans([True, False, False, False]) == 7


class TestOptimality:
    def test_matches_brute_force_shared_dag(self, rng):
        config, memo, hop_by_id, estimator, parts = _setup(_shared_dag_exprs(rng))
        for part in parts:
            if not part.points:
                continue
            best_cost, _ = _brute_force(estimator, part)
            result = mpskip_enum(estimator, part, config, memo, hop_by_id)
            assert result.cost == pytest.approx(best_cost, rel=1e-12)

    def test_matches_brute_force_without_pruning(self, rng):
        config, memo, hop_by_id, estimator, parts = _setup(
            _shared_dag_exprs(rng),
            enable_cost_pruning=False,
            enable_structural_pruning=False,
        )
        for part in parts:
            if not part.points:
                continue
            best_cost, _ = _brute_force(estimator, part)
            result = mpskip_enum(estimator, part, config, memo, hop_by_id)
            assert result.cost == pytest.approx(best_cost, rel=1e-12)

    def test_pruning_reduces_evaluations(self, rng):
        exprs = _shared_dag_exprs(rng)
        config_np, memo, hop_by_id, estimator, parts = _setup(
            exprs, enable_cost_pruning=False, enable_structural_pruning=False
        )
        full_evals = sum(
            mpskip_enum(estimator, p, config_np, memo, hop_by_id).n_evaluated
            for p in parts
            if p.points
        )
        config_p = CodegenConfig()
        pruned_evals = sum(
            mpskip_enum(estimator, p, config_p, memo, hop_by_id).n_evaluated
            for p in parts
            if p.points
        )
        assert pruned_evals <= full_evals

    def test_fuse_all_costed_first(self, rng):
        """The all-False (fuse-all) plan is plan j=1 by construction."""
        config, memo, hop_by_id, estimator, parts = _setup(_shared_dag_exprs(rng))
        for part in parts:
            n = len(part.points)
            if n:
                assert create_assignment(n, 1) == [False] * n


class TestLowerBound:
    def test_static_cost_is_lower_bound(self, rng):
        config, memo, hop_by_id, estimator, parts = _setup(_shared_dag_exprs(rng))
        for part in parts:
            static = estimator.static_partition_cost(part)
            n = len(part.points)
            for bits in itertools.product([False, True], repeat=min(n, 6)):
                padded = list(bits) + [False] * (n - len(bits))
                cost = estimator.cost_partition(part, blocked_set(part.points, padded))
                bound = static + estimator.materialization_cost(
                    part, padded, part.points
                )
                assert bound <= cost + 1e-9, (
                    f"lower bound {bound} exceeds true cost {cost}"
                )


@given(seed=st.integers(0, 500))
@settings(max_examples=25, deadline=None)
def test_optimality_property(seed):
    """MPSkipEnum equals exhaustive search on randomized shared DAGs."""
    rng = np.random.default_rng(seed)
    x = api.matrix(rng.random((30, 12)), "X")
    y = api.matrix(rng.random((30, 12)), "Y")
    shared = x * y
    layer = shared + float(rng.uniform(0.1, 2.0))
    exprs = [
        (layer * 2.0).sum(),
        (layer + shared).sum(),
    ]
    config = CodegenConfig()
    roots = apply_rewrites([e.hop for e in exprs])
    memo = explore(roots, config)
    hop_by_id = {h.id: h for h in collect_dag(roots)}
    estimator = CostEstimator(memo, config, hop_by_id)
    for part in build_partitions(memo, roots):
        if not part.points or len(part.points) > 10:
            continue
        best_cost, _ = _brute_force(estimator, part)
        result = mpskip_enum(estimator, part, config, memo, hop_by_id)
        assert result.cost <= best_cost + 1e-9
