"""Memo table unit tests: entries, pruning, absorption rules."""

import pytest

from repro.codegen.memo import MemoEntry, MemoTable
from repro.codegen.template import CloseType, TemplateType
from repro.hops.hop import AggUnaryOp, BinaryOp, DataOp
from repro.hops.types import AggDir, AggOp
from repro.runtime.matrix import MatrixBlock

C, R, M, O = (
    TemplateType.CELL,
    TemplateType.ROW,
    TemplateType.MAGG,
    TemplateType.OUTER,
)


def _hop(rows=10, cols=5, seed=0):
    return DataOp(MatrixBlock.rand(rows, cols, seed=seed), "X")


class TestMemoEntries:
    def test_entry_refs(self):
        entry = MemoEntry(C, (-1, 7, -1))
        assert entry.n_refs == 1
        assert entry.ref_ids() == [7]

    def test_with_status(self):
        entry = MemoEntry(C, (-1,))
        closed = entry.with_status(CloseType.CLOSED_VALID)
        assert closed.status is CloseType.CLOSED_VALID
        assert entry.status is CloseType.OPEN_VALID  # immutable

    def test_repr_markers(self):
        assert "#" in repr(MemoEntry(C, (-1,), CloseType.CLOSED_VALID))
        assert "!" in repr(MemoEntry(R, (-1,), CloseType.OPEN_INVALID))


class TestMemoTable:
    def test_add_deduplicates(self):
        memo = MemoTable()
        hop = _hop()
        memo.add(hop, [MemoEntry(C, (-1,)), MemoEntry(C, (-1,))])
        assert len(memo.get(hop.id)) == 1

    def test_add_keeps_distinct_refs(self):
        memo = MemoTable()
        hop = _hop()
        memo.add(hop, [MemoEntry(C, (-1,)), MemoEntry(C, (3,)), MemoEntry(R, (-1,))])
        assert len(memo.get(hop.id)) == 3

    def test_prune_redundant_removes_closed_without_refs(self):
        memo = MemoTable()
        hop = _hop()
        memo.add(
            hop,
            [
                MemoEntry(C, (-1,), CloseType.CLOSED_VALID),
                MemoEntry(C, (3,), CloseType.CLOSED_VALID),
                MemoEntry(R, (-1,), CloseType.OPEN_VALID),
            ],
        )
        memo.prune_redundant(hop)
        entries = memo.get(hop.id)
        assert MemoEntry(C, (3,), CloseType.CLOSED_VALID) in [
            MemoEntry(e.ttype, e.refs, e.status) for e in entries
        ]
        assert all(not (e.status.is_closed and e.n_refs == 0) for e in entries)

    def test_prune_redundant_removes_closed_invalid(self):
        memo = MemoTable()
        hop = _hop()
        memo.add(hop, [MemoEntry(C, (5,), CloseType.CLOSED_INVALID)])
        memo.prune_redundant(hop)
        assert memo.get(hop.id) == []

    def test_root_entries_exclude_open_invalid(self):
        memo = MemoTable()
        hop = _hop()
        memo.add(
            hop,
            [
                MemoEntry(R, (-1,), CloseType.OPEN_INVALID),
                MemoEntry(R, (4,), CloseType.OPEN_VALID),
            ],
        )
        roots = memo.root_entries(hop.id)
        assert len(roots) == 1 and roots[0].refs == (4,)

    def test_extendable_excludes_closed(self):
        memo = MemoTable()
        hop = _hop()
        memo.add(
            hop,
            [
                MemoEntry(C, (4,), CloseType.CLOSED_VALID),
                MemoEntry(R, (4,), CloseType.OPEN_VALID),
            ],
        )
        assert memo.extendable_types(hop.id) == [R]
        assert set(memo.distinct_types(hop.id)) == {C, R}


class TestAbsorption:
    def _table_with(self, child_hop, entries):
        memo = MemoTable()
        memo.add(child_hop, entries)
        return memo

    def test_cell_absorbs_open_cell_only(self):
        child = _hop()
        memo = self._table_with(child, [MemoEntry(C, (-1,), CloseType.OPEN_VALID)])
        assert memo.has_compatible_plan(child.id, C)
        memo2 = self._table_with(
            _hop(seed=1), [MemoEntry(R, (-1,), CloseType.OPEN_VALID)]
        )
        assert not memo2.has_compatible_plan(list(memo2._hops)[0], C)

    def test_row_absorbs_closed_rowagg_cell(self):
        x = _hop()
        rowsums = AggUnaryOp(AggOp.SUM, AggDir.ROW, BinaryOp("*", x, x))
        memo = MemoTable()
        memo.add(rowsums, [MemoEntry(C, (5,), CloseType.CLOSED_VALID)])
        assert memo.has_compatible_plan(rowsums.id, R)
        # ...but Cell may not absorb the closed aggregation.
        assert not memo.has_compatible_plan(rowsums.id, C)

    def test_row_does_not_absorb_closed_fullagg_cell(self):
        x = _hop()
        total = AggUnaryOp(AggOp.SUM, AggDir.FULL, BinaryOp("*", x, x))
        memo = MemoTable()
        memo.add(total, [MemoEntry(C, (5,), CloseType.CLOSED_VALID)])
        assert not memo.has_compatible_plan(total.id, R)

    def test_open_invalid_is_absorbable(self):
        child = _hop()
        memo = self._table_with(child, [MemoEntry(R, (-1,), CloseType.OPEN_INVALID)])
        assert memo.has_compatible_plan(child.id, R)

    def test_outer_absorbs_cell_and_outer(self):
        child = _hop()
        memo = self._table_with(
            child,
            [
                MemoEntry(C, (-1,), CloseType.OPEN_VALID),
                MemoEntry(O, (-1,), CloseType.OPEN_INVALID),
            ],
        )
        entries = memo.compatible_entries(child.id, O)
        assert {e.ttype for e in entries} == {C, O}


class TestDominancePruning:
    def test_dominated_entry_removed_for_heuristics(self):
        memo = MemoTable()
        x = _hop()
        target = BinaryOp("*", x, x)  # single consumer below
        consumer = BinaryOp("+", target, x)
        memo.add(target, [MemoEntry(C, (-1, -1))])
        memo.add(
            consumer,
            [MemoEntry(C, (target.id, -1)), MemoEntry(C, (-1, -1))],
        )
        memo.mark_processed(target)
        memo.prune_dominated(consumer)
        refs = {e.refs for e in memo.get(consumer.id)}
        assert (-1, -1) not in refs  # dominated by (target, -1)

    def test_multi_consumer_target_not_dominated(self):
        memo = MemoTable()
        x = _hop()
        target = BinaryOp("*", x, x)
        consumer1 = BinaryOp("+", target, x)
        consumer2 = BinaryOp("-", target, x)  # second consumer
        memo.add(target, [MemoEntry(C, (-1, -1))])
        memo.add(
            consumer1,
            [MemoEntry(C, (target.id, -1)), MemoEntry(C, (-1, -1))],
        )
        memo.mark_processed(target)
        memo.prune_dominated(consumer1)
        refs = {e.refs for e in memo.get(consumer1.id)}
        assert (-1, -1) in refs  # kept: target has multiple consumers
