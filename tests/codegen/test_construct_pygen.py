"""CPlan construction, code generation, and the plan cache."""

import numpy as np
import pytest

from repro import api
from repro.codegen.cost import CostEstimator
from repro.codegen.cplan import Access, CNode, CPlan, InputSpec, OutType
from repro.codegen.construct import construct_cplan, eval_cnode
from repro.codegen.explore import explore
from repro.codegen.partitions import build_partitions
from repro.codegen.plan_cache import PlanCache, compile_operator
from repro.codegen.pygen import generate_source
from repro.codegen.template import TemplateType
from repro.config import CodegenConfig
from repro.hops.hop import collect_dag
from repro.hops.rewrites import apply_rewrites
from repro.runtime.matrix import MatrixBlock


def _select_plan(exprs, want_type=None):
    """Explore + cost-select; return the first chosen plan (of a type)."""
    config = CodegenConfig()
    roots = apply_rewrites([e.hop for e in exprs])
    memo = explore(roots, config)
    hop_by_id = {h.id: h for h in collect_dag(roots)}
    estimator = CostEstimator(memo, config, hop_by_id)
    chosen = {}
    for part in build_partitions(memo, roots):
        estimator.cost_partition(part, frozenset(), record=chosen)
    plans = list(chosen.values())
    if want_type is not None:
        plans = [p for p in plans if p.ttype is want_type]
    assert plans, f"no plan of type {want_type}"
    return plans[0], config


class TestConstruction:
    def test_cell_plan_binding(self, rng):
        x = api.matrix(rng.random((30, 10)), "X")
        y = api.matrix(rng.random((30, 10)), "Y")
        plan, config = _select_plan([(x * y + 1.0).sum()])
        cplan, input_hops = construct_cplan(plan, config)
        assert cplan.out_type in (OutType.FULL_AGG, OutType.MULTI_AGG)
        assert cplan.main_index >= 0
        assert len(input_hops) == len(cplan.inputs)

    def test_cell_sparse_driver_selection(self, rng):
        sparse = api.matrix(MatrixBlock.rand(40, 20, sparsity=0.05, seed=1), "S")
        dense = api.matrix(rng.random((40, 20)), "D")
        plan, config = _select_plan([(sparse * dense).sum()])
        cplan, input_hops = construct_cplan(plan, config)
        # The sparser aligned input becomes the main driver.
        main_hop = input_hops[cplan.main_index]
        assert main_hop.sparsity < 0.5
        assert cplan.sparse_safe

    def test_cell_plus_not_sparse_safe(self, rng):
        sparse = api.matrix(MatrixBlock.rand(40, 20, sparsity=0.05, seed=2), "S")
        dense = api.matrix(rng.random((40, 20)), "D")
        plan, config = _select_plan([(sparse + dense).sum()])
        cplan, _ = construct_cplan(plan, config)
        assert not cplan.sparse_safe

    def test_row_plan_binding(self, rng):
        x = api.matrix(rng.random((50, 8)), "X")
        v = api.matrix(rng.random((8, 1)), "v")
        plan, config = _select_plan([x.T @ (x @ v)], TemplateType.ROW)
        cplan, input_hops = construct_cplan(plan, config)
        assert cplan.out_type is OutType.COL_AGG_T
        assert cplan.inputs[cplan.main_index].cols == 8
        # v is read in full per row (SIDE_FULL).
        accesses = {s.access for i, s in enumerate(cplan.inputs) if i != cplan.main_index}
        assert Access.SIDE_FULL in accesses

    def test_outer_plan_binding(self, rng):
        s = api.matrix(MatrixBlock.rand(60, 50, sparsity=0.05, seed=3), "S")
        u = api.matrix(rng.random((60, 4)), "U")
        v = api.matrix(rng.random((50, 4)), "V")
        plan, config = _select_plan(
            [(s * api.log(u @ v.T + 1e-15)).sum()], TemplateType.OUTER
        )
        cplan, input_hops = construct_cplan(plan, config)
        # Depending on cost ties the aggregation may live in a separate
        # MAgg operator; the outer-product operator itself must bind
        # the factors and the sparse driver either way.
        assert cplan.out_type.value.startswith("outer")
        assert cplan.u_index >= 0 and cplan.v_index >= 0
        assert cplan.sparse_safe
        # The transpose hop must not remain an operator input.
        assert all(h.opcode() != "r(t)" for h in input_hops)


class TestCNodeProbing:
    def test_eval_cnode_matches_python(self):
        body = CNode("b:*", [CNode("data", input_index=0), CNode("lit", value=3.0)])
        assert eval_cnode(body, {"in0": 2.0}) == 6.0

    def test_probe_detects_unsafe_plan(self):
        from repro.codegen.construct import _probe_sparse_safe

        specs = [InputSpec(1, 5, 5, Access.MAIN), InputSpec(2, 5, 5, Access.SIDE_ROW)]
        safe = CNode("b:*", [CNode("data", input_index=0), CNode("data", input_index=1)])
        unsafe = CNode("b:+", [CNode("data", input_index=0), CNode("data", input_index=1)])
        assert _probe_sparse_safe([safe], specs, 0)
        assert not _probe_sparse_safe([unsafe], specs, 0)


class TestPygen:
    def _compile(self, exprs, want_type=None):
        plan, config = _select_plan(exprs, want_type)
        cplan, input_hops = construct_cplan(plan, config)
        name, source = generate_source(cplan)
        func = compile_operator(name, source)
        return cplan, source, func

    def test_source_uses_vector_primitives(self, rng):
        x = api.matrix(rng.random((30, 10)), "X")
        y = api.matrix(rng.random((30, 10)), "Y")
        _, source, _ = self._compile([(x * y).sum()])
        assert "vp.vect_mult" in source
        assert "def genexec" in source

    def test_generated_cell_executes(self, rng):
        xd, yd = rng.random((30, 10)), rng.random((30, 10))
        x, y = api.matrix(xd, "X"), api.matrix(yd, "Y")
        cplan, _, func = self._compile([(x * y).sum()])
        result = func(xd, [yd], [])
        np.testing.assert_allclose(result, xd * yd)

    def test_deterministic_operator_names(self):
        """Equivalent CPlans name identically (semantic-hash derived).

        Deterministic names make regenerated source byte-identical, so
        the source-hash compile cache can reuse exec()'d namespaces
        across recompiles, specializations, and engines.
        """
        def make_cplan():
            return CPlan(
                ttype=TemplateType.CELL,
                out_type=OutType.NO_AGG,
                roots=[CNode("u:abs", [CNode("data", input_index=0)])],
                inputs=[InputSpec(1, 4, 4, Access.MAIN)],
                main_index=0,
            )

        name1, source1 = generate_source(make_cplan())
        name2, source2 = generate_source(make_cplan())
        assert name1 == name2
        assert source1 == source2
        assert name1 == f"TMP_{make_cplan().semantic_hash()[:10]}"

    def test_semantic_hash_stable_across_sizes(self, rng):
        """Operators are size-generic: equal structure, equal hash."""

        def cplan_for(rows):
            x = api.matrix(rng.random((rows, 10)), "X")
            y = api.matrix(rng.random((rows, 10)), "Y")
            plan, config = _select_plan([(x * y).sum()])
            return construct_cplan(plan, config)[0]

        assert cplan_for(30).semantic_hash() == cplan_for(60).semantic_hash()

    def test_semantic_hash_differs_across_ops(self, rng):
        def cplan_for(op):
            x = api.matrix(rng.random((30, 10)), "X")
            y = api.matrix(rng.random((30, 10)), "Y")
            expr = (x * y) if op == "*" else (x - y)
            plan, config = _select_plan([expr.sum()])
            return construct_cplan(plan, config)[0]

        assert cplan_for("*").semantic_hash() != cplan_for("-").semantic_hash()


class TestPlanCache:
    def test_hit_on_equivalent_plan(self, rng):
        cache = PlanCache()
        config = CodegenConfig()

        def build(rows):
            x = api.matrix(rng.random((rows, 10)), "X")
            y = api.matrix(rng.random((rows, 10)), "Y")
            plan, _ = _select_plan([(x * y).sum()])
            return construct_cplan(plan, config)[0]

        op1 = cache.get_or_compile(build(30), config)
        op2 = cache.get_or_compile(build(90), config)
        assert op1 is op2
        assert cache.hits == 1

    def test_disabled_cache_recompiles(self, rng):
        cache = PlanCache(enabled=False)
        config = CodegenConfig()
        x = api.matrix(rng.random((30, 10)), "X")
        y = api.matrix(rng.random((30, 10)), "Y")
        plan, _ = _select_plan([(x * y).sum()])
        cplan, _ = construct_cplan(plan, config)
        op1 = cache.get_or_compile(cplan, config)
        op2 = cache.get_or_compile(cplan, config)
        assert op1 is not op2

    def test_file_backend_produces_working_operator(self):
        source = (
            "import numpy as np\n"
            "def genexec(a, b, s):\n"
            "    return a * 2.0\n"
        )
        func = compile_operator("TMPX", source, backend="file")
        np.testing.assert_array_equal(func(np.ones((2, 2)), [], []), 2.0 * np.ones((2, 2)))

    def test_unknown_backend_rejected(self):
        from repro.errors import CodegenError

        with pytest.raises(CodegenError):
            compile_operator("T", "def genexec(a,b,s):\n    return a\n", backend="llvm")
