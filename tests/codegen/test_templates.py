"""Direct tests of the OFMC conditions per template (Table 1)."""

import numpy as np
import pytest

from repro.codegen.template import CloseType, TemplateType, is_cellwise
from repro.codegen.tpl_cell import CellTemplate
from repro.codegen.tpl_magg import MultiAggTemplate, is_full_agg
from repro.codegen.tpl_outer import OuterTemplate, is_outer_product_like
from repro.codegen.tpl_row import RowTemplate, row_dim
from repro.config import CodegenConfig
from repro.hops.hop import (
    AggBinaryOp,
    AggUnaryOp,
    BinaryOp,
    DataOp,
    IndexingOp,
    LiteralOp,
    ReorgOp,
    UnaryOp,
)
from repro.hops.types import AggDir, AggOp
from repro.runtime.matrix import MatrixBlock


def _mat(rows, cols, sparsity=1.0, seed=0):
    return DataOp(MatrixBlock.rand(rows, cols, sparsity=sparsity, seed=seed), "M")


@pytest.fixture
def config():
    return CodegenConfig()


class TestCellTemplate:
    def test_opens_at_cellwise_ops(self, config):
        tpl = CellTemplate(config)
        x, y = _mat(10, 5), _mat(10, 5, seed=1)
        assert tpl.open(BinaryOp("*", x, y))
        assert tpl.open(UnaryOp("exp", x))
        assert not tpl.open(AggBinaryOp(_mat(10, 5), _mat(5, 3)))
        assert not tpl.open(ReorgOp(x))

    def test_does_not_open_at_scalar_ops(self, config):
        tpl = CellTemplate(config)
        assert not tpl.open(BinaryOp("+", LiteralOp(1.0), LiteralOp(2.0)))

    def test_fuses_aligned_consumers(self, config):
        tpl = CellTemplate(config)
        x, y = _mat(10, 5), _mat(10, 5, seed=1)
        mult = BinaryOp("*", x, y)
        assert tpl.fuse(BinaryOp("+", mult, y), mult)
        agg = AggUnaryOp(AggOp.SUM, AggDir.FULL, mult)
        assert tpl.fuse(agg, mult)

    def test_does_not_fuse_mean(self, config):
        tpl = CellTemplate(config)
        x = _mat(10, 5)
        mult = BinaryOp("*", x, x)
        agg = AggUnaryOp(AggOp.MEAN, AggDir.FULL, mult)
        assert not tpl.fuse(agg, mult)

    def test_any_aggregation_closes(self, config):
        tpl = CellTemplate(config)
        x = _mat(10, 5)
        for direction in (AggDir.FULL, AggDir.ROW, AggDir.COL):
            agg = AggUnaryOp(AggOp.SUM, direction, x)
            assert tpl.close(agg) is CloseType.CLOSED_VALID
        assert tpl.close(BinaryOp("*", x, x)) is CloseType.OPEN_VALID


class TestRowTemplate:
    def test_opens_at_matrix_vector(self, config):
        tpl = RowTemplate(config)
        mv = AggBinaryOp(_mat(20, 8), _mat(8, 1, seed=1))
        assert tpl.open(mv)

    def test_opens_at_transposed_matmult(self, config):
        tpl = RowTemplate(config)
        x = _mat(20, 8)
        w = _mat(20, 3, seed=1)
        assert tpl.open(AggBinaryOp(ReorgOp(x), w))

    def test_rejects_wide_second_factor(self):
        config = CodegenConfig(blocksize=4)
        tpl = RowTemplate(config)
        mm = AggBinaryOp(_mat(20, 8), _mat(8, 6, seed=1))
        assert not tpl.open(mm)

    def test_opens_at_row_aggregates_and_rix(self, config):
        tpl = RowTemplate(config)
        x = _mat(20, 8)
        assert tpl.open(AggUnaryOp(AggOp.SUM, AggDir.ROW, x))
        assert tpl.open(AggUnaryOp(AggOp.SUM, AggDir.COL, x))
        assert tpl.open(IndexingOp(x, 0, 20, 0, 4))
        # partial-row indexing does not open a row operator
        assert not tpl.open(IndexingOp(x, 2, 10, 0, 4))

    def test_vector_input_does_not_open(self, config):
        tpl = RowTemplate(config)
        v = _mat(20, 1)
        assert not tpl.open(AggUnaryOp(AggOp.SUM, AggDir.ROW, v))

    def test_close_semantics(self, config):
        tpl = RowTemplate(config)
        x = _mat(20, 8)
        col_agg = AggUnaryOp(AggOp.SUM, AggDir.COL, x)
        row_agg = AggUnaryOp(AggOp.SUM, AggDir.ROW, x)
        assert tpl.close(col_agg) is CloseType.CLOSED_VALID
        assert tpl.close(row_agg) is CloseType.OPEN_VALID
        tmm = AggBinaryOp(ReorgOp(x), _mat(20, 3, seed=2))
        assert tpl.close(tmm) is CloseType.CLOSED_VALID
        assert tpl.close(ReorgOp(x)) is CloseType.OPEN_INVALID

    def test_transpose_only_fuses_into_left_matmult(self, config):
        tpl = RowTemplate(config)
        x = _mat(20, 8)
        t_hop = ReorgOp(x)
        good = AggBinaryOp(t_hop, _mat(20, 3, seed=1))
        assert tpl.fuse(good, t_hop)
        bad = BinaryOp("*", t_hop, _mat(8, 20, seed=2))
        assert not tpl.fuse(bad, t_hop)

    def test_row_dim(self, config):
        x = _mat(20, 8)
        assert row_dim(AggBinaryOp(x, _mat(8, 1, seed=1))) == 20
        assert row_dim(AggBinaryOp(ReorgOp(x), _mat(20, 3, seed=2))) == 20
        assert row_dim(AggUnaryOp(AggOp.SUM, AggDir.ROW, x)) == 20


class TestMultiAggTemplate:
    def test_opens_only_at_full_aggregates(self, config):
        tpl = MultiAggTemplate(config)
        x = _mat(10, 5)
        assert tpl.open(AggUnaryOp(AggOp.SUM, AggDir.FULL, x))
        assert tpl.open(AggUnaryOp(AggOp.MAX, AggDir.FULL, x))
        assert not tpl.open(AggUnaryOp(AggOp.SUM, AggDir.ROW, x))
        assert not tpl.open(AggUnaryOp(AggOp.MEAN, AggDir.FULL, x))
        assert not tpl.open(BinaryOp("*", x, x))

    def test_never_fuses_upward(self, config):
        tpl = MultiAggTemplate(config)
        x = _mat(10, 5)
        agg = AggUnaryOp(AggOp.SUM, AggDir.FULL, x)
        assert not tpl.fuse(BinaryOp("+", agg, LiteralOp(1.0)), agg)

    def test_is_full_agg_helper(self):
        x = _mat(10, 5)
        assert is_full_agg(AggUnaryOp(AggOp.SUM_SQ, AggDir.FULL, x))
        assert not is_full_agg(AggUnaryOp(AggOp.SUM, AggDir.COL, x))


class TestOuterTemplate:
    def test_outer_product_like_detection(self, config):
        small_rank = AggBinaryOp(_mat(100, 4), ReorgOp(_mat(80, 4, seed=1)))
        assert is_outer_product_like(small_rank, config.outer_max_rank)
        mv = AggBinaryOp(_mat(100, 50), _mat(50, 1, seed=2))
        assert not is_outer_product_like(mv, config.outer_max_rank)
        narrow_out = AggBinaryOp(_mat(100, 50), _mat(50, 3, seed=3))
        assert not is_outer_product_like(narrow_out, config.outer_max_rank)

    def test_rank_bound(self):
        config = CodegenConfig(outer_max_rank=8)
        tpl = OuterTemplate(config)
        big_rank = AggBinaryOp(_mat(100, 16), ReorgOp(_mat(80, 16, seed=1)))
        assert not tpl.open(big_rank)

    def test_fuses_cell_chain_and_full_agg(self, config):
        tpl = OuterTemplate(config)
        mm = AggBinaryOp(_mat(100, 4), ReorgOp(_mat(80, 4, seed=1)))
        log = UnaryOp("log", mm)
        assert tpl.fuse(log, mm)
        mult = BinaryOp("*", _mat(100, 80, sparsity=0.05, seed=2), log)
        assert tpl.fuse(mult, log)
        agg = AggUnaryOp(AggOp.SUM, AggDir.FULL, mult)
        assert tpl.fuse(agg, mult)

    def test_fuses_right_matmult(self, config):
        tpl = OuterTemplate(config)
        mm = AggBinaryOp(_mat(100, 4), ReorgOp(_mat(80, 4, seed=1)))
        guard = BinaryOp("*", _mat(100, 80, sparsity=0.05, seed=2), mm)
        right = AggBinaryOp(guard, _mat(80, 4, seed=3))
        assert tpl.fuse(right, guard)

    def test_close_at_aggregation(self, config):
        tpl = OuterTemplate(config)
        x = _mat(100, 80)
        assert tpl.close(AggUnaryOp(AggOp.SUM, AggDir.FULL, x)) is CloseType.CLOSED_VALID
        assert (
            tpl.close(AggUnaryOp(AggOp.SUM, AggDir.ROW, x))
            is CloseType.CLOSED_INVALID
        )


class TestHelpers:
    def test_is_cellwise(self):
        x = _mat(5, 5)
        assert is_cellwise(BinaryOp("+", x, x))
        assert is_cellwise(UnaryOp("sigmoid", x))
        assert not is_cellwise(UnaryOp("cumsum", x))
        assert not is_cellwise(AggBinaryOp(x, _mat(5, 2)))
        assert not is_cellwise(BinaryOp("+", LiteralOp(1.0), LiteralOp(2.0)))
