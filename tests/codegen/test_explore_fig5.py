"""Golden test: the memo table of the paper's Figure 5 worked example.

Expression (2) of the paper (MLogreg inner loop):

    Q = P[, 1:k] * (X %*% v)
    H = t(X) %*% (Q - P[, 1:k] * rowSums(Q))

After exploration and basic pruning, the memo table must contain
exactly the entry structure of Figure 5 (modulo operator ids).
"""

import numpy as np
import pytest

from repro import api
from repro.codegen.explore import explore
from repro.codegen.memo import MemoTable
from repro.codegen.template import CloseType, TemplateType
from repro.config import CodegenConfig
from repro.hops.hop import (
    AggBinaryOp,
    AggUnaryOp,
    BinaryOp,
    IndexingOp,
    ReorgOp,
    collect_dag,
)
from repro.hops.rewrites import apply_rewrites


@pytest.fixture
def fig5():
    rng = np.random.default_rng(1)
    n, m, k = 100, 10, 4
    X = api.matrix(rng.random((n, m)), "X")
    v = api.matrix(rng.random((m, k)), "v")
    P = api.matrix(rng.random((n, k + 1)), "P")
    Q = P[:, 0:k] * (X @ v)
    H = X.T @ (Q - P[:, 0:k] * Q.row_sums())
    roots = apply_rewrites([H.hop])
    memo = explore(roots, CodegenConfig())
    hops = {h.opcode() + str(i): h for i, h in enumerate(collect_dag(roots))}
    return roots, memo


def _entries(memo: MemoTable, hop) -> set[tuple]:
    return {(e.ttype, e.refs) for e in memo.get(hop.id)}


def _find(roots, predicate):
    matches = [h for h in collect_dag(roots) if predicate(h)]
    assert len(matches) == 1, f"expected unique match, got {matches}"
    return matches[0]


class TestFig5MemoTable:
    def test_group_count(self, fig5):
        roots, memo = fig5
        # Eight operators amenable to fusion (Figure 5), minus the
        # second rix which CSE merges into the first: mm(X,v), rix,
        # b(*), rowSums, b(*), b(-), t(X), final mm.
        assert len(memo.group_ids()) == 8

    def test_matrix_vector_mm_entry(self, fig5):
        roots, memo = fig5
        mm = _find(
            roots,
            lambda h: isinstance(h, AggBinaryOp) and not isinstance(h.inputs[0], ReorgOp),
        )
        assert _entries(memo, mm) == {(TemplateType.ROW, (-1, -1))}

    def test_rix_row_entry(self, fig5):
        roots, memo = fig5
        rix = _find(roots, lambda h: isinstance(h, IndexingOp))
        assert _entries(memo, rix) == {(TemplateType.ROW, (-1,))}

    def test_transpose_open_invalid(self, fig5):
        roots, memo = fig5
        t_hop = _find(roots, lambda h: isinstance(h, ReorgOp))
        (entry,) = memo.get(t_hop.id)
        assert entry.ttype is TemplateType.ROW
        assert entry.status is CloseType.OPEN_INVALID

    def test_first_multiply_entries(self, fig5):
        """Group 6 of Figure 5: R(-1,-1) R(-1,5) R(4,-1) R(4,5) C(-1,-1)."""
        roots, memo = fig5
        rix = _find(roots, lambda h: isinstance(h, IndexingOp))
        mm = _find(
            roots,
            lambda h: isinstance(h, AggBinaryOp) and not isinstance(h.inputs[0], ReorgOp),
        )
        q = _find(
            roots,
            lambda h: isinstance(h, BinaryOp) and h.op == "*" and mm in h.inputs,
        )
        a, b = q.inputs[0].id, q.inputs[1].id
        assert _entries(memo, q) == {
            (TemplateType.CELL, (-1, -1)),
            (TemplateType.ROW, (-1, -1)),
            (TemplateType.ROW, (a, -1)),
            (TemplateType.ROW, (-1, b)),
            (TemplateType.ROW, (a, b)),
        }

    def test_rowsums_entries(self, fig5):
        """Group 7: R(-1) R(6) C(6); the single-op closed C(-1) pruned."""
        roots, memo = fig5
        rowsums = _find(roots, lambda h: isinstance(h, AggUnaryOp))
        q_id = rowsums.inputs[0].id
        assert _entries(memo, rowsums) == {
            (TemplateType.ROW, (-1,)),
            (TemplateType.ROW, (q_id,)),
            (TemplateType.CELL, (q_id,)),
        }
        cell_entry = next(
            e for e in memo.get(rowsums.id) if e.ttype is TemplateType.CELL
        )
        assert cell_entry.status is CloseType.CLOSED_VALID

    def test_final_mm_entries(self, fig5):
        """Group 11: R(-1,9) R(10,-1) R(10,9), all closed valid."""
        roots, memo = fig5
        final = roots[0]
        assert isinstance(final, AggBinaryOp)
        t_id = final.inputs[0].id
        minus_id = final.inputs[1].id
        assert _entries(memo, final) == {
            (TemplateType.ROW, (-1, minus_id)),
            (TemplateType.ROW, (t_id, -1)),
            (TemplateType.ROW, (t_id, minus_id)),
        }
        assert all(
            e.status is CloseType.CLOSED_VALID for e in memo.get(final.id)
        )

    def test_minus_has_cell_and_row_entries(self, fig5):
        roots, memo = fig5
        minus = _find(roots, lambda h: isinstance(h, BinaryOp) and h.op == "-")
        types = {e.ttype for e in memo.get(minus.id)}
        assert types == {TemplateType.CELL, TemplateType.ROW}
        # Cell entries may reference both cell subplans (8 entries in
        # total: 4 Row x 4 ref combos is pruned by merge conditions).
        cell_refs = {
            e.refs for e in memo.get(minus.id) if e.ttype is TemplateType.CELL
        }
        assert (-1, -1) in cell_refs
        assert len(cell_refs) == 4
