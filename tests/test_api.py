"""Lazy expression API tests."""

import numpy as np
import pytest

from repro import api
from repro.errors import CompileError, ShapeError
from repro.runtime.matrix import MatrixBlock
from tests.conftest import make_engine


class TestConstruction:
    def test_matrix_from_array(self, rng):
        m = api.matrix(rng.random((4, 3)), "X")
        assert m.shape == (4, 3)

    def test_matrix_from_block(self):
        block = MatrixBlock.rand(5, 5, seed=1)
        m = api.matrix(block)
        assert m.hop.data is block

    def test_scalar(self):
        s = api.scalar(3.5)
        assert s.is_scalar

    def test_rand(self):
        m = api.rand(6, 4, sparsity=0.5, seed=2)
        assert m.shape == (6, 4)

    def test_invalid_operand(self):
        x = api.matrix(np.ones((2, 2)))
        with pytest.raises(CompileError):
            x + "nope"


class TestOperators:
    def test_arithmetic_builds_dag(self, rng):
        x = api.matrix(rng.random((4, 4)), "X")
        expr = (2.0 * x + 1.0) / (x - 0.5)
        assert expr.shape == (4, 4)

    def test_reverse_operators(self, rng):
        xd = rng.random((3, 3)) + 1.0
        x = api.matrix(xd, "X")
        result = api.eval(1.0 / x, engine=make_engine("base"))
        np.testing.assert_allclose(result.to_dense(), 1.0 / xd)

    def test_matmul_shape_check(self, rng):
        a = api.matrix(rng.random((3, 4)))
        b = api.matrix(rng.random((3, 4)))
        with pytest.raises(ShapeError):
            a @ b

    def test_transpose(self, rng):
        x = api.matrix(rng.random((3, 5)))
        assert x.T.shape == (5, 3)

    def test_indexing(self, rng):
        x = api.matrix(rng.random((6, 6)))
        assert x[1:4, 2:5].shape == (3, 3)
        assert x[:, 0:2].shape == (6, 2)
        assert x[2, :].shape == (1, 6)

    def test_strided_indexing_rejected(self, rng):
        x = api.matrix(rng.random((6, 6)))
        with pytest.raises(CompileError):
            x[::2, :]

    def test_comparisons_are_expressions(self, rng):
        x = api.matrix(rng.random((4, 4)))
        expr = (x > 0.5) * (x <= 0.9)
        assert isinstance(expr, api.Mat)

    def test_aggregation_shapes(self, rng):
        x = api.matrix(rng.random((4, 6)))
        assert x.sum().is_scalar
        assert x.row_sums().shape == (4, 1)
        assert x.col_sums().shape == (1, 6)
        assert x.row_mins().shape == (4, 1)
        assert x.col_maxs().shape == (1, 6)


class TestEvaluation:
    def test_eval_scalar(self, rng):
        xd = rng.random((5, 5))
        result = api.eval(api.matrix(xd).sum(), engine=make_engine("base"))
        assert result == pytest.approx(xd.sum())

    def test_eval_all_shares_subexpressions(self, rng):
        engine = make_engine("base")
        xd = rng.random((10, 10))
        x = api.matrix(xd, "X")
        shared = x * 2.0
        r1, r2 = api.eval_all([shared.sum(), (shared + 1.0).sum()], engine=engine)
        assert r1 == pytest.approx((xd * 2).sum())
        assert r2 == pytest.approx((xd * 2 + 1).sum())

    def test_default_engine_is_base(self, rng):
        xd = rng.random((4, 4))
        assert api.eval(api.matrix(xd).sum()) == pytest.approx(xd.sum())

    def test_unary_functions(self, rng):
        xd = rng.random((4, 4)) + 0.5
        x = api.matrix(xd)
        for func, ref in [
            (api.exp, np.exp),
            (api.log, np.log),
            (api.sqrt, np.sqrt),
            (api.sigmoid, lambda a: 1 / (1 + np.exp(-a))),
        ]:
            result = api.eval(func(x), engine=make_engine("base"))
            np.testing.assert_allclose(result.to_dense(), ref(xd))

    def test_cbind_rbind(self, rng):
        a = api.matrix(rng.random((3, 2)))
        b = api.matrix(rng.random((3, 4)))
        assert api.cbind(a, b).shape == (3, 6)
        c = api.matrix(rng.random((5, 2)))
        assert api.rbind(a, c).shape == (8, 2)

    def test_minimum_maximum(self, rng):
        xd, yd = rng.random((3, 3)), rng.random((3, 3))
        result = api.eval(
            api.minimum(api.matrix(xd), api.matrix(yd)), engine=make_engine("base")
        )
        np.testing.assert_allclose(result.to_dense(), np.minimum(xd, yd))

    def test_compressed_input(self):
        from repro.runtime.compressed import compress

        arr = np.tile(np.arange(4.0), (100, 1))
        comp = compress(MatrixBlock(arr))
        result = api.eval(api.matrix(comp).sum(), engine=make_engine("base"))
        assert result == pytest.approx(arr.sum())
