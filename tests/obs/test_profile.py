"""Per-operator profiler: engine.profile_report() shapes and content."""

import numpy as np
import pytest

from repro import api
from repro.compiler.execution import Engine
from repro.config import CodegenConfig
from repro.runtime.matrix import MatrixBlock


def _run(trace_level: str, mode: str = "gen") -> Engine:
    engine = Engine(
        mode=mode, config=CodegenConfig(trace_level=trace_level)
    )
    x = api.matrix(MatrixBlock.rand(60, 40, seed=1), name="X")
    y = api.matrix(MatrixBlock.rand(60, 40, seed=2), name="Y")
    api.eval_all([(x * y * x).sum(), (x + y).row_sums()], engine=engine)
    return engine


class TestProfileReport:
    def test_instructions_level_populates_operators(self):
        engine = _run("instructions")
        report = engine.profile_report()
        assert report.per_operator, "no per-operator rows at instructions"
        for name, entry in report.per_operator.items():
            assert entry["executions"] >= 1
            assert entry["seconds"] >= 0.0
            assert entry["mean_seconds"] == pytest.approx(
                entry["seconds"] / entry["executions"]
            )
        # Executed bytes were attributed from the instruction spans.
        assert any(
            entry["bytes"] > 0 for entry in report.per_operator.values()
        )
        engine.close()

    def test_full_level_reports_tier_and_format(self):
        engine = _run("full")
        report = engine.profile_report()
        spoof_rows = {
            name: entry for name, entry in report.per_operator.items()
            if name.startswith("spoof:") or name.startswith("fused:")
        }
        assert spoof_rows, "gen mode produced no fused-operator rows"
        assert any(entry["tiers"] for entry in spoof_rows.values())
        assert any(
            "dense" in entry["formats"] for entry in spoof_rows.values()
        )
        # Table rendering includes each operator label and the footer.
        text = str(report)
        for name in report.per_operator:
            assert name in text
        assert "operator(s)" in text
        engine.close()

    def test_totals_cover_compile_phases(self):
        engine = _run("instructions")
        report = engine.profile_report()
        phases = report.totals["phases"]
        assert "compile" in phases
        assert phases["compile"]["count"] >= 1
        assert report.totals["n_requests"] >= 1
        assert "pipeline_pass_seconds" in report.totals
        engine.close()

    def test_off_level_reports_disabled(self):
        engine = _run("off")
        report = engine.profile_report()
        assert report.per_operator == {}
        assert "profiling disabled" in str(report)
        engine.close()

    def test_phases_level_hints_at_missing_instructions(self):
        engine = _run("phases")
        report = engine.profile_report()
        assert report.per_operator == {}
        assert "instructions" in str(report)
        engine.close()

    def test_recompile_run_reports_triggers_and_nnz(self):
        rng = np.random.default_rng(5)
        arr = np.zeros((400, 300))
        mask = rng.random((400, 300)) < 0.01
        arr[mask] = rng.random(int(mask.sum())) + 0.5
        engine = Engine(
            mode="base",
            config=CodegenConfig(trace_level="instructions"),
        )
        x = api.matrix(MatrixBlock(arr), name="X", nnz_unknown=True)
        api.eval_all([(x * 3.0) * api.abs_(x)], engine=engine)
        assert engine.stats.n_recompiles > 0
        report = engine.profile_report()
        triggered = [
            entry for entry in report.per_operator.values()
            if entry["recompile_triggers"] > 0
        ]
        assert triggered, "no operator attributed a recompile trigger"
        observed = [
            entry for entry in report.per_operator.values()
            if entry["nnz_observed"] is not None
        ]
        assert observed, "no operator recorded observed-vs-estimated nnz"
        for entry in observed:
            assert entry["nnz_observed"] != entry["nnz_estimated"]
        assert report.totals["n_recompiles"] == engine.stats.n_recompiles
        engine.close()
