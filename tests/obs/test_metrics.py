"""Metrics registry: counters, gauges, log-bucketed histograms.

Covers percentile sanity on the histogram cells (ordering, clamping to
observed extremes, interpolation), label handling, registry merge, and
the serving-summary integration (``observe_request`` feeding per-tenant
percentiles while every pre-existing summary key survives).
"""

import numpy as np
import pytest

from repro.obs.metrics import (
    HistogramCell,
    MetricsRegistry,
    bucket_bounds,
    bucket_index,
)
from repro.runtime.stats import RuntimeStats


class TestBuckets:
    def test_bucket_index_monotone(self):
        values = [1e-7, 1e-6, 3e-6, 1e-3, 0.5, 10.0, 1e6]
        indices = [bucket_index(v) for v in values]
        assert indices == sorted(indices)

    def test_value_falls_in_its_bucket(self):
        for value in (2e-6, 5e-5, 1e-3, 0.25, 7.5):
            lo, hi = bucket_bounds(bucket_index(value))
            assert lo < value <= hi


class TestHistogramCell:
    def test_percentile_ordering_and_clamping(self):
        cell = HistogramCell()
        rng = np.random.default_rng(0)
        samples = rng.exponential(0.01, size=500)
        for sample in samples:
            cell.observe(float(sample))
        p50, p95, p99 = (cell.percentile(q) for q in (50, 95, 99))
        assert p50 <= p95 <= p99
        assert samples.min() <= p50
        assert p99 <= samples.max()
        assert cell.percentile(0) == pytest.approx(samples.min())
        assert cell.percentile(100) == pytest.approx(samples.max())

    def test_percentile_approximates_exact(self):
        cell = HistogramCell()
        rng = np.random.default_rng(1)
        samples = rng.uniform(1e-4, 1e-1, size=2000)
        for sample in samples:
            cell.observe(float(sample))
        # Log-bucketed with factor 2: estimates are within one bucket
        # (a factor of 2) of the exact sample percentile.
        for q in (50, 95, 99):
            exact = float(np.percentile(samples, q))
            estimate = cell.percentile(q)
            assert exact / 2 <= estimate <= exact * 2

    def test_single_observation_degenerates(self):
        cell = HistogramCell()
        cell.observe(0.042)
        for q in (50, 95, 99):
            assert cell.percentile(q) == pytest.approx(0.042)
        assert cell.mean == pytest.approx(0.042)

    def test_empty_cell(self):
        cell = HistogramCell()
        assert cell.count == 0
        assert cell.percentile(50) == 0.0

    def test_combine_is_additive(self):
        a, b, both = HistogramCell(), HistogramCell(), HistogramCell()
        for value in (0.001, 0.002, 0.004):
            a.observe(value)
            both.observe(value)
        for value in (0.1, 0.2):
            b.observe(value)
            both.observe(value)
        a.combine(b)
        assert a.count == both.count == 5
        assert a.total == pytest.approx(both.total)
        assert a.vmin == both.vmin
        assert a.vmax == both.vmax
        assert a.buckets == both.buckets


class TestRegistry:
    def test_counter_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests")
        counter.inc(tenant="a")
        counter.inc(2, tenant="b")
        counter.inc(tenant="a")
        assert counter.value(tenant="a") == 2
        assert counter.value(tenant="b") == 2
        assert counter.total() == 4

    def test_gauge_set_and_merge_max(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.gauge("depth").set(3)
        second.gauge("depth").set(7)
        first.merge(second)
        assert first.gauge("depth").value() == 7

    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.counter("c") is registry.counter("c")

    def test_histogram_grouped_and_filtered(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency")
        for value in (0.01, 0.02):
            hist.observe(value, tenant="a", program="p")
        hist.observe(0.5, tenant="b", program="p")
        grouped = hist.grouped("tenant")
        assert set(grouped) == {"a", "b"}
        assert grouped["a"].count == 2
        assert grouped["b"].count == 1
        assert hist.count(tenant="a") == 2
        assert hist.aggregate().count == 3

    def test_merge_accumulates_histograms(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.histogram("h").observe(0.01, k="x")
        second.histogram("h").observe(0.02, k="x")
        second.histogram("h").observe(0.03, k="y")
        second.counter("c").inc(5)
        first.merge(second)
        assert first.histogram("h").count(k="x") == 2
        assert first.histogram("h").count(k="y") == 1
        assert first.counter("c").total() == 5

    def test_snapshot_is_json_ready(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c").inc(tenant="a")
        registry.gauge("g").set(2.5)
        registry.histogram("h").observe(0.01)
        json.dumps(registry.snapshot())  # must not raise


class TestServingSummaryIntegration:
    def test_observe_request_feeds_percentiles(self):
        stats = RuntimeStats()
        rng = np.random.default_rng(2)
        for index in range(40):
            latency = float(rng.uniform(0.005, 0.05))
            stats.observe_request(
                "score", f"tenant{index % 2}",
                queue_seconds=latency / 4, exec_seconds=latency / 2,
                latency_seconds=latency,
            )
            stats.n_requests_served += 1
        summary = stats.serving_summary()
        assert 0.0 < summary["latency_p50"] <= summary["latency_p95"]
        assert summary["latency_p95"] <= summary["latency_p99"]
        assert summary["queue_p99"] >= summary["queue_p50"] > 0.0
        assert set(summary["per_tenant"]) == {"tenant0", "tenant1"}
        for row in summary["per_tenant"].values():
            assert row["n"] == 20
            assert row["latency_p99"] >= row["latency_p50"] > 0.0
            assert row["mean_latency_seconds"] > 0.0

    def test_summary_keeps_backward_compatible_keys(self):
        summary = RuntimeStats().serving_summary()
        # The pre-obs dict shape: every original key must survive the
        # metrics refactor (downstream benches index these directly).
        for key in (
            "n_requests_served", "n_requests_batched",
            "n_batches_executed", "n_batch_fallbacks",
            "n_specialization_hits", "n_specialization_misses",
            "n_shape_recompiles", "n_admission_waits",
            "serve_queue_seconds", "serve_exec_seconds",
            "serve_latency_seconds", "mean_latency_seconds",
            "plan_cache_hits", "plan_cache_misses", "plan_cache_size",
        ):
            assert key in summary, f"serving_summary lost '{key}'"

    def test_empty_summary_percentiles_are_zero(self):
        summary = RuntimeStats().serving_summary()
        assert summary["latency_p50"] == 0.0
        assert summary["latency_p99"] == 0.0
        assert summary["per_tenant"] == {}
