"""Golden-shape tests for the Chrome trace-event export (repro.obs).

A traced L2SVM run must export valid Chrome ``trace_event`` JSON:
every event carries the required keys with the right types, and the
span intervals of each thread nest strictly (a proper containment
forest — what Perfetto's flame view renders).  ``trace_level="off"``
must emit zero events, and a recompiling run must show the
``recompile-splice`` span nested inside its ``request`` span.
"""

import json

import numpy as np
import pytest

from repro import api
from repro.algorithms import l2svm
from repro.compiler.execution import Engine
from repro.config import CodegenConfig
from repro.data import generators
from repro.runtime.matrix import MatrixBlock

#: Interval-nesting slack in microseconds: exported ts/dur are exact
#: float conversions of perf_counter differences, so only float
#: rounding (far below 1e-3 us) can perturb containment.
EPS_US = 1e-3

REQUIRED_KEYS = {"name", "cat", "ph", "ts", "dur", "pid", "tid"}


def _traced_l2svm(trace_level: str, tmp_path):
    x, y = generators.classification_data(120, 8, n_classes=2, seed=3)
    engine = Engine(
        mode="gen", config=CodegenConfig(trace_level=trace_level)
    )
    l2svm(x, y, engine=engine, max_iter=3)
    path = tmp_path / f"trace_{trace_level}.json"
    engine.export_trace(str(path))
    engine.close()
    with open(path) as handle:
        return json.load(handle)


class TestChromeTraceShape:
    @pytest.fixture(scope="class")
    def trace(self, tmp_path_factory):
        return _traced_l2svm(
            "full", tmp_path_factory.mktemp("trace")
        )

    def test_top_level_shape(self, trace):
        assert set(trace) >= {"traceEvents", "displayTimeUnit"}
        assert isinstance(trace["traceEvents"], list)
        assert trace["traceEvents"], "traced run produced no events"

    def test_event_keys_and_types(self, trace):
        for event in trace["traceEvents"]:
            assert REQUIRED_KEYS <= set(event), (
                f"event missing keys: {sorted(REQUIRED_KEYS - set(event))}"
            )
            assert event["ph"] == "X"
            assert isinstance(event["name"], str) and event["name"]
            assert isinstance(event["cat"], str) and event["cat"]
            assert isinstance(event["ts"], (int, float))
            assert isinstance(event["dur"], (int, float))
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            args = event.get("args", {})
            assert isinstance(args, dict)
            for value in args.values():
                assert value is None or isinstance(
                    value, (str, int, float, bool)
                ), f"non-JSON-scalar arg in {event['name']}: {value!r}"

    def test_expected_span_names(self, trace):
        names = {event["name"] for event in trace["traceEvents"]}
        cats = {event["cat"] for event in trace["traceEvents"]}
        # Request -> compile phases -> instructions -> operator bodies.
        assert {"evaluate", "compile", "lowering", "request"} <= names
        assert {"request", "compile", "instruction", "operator"} <= cats

    def test_strict_nesting_per_thread(self, trace):
        """Each thread's intervals form a proper containment forest.

        Replaying events (sorted by start, longest-first on ties)
        against a stack: each event must either nest fully inside the
        stack top or start at/after its end — partial overlap fails.
        """
        by_tid: dict = {}
        for event in trace["traceEvents"]:
            if event["dur"] <= 0.0:
                continue  # instants nest trivially
            by_tid.setdefault(event["tid"], []).append(event)
        assert by_tid, "no interval events recorded"
        for tid, events in by_tid.items():
            events.sort(key=lambda e: (e["ts"], -e["dur"]))
            stack: list = []
            for event in events:
                start, end = event["ts"], event["ts"] + event["dur"]
                while stack and start >= stack[-1][1] - EPS_US:
                    stack.pop()
                if stack:
                    assert end <= stack[-1][1] + EPS_US, (
                        f"tid {tid}: '{event['name']}' "
                        f"[{start}, {end}] partially overlaps "
                        f"'{stack[-1][2]}' ending at {stack[-1][1]}"
                    )
                stack.append((start, end, event["name"]))


class TestTraceLevels:
    def test_off_emits_zero_events(self, tmp_path):
        trace = _traced_l2svm("off", tmp_path)
        assert trace["traceEvents"] == []

    def test_phases_has_no_instruction_spans(self, tmp_path):
        trace = _traced_l2svm("phases", tmp_path)
        cats = {event["cat"] for event in trace["traceEvents"]}
        assert "compile" in cats
        assert "instruction" not in cats
        assert "operator" not in cats

    def test_instructions_level_adds_instruction_spans(self, tmp_path):
        trace = _traced_l2svm("instructions", tmp_path)
        cats = {event["cat"] for event in trace["traceEvents"]}
        assert "instruction" in cats
        assert "operator" not in cats  # operator bodies are full-only

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown trace level"):
            Engine(mode="gen",
                   config=CodegenConfig(trace_level="verbose"))


class TestRecompileSpliceNesting:
    def test_splice_nested_inside_request(self, tmp_path):
        """A recompiling run's splice span sits inside its request span."""
        rng = np.random.default_rng(5)
        arr = np.zeros((400, 300))
        mask = rng.random((400, 300)) < 0.01
        arr[mask] = rng.random(int(mask.sum())) + 0.5
        engine = Engine(
            mode="base", config=CodegenConfig(trace_level="phases")
        )
        x = api.matrix(MatrixBlock(arr), name="X", nnz_unknown=True)
        api.eval_all([(x * 3.0) * api.abs_(x)], engine=engine)
        assert engine.stats.n_recompiles > 0, (
            "workload did not trigger an adaptive recompile"
        )
        path = tmp_path / "recompile.json"
        engine.export_trace(str(path))
        engine.close()
        with open(path) as handle:
            events = json.load(handle)["traceEvents"]
        splices = [e for e in events if e["name"] == "recompile-splice"]
        assert splices, "no recompile-splice span recorded"
        for splice in splices:
            start = splice["ts"]
            end = start + splice["dur"]
            enclosing = [
                e for e in events
                if e["name"] == "request" and e["tid"] == splice["tid"]
                and e["ts"] <= start + EPS_US
                and e["ts"] + e["dur"] >= end - EPS_US
            ]
            assert enclosing, (
                "recompile-splice span is not nested inside a request "
                "span on its thread"
            )
            # The splice wraps a full nested compile of the remainder.
            nested_compiles = [
                e for e in events
                if e["name"] == "compile" and e["tid"] == splice["tid"]
                and e["ts"] >= start - EPS_US
                and e["ts"] + e["dur"] <= end + EPS_US
            ]
            assert nested_compiles, (
                "recompile-splice did not wrap a nested compile span"
            )
