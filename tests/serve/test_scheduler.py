"""SessionScheduler: concurrency, micro-batching, admission control."""

import threading
import time

import numpy as np
import pytest

from repro.errors import ServingError
from repro.serve import SessionScheduler
from tests.conftest import make_engine

RNG = np.random.default_rng(29)
WD = RNG.random((12, 1))
SRC = "input X, w\nscores = X %*% w\n"


def _prepared(engine, batch=True):
    return engine.prepare_script(
        SRC, name="score", batch_inputs=("X",) if batch else ()
    )


class TestScheduling:
    def test_concurrent_submits_equal_serial(self):
        engine = make_engine("gen")
        prepared = _prepared(engine)
        parts = [RNG.random((30, 12)) for _ in range(24)]
        with SessionScheduler(engine, n_workers=4) as server:
            tickets = [
                server.submit(prepared, {"X": part, "w": WD})
                for part in parts
            ]
            results = [t.result(30) for t in tickets]
        for part, out in zip(parts, results):
            np.testing.assert_allclose(
                out["scores"].to_dense(), part @ WD, rtol=1e-10
            )
        assert engine.stats.n_requests_served == 24
        # Identical 30-row requests can only produce stacked batches of
        # 30/60/90/120 rows — at most four cold compiles, everything
        # else reuses a cached specialization.
        assert engine.stats.n_specialization_misses <= 4

    def test_submissions_from_many_threads(self):
        engine = make_engine("gen")
        prepared = _prepared(engine, batch=False)
        parts = [RNG.random((25, 12)) for _ in range(16)]
        results: dict[int, object] = {}

        with SessionScheduler(engine, n_workers=4) as server:
            def client(index):
                ticket = server.submit(prepared, {"X": parts[index], "w": WD})
                results[index] = ticket.result(30)

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(len(parts))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        for index, part in enumerate(parts):
            np.testing.assert_allclose(
                results[index]["scores"].to_dense(), part @ WD, rtol=1e-10
            )

    def test_micro_batching_merges_queued_requests(self):
        engine = make_engine("gen")
        prepared = _prepared(engine)
        parts = [RNG.random((10, 12)) for _ in range(8)]
        # A single worker guarantees requests queue up behind the first
        # dispatch, so later ones merge into stacked batches.
        with SessionScheduler(engine, n_workers=1, max_batch=4) as server:
            tickets = [
                server.submit(prepared, {"X": part, "w": WD})
                for part in parts
            ]
            results = [t.result(30) for t in tickets]
        for part, out in zip(parts, results):
            np.testing.assert_allclose(
                out["scores"].to_dense(), part @ WD, rtol=1e-10
            )
        assert engine.stats.n_batches_executed >= 1
        assert engine.stats.n_requests_batched >= 2
        batched = [t for t in tickets if t.telemetry["batch_size"] > 1]
        assert batched

    def test_unbatchable_program_falls_back_per_request(self):
        engine = make_engine("gen")
        prepared = engine.prepare_script(
            "input X, w\nloss = sum(X %*% w)\n", name="agg",
            batch_inputs=("X",),
        )
        parts = [RNG.random((10, 12)) for _ in range(6)]
        with SessionScheduler(engine, n_workers=1, max_batch=4) as server:
            tickets = [
                server.submit(prepared, {"X": part, "w": WD})
                for part in parts
            ]
            results = [t.result(30) for t in tickets]
        for part, out in zip(parts, results):
            assert out["loss"] == pytest.approx(float((part @ WD).sum()))
        assert engine.stats.n_requests_served == 6

    def test_admission_control_under_tiny_budget(self):
        engine = make_engine("gen")
        prepared = _prepared(engine, batch=False)
        parts = [RNG.random((40, 12)) for _ in range(12)]
        # Budget below two concurrent requests: workers must take turns,
        # but every request still completes (oversized requests are
        # admitted alone rather than starved).
        with SessionScheduler(engine, n_workers=4,
                              memory_budget=6000.0) as server:
            tickets = [
                server.submit(prepared, {"X": part, "w": WD})
                for part in parts
            ]
            results = [t.result(60) for t in tickets]
        for part, out in zip(parts, results):
            np.testing.assert_allclose(
                out["scores"].to_dense(), part @ WD, rtol=1e-10
            )

    def test_admission_waits_and_releases(self):
        """Deterministic admission semantics on the scheduler object."""
        engine = make_engine("gen")
        server = SessionScheduler(engine, n_workers=1,
                                  memory_budget=10_000.0)
        try:
            server._admit(8_000.0)  # fits an empty budget
            blocked = threading.Event()

            def second():
                server._admit(8_000.0)  # over budget: must wait
                blocked.set()

            thread = threading.Thread(target=second)
            thread.start()
            time.sleep(0.05)
            assert not blocked.is_set()  # still waiting on the budget
            server._release(8_000.0)
            assert blocked.wait(5.0)
            server._release(8_000.0)
            thread.join()
            assert engine.stats.n_admission_waits == 1
            # An oversized request is admitted alone, never starved.
            server._admit(1e12)
            server._release(1e12)
        finally:
            server.close()

    def test_failed_merged_run_falls_back_per_request(self):
        """An unexpected (non-ServingError) failure of the stacked run
        must not kill the worker or strand tickets: each request is
        retried individually."""
        engine = make_engine("gen")
        prepared = _prepared(engine)
        original = prepared.execute_batch

        def exploding_execute_batch(batch):
            raise RuntimeError("injected stacked-run failure")

        prepared.execute_batch = exploding_execute_batch
        try:
            parts = [RNG.random((10, 12)) for _ in range(6)]
            with SessionScheduler(engine, n_workers=1, max_batch=4) as server:
                tickets = [
                    server.submit(prepared, {"X": part, "w": WD})
                    for part in parts
                ]
                results = [t.result(30) for t in tickets]
        finally:
            prepared.execute_batch = original
        for part, out in zip(parts, results):
            np.testing.assert_allclose(
                out["scores"].to_dense(), part @ WD, rtol=1e-10
            )

    def test_sparse_and_dense_requests_do_not_merge(self):
        """Stacking sparse into dense would densify the batch block,
        blowing the admission estimate — such requests stay separate."""
        from repro.runtime.matrix import MatrixBlock
        from repro.serve.scheduler import _Request

        engine = make_engine("gen")
        prepared = _prepared(engine)
        server = SessionScheduler(engine, n_workers=1)
        try:
            dense = {"X": MatrixBlock(RNG.random((10, 12))), "w": WD}
            sparse = {"X": MatrixBlock.rand(10, 12, sparsity=0.05, seed=9),
                      "w": WD}
            from repro.serve.symbolic import normalize_inputs

            a = _Request(prepared, normalize_inputs(dense), None, 0.0)
            b = _Request(prepared, normalize_inputs(sparse), None, 0.0)
            assert not server._can_merge(a, b)
            c = _Request(prepared, normalize_inputs(dense), None, 0.0)
            assert server._can_merge(a, c)
        finally:
            server.close()

    def test_request_errors_do_not_disable_batching(self):
        """A merged batch failing on *request* validation (missing a
        declared input) must not mark the program unbatchable — later
        well-formed requests still micro-batch."""
        engine = make_engine("gen")
        prepared = _prepared(engine)
        parts = [RNG.random((10, 12)) for _ in range(4)]
        with SessionScheduler(engine, n_workers=1, max_batch=4) as server:
            bad = [server.submit(prepared, {"X": part}) for part in parts]
            for ticket in bad:
                with pytest.raises(ServingError, match="missing declared"):
                    ticket.result(30)
            good = [server.submit(prepared, {"X": part, "w": WD})
                    for part in parts]
            for ticket, part in zip(good, parts):
                out = ticket.result(30)
                np.testing.assert_allclose(
                    out["scores"].to_dense(), part @ WD, rtol=1e-10
                )
        assert engine.stats.n_batches_executed >= 1

    def test_errors_propagate_to_the_ticket(self):
        engine = make_engine("gen")
        prepared = _prepared(engine, batch=False)
        with SessionScheduler(engine, n_workers=2) as server:
            ticket = server.submit(prepared, {"X": RNG.random((5, 7))})
            with pytest.raises(ServingError, match="missing declared"):
                ticket.result(30)

    def test_closed_scheduler_rejects_submissions(self):
        engine = make_engine("gen")
        prepared = _prepared(engine, batch=False)
        server = SessionScheduler(engine, n_workers=1)
        server.close()
        with pytest.raises(ServingError, match="closed"):
            server.submit(prepared, {"X": RNG.random((5, 12)), "w": WD})

    def test_telemetry_fields_populated(self):
        engine = make_engine("gen")
        prepared = _prepared(engine, batch=False)
        with SessionScheduler(engine, n_workers=1) as server:
            ticket = server.submit(prepared, {"X": RNG.random((8, 12)),
                                              "w": WD})
            ticket.result(30)
        telemetry = ticket.telemetry
        assert telemetry["latency_seconds"] >= telemetry["queue_seconds"]
        assert telemetry["batch_size"] == 1
        summary = server.serving_summary()
        assert summary["n_requests_served"] == 1
        assert summary["serve_latency_seconds"] > 0.0
        assert summary["mean_latency_seconds"] > 0.0
