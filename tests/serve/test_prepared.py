"""PreparedProgram: shape-specialized plan reuse and recompilation."""

import numpy as np
import pytest

from repro import api
from repro.errors import ServingError
from repro.lang.interp import run_script
from repro.runtime.matrix import MatrixBlock
from repro.serve import PreparedProgram, input_signature, normalize_inputs
from tests.conftest import ALL_MODES, make_engine

RNG = np.random.default_rng(23)
XD = RNG.random((60, 12))
WD = RNG.random((12, 1))


def _score_builder(slots):
    return slots["X"] @ slots["w"] + slots["b"]


class TestSignatures:
    def test_signature_keys_shape_and_storage(self):
        dense = normalize_inputs({"X": XD})
        sig_dense = input_signature(dense)
        sig_other = input_signature(normalize_inputs({"X": RNG.random((60, 12))}))
        assert sig_dense == sig_other  # same shape+storage, different values
        sparse = MatrixBlock.rand(60, 12, sparsity=0.05, seed=3)
        assert input_signature(normalize_inputs({"X": sparse})) != sig_dense
        resized = normalize_inputs({"X": RNG.random((61, 12))})
        assert input_signature(resized) != sig_dense

    def test_scalars_are_baked_into_the_signature(self):
        a = input_signature(normalize_inputs({"b": 0.5}))
        b = input_signature(normalize_inputs({"b": 1.5}))
        assert a != b

    def test_coarse_sparsity_class_keys_the_signature(self):
        # Dense-stored but nearly-empty inputs must not share a plan
        # with truly dense traffic of the same shape and storage.
        hyper = np.zeros((60, 12))
        hyper[0, 0] = 1.0
        sig_hyper = input_signature(normalize_inputs({"X": hyper}))
        sig_dense = input_signature(normalize_inputs({"X": XD}))
        assert sig_hyper != sig_dense
        # Similar densities fall into one class: no per-nnz blowup.
        a = MatrixBlock.rand(60, 12, sparsity=0.10, seed=1)
        b = MatrixBlock.rand(60, 12, sparsity=0.15, seed=2)
        assert input_signature(normalize_inputs({"X": a})) == input_signature(
            normalize_inputs({"X": b})
        )

    def test_one_specialization_per_sparsity_class(self):
        engine = make_engine("gen")
        prepared = engine.prepare(_score_builder, name="score")
        dense_in = {"X": XD, "w": WD, "b": 0.5}
        hyper = np.zeros((60, 12))
        hyper[3, 4] = 2.0
        hyper_in = {"X": hyper, "w": WD, "b": 0.5}
        for _ in range(2):  # repeats hit the cached specializations
            prepared.run(dense_in)
            prepared.run(hyper_in)
        assert prepared.n_specializations == 2
        assert engine.stats.n_specialization_hits == 2
        np.testing.assert_allclose(
            prepared.run(hyper_in).to_dense(), hyper @ WD + 0.5
        )


class TestPreparedExpression:
    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_matches_direct_evaluation(self, mode):
        engine = make_engine(mode)
        prepared = engine.prepare(_score_builder, name="score")
        result = prepared.run({"X": XD, "w": WD, "b": 0.5})
        expected = XD @ WD + 0.5
        np.testing.assert_allclose(result.to_dense(), expected, rtol=1e-10)

    def test_warm_hit_skips_the_entire_compile_pipeline(self):
        engine = make_engine("gen")
        prepared = engine.prepare(_score_builder, name="score")
        prepared.run({"X": XD, "w": WD, "b": 0.5})
        compiled = engine.stats.n_programs_compiled
        optimized = engine.stats.n_dags_optimized
        lowered = engine.stats.n_instructions_lowered
        pass_seconds = dict(engine.stats.pipeline_pass_seconds)

        fresh = RNG.random((60, 12))  # same shapes, new values
        result = prepared.run({"X": fresh, "w": WD, "b": 0.5})
        np.testing.assert_allclose(result.to_dense(), fresh @ WD + 0.5)
        assert engine.stats.n_programs_compiled == compiled
        assert engine.stats.n_dags_optimized == optimized
        assert engine.stats.n_instructions_lowered == lowered
        assert engine.stats.pipeline_pass_seconds == pass_seconds
        assert engine.stats.n_specialization_hits == 1
        assert prepared.n_specializations == 1

    def test_shape_mismatch_recompiles_new_specialization(self):
        engine = make_engine("gen")
        prepared = engine.prepare(_score_builder, name="score")
        prepared.run({"X": XD, "w": WD, "b": 0.5})
        small = RNG.random((9, 12))
        result = prepared.run({"X": small, "w": WD, "b": 0.5})
        np.testing.assert_allclose(result.to_dense(), small @ WD + 0.5)
        assert prepared.n_specializations == 2
        assert engine.stats.n_shape_recompiles == 1
        assert engine.stats.n_specialization_misses == 2
        # Both specializations stay warm.
        prepared.run({"X": XD, "w": WD, "b": 0.5})
        prepared.run({"X": small, "w": WD, "b": 0.5})
        assert prepared.n_specializations == 2
        assert engine.stats.n_specialization_hits == 2

    def test_generated_operators_shared_across_specializations(self):
        engine = make_engine("gen")
        prepared = engine.prepare(
            lambda s: (s["X"] * s["Y"] * 2.0).sum(), name="dotlike"
        )
        prepared.run({"X": XD, "Y": XD})
        compiled_classes = engine.stats.n_classes_compiled
        assert compiled_classes >= 1
        # A new shape forces a new Program, but the semantic CPlan hash
        # matches, so the plan cache supplies the operator.
        prepared.run({"X": XD[:30], "Y": XD[:30]})
        assert engine.stats.n_classes_compiled == compiled_classes
        assert engine.stats.plan_cache_hits >= 1
        assert engine.stats.plan_cache_size >= 1

    def test_multi_output_builders(self):
        engine = make_engine("gen")
        prepared = engine.prepare(
            lambda s: {"scores": s["X"] @ s["w"], "norm": (s["w"] * s["w"]).sum()},
            name="multi",
        )
        out = prepared.run({"X": XD, "w": WD})
        np.testing.assert_allclose(out["scores"].to_dense(), XD @ WD)
        assert out["norm"] == pytest.approx(float((WD * WD).sum()))

    def test_sparse_inputs_specialize_separately(self):
        engine = make_engine("gen")
        prepared = engine.prepare(lambda s: (s["X"] * 2.0).sum(), name="sum2x")
        sparse = MatrixBlock.rand(60, 12, sparsity=0.05, seed=5)
        a = prepared.run({"X": XD})
        b = prepared.run({"X": sparse})
        assert a == pytest.approx(float((XD * 2.0).sum()))
        assert b == pytest.approx(float(sparse.to_dense().sum() * 2.0))
        assert prepared.n_specializations == 2


class TestPreparedScript:
    SRC = """
input X, w
scores = X %*% w
hinge = max(1 - scores, 0)
loss = sum(hinge)
"""

    def test_matches_run_script(self):
        engine = make_engine("gen")
        prepared = engine.prepare_script(self.SRC, name="svm")
        served = prepared.run({"X": XD, "w": WD})
        direct = run_script(self.SRC, inputs={"X": XD, "w": WD},
                            engine=make_engine("gen"))
        np.testing.assert_allclose(
            served["scores"].to_dense(), direct["scores"].to_dense()
        )
        assert served["loss"] == pytest.approx(direct["loss"])

    def test_missing_declared_input_raises(self):
        engine = make_engine("gen")
        prepared = engine.prepare_script(self.SRC, name="svm")
        with pytest.raises(ServingError, match="missing declared"):
            prepared.run({"X": XD})

    def test_scalar_controlled_loop_unrolls(self):
        engine = make_engine("gen")
        src = """
input X, k
acc = X * 0
for (i in 1:k) {
  acc = acc + X * i
}
"""
        prepared = engine.prepare_script(src, name="unroll")
        out = prepared.run({"X": XD, "k": 3.0})
        np.testing.assert_allclose(out["acc"].to_dense(), XD * 6.0, rtol=1e-10)
        # A different trip count is a different (baked-scalar) plan.
        out2 = prepared.run({"X": XD, "k": 2.0})
        np.testing.assert_allclose(out2["acc"].to_dense(), XD * 3.0, rtol=1e-10)
        assert prepared.n_specializations == 2

    def test_data_dependent_branching_is_rejected(self):
        engine = make_engine("gen")
        src = """
input X
while (sum(X) > 1) {
  X = X - 1
}
"""
        prepared = engine.prepare_script(src, name="loopy")
        with pytest.raises(ServingError, match="branch on matrix data"):
            prepared.run({"X": XD})

    def test_input_decl_runs_under_regular_interpreter(self):
        result = run_script(self.SRC, inputs={"X": XD, "w": WD},
                            engine=make_engine("base"))
        np.testing.assert_allclose(result["scores"].to_dense(), XD @ WD)

    def test_input_decl_unbound_raises(self):
        from repro.errors import LanguageError

        with pytest.raises(LanguageError, match="not bound"):
            run_script("input X\ny = X * 2", engine=make_engine("base"))


class TestDistributedServing:
    def test_prepared_runs_on_the_simulated_cluster(self):
        from repro.config import ClusterConfig

        engine = make_engine(
            "gen", cluster=ClusterConfig(), local_mem_budget=1.0
        )
        prepared = engine.prepare(
            lambda s: (s["X"] @ s["w"]).col_sums(), name="dist"
        )
        local = make_engine("gen").prepare(
            lambda s: (s["X"] @ s["w"]).col_sums(), name="local"
        )
        for x in (XD, RNG.random((60, 12))):
            served = prepared.run({"X": x, "w": WD})
            expected = local.run({"X": x, "w": WD})
            np.testing.assert_allclose(
                served.to_dense(), expected.to_dense(), rtol=1e-10
            )
        assert engine.stats.n_distributed_ops >= 1
        assert engine.stats.n_specialization_hits == 1


class TestMicroBatching:
    def test_batch_equals_individual_runs(self):
        engine = make_engine("gen")
        prepared = engine.prepare_script(
            "input X, w\nscores = X %*% w\n", name="score",
            batch_inputs=("X",),
        )
        parts = [RNG.random((n, 12)) for n in (20, 35, 5)]
        batched = prepared.run_batch([{"X": p, "w": WD} for p in parts])
        for part, out in zip(parts, batched):
            np.testing.assert_allclose(
                out["scores"].to_dense(), part @ WD, rtol=1e-10
            )
            np.testing.assert_allclose(out["X"].to_dense(), part)

    def test_unsplittable_outputs_raise(self):
        engine = make_engine("gen")
        prepared = engine.prepare_script(
            "input X, w\nloss = sum(X %*% w)\n", name="agg",
            batch_inputs=("X",),
        )
        with pytest.raises(ServingError, match="cannot be split"):
            prepared.run_batch(
                [{"X": XD[:10], "w": WD}, {"X": XD[10:], "w": WD}]
            )

    def test_gram_matrix_outputs_are_not_split(self):
        """X %*% t(X) has batch-dependent columns: rows of the stacked
        Gram matrix contain cross-request products, so splitting by row
        offsets would silently hand requests wrong results."""
        engine = make_engine("gen")
        prepared = engine.prepare(
            lambda s: s["X"] @ s["X"].T, name="gram", batch_inputs=("X",)
        )
        with pytest.raises(ServingError, match="cannot be split"):
            prepared.run_batch([{"X": XD[:2]}, {"X": XD[2:4]}])
        # Individual runs still work and are correct.
        solo = prepared.run({"X": XD[:2]})
        np.testing.assert_allclose(solo.to_dense(), XD[:2] @ XD[:2].T)

    def test_cross_row_operators_are_not_split(self):
        """cumsum mixes batch rows (request 2 sees request 1's prefix
        totals), so such outputs must refuse batching."""
        engine = make_engine("gen")
        prepared = engine.prepare(
            lambda s: api.cumsum(s["X"]), name="scan", batch_inputs=("X",)
        )
        with pytest.raises(ServingError, match="cannot be split"):
            prepared.run_batch([{"X": XD[:5]}, {"X": XD[5:10]}])

    def test_row_local_chain_still_splits(self):
        """Cell-wise maps, matmul-with-shared-weights, and row
        aggregations stay row-local and batch fine."""
        engine = make_engine("gen")
        prepared = engine.prepare(
            lambda s: api.exp((s["X"] @ s["w"]) * 0.5).row_sums(),
            name="rowchain", batch_inputs=("X",),
        )
        parts = [XD[:25], XD[25:]]
        outs = prepared.run_batch([{"X": p, "w": WD} for p in parts])
        for part, out in zip(parts, outs):
            np.testing.assert_allclose(
                out.to_dense(), np.exp((part @ WD) * 0.5), rtol=1e-10
            )

    def test_dimension_reading_scripts_refuse_batching(self):
        """nrow(X) bakes the traced row count into the plan; a stacked
        compile would bake the batch total and corrupt results, so such
        specializations must refuse splitting."""
        from repro.errors import UnbatchableProgramError

        engine = make_engine("gen")
        prepared = engine.prepare_script(
            "input X\ny = X / nrow(X)\n", name="meanish",
            batch_inputs=("X",),
        )
        # Solo runs are correct (divide by the request's own rows).
        solo = prepared.run({"X": XD[:4]})
        np.testing.assert_allclose(solo["y"].to_dense(), XD[:4] / 4.0)
        with pytest.raises(UnbatchableProgramError):
            prepared.run_batch([{"X": XD[:4]}, {"X": XD[4:8]}])

    def test_specialization_cache_is_lru_bounded(self):
        engine = make_engine("gen")
        prepared = engine.prepare(
            lambda s: s["X"] * 2.0, name="double", max_specializations=2
        )
        for rows in (10, 20, 30):
            prepared.run({"X": XD[:rows]})
        assert prepared.n_specializations == 2
        # The oldest (10-row) specialization was evicted; re-running it
        # recompiles, while the 30-row one stays warm.
        misses = engine.stats.n_specialization_misses
        prepared.run({"X": XD[:30]})
        assert engine.stats.n_specialization_misses == misses
        prepared.run({"X": XD[:10]})
        assert engine.stats.n_specialization_misses == misses + 1

    def test_batch_independent_outputs_replicate(self):
        engine = make_engine("gen")
        prepared = engine.prepare_script(
            "input X, w\nscores = X %*% w\nnorm = sum(w * w)\n",
            name="score", batch_inputs=("X",),
        )
        outs = prepared.run_batch(
            [{"X": XD[:10], "w": WD}, {"X": XD[10:], "w": WD}]
        )
        expected = float((WD * WD).sum())
        for out in outs:
            assert out["norm"] == pytest.approx(expected)
