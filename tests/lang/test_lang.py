"""Lexer, parser, and interpreter tests for the DML-subset language."""

import numpy as np
import pytest

from repro.errors import LanguageError
from repro.lang import ast as A
from repro.lang.interp import run_script
from repro.lang.lexer import tokenize
from repro.lang.parser import parse
from tests.conftest import make_engine


class TestLexer:
    def test_numbers(self):
        tokens = tokenize("1 2.5 1e-3 10.0E+2")
        assert [t.text for t in tokens[:-1]] == ["1", "2.5", "1e-3", "10.0E+2"]

    def test_operators_maximal_munch(self):
        tokens = tokenize("a %*% b <- c == d")
        assert [t.text for t in tokens if t.kind == "op"] == ["%*%", "<-", "=="]

    def test_comments_skipped(self):
        tokens = tokenize("x = 1 # comment here\ny = 2")
        assert [t.text for t in tokens if t.kind == "id"] == ["x", "y"]

    def test_keywords(self):
        tokens = tokenize("while (x) { }")
        assert tokens[0].kind == "kw"

    def test_dotted_identifier(self):
        tokens = tokenize("as.scalar(x)")
        assert tokens[0].text == "as.scalar"

    def test_error_on_bad_char(self):
        with pytest.raises(LanguageError):
            tokenize("x = $")

    def test_unterminated_string(self):
        with pytest.raises(LanguageError):
            tokenize('x = "abc')


class TestParser:
    def test_assignment(self):
        script = parse("x = 1 + 2")
        (stmt,) = script.body
        assert isinstance(stmt, A.Assign) and stmt.name == "x"

    def test_arrow_assignment(self):
        script = parse("x <- 3")
        assert isinstance(script.body[0], A.Assign)

    def test_precedence(self):
        (stmt,) = parse("x = 1 + 2 * 3").body
        assert isinstance(stmt.value, A.Binary) and stmt.value.op == "+"
        assert stmt.value.right.op == "*"

    def test_power_right_associative(self):
        (stmt,) = parse("x = 2 ^ 3 ^ 2").body
        assert stmt.value.op == "^"
        assert isinstance(stmt.value.right, A.Binary)

    def test_matmult_parsed(self):
        (stmt,) = parse("H = t(X) %*% Q").body
        assert stmt.value.op == "%*%"

    def test_indexing(self):
        (stmt,) = parse("y = P[, 1:k]").body
        idx = stmt.value
        assert isinstance(idx, A.Index)
        assert idx.row_lo is None and idx.col_lo is not None

    def test_call_with_kwargs(self):
        (stmt,) = parse("X = rand(rows=10, cols=4, seed=7)").body
        call = stmt.value
        assert isinstance(call, A.Call)
        assert set(call.kwargs) == {"rows", "cols", "seed"}

    def test_if_else(self):
        script = parse("if (x > 1) { y = 1 } else { y = 2 }")
        (stmt,) = script.body
        assert isinstance(stmt, A.If) and stmt.else_body

    def test_while(self):
        (stmt,) = parse("while (i < 10) { i = i + 1 }").body
        assert isinstance(stmt, A.While)

    def test_for_range(self):
        (stmt,) = parse("for (i in 1:5) { s = s + i }").body
        assert isinstance(stmt, A.For) and stmt.var == "i"

    def test_error_reporting(self):
        with pytest.raises(LanguageError):
            parse("x = (1 + ")


class TestInterpreter:
    def test_scalar_arithmetic(self):
        result = run_script("x = 1 + 2 * 3")
        assert result["x"] == 7.0

    def test_matrix_expression(self, rng):
        data = rng.random((10, 4))
        result = run_script("y = X * 2 + 1", inputs={"X": data})
        np.testing.assert_allclose(result["y"].to_dense(), data * 2 + 1)

    def test_matmult_and_transpose(self, rng):
        data = rng.random((8, 3))
        result = run_script("G = t(X) %*% X", inputs={"X": data})
        np.testing.assert_allclose(result["G"].to_dense(), data.T @ data, rtol=1e-12)

    def test_aggregations(self, rng):
        data = rng.random((6, 5))
        script = "s = sum(X)\nr = rowSums(X)\nc = colSums(X)"
        result = run_script(script, inputs={"X": data})
        assert result["s"] == pytest.approx(data.sum())
        np.testing.assert_allclose(result["r"].to_dense().ravel(), data.sum(axis=1))

    def test_indexing_one_based_inclusive(self, rng):
        data = rng.random((6, 6))
        result = run_script("y = X[2:3, 1:2]", inputs={"X": data})
        np.testing.assert_allclose(result["y"].to_dense(), data[1:3, 0:2])

    def test_indexing_with_variable_bound(self, rng):
        data = rng.random((6, 6))
        result = run_script("k = 3\ny = X[, 1:k]", inputs={"X": data})
        assert result["y"].shape == (6, 3)

    def test_while_loop(self):
        script = """
        i = 0
        s = 0
        while (i < 5) {
            s = s + i
            i = i + 1
        }
        """
        result = run_script(script)
        assert result["s"] == 10.0

    def test_for_loop_matrix_update(self, rng):
        data = rng.random((5, 5))
        script = """
        for (i in 1:3) {
            X = X * 2
        }
        """
        result = run_script(script, inputs={"X": data})
        np.testing.assert_allclose(result["X"].to_dense(), data * 8)

    def test_if_on_matrix_scalar(self, rng):
        data = np.ones((4, 4))
        script = """
        if (sum(X) > 10) { flag = 1 } else { flag = 0 }
        """
        result = run_script(script, inputs={"X": data})
        assert result["flag"] == 1.0

    def test_rand_deterministic(self):
        script = "X = rand(rows=10, cols=5, seed=3)\ns = sum(X)"
        first = run_script(script)
        second = run_script(script)
        assert first["s"] == second["s"]
        assert first["X"].shape == (10, 5)

    def test_matrix_constructor(self):
        result = run_script("Z = matrix(1.5, rows=3, cols=2)")
        np.testing.assert_array_equal(result["Z"].to_dense(), np.full((3, 2), 1.5))

    def test_as_scalar(self, rng):
        data = rng.random((4, 4))
        result = run_script("v = as.scalar(sum(X) + 1)", inputs={"X": data})
        assert result["v"] == pytest.approx(data.sum() + 1)

    def test_nrow_ncol(self, rng):
        result = run_script("r = nrow(X)\nc = ncol(X)", inputs={"X": rng.random((7, 3))})
        assert (result["r"], result["c"]) == (7.0, 3.0)

    def test_undefined_variable(self):
        with pytest.raises(LanguageError):
            run_script("y = nope + 1")

    def test_mlogreg_pattern_via_script(self, rng):
        """Expression (2) end-to-end through the scripting front end."""
        X = rng.random((50, 10))
        v = rng.random((10, 3))
        P = rng.random((50, 4))
        script = """
        k = 3
        Q = P[, 1:k] * (X %*% v)
        H = t(X) %*% (Q - P[, 1:k] * rowSums(Q))
        """
        for mode in ("base", "gen"):
            result = run_script(
                script, inputs={"X": X, "v": v, "P": P}, engine=make_engine(mode)
            )
            q = P[:, :3] * (X @ v)
            expected = X.T @ (q - P[:, :3] * q.sum(axis=1, keepdims=True))
            np.testing.assert_allclose(result["H"].to_dense(), expected, rtol=1e-9)

    def test_engine_stats_count_dags(self, rng):
        engine = make_engine("gen")
        script = """
        for (i in 1:4) {
            X = X * 0.5 + 1
            s = sum(X)
        }
        """
        run_script(script, inputs={"X": rng.random((10, 10))}, engine=engine)
        assert engine.stats.n_dags_optimized >= 4
