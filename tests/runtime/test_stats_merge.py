"""RuntimeStats.merge / reset field audit.

``merge`` and ``reset`` enumerate ``dataclasses.fields``, so a counter
added to the dataclass can never be silently dropped.  These tests lock
that in: a fully-populated stats object (every numeric field nonzero,
every dict field non-empty) merges into an empty one with nothing lost,
gauges combine via max, and reset zeroes every declared field.
"""

from dataclasses import MISSING, fields

import pytest

from repro.runtime.stats import RuntimeStats


def _numeric_fields():
    # stats.py uses `from __future__ import annotations`, so f.type is
    # a string; dict fields are identified by their default_factory.
    return [
        f for f in fields(RuntimeStats) if f.default_factory is MISSING
    ]


def _dict_fields():
    return [
        f for f in fields(RuntimeStats)
        if f.default_factory is not MISSING
    ]


def _fully_populated() -> RuntimeStats:
    """Every declared field nonzero/non-empty, values all distinct."""
    stats = RuntimeStats()
    for index, spec in enumerate(_numeric_fields(), start=1):
        current = getattr(stats, spec.name)
        setattr(stats, spec.name, type(current)(index))
    for index, spec in enumerate(_dict_fields(), start=1):
        setattr(stats, spec.name, {f"key{index}": index, "shared": 1})
    return stats


class TestFieldAudit:
    def test_dataclass_has_both_field_kinds(self):
        assert len(_numeric_fields()) > 30
        assert len(_dict_fields()) >= 3

    def test_every_field_is_mergeable_type(self):
        stats = RuntimeStats()
        for spec in fields(RuntimeStats):
            value = getattr(stats, spec.name)
            assert isinstance(value, (int, float, dict)), (
                f"field '{spec.name}' is a {type(value).__name__}: "
                "merge() only handles numeric counters and dicts, so "
                "this field would be silently dropped"
            )


class TestMerge:
    def test_merge_into_empty_drops_nothing(self):
        source = _fully_populated()
        target = RuntimeStats()
        target.merge(source)
        for spec in _numeric_fields():
            assert getattr(target, spec.name) == getattr(
                source, spec.name
            ), f"merge dropped numeric field '{spec.name}'"
        for spec in _dict_fields():
            assert getattr(target, spec.name) == getattr(
                source, spec.name
            ), f"merge dropped dict field '{spec.name}'"

    def test_merge_is_additive_for_counters(self):
        source = _fully_populated()
        target = _fully_populated()
        target.merge(source)
        for spec in _numeric_fields():
            if spec.name in RuntimeStats._GAUGES:
                continue
            assert getattr(target, spec.name) == 2 * getattr(
                source, spec.name
            ), f"counter '{spec.name}' did not add"
        for spec in _dict_fields():
            merged = getattr(target, spec.name)
            assert merged["shared"] == 2
            for key, value in getattr(source, spec.name).items():
                if key != "shared":
                    assert merged[key] == 2 * value

    def test_gauges_merge_via_max(self):
        low, high = RuntimeStats(), RuntimeStats()
        for spec_name in RuntimeStats._GAUGES:
            setattr(low, spec_name, 2)
            setattr(high, spec_name, 9)
        low.merge(high)
        high_copy = RuntimeStats()
        for spec_name in RuntimeStats._GAUGES:
            setattr(high_copy, spec_name, 9)
        high_copy.merge(low)
        for spec_name in RuntimeStats._GAUGES:
            assert getattr(low, spec_name) == 9
            assert getattr(high_copy, spec_name) == 9, (
                f"gauge '{spec_name}' added instead of taking the max"
            )

    def test_merge_skips_zero_fields(self):
        target = _fully_populated()
        before = {
            spec.name: getattr(target, spec.name)
            for spec in fields(RuntimeStats)
        }
        target.merge(RuntimeStats())
        for name, value in before.items():
            assert getattr(target, name) == value

    def test_merge_carries_metrics(self):
        source, target = RuntimeStats(), RuntimeStats()
        source.observe_request("p", "t", 0.001, 0.002, 0.003)
        target.merge(source)
        hist = target.metrics.histogram("serve_latency_seconds")
        assert hist.aggregate().count == 1

    def test_merge_without_metrics_stays_lazy(self):
        source, target = RuntimeStats(), RuntimeStats()
        source.n_recompiles = 1
        target.merge(source)
        assert target._metrics is None  # no registry materialized


class TestReset:
    def test_reset_zeroes_every_field(self):
        stats = _fully_populated()
        stats.observe_request("p", "t", 0.001, 0.002, 0.003)
        tracer = stats.tracer
        stats.reset()
        fresh = RuntimeStats()
        for spec in fields(RuntimeStats):
            assert getattr(stats, spec.name) == getattr(
                fresh, spec.name
            ), f"reset left field '{spec.name}' populated"
        assert stats.tracer is tracer  # identity survives reset
        latency = stats.metrics.histogram("serve_latency_seconds")
        assert latency.aggregate().count == 0

    def test_reset_then_merge_round_trips(self):
        stats = _fully_populated()
        snapshot = {
            spec.name: getattr(stats, spec.name)
            for spec in _numeric_fields()
        }
        donor = _fully_populated()
        stats.reset()
        stats.merge(donor)
        for name, value in snapshot.items():
            assert getattr(stats, name) == value


class TestSummariesAfterMerge:
    def test_kernel_summary_reflects_merged_counters(self):
        source, target = RuntimeStats(), RuntimeStats()
        source.n_interpreted_runs = 3
        source.n_compiled_runs = 1
        target.merge(source)
        summary = target.kernel_summary()
        assert summary["n_interpreted_runs"] == 3
        assert summary["compiled_run_fraction"] == pytest.approx(0.25)
