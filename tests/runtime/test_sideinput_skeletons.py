"""Side-input access and skeleton edge cases."""

import numpy as np
import pytest

from repro import api
from repro.runtime.matrix import MatrixBlock
from repro.runtime.sideinput import SideInput
from tests.conftest import make_engine


class TestSideInput:
    def test_row_tile_dense(self, rng):
        block = MatrixBlock(rng.random((10, 4)))
        side = SideInput(block)
        np.testing.assert_array_equal(side.row_tile(2, 5), block.to_dense()[2:5])

    def test_row_tile_sparse(self):
        block = MatrixBlock.rand(20, 6, sparsity=0.2, seed=1)
        side = SideInput(block)
        np.testing.assert_allclose(side.row_tile(3, 9), block.to_dense()[3:9])

    def test_row_vector_shared_across_tiles(self, rng):
        block = MatrixBlock(rng.random((1, 6)))
        side = SideInput(block)
        np.testing.assert_array_equal(side.row_tile(0, 3), block.to_dense())
        np.testing.assert_array_equal(side.row_tile(3, 9), block.to_dense())

    def test_gather_full_matrix(self, rng):
        arr = rng.random((8, 8))
        side = SideInput(MatrixBlock(arr))
        rows = np.array([0, 3, 7])
        cols = np.array([1, 5, 2])
        np.testing.assert_array_equal(side.gather(rows, cols), arr[rows, cols])

    def test_gather_broadcasts_vectors(self, rng):
        col = rng.random((8, 1))
        row = rng.random((1, 8))
        rows = np.array([0, 3, 7])
        cols = np.array([1, 5, 2])
        np.testing.assert_array_equal(
            SideInput(MatrixBlock(col)).gather(rows, cols), col[rows, 0]
        )
        np.testing.assert_array_equal(
            SideInput(MatrixBlock(row)).gather(rows, cols), row[0, cols]
        )

    def test_gather_scalar_block(self):
        side = SideInput(MatrixBlock(np.array([[4.5]])))
        out = side.gather(np.array([0, 0]), np.array([0, 0]))
        np.testing.assert_array_equal(out, [4.5, 4.5])

    def test_gather_row(self, rng):
        arr = rng.random((6, 9))
        side = SideInput(MatrixBlock(arr))
        cols = np.array([2, 4, 8])
        np.testing.assert_array_equal(side.gather_row(3, cols), arr[3, cols])

    def test_gather_row_sparse(self):
        block = MatrixBlock.rand(6, 9, sparsity=0.3, seed=2)
        side = SideInput(block)
        cols = np.array([0, 4, 8])
        np.testing.assert_allclose(
            side.gather_row(2, cols), block.to_dense()[2, cols]
        )


class TestSkeletonEdgeCases:
    """Generated operators over shapes that stress the skeletons."""

    def test_single_row_matrix(self, rng):
        xd = rng.random((1, 50))
        yd = rng.random((1, 50))

        def build():
            return [(api.matrix(xd, "X") * api.matrix(yd, "Y")).sum()]

        base = api.eval_all(build(), engine=make_engine("base"))[0]
        gen = api.eval_all(build(), engine=make_engine("gen"))[0]
        assert gen == pytest.approx(base)

    def test_single_column_aggregation(self, rng):
        xd = rng.random((500, 2))

        def build():
            x = api.matrix(xd, "X")
            return [(x * 2.0).col_sums()]

        base = api.eval_all(build(), engine=make_engine("base"))[0]
        gen = api.eval_all(build(), engine=make_engine("gen"))[0]
        np.testing.assert_allclose(gen.to_dense(), base.to_dense())

    def test_tall_skinny_row_template(self, rng):
        xd = rng.random((10_000, 3))
        vd = rng.random((3, 1))

        def build():
            x = api.matrix(xd, "X")
            return [x.T @ (x @ api.matrix(vd, "v"))]

        base = api.eval_all(build(), engine=make_engine("base"))[0]
        gen = api.eval_all(build(), engine=make_engine("gen"))[0]
        np.testing.assert_allclose(gen.to_dense(), base.to_dense(), rtol=1e-9)

    def test_empty_sparse_rows(self):
        """Rows without non-zeros must not break the sparse paths."""
        import scipy.sparse as sp

        arr = np.zeros((50, 20))
        arr[5, 3] = 2.0
        arr[30, 7] = -1.0
        block = MatrixBlock(sp.csr_matrix(arr))

        def build():
            x = api.matrix(block, "S")
            return [(x * x).sum(), (x * 3.0).row_sums()]

        base = api.eval_all(build(), engine=make_engine("base"))
        gen = api.eval_all(build(), engine=make_engine("gen"))
        assert gen[0] == pytest.approx(base[0])
        np.testing.assert_allclose(gen[1].to_dense(), base[1].to_dense())

    def test_all_zero_sparse_driver_outer(self, rng):
        block = MatrixBlock.zeros(100, 80, sparse=True)
        u = rng.random((100, 4))
        v = rng.random((80, 4))

        def build():
            s = api.matrix(block, "S")
            return [
                (s * api.log(api.matrix(u, "U") @ api.matrix(v, "V").T + 1e-15)).sum()
            ]

        gen = api.eval_all(build(), engine=make_engine("gen"))[0]
        assert gen == 0.0

    def test_outer_left_matmult(self, rng):
        """t(O) %*% W via the Outer template's left-mm variant."""
        s_block = MatrixBlock.rand(200, 150, sparsity=0.05, seed=9)
        u = rng.random((200, 5))
        v = rng.random((150, 5))

        def build():
            s = api.matrix(s_block, "S")
            um, vm = api.matrix(u, "U"), api.matrix(v, "V")
            guarded = (s != 0.0) * (um @ vm.T)
            return [guarded.T @ um]

        base = api.eval_all(build(), engine=make_engine("base"))[0]
        gen = api.eval_all(build(), engine=make_engine("gen"))[0]
        np.testing.assert_allclose(gen.to_dense(), base.to_dense(), rtol=1e-8)
