"""Tiered vectorized-kernel backend: differential grid and promotion.

Differential grid (template × out-type × main storage × backend)
asserting that the compiled vectorized kernels reproduce the
interpreted tile-loop skeletons — exactly for order-preserving kernels,
within ``kernel_compare_rtol`` where a whole-array aggregation
reassociates — plus unit tests for the hotness promotion policy, kernel
sharing through the plan cache and serving specializations, the
source-hash compile cache, and graceful Numba degradation.
"""

import numpy as np
import pytest

from repro import api
from repro.codegen.plan_cache import compile_source
from repro.compiler.execution import Engine
from repro.config import CodegenConfig
from repro.runtime.compressed import compress
from repro.runtime.matrix import MatrixBlock
from repro.runtime.stats import RuntimeStats

ROWS, COLS = 96, 24

try:
    import numba  # noqa: F401

    HAVE_NUMBA = True
except ImportError:
    HAVE_NUMBA = False

BACKENDS = ["interpreted", "vectorized"] + (["numba"] if HAVE_NUMBA else [])


def _engine(backend: str, **kwargs) -> Engine:
    config = CodegenConfig(intra_op_threads=1, **kwargs)
    if backend == "interpreted":
        config.vectorized_kernels = False
    elif backend == "numba":
        config.numba_kernels = True
    return Engine(mode="gen", config=config)


def _as_arrays(values):
    return [
        v.to_dense() if isinstance(v, MatrixBlock) else np.float64(v)
        for v in values
    ]


def _main_block(storage: str) -> object:
    rng = np.random.default_rng(23)
    if storage == "dense":
        return MatrixBlock(rng.uniform(0.1, 1.0, (ROWS, COLS)))
    if storage == "sparse":
        return MatrixBlock.rand(
            ROWS, COLS, sparsity=0.15, seed=23, low=0.2, high=1.5
        )
    return compress(MatrixBlock(np.round(rng.uniform(0, 3, (ROWS, COLS)))))


# ----------------------------------------------------------------------
# Differential grid: template × out-type × storage × backend
# ----------------------------------------------------------------------
_CELL_RECIPES = {
    "no_agg": lambda x, y: [x * y * 2.0],
    "row_agg": lambda x, y: [(x * y).row_sums()],
    "col_agg": lambda x, y: [(x * y).col_sums()],
    "full_agg": lambda x, y: [(x * y).sum()],
    "multi_agg": lambda x, y: [(x * y).sum(), (x * x).sum()],
    "full_agg_selfmul": lambda x, y: [(x * x).sum()],
}

_ROW_RECIPES = {
    "no_agg": lambda x, v: [api.sigmoid(x @ v)],
    "col_agg_t": lambda x, v: [x.T @ (x @ v)],
    "full_agg": lambda x, v: [(x @ v).sum()],
}

_OUTER_RECIPES = {
    "outer_no_agg": lambda s, u, v: [s * (u @ v.T)],
    "outer_left": lambda s, u, v: [((s != 0.0) * (u @ v.T)).T @ u],
    "outer_right": lambda s, u, v: [((s != 0.0) * (u @ v.T)) @ v],
    "outer_full_agg": lambda s, u, v: [
        (s * api.log(u @ v.T + 1e-15)).sum()
    ],
}


@pytest.mark.parametrize("backend", BACKENDS[1:])
@pytest.mark.parametrize("storage", ["dense", "sparse", "compressed"])
@pytest.mark.parametrize("out_type", sorted(_CELL_RECIPES))
def test_cell_grid_compiled_matches_interpreted(out_type, storage, backend):
    main = _main_block(storage)
    side = np.random.default_rng(5).uniform(0.5, 1.5, (ROWS, COLS))

    def build():
        x = api.matrix(main, "X")
        y = api.matrix(side, "Y")
        return _CELL_RECIPES[out_type](x, y)

    oracle = _as_arrays(api.eval_all(build(), engine=_engine("interpreted")))
    engine = _engine(backend)
    compiled = _as_arrays(api.eval_all(build(), engine=engine))
    rtol = engine.config.kernel_compare_rtol
    for expected, actual in zip(oracle, compiled):
        np.testing.assert_allclose(actual, expected, rtol=rtol, atol=1e-12)
    # Every storage runs compiled now: dictionary-compatible compressed
    # plans get the compressed-CELL kernel variant, other compressed
    # plans decompress inside the kernel driver.
    summary = engine.stats.kernel_summary()
    assert summary["n_compiled_runs"] >= 1


@pytest.mark.parametrize("backend", BACKENDS[1:])
@pytest.mark.parametrize("storage", ["dense", "sparse", "compressed"])
@pytest.mark.parametrize("out_type", sorted(_ROW_RECIPES))
def test_row_grid_compiled_matches_interpreted(out_type, storage, backend):
    main = _main_block(storage)
    vec = np.random.default_rng(6).uniform(0.1, 1.0, (COLS, 1))

    def build():
        x = api.matrix(main, "X")
        v = api.matrix(vec, "v")
        return _ROW_RECIPES[out_type](x, v)

    oracle = _as_arrays(api.eval_all(build(), engine=_engine("interpreted")))
    engine = _engine(backend)
    compiled = _as_arrays(api.eval_all(build(), engine=engine))
    rtol = engine.config.kernel_compare_rtol
    for expected, actual in zip(oracle, compiled):
        np.testing.assert_allclose(actual, expected, rtol=rtol, atol=1e-12)


@pytest.mark.parametrize("backend", BACKENDS[1:])
@pytest.mark.parametrize("storage", ["sparse", "dense"])
@pytest.mark.parametrize("out_type", sorted(_OUTER_RECIPES))
def test_outer_grid_compiled_matches_interpreted(out_type, storage, backend):
    rng = np.random.default_rng(9)
    if storage == "sparse":
        driver = MatrixBlock.rand(120, 100, sparsity=0.08, seed=31)
    else:
        driver = MatrixBlock(rng.uniform(0.1, 1.0, (120, 100)))
    u = rng.uniform(0.1, 1.0, (120, 4))
    v = rng.uniform(0.1, 1.0, (100, 4))

    def build():
        s = api.matrix(driver, "S")
        um, vm = api.matrix(u, "U"), api.matrix(v, "V")
        return _OUTER_RECIPES[out_type](s, um, vm)

    oracle = _as_arrays(api.eval_all(build(), engine=_engine("interpreted")))
    engine = _engine(backend)
    compiled = _as_arrays(api.eval_all(build(), engine=engine))
    for expected, actual in zip(oracle, compiled):
        np.testing.assert_allclose(actual, expected, rtol=1e-8, atol=1e-11)


@pytest.mark.parametrize("recipe", ["full_agg", "multi_agg"])
def test_compressed_cell_kernel_runs_dictionary_direct(recipe):
    """Parity for the compressed-CELL kernel variant: an eligible
    (sparse-safe, side-free, sum-aggregated) plan over a compressed
    main must run compiled over the dictionaries — no decompression."""
    main = _main_block("compressed")

    def build():
        x = api.matrix(main, "X")
        if recipe == "full_agg":
            return [((x * x) * 2.0).sum()]
        return [(x * x).sum(), ((x * x) * (x * 3.0)).sum()]

    oracle = _as_arrays(api.eval_all(build(), engine=_engine("interpreted")))
    engine = _engine("vectorized")
    compiled = _as_arrays(api.eval_all(build(), engine=engine))
    rtol = engine.config.kernel_compare_rtol
    for expected, actual in zip(oracle, compiled):
        np.testing.assert_allclose(actual, expected, rtol=rtol, atol=1e-12)
    summary = engine.stats.kernel_summary()
    assert summary["n_compiled_runs"] >= 1
    compressed = engine.stats.compressed_summary()
    assert compressed["n_compressed_ops"] >= 1
    assert compressed["n_decompressions"] == 0


def test_compressed_cell_kernel_source_emitted():
    """Eligible plans carry a loop-free `genkernel_comp` variant."""
    from repro.codegen.npgen import compile_kernel
    from repro.codegen.cplan import compressed_cell_eligible
    from repro.codegen.construct import construct_cplan
    from tests.codegen.test_construct_pygen import _select_plan

    x = api.matrix(np.ones((32, 8)), "X")
    plan, plan_config = _select_plan([(x * x).sum()])
    cplan = construct_cplan(plan, plan_config)[0]
    assert compressed_cell_eligible(cplan)
    kernel = compile_kernel(cplan, CodegenConfig())
    assert kernel.comp_entry is not None
    assert "genkernel_comp" in kernel.comp_source
    values = np.array([0.0, 1.0, 3.0])
    counts = np.array([5.0, 2.0, 1.0])
    assert kernel.comp_entry(values, counts, [], []) == 11.0


def test_elementwise_kernels_bit_identical():
    """Order-preserving kernels reproduce the oracle exactly."""
    rng = np.random.default_rng(77)
    xd = rng.uniform(-1.0, 1.0, (200, 40))
    yd = rng.uniform(-1.0, 1.0, (200, 40))

    def build():
        x, y = api.matrix(xd, "X"), api.matrix(yd, "Y")
        return [api.abs_(x * y) + x, (x * y).row_sums()]

    oracle = _as_arrays(api.eval_all(build(), engine=_engine("interpreted")))
    compiled = _as_arrays(api.eval_all(build(), engine=_engine("vectorized")))
    for expected, actual in zip(oracle, compiled):
        assert np.array_equal(actual, expected)


def test_kernels_compose_with_intra_op_parallelism():
    """All partitions of one execution run the same (compiled) tier."""
    data = np.random.default_rng(41).uniform(0.1, 1.0, (256, 32))

    def build():
        x = api.matrix(data, "X")
        return [(x * x).sum(), api.sigmoid(x) * 2.0]

    serial = _as_arrays(api.eval_all(
        build(), engine=_engine("vectorized")))
    engine = Engine(mode="gen", config=CodegenConfig(
        intra_op_threads=4, intra_op_min_cells=1))
    parallel = _as_arrays(api.eval_all(build(), engine=engine))
    for expected, actual in zip(serial, parallel):
        np.testing.assert_allclose(actual, expected, rtol=1e-9, atol=1e-12)
    stats = engine.stats
    assert stats.n_intra_op_parallel >= 1
    assert stats.n_compiled_runs >= 1


# ----------------------------------------------------------------------
# Promotion policy
# ----------------------------------------------------------------------
class TestPromotion:
    def _eval_once(self, engine):
        rng = np.random.default_rng(3)
        x = api.matrix(rng.uniform(0.1, 1.0, (64, 16)), "X")
        y = api.matrix(rng.uniform(0.1, 1.0, (64, 16)), "Y")
        return float(api.eval((x * y).sum(), engine=engine))

    def test_threshold_zero_compiles_on_first_execution(self):
        engine = _engine("vectorized", kernel_hot_threshold=0)
        self._eval_once(engine)
        summary = engine.stats.kernel_summary()
        assert summary["n_kernel_compiles"] == 1
        assert summary["n_compiled_runs"] == 1
        assert summary["n_interpreted_runs"] == 0
        # Compiling at first execution is not a promotion: the
        # operator never ran interpreted.
        assert summary["n_kernel_promotions"] == 0

    def test_hot_threshold_promotes_after_warmup(self):
        engine = _engine("vectorized", kernel_hot_threshold=5)
        results = [self._eval_once(engine) for _ in range(3)]
        # Hotness = executions + plan-cache hits: run 1 scores 1,
        # run 2 scores 3 (hit + execution), run 3 crosses 5 and runs
        # compiled.  All three runs agree regardless of tier.
        assert len(set(np.round(results, 9))) == 1
        summary = engine.stats.kernel_summary()
        assert summary["n_interpreted_runs"] == 2
        assert summary["n_compiled_runs"] == 1
        assert summary["n_kernel_compiles"] == 1
        assert summary["n_kernel_promotions"] == 1

    def test_disabled_kernels_stay_interpreted(self):
        engine = _engine("interpreted")
        self._eval_once(engine)
        summary = engine.stats.kernel_summary()
        assert summary["n_kernel_compiles"] == 0
        assert summary["n_compiled_runs"] == 0
        assert summary["n_interpreted_runs"] == 1

    def test_kernel_shared_across_executions(self):
        """Plan-cache-shared operators compile their kernel once."""
        engine = _engine("vectorized")
        for _ in range(4):
            self._eval_once(engine)
        summary = engine.stats.kernel_summary()
        assert summary["n_kernel_compiles"] == 1
        assert summary["n_compiled_runs"] == 4
        assert summary["compiled_run_fraction"] == 1.0


# ----------------------------------------------------------------------
# Sharing: serving specializations and the source-hash cache
# ----------------------------------------------------------------------
class TestKernelSharing:
    def test_serving_specializations_share_kernel(self):
        """Shape specializations reuse one compiled kernel.

        The semantic hash ignores absolute sizes, so both shape
        specializations of the prepared program resolve to the same
        GeneratedOperator — and therefore the same compiled kernel.
        Warm binds additionally feed operator hotness.
        """
        engine = Engine(mode="gen", config=CodegenConfig(intra_op_threads=1))
        prepared = engine.prepare(
            lambda s: (s["X"] * s["Y"]).sum(), name="dot"
        )
        rng = np.random.default_rng(13)
        for rows in (32, 32, 48, 48, 32):
            inputs = {
                "X": rng.uniform(0.1, 1.0, (rows, 8)),
                "Y": rng.uniform(0.1, 1.0, (rows, 8)),
            }
            prepared.run(inputs)
        summary = engine.stats.kernel_summary()
        assert summary["n_compiled_runs"] == 5
        # One kernel compile serves both shape specializations.
        assert summary["n_kernel_compiles"] == 1

    def test_source_cache_returns_same_namespace(self):
        source = "def genexec(a, b, s):\n    return a\n"
        stats = RuntimeStats()
        ns1 = compile_source("TMP_SRC_TEST", source, "exec", stats=stats)
        before = stats.n_source_cache_hits
        ns2 = compile_source("TMP_SRC_TEST", source, "exec", stats=stats)
        assert ns1 is ns2
        assert stats.n_source_cache_hits == before + 1
        assert ns1["genexec"]("x", [], []) == "x"

    def test_source_cache_distinguishes_backends_and_source(self):
        stats = RuntimeStats()
        a = compile_source("TMP_SRC_A", "def genexec(a, b, s):\n    return 1\n",
                           "exec", stats=stats)
        b = compile_source("TMP_SRC_A", "def genexec(a, b, s):\n    return 2\n",
                           "exec", stats=stats)
        assert a is not b
        assert a["genexec"](0, [], []) == 1
        assert b["genexec"](0, [], []) == 2


# ----------------------------------------------------------------------
# Numba degradation
# ----------------------------------------------------------------------
class TestNumbaDegradation:
    def test_numba_request_still_correct_without_numba(self):
        rng = np.random.default_rng(19)
        xd = rng.uniform(0.1, 1.0, (80, 20))
        yd = rng.uniform(0.1, 1.0, (80, 20))

        def build():
            x, y = api.matrix(xd, "X"), api.matrix(yd, "Y")
            return [(x * y).sum(), x * y * 3.0]

        oracle = _as_arrays(api.eval_all(
            build(), engine=_engine("interpreted")))
        engine = _engine("numba")  # numba_kernels=True regardless
        got = _as_arrays(api.eval_all(build(), engine=engine))
        for expected, actual in zip(oracle, got):
            np.testing.assert_allclose(actual, expected, rtol=1e-9,
                                       atol=1e-12)
        summary = engine.stats.kernel_summary()
        assert summary["n_compiled_runs"] >= 1
        if not HAVE_NUMBA:
            # Degraded to the NumPy kernels, with the fallback counted.
            assert summary["n_numba_fallbacks"] >= 1
