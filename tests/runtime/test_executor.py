"""Runtime executor: scheduling, eager freeing, serial/parallel parity."""

import numpy as np
import pytest

from repro import api
from repro.compiler.execution import Engine
from repro.config import CodegenConfig
from repro.runtime.executor import ProgramExecutor
from repro.runtime.matrix import MatrixBlock
from tests.conftest import ALL_MODES


def _parallel_engine(mode="base", threads=4, **kwargs):
    config = CodegenConfig(
        executor_mode="parallel",
        executor_threads=threads,
        parallel_min_cells=0,
        **kwargs,
    )
    return Engine(mode=mode, config=config)


def _serial_engine(mode="base", **kwargs):
    return Engine(mode=mode, config=CodegenConfig(executor_mode="serial", **kwargs))


def _branches(rng, n=3, size=30):
    mats = [api.matrix(rng.random((size, size)), f"M{i}") for i in range(n)]
    return [(api.exp(m * 0.5) + m * 2.0).sum() for m in mats]


class TestParallelSerialParity:
    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_identical_results_all_modes(self, mode, rng):
        seed_data = rng.random((40, 20))

        def build():
            x = api.matrix(seed_data, "X")
            y = api.matrix(seed_data * 0.5, "Y")
            return [
                (x * y).sum(),
                (x + y).row_sums(),
                x.T @ (x @ api.matrix(seed_data[:20, :1], "v")),
            ]

        serial = api.eval_all(build(), engine=_serial_engine(mode))
        parallel = api.eval_all(build(), engine=_parallel_engine(mode))
        for s, p in zip(serial, parallel):
            s_arr = s.to_dense() if isinstance(s, MatrixBlock) else s
            p_arr = p.to_dense() if isinstance(p, MatrixBlock) else p
            np.testing.assert_allclose(p_arr, s_arr, rtol=1e-12)

    def test_repeated_execution_reuses_pool(self, rng):
        engine = _parallel_engine()
        for _ in range(3):
            api.eval_all(_branches(rng), engine=engine)
        assert engine.stats.n_parallel_runs == 3


class TestSchedulingStats:
    def test_parallel_stats_recorded(self, rng):
        engine = _parallel_engine()
        api.eval_all(_branches(rng, n=4), engine=engine)
        stats = engine.stats
        assert stats.n_parallel_runs == 1
        assert stats.n_serial_runs == 0
        assert stats.n_parallel_tasks == stats.n_instructions_executed
        assert stats.executor_max_concurrency >= 1

    def test_independent_instructions_overlap(self, rng):
        """Two barrier-synchronized instructions must be in flight
        together — deterministic proof of concurrent scheduling."""
        import threading

        engine = _parallel_engine(threads=2)
        x = api.matrix(rng.random((8, 8)), "X")
        y = api.matrix(rng.random((8, 8)), "Y")
        program = engine.compile([(x * 2.0).sum().hop, (y * 3.0).sum().hop])
        barrier = threading.Barrier(2, timeout=10)
        initial = [i for i in program.instructions if not i.dep_indices]
        assert len(initial) >= 2

        class Blocking:
            def __init__(self, inner):
                self.inner = inner

            def compute(self, inputs):
                barrier.wait()  # both sides must arrive: true overlap
                return self.inner

        from repro.compiler.program import Instruction

        blocked_indices = {i.index for i in initial[:2]}
        for pos, instr in enumerate(program.instructions):
            if instr.index in blocked_indices:
                program.instructions[pos] = Instruction(
                    index=instr.index,
                    opcode="fused",
                    hop=instr.hop,
                    input_slots=instr.input_slots,
                    output_slot=instr.output_slot,
                    fused_match=Blocking(MatrixBlock(np.ones((8, 8)))),
                    dep_indices=instr.dep_indices,
                    dependent_indices=instr.dependent_indices,
                    weight=instr.weight,
                )
        engine.executor.run(program)
        assert engine.stats.executor_max_concurrency >= 2

    def test_serial_fallback_stats(self, rng):
        engine = _serial_engine()
        api.eval_all(_branches(rng), engine=engine)
        stats = engine.stats
        assert stats.n_serial_runs == 1
        assert stats.n_parallel_tasks == 0
        assert stats.executor_max_concurrency == 1

    def test_scheduling_summary_keys(self, rng):
        engine = _serial_engine()
        api.eval(_branches(rng, n=1)[0], engine=engine)
        summary = engine.stats.scheduling_summary()
        assert {
            "n_instructions_executed",
            "n_parallel_tasks",
            "executor_max_concurrency",
            "n_freed_early",
            "n_serial_runs",
            "n_parallel_runs",
        } == set(summary)


class TestHeuristicFallback:
    def test_tiny_programs_run_serially(self, rng):
        # Default parallel_min_cells keeps thread dispatch away from
        # tiny operators even in parallel mode.
        config = CodegenConfig(executor_mode="parallel", executor_threads=4)
        engine = Engine(mode="base", config=config)
        x = api.matrix(rng.random((4, 4)), "X")
        api.eval((x * 2.0).sum(), engine=engine)
        assert engine.stats.n_serial_runs == 1
        assert engine.stats.n_parallel_runs == 0

    def test_single_thread_forces_serial(self, rng):
        config = CodegenConfig(
            executor_mode="parallel", executor_threads=1, parallel_min_cells=0
        )
        engine = Engine(mode="base", config=config)
        api.eval_all(_branches(rng), engine=engine)
        assert engine.stats.n_parallel_runs == 0


class TestEagerFreeing:
    def test_intermediates_freed_early(self, rng):
        engine = _serial_engine()
        x = api.matrix(rng.random((20, 20)), "X")
        chain = ((x * 2.0 + 1.0) * 0.5).sum()
        api.eval(chain, engine=engine)
        # Every non-root intermediate dies as soon as its consumer ran.
        assert engine.stats.n_freed_early == engine.stats.n_instructions_executed - 1

    def test_parallel_freeing_matches_serial(self, rng):
        data = rng.random((30, 30))

        def build():
            x = api.matrix(data, "X")
            return [((x * 2.0 + 1.0) * (x - 0.5)).sum(), (x + 3.0).row_sums()]

        serial = _serial_engine()
        api.eval_all(build(), engine=serial)
        parallel = _parallel_engine()
        api.eval_all(build(), engine=parallel)
        assert parallel.stats.n_freed_early == serial.stats.n_freed_early

    def test_roots_never_freed(self, rng):
        engine = _serial_engine()
        x = api.matrix(rng.random((10, 10)), "X")
        shared = x * 2.0
        results = api.eval_all([shared, shared.sum()], engine=engine)
        assert isinstance(results[0], MatrixBlock)
        assert results[1] == pytest.approx(results[0].to_dense().sum())


class TestErrorPropagation:
    def test_parallel_executor_propagates_kernel_errors(self, rng):
        engine = _parallel_engine()
        x = api.matrix(np.full((200, 200), -1.0), "X")
        y = api.matrix(rng.random((200, 200)), "Y")

        class Boom(RuntimeError):
            pass

        # Inject a failing instruction by monkey-patching its hop kernel.
        program = engine.compile([(api.sqrt(x) * y).sum().hop])
        broken = program.instructions[0]

        def exploding_compute(inputs):
            raise Boom("kernel failure")

        from repro.compiler.program import Instruction

        program.instructions[0] = Instruction(
            index=broken.index,
            opcode="fused",
            hop=broken.hop,
            input_slots=broken.input_slots,
            output_slot=broken.output_slot,
            fused_match=type(
                "M", (), {"compute": staticmethod(exploding_compute)}
            )(),
            dep_indices=broken.dep_indices,
            dependent_indices=broken.dependent_indices,
            weight=broken.weight,
        )
        with pytest.raises(Boom):
            engine.executor.run(program)


class TestExecutorConfig:
    def test_thread_autosizing(self):
        config = CodegenConfig(executor_threads=0)
        executor = ProgramExecutor(config, Engine(mode="base").stats)
        import os

        assert executor.n_threads == min(8, os.cpu_count() or 1)

    def test_explicit_threads(self):
        config = CodegenConfig(executor_threads=3)
        executor = ProgramExecutor(config, Engine(mode="base").stats)
        assert executor.n_threads == 3
