"""Kernel library tests against NumPy oracles (incl. property tests)."""

import numpy as np
import pytest
import scipy.special
from hypothesis import given, settings, strategies as st

from repro.errors import RuntimeExecError, ShapeError
from repro.runtime import ops
from repro.runtime.matrix import MatrixBlock

RNG = np.random.default_rng(123)


def _dense(rows, cols, low=-2.0, high=2.0, seed=None):
    rng = np.random.default_rng(seed) if seed is not None else RNG
    return MatrixBlock(rng.uniform(low, high, (rows, cols)))


def _sparse(rows, cols, sparsity=0.2, seed=0):
    return MatrixBlock.rand(rows, cols, sparsity=sparsity, seed=seed, low=0.1, high=2.0)


class TestUnary:
    @pytest.mark.parametrize(
        "op,ref",
        [
            ("exp", np.exp),
            ("log", np.log),
            ("sqrt", np.sqrt),
            ("abs", np.abs),
            ("sign", np.sign),
            ("round", np.round),
            ("floor", np.floor),
            ("ceil", np.ceil),
            ("neg", np.negative),
            ("sigmoid", lambda x: 1 / (1 + np.exp(-x))),
            ("sprop", lambda x: x * (1 - x)),
            ("pow2", np.square),
            ("erf", scipy.special.erf),
        ],
    )
    def test_dense_matches_numpy(self, op, ref):
        x = _dense(7, 5, low=0.1, high=2.0, seed=5)
        result = ops.unary(op, x)
        np.testing.assert_allclose(result.to_dense(), ref(x.to_dense()))

    def test_unary_scalar(self):
        assert ops.unary("exp", 0.0) == 1.0
        assert ops.unary("not", 0.0) == 1.0
        assert ops.unary("not", 3.0) == 0.0

    def test_sparse_safe_keeps_sparse(self):
        x = _sparse(50, 50, 0.05, seed=2)
        result = ops.unary("abs", x)
        assert result.is_sparse
        np.testing.assert_allclose(result.to_dense(), np.abs(x.to_dense()))

    def test_unsafe_densifies(self):
        x = _sparse(10, 10, 0.1, seed=3)
        result = ops.unary("exp", x)
        np.testing.assert_allclose(result.to_dense(), np.exp(x.to_dense()))

    def test_unknown_op(self):
        with pytest.raises(RuntimeExecError):
            ops.unary("nope", 1.0)

    def test_cumsum(self):
        x = _dense(4, 3, seed=9)
        np.testing.assert_allclose(
            ops.cumsum(x).to_dense(), np.cumsum(x.to_dense(), axis=0)
        )


class TestBinary:
    @pytest.mark.parametrize("op", ["+", "-", "*", "/", "min", "max"])
    def test_matrix_matrix(self, op):
        a, b = _dense(6, 4, seed=1), _dense(6, 4, low=0.5, high=2.0, seed=2)
        ref = {
            "+": np.add, "-": np.subtract, "*": np.multiply,
            "/": np.divide, "min": np.minimum, "max": np.maximum,
        }[op]
        result = ops.binary(op, a, b)
        np.testing.assert_allclose(result.to_dense(), ref(a.to_dense(), b.to_dense()))

    def test_matrix_scalar(self):
        a = _dense(3, 3, seed=4)
        result = ops.binary("*", a, 2.5)
        np.testing.assert_allclose(result.to_dense(), a.to_dense() * 2.5)

    def test_scalar_matrix_noncommutative(self):
        a = _dense(3, 3, low=1.0, high=2.0, seed=4)
        result = ops.binary("/", 1.0, a)
        np.testing.assert_allclose(result.to_dense(), 1.0 / a.to_dense())

    def test_scalar_scalar(self):
        assert ops.binary("^", 2.0, 10.0) == 1024.0

    def test_col_vector_broadcast(self):
        a = _dense(5, 4, seed=6)
        v = _dense(5, 1, seed=7)
        result = ops.binary("+", a, v)
        np.testing.assert_allclose(result.to_dense(), a.to_dense() + v.to_dense())

    def test_row_vector_broadcast(self):
        a = _dense(5, 4, seed=6)
        v = _dense(1, 4, seed=7)
        result = ops.binary("*", a, v)
        np.testing.assert_allclose(result.to_dense(), a.to_dense() * v.to_dense())

    def test_incompatible_shapes(self):
        with pytest.raises(ShapeError):
            ops.binary("+", _dense(3, 3), _dense(4, 4))

    def test_sparse_sparse_multiply_stays_sparse(self):
        a, b = _sparse(40, 40, 0.1, 1), _sparse(40, 40, 0.1, 2)
        result = ops.binary("*", a, b)
        assert result.is_sparse
        np.testing.assert_allclose(
            result.to_dense(), a.to_dense() * b.to_dense()
        )

    def test_sparse_scalar_multiply_stays_sparse(self):
        a = _sparse(40, 40, 0.05, 5)
        result = ops.binary("*", a, 3.0)
        assert result.is_sparse
        np.testing.assert_allclose(result.to_dense(), a.to_dense() * 3.0)

    def test_sparse_scalar_add_densifies(self):
        a = _sparse(10, 10, 0.1, 5)
        result = ops.binary("+", a, 1.0)
        np.testing.assert_allclose(result.to_dense(), a.to_dense() + 1.0)

    def test_sparse_vector_scaling(self):
        a = _sparse(30, 20, 0.1, 8)
        v = _dense(30, 1, low=0.5, high=1.5, seed=9)
        result = ops.binary("*", a, v)
        np.testing.assert_allclose(result.to_dense(), a.to_dense() * v.to_dense())

    @pytest.mark.parametrize("op", ["==", "!=", "<", ">", "<=", ">=", "&", "|"])
    def test_comparisons_return_indicators(self, op):
        a, b = _dense(4, 4, seed=1), _dense(4, 4, seed=2)
        result = ops.binary(op, a, b).to_dense()
        assert set(np.unique(result)) <= {0.0, 1.0}


class TestTernary:
    def test_plus_mult(self):
        a, b, c = (_dense(3, 3, seed=i) for i in range(3))
        result = ops.ternary("+*", a, b, c)
        np.testing.assert_allclose(
            result.to_dense(), a.to_dense() + b.to_dense() * c.to_dense()
        )

    def test_minus_mult(self):
        a, b, c = (_dense(3, 3, seed=i) for i in range(3))
        result = ops.ternary("-*", a, b, c)
        np.testing.assert_allclose(
            result.to_dense(), a.to_dense() - b.to_dense() * c.to_dense()
        )

    def test_ifelse(self):
        cond = MatrixBlock(np.array([[1.0, 0.0], [0.0, 2.0]]))
        a = MatrixBlock(np.full((2, 2), 5.0))
        b = MatrixBlock(np.full((2, 2), 9.0))
        result = ops.ternary("ifelse", cond, a, b)
        np.testing.assert_array_equal(
            result.to_dense(), [[5.0, 9.0], [9.0, 5.0]]
        )

    def test_ifelse_scalar_branches(self):
        cond = MatrixBlock(np.array([[1.0, 0.0]]))
        result = ops.ternary("ifelse", cond, 1.0, -1.0)
        np.testing.assert_array_equal(result.to_dense(), [[1.0, -1.0]])


class TestAggregation:
    @pytest.mark.parametrize("direction,axis", [("full", None), ("row", 1), ("col", 0)])
    @pytest.mark.parametrize("op", ["sum", "min", "max", "mean"])
    def test_dense(self, op, direction, axis):
        x = _dense(6, 5, seed=10)
        ref = getattr(np, op if op != "sumsq" else "sum")(x.to_dense(), axis=axis)
        result = ops.agg_unary(op, x, direction)
        if direction == "full":
            assert np.isclose(result, ref)
        else:
            np.testing.assert_allclose(result.to_dense().ravel(), np.ravel(ref))

    def test_sumsq(self):
        x = _dense(4, 4, seed=11)
        assert np.isclose(ops.agg_unary("sumsq", x), np.sum(x.to_dense() ** 2))

    def test_sparse_sum(self):
        x = _sparse(30, 30, 0.1, 12)
        assert np.isclose(ops.agg_unary("sum", x), x.to_dense().sum())

    def test_sparse_row_sums_shape(self):
        x = _sparse(30, 20, 0.1, 13)
        result = ops.agg_unary("sum", x, "row")
        assert result.shape == (30, 1)
        np.testing.assert_allclose(
            result.to_dense().ravel(), x.to_dense().sum(axis=1)
        )

    def test_scalar_agg(self):
        assert ops.agg_unary("sum", 3.0) == 3.0
        assert ops.agg_unary("sumsq", 3.0) == 9.0


class TestMatMult:
    def test_dense_dense(self):
        a, b = _dense(5, 4, seed=1), _dense(4, 3, seed=2)
        np.testing.assert_allclose(
            ops.matmult(a, b).to_dense(), a.to_dense() @ b.to_dense()
        )

    def test_sparse_dense(self):
        a, b = _sparse(20, 15, 0.2, 3), _dense(15, 4, seed=4)
        np.testing.assert_allclose(
            ops.matmult(a, b).to_dense(), a.to_dense() @ b.to_dense()
        )

    def test_dense_sparse(self):
        a, b = _dense(6, 20, seed=5), _sparse(20, 10, 0.2, 6)
        np.testing.assert_allclose(
            ops.matmult(a, b).to_dense(), a.to_dense() @ b.to_dense()
        )

    def test_sparse_sparse(self):
        a, b = _sparse(20, 20, 0.2, 7), _sparse(20, 20, 0.2, 8)
        np.testing.assert_allclose(
            ops.matmult(a, b).to_dense(), a.to_dense() @ b.to_dense()
        )

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            ops.matmult(_dense(3, 4), _dense(3, 4))


class TestReorgIndexing:
    def test_transpose_dense(self):
        a = _dense(4, 7, seed=9)
        np.testing.assert_array_equal(ops.transpose(a).to_dense(), a.to_dense().T)

    def test_transpose_sparse(self):
        a = _sparse(20, 10, 0.2, 10)
        result = ops.transpose(a)
        assert result.is_sparse
        np.testing.assert_allclose(result.to_dense(), a.to_dense().T)

    def test_rix(self):
        a = _dense(8, 8, seed=11)
        result = ops.rix(a, 2, 5, 1, 4)
        np.testing.assert_array_equal(result.to_dense(), a.to_dense()[2:5, 1:4])

    def test_rix_bounds(self):
        with pytest.raises(ShapeError):
            ops.rix(_dense(3, 3), 0, 5, 0, 2)

    def test_cbind_rbind(self):
        a, b = _dense(3, 2, seed=1), _dense(3, 3, seed=2)
        assert ops.cbind(a, b).shape == (3, 5)
        c, d = _dense(2, 4, seed=3), _dense(3, 4, seed=4)
        assert ops.rbind(c, d).shape == (5, 4)
        with pytest.raises(ShapeError):
            ops.cbind(a, _dense(4, 1))


# ----------------------------------------------------------------------
# Property-based: kernels agree with NumPy on random dense and sparse
# inputs for randomly drawn operations.
# ----------------------------------------------------------------------
_BINARY = ["+", "-", "*", "min", "max", "==", "!=", "<", ">"]


@given(
    op=st.sampled_from(_BINARY),
    rows=st.integers(1, 12),
    cols=st.integers(1, 12),
    sparse_a=st.booleans(),
    sparse_b=st.booleans(),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=120, deadline=None)
def test_binary_property(op, rows, cols, sparse_a, sparse_b, seed):
    rng = np.random.default_rng(seed)
    arr_a = rng.uniform(-2, 2, (rows, cols)) * (rng.random((rows, cols)) > 0.4)
    arr_b = rng.uniform(-2, 2, (rows, cols)) * (rng.random((rows, cols)) > 0.4)
    a = MatrixBlock(arr_a)
    b = MatrixBlock(arr_b)
    if sparse_a:
        a = MatrixBlock(a.to_csr())
    if sparse_b:
        b = MatrixBlock(b.to_csr())
    ref = {
        "+": np.add, "-": np.subtract, "*": np.multiply,
        "min": np.minimum, "max": np.maximum,
        "==": lambda x, y: (x == y) * 1.0, "!=": lambda x, y: (x != y) * 1.0,
        "<": lambda x, y: (x < y) * 1.0, ">": lambda x, y: (x > y) * 1.0,
    }[op](arr_a, arr_b)
    result = ops.binary(op, a, b)
    np.testing.assert_allclose(result.to_dense(), ref, atol=1e-12)


@given(
    rows=st.integers(1, 10),
    inner=st.integers(1, 10),
    cols=st.integers(1, 10),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=60, deadline=None)
def test_matmult_property(rows, inner, cols, seed):
    rng = np.random.default_rng(seed)
    arr_a = rng.uniform(-1, 1, (rows, inner)) * (rng.random((rows, inner)) > 0.3)
    arr_b = rng.uniform(-1, 1, (inner, cols)) * (rng.random((inner, cols)) > 0.3)
    for a_sparse in (False, True):
        for b_sparse in (False, True):
            a = MatrixBlock(arr_a.copy())
            b = MatrixBlock(arr_b.copy())
            if a_sparse:
                a = MatrixBlock(a.to_csr())
            if b_sparse:
                b = MatrixBlock(b.to_csr())
            result = ops.matmult(a, b)
            np.testing.assert_allclose(result.to_dense(), arr_a @ arr_b, atol=1e-12)
