"""CLA compressed-matrix tests: round trips, operations, fused exec."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.compressed import ColumnGroup, CompressedMatrix, compress
from repro.runtime.matrix import MatrixBlock


def _categorical_block(rows=500, cols=6, levels=5, seed=0):
    """A matrix with few distinct values per column (compresses well)."""
    rng = np.random.default_rng(seed)
    arr = rng.integers(0, levels, size=(rows, cols)).astype(np.float64)
    return MatrixBlock(arr)


class TestCompressionRoundtrip:
    def test_decompress_equals_original(self):
        block = _categorical_block()
        comp = compress(block)
        np.testing.assert_array_equal(comp.decompress().to_dense(), block.to_dense())

    def test_decompress_without_cocoding(self):
        block = _categorical_block(seed=1)
        comp = compress(block, co_code=False)
        np.testing.assert_array_equal(comp.decompress().to_dense(), block.to_dense())

    def test_compression_ratio_favorable(self):
        block = _categorical_block(rows=5000, cols=8, levels=4, seed=2)
        comp = compress(block)
        assert comp.compression_ratio > 2.0

    def test_continuous_data_still_roundtrips(self):
        rng = np.random.default_rng(3)
        block = MatrixBlock(rng.random((100, 4)))
        comp = compress(block)
        np.testing.assert_allclose(comp.decompress().to_dense(), block.to_dense())

    def test_shape_and_nnz(self):
        block = _categorical_block(rows=200, cols=3, seed=4)
        comp = compress(block)
        assert comp.shape == (200, 3)
        assert comp.nnz == block.nnz


class TestCompressedOps:
    def test_sum(self):
        block = _categorical_block(seed=5)
        comp = compress(block)
        assert np.isclose(comp.sum(), block.to_dense().sum())

    def test_sum_sq(self):
        block = _categorical_block(seed=6)
        comp = compress(block)
        assert np.isclose(comp.sum_sq(), np.sum(block.to_dense() ** 2))

    def test_col_sums(self):
        block = _categorical_block(seed=7)
        comp = compress(block)
        np.testing.assert_allclose(
            comp.col_sums().to_dense().ravel(), block.to_dense().sum(axis=0)
        )

    def test_matvec(self):
        block = _categorical_block(rows=300, cols=5, seed=8)
        comp = compress(block)
        v = np.random.default_rng(9).random(5)
        np.testing.assert_allclose(
            comp.matvec(v).to_dense().ravel(), block.to_dense() @ v
        )

    def test_iter_distinct_counts_cover_rows(self):
        block = _categorical_block(rows=250, cols=4, seed=10)
        comp = compress(block)
        total_cells = sum(counts.sum() for _, counts in comp.iter_distinct())
        assert total_cells == 250 * 4


class TestEncodings:
    def test_ole_used_for_few_distinct(self):
        arr = np.tile(np.array([0.0, 1.0, 2.0]), (300, 1))
        comp = compress(MatrixBlock(arr), co_code=False)
        assert any(g.encoding == "ole" for g in comp.groups)
        np.testing.assert_array_equal(comp.decompress().to_dense(), arr)

    def test_ddc_used_for_many_distinct(self):
        rng = np.random.default_rng(11)
        arr = rng.integers(0, 200, (300, 2)).astype(float)
        comp = compress(MatrixBlock(arr), co_code=False)
        assert all(g.encoding == "ddc" for g in comp.groups)

    def test_cocoding_merges_columns(self):
        rng = np.random.default_rng(12)
        arr = rng.integers(0, 3, (1000, 4)).astype(float)
        comp = compress(MatrixBlock(arr), co_code=True)
        assert any(len(g.cols) == 2 for g in comp.groups)
        np.testing.assert_array_equal(comp.decompress().to_dense(), arr)

    def test_group_counts(self):
        arr = np.array([[0.0], [1.0], [1.0], [2.0]])
        comp = compress(MatrixBlock(arr), co_code=False)
        (group,) = comp.groups
        counts = dict(zip(group.dictionary.ravel(), group.counts()))
        assert counts == {0.0: 1.0, 1.0: 2.0, 2.0: 1.0}


class TestFusedOverCompressed:
    def test_gen_sumsq_over_compressed(self):
        """The Figure 9 experiment path: generated operator over distinct
        dictionary values only."""
        from repro import api
        from repro.compiler.execution import Engine

        block = _categorical_block(rows=2000, cols=6, seed=13)
        comp = compress(block)
        expected = np.sum(block.to_dense() ** 2)

        engine = Engine(mode="gen")
        x = api.matrix(comp, name="X")
        result = api.eval((x * x).sum(), engine=engine)
        # sum(X^2) compiles to a fused cell operator; over the
        # compressed block it must execute on distinct values only.
        assert np.isclose(result, expected)

    @pytest.mark.parametrize("mode", ["base", "fused"])
    def test_base_and_fused_over_compressed(self, mode):
        from repro import api
        from repro.compiler.execution import Engine

        block = _categorical_block(rows=500, cols=4, seed=14)
        comp = compress(block)
        engine = Engine(mode=mode)
        x = api.matrix(comp, name="X")
        result = api.eval((x * x).sum(), engine=engine)
        assert np.isclose(result, np.sum(block.to_dense() ** 2))

    def test_cla_unary_shallow_transform(self):
        from repro import api
        from repro.compiler.execution import Engine

        block = _categorical_block(rows=300, cols=3, seed=15)
        comp = compress(block)
        x = api.matrix(comp, name="X")
        result = api.eval(api.abs_(x).sum(), engine=Engine(mode="base"))
        assert np.isclose(result, np.abs(block.to_dense()).sum())

    def test_cla_matvec_in_dag(self):
        from repro import api
        from repro.compiler.execution import Engine

        block = _categorical_block(rows=300, cols=5, seed=16)
        comp = compress(block)
        v = np.random.default_rng(17).random((5, 1))
        x = api.matrix(comp, name="X")
        result = api.eval(x @ api.matrix(v, "v"), engine=Engine(mode="base"))
        np.testing.assert_allclose(
            result.to_dense(), block.to_dense() @ v
        )


@given(
    rows=st.integers(2, 60),
    cols=st.integers(1, 6),
    levels=st.integers(1, 6),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=50, deadline=None)
def test_compress_roundtrip_property(rows, cols, levels, seed):
    rng = np.random.default_rng(seed)
    arr = rng.integers(0, levels, size=(rows, cols)).astype(np.float64)
    comp = compress(MatrixBlock(arr))
    np.testing.assert_array_equal(comp.decompress().to_dense(), arr)
    assert np.isclose(comp.sum(), arr.sum())
    assert np.isclose(comp.sum_sq(), np.sum(arr * arr))


def _implicit_zero_block(rows=240, cols=3, seed=21):
    """Zero-dominated columns: compress() encodes them OLE with an
    implicit (offset-less) zero tuple."""
    rng = np.random.default_rng(seed)
    arr = np.zeros((rows, cols))
    for j in range(cols):
        nz = rng.choice(rows, size=rows // 5, replace=False)
        arr[nz, j] = rng.integers(1, 5, size=len(nz)).astype(np.float64)
    return MatrixBlock(arr)


class TestRowSumsOverImplicitZeroOLE:
    """Regression: the seed's CLA ROW-sum iterated OLE offset lists
    without the ``rows is None`` guard, crashing on any zero-dominated
    column and dropping the implicit tuple's contribution."""

    def test_row_sums_direct(self):
        block = _implicit_zero_block()
        comp = compress(block, co_code=False)
        assert any(
            g.encoding == "ole" and g.implicit_index >= 0 for g in comp.groups
        )
        np.testing.assert_allclose(
            comp.row_sums().to_dense().ravel(), block.to_dense().sum(axis=1)
        )

    def test_row_sums_after_dictionary_shift(self):
        """X + 1 moves the implicit tuple off zero; its base term must
        reach every row, with explicit tuples contributing deltas."""
        from repro.runtime.compressed import transform_dictionaries

        block = _implicit_zero_block(seed=22)
        comp = compress(block, co_code=False)
        shifted = transform_dictionaries(comp, lambda d: d + 1.0)
        np.testing.assert_allclose(
            shifted.row_sums().to_dense().ravel(),
            (block.to_dense() + 1.0).sum(axis=1),
        )

    def test_row_sums_through_engine(self):
        """The original crash path: rowSums(X + 1) over compressed X."""
        from repro import api
        from repro.compiler.execution import Engine

        block = _implicit_zero_block(seed=23)
        comp = compress(block, co_code=False)
        x = api.matrix(comp, name="X")
        result = api.eval((x + 1.0).row_sums(), engine=Engine(mode="base"))
        np.testing.assert_allclose(
            result.to_dense().ravel(), (block.to_dense() + 1.0).sum(axis=1)
        )


class TestMultiColumnOLEGroup:
    """Hardening: co-coded (multi-column) OLE groups must scatter whole
    value tuples — not corrupt through element-wise fancy indexing."""

    def _comp(self):
        dictionary = np.array([[0.0, 0.0], [1.0, 2.0], [3.0, 4.0]])
        offsets = [None, np.array([1, 3]), np.array([0])]
        group = ColumnGroup((0, 1), "ole", dictionary, offsets=offsets,
                            n_rows=5)
        comp = CompressedMatrix(5, 2, [group], uncompressed_bytes=5 * 2 * 8.0)
        expected = np.array(
            [[3.0, 4.0], [1.0, 2.0], [0.0, 0.0], [1.0, 2.0], [0.0, 0.0]]
        )
        return comp, expected

    def test_counts_include_implicit(self):
        comp, _ = self._comp()
        np.testing.assert_array_equal(
            comp.groups[0].counts(), np.array([2.0, 2.0, 1.0])
        )

    def test_decompress(self):
        comp, expected = self._comp()
        np.testing.assert_array_equal(comp.decompress().to_dense(), expected)

    def test_matvec(self):
        comp, expected = self._comp()
        v = np.array([0.5, 2.0])
        np.testing.assert_allclose(
            comp.matvec(v).to_dense().ravel(), expected @ v
        )

    def test_row_sums(self):
        comp, expected = self._comp()
        np.testing.assert_allclose(
            comp.row_sums().to_dense().ravel(), expected.sum(axis=1)
        )


class TestPartitionAccounting:
    """Regression: per-group partition views used to claim the *full*
    matrix's uncompressed bytes each, inflating per-view ratios."""

    def test_views_share_parent_bytes(self):
        from repro.runtime.skeletons import _plan_group_partitions

        block = _categorical_block(rows=400, cols=8, levels=5, seed=30)
        comp = compress(block, co_code=False)
        parts = _plan_group_partitions(comp, [comp], 0, 4)
        assert parts is not None and len(parts) >= 2
        views = [values[0] for values in parts]
        assert np.isclose(
            sum(v.size_bytes for v in views), comp.size_bytes
        )
        assert np.isclose(
            sum(v.uncompressed_bytes for v in views), comp.uncompressed_bytes
        )
        for view in views:
            assert view.uncompressed_bytes < comp.uncompressed_bytes
